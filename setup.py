"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517/660 builds (which need bdist_wheel) are unavailable; this shim
lets ``pip install -e .`` fall back to the legacy editable install.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
