#!/usr/bin/env python
"""Paper Table II + §III-E, live: the Titanium-heritage multidimensional
domain/array library — points, rectdomains, views, and the one-statement
one-sided ghost copy.

    python examples/titanium_arrays.py
"""

import numpy as np

import repro
from repro.arrays import (
    ARRAY,
    POINT,
    RECTDOMAIN,
    RectDomain,
    foreach,
    ndarray,
)


def main():
    me, n = repro.myrank(), repro.ranks()

    if me == 0:
        print("— Table II constructors —")
        p = POINT(1, 2, 3)
        rd = RECTDOMAIN((1, 2, 3), (5, 6, 7), (1, 1, 2))
        print(f"  POINT(1,2,3)                -> {p}")
        print(f"  RECTDOMAIN(...) (paper ex.) -> {rd}, size {rd.size}")
        A = ARRAY(np.int64, ((1, 2), (9, 9), (1, 3)))
        print(f"  ARRAY(int, ((1,2),(9,9),(1,3))) -> {A.shape} array")

        print("— domain arithmetic —")
        rd1 = RECTDOMAIN((0, 0), (6, 6))
        rd2 = RECTDOMAIN((3, 3), (9, 9))
        print(f"  rd1 * rd2 (intersection) = {rd1 * rd2}")
        print(f"  (rd1 + rd2).size (union) = {(rd1 + rd2).size}")

        print("— views share storage —")
        G = ndarray(np.float64, RECTDOMAIN((0, 0), (6, 6)))
        for (i, j) in foreach(G.domain):       # paper's foreach
            G[i, j] = 10 * i + j
        interior = G.constrict(G.domain.shrink(1))
        print(f"  interior view: {interior.domain}, "
              f"corner value {interior[POINT(1, 1)]}")
        row = G.slice(0, 2)                     # (N-1)-d slice
        print(f"  slice(0, 2): {row.local_view()}")
        T = G.transpose()
        print(f"  transpose()[1,0] == G[0,1]: "
              f"{T[POINT(1, 0)] == G[POINT(0, 1)]}")
    repro.barrier()

    # — the one-statement ghost copy, across ranks —
    # Each rank owns an 8-column strip (plus 1 ghost column per side) of
    # a global 8 x 8n grid; pulling the neighbour's border is ONE line.
    lo, hi = 8 * me, 8 * me + 8
    interior = RectDomain((0, lo), (8, hi))
    mine = ndarray(np.float64, RectDomain((0, lo - 1), (8, hi + 1)))
    mine.constrict(interior).local_view()[:] = me
    d = repro.Directory()
    d.publish_and_sync(mine)

    right = d.lookup((me + 1) % n)
    ghost = RectDomain((0, hi), (8, hi + 1))
    if me + 1 < n:
        mine.constrict(ghost).copy(right)    # <- the paper's §III-E line
        got = mine.constrict(ghost).local_view()[0, 0]
        print(f"  rank {me}: ghost column filled from rank {me + 1} "
              f"-> {got}")
    repro.barrier()


if __name__ == "__main__":
    repro.spmd(main, ranks=4)
