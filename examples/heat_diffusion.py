#!/usr/bin/env python
"""Heat diffusion on a distributed 2-D grid (the Stencil case study's
little sibling, §V-B of the paper).

A hot spot diffuses across a grid block-partitioned over all ranks with
one layer of ghost cells.  Each step is the paper's idiom:

    A.ghost_exchange()                    # one-sided halo copies
    interior <- 4-point Jacobi relaxation # vectorized local compute

and a global residual via allreduce decides convergence.

    python examples/heat_diffusion.py
"""

import numpy as np

import repro
from repro.arrays import DistNdArray, RectDomain

GRID = 64
HOT = 100.0


def main():
    me = repro.myrank()
    dom = RectDomain((0, 0), (GRID, GRID))
    A = DistNdArray(np.float64, dom, ghost=1)
    B = DistNdArray(np.float64, dom, ghost=1, pgrid=A.pgrid)

    # hot square in the global centre (whoever owns it writes it)
    c = GRID // 2
    for p in RectDomain((c - 2, c - 2), (c + 2, c + 2)):
        if A.owner_of(p) == me:
            A[p] = HOT
    repro.barrier()

    step = 0
    while True:
        A.ghost_exchange(faces_only=True)
        a = A.local.local_view()
        b = B.local.local_view()
        b[1:-1, 1:-1] = 0.25 * (
            a[1:-1, 2:] + a[1:-1, :-2] + a[2:, 1:-1] + a[:-2, 1:-1]
        )
        diff = float(np.abs(b[1:-1, 1:-1] - a[1:-1, 1:-1]).max())
        residual = repro.collectives.allreduce(diff, op="max")
        A, B = B, A
        step += 1
        if me == 0 and step % 20 == 0:
            print(f"step {step:4d}  residual {residual:.5f}")
        if residual < 1e-3 or step >= 200:
            break

    total = repro.collectives.reduce(
        float(A.interior_view().sum()), op="sum", root=0
    )
    if me == 0:
        print(f"converged after {step} steps; total heat = {total:.2f}")
        # a coarse ASCII rendering of the temperature field
        full = A.to_numpy()
        chars = " .:-=+*#%@"
        down = full[:: GRID // 16, :: GRID // 16]
        scale = down.max() or 1.0
        for row in down:
            print("".join(chars[int(v / scale * (len(chars) - 1))]
                          for v in row))
    repro.barrier()


if __name__ == "__main__":
    repro.spmd(main, ranks=4)
