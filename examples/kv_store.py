#!/usr/bin/env python
"""A sharded key-value store served from every rank.

The ROADMAP's north-star workload in miniature: a product catalog
sharded across 4 ranks with :class:`repro.DistHashMap`, handles
published through a :class:`repro.Directory`, a read-heavy access mix
against a hot set (the read-through cache does the heavy lifting), and
occasional restocks via exactly-once ``update()``.

    python examples/kv_store.py
"""

import numpy as np

import repro

RANKS = 4
CATALOG = 512
READS_PER_RANK = 400
HOT = 32            # the "front page" items everyone keeps reading
RESTOCK_EVERY = 80


def restock(item, n):
    """Read-modify-write applied atomically at the item's owner."""
    return {**item, "stock": item["stock"] + n}


def main():
    me = repro.myrank()
    store = repro.DistHashMap(cache=True)

    # Publish each rank's shard handle (rank, map id) in a directory —
    # the paper's §III-E idiom — and fetch all slots with one round of
    # concurrent lookups.
    directory = repro.Directory()
    directory.publish_and_sync(("kv-shard", me, store.map_id))
    shards = directory.lookup_all()
    assert all(s[0] == "kv-shard" for s in shards)

    # Rank 0 loads the catalog in one batched multi_put (one AM per
    # owning rank), then everyone serves a read-heavy mix.
    keys = [f"item:{i:04d}" for i in range(CATALOG)]
    if me == 0:
        store.multi_put({
            k: {"name": f"product {i}", "stock": 100}
            for i, k in enumerate(keys)
        })
    repro.barrier()

    rng = np.random.default_rng(1234 + me)
    for op in range(READS_PER_RANK):
        if op % RESTOCK_EVERY == RESTOCK_EVERY - 1:
            k = keys[int(rng.integers(CATALOG))]
            item = store.update(k, restock, 5)
            assert item["stock"] > 100
        elif rng.random() < 0.9:                      # hot-set read
            k = keys[int(rng.integers(HOT))]
            store.get(k)
        else:                                          # long-tail read
            k = keys[int(rng.integers(CATALOG))]
            store.get(k)

    # One batched scan of the whole front page.
    front = store.multi_get(keys[:HOT])
    assert all(v["name"].startswith("product") for v in front)

    repro.barrier()
    print(f"rank {me}: shard={store.local_size()} items, "
          f"cache hit rate {store.cache_hit_rate:.1%}")
    if me == 0:
        print(f"catalog size {store.size()} (expected {CATALOG})")
        assert store.size() == CATALOG
    return store.cache_hit_rate


if __name__ == "__main__":
    rates = repro.spmd(main, ranks=RANKS)
    print(f"mean cache hit rate: {sum(rates) / len(rates):.1%}")
