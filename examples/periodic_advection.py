#!/usr/bin/env python
"""Periodic advection on a distributed grid.

Transports a Gaussian pulse around a torus-topology domain with an
upwind scheme — exercising the periodic ghost exchange of
:class:`~repro.arrays.distarray.DistNdArray` (wrap-around halos).
After exactly one full traversal the pulse returns to its starting
cell, which the script verifies.

    python examples/periodic_advection.py
"""

import numpy as np

import repro
from repro.arrays import DistNdArray, RectDomain

N = 32          # grid points per side
C = 1.0         # advection speed (cells per step, x direction)


def main():
    me = repro.myrank()
    dom = RectDomain((0, 0), (N, N))
    A = DistNdArray(np.float64, dom, ghost=1, periodic=True)
    B = DistNdArray(np.float64, dom, ghost=1, periodic=True,
                    pgrid=A.pgrid)

    # initial condition: a Gaussian bump (same formula on every rank)
    xs = np.arange(N)
    gx, gy = np.meshgrid(xs, xs, indexing="ij")
    pulse = np.exp(-((gx - N // 4) ** 2 + (gy - N // 2) ** 2) / 8.0)
    sl = tuple(
        slice(A.my_interior.lb[d], A.my_interior.ub[d]) for d in range(2)
    )
    A.interior_view()[:] = pulse[sl]
    repro.barrier()

    start_total = repro.collectives.allreduce(
        float(A.interior_view().sum())
    )

    # integer-speed upwind transport: u[i] <- u[i - C] each step; after
    # N steps the field must return exactly to its start (periodic).
    for step in range(N):
        A.ghost_exchange(faces_only=True)
        a = A.local.local_view()
        B.interior_view()[:] = a[:-2, 1:-1]  # shift +1 in x from ghosts
        A, B = B, A
        if me == 0 and step % 8 == 7:
            print(f"step {step + 1:3d}: pulse transported "
                  f"{step + 1} cells around the torus")

    end_total = repro.collectives.allreduce(float(A.interior_view().sum()))
    final = A.to_numpy()
    if me == 0:
        assert abs(end_total - start_total) < 1e-9, "mass lost!"
        assert np.allclose(final, pulse, atol=1e-12), \
            "pulse did not return to its start after a full loop"
        print(f"mass conserved ({end_total:.6f}) and pulse returned "
              f"exactly after {N} steps — periodic wrap verified")
    repro.barrier()


if __name__ == "__main__":
    repro.spmd(main, ranks=4)
