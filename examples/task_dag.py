#!/usr/bin/env python
"""The paper's Listing 1 / Fig. 1: building a task-dependency graph
with events, async and async_after.

::

    t1   t2        (signal e1)
      \\  /
       e1
       |
       t3   t4     (t3 after e1; both signal e2)
        \\  /
         e2
        /  \\
      t5    t6     (after e2; signal e3)
        \\  /
         e3
          |
       e3.wait()

    python examples/task_dag.py
"""

import threading
import time

import repro


def task(name: str, millis: int) -> str:
    time.sleep(millis / 1000.0)
    print(f"  [{name}] ran on rank {repro.myrank()}")
    return name


def main():
    me, n = repro.myrank(), repro.ranks()
    if me == 0:
        completion, lock = [], threading.Lock()

        def record(name):
            def cb(_fut):
                with lock:
                    completion.append(name)
            return cb

        e1, e2, e3 = repro.Event(), repro.Event(), repro.Event()
        p = [k % n for k in (1, 2, 3, 4, 5, 6)]
        repro.async_(p[0], signal=e1)(task, "t1", 20).add_callback(record("t1"))
        repro.async_(p[1], signal=e1)(task, "t2", 10).add_callback(record("t2"))
        repro.async_after(p[2], after=e1, signal=e2)(task, "t3", 10) \
            .add_callback(record("t3"))
        repro.async_(p[3], signal=e2)(task, "t4", 5).add_callback(record("t4"))
        repro.async_after(p[4], after=e2, signal=e3)(task, "t5", 5) \
            .add_callback(record("t5"))
        repro.async_after(p[5], after=e2, signal=e3)(task, "t6", 5) \
            .add_callback(record("t6"))
        print("waiting on e3 ...")
        e3.wait()
        print("completion order:", " -> ".join(completion))
    repro.barrier()


if __name__ == "__main__":
    repro.spmd(main, ranks=4)
