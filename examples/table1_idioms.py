#!/usr/bin/env python
"""Paper Table I, live: every UPC idiom and its UPC++ equivalent,
executed side by side on the same runtime.

    python examples/table1_idioms.py
"""

import numpy as np

import repro
from repro.compat import upc


def show(row, upc_spelling, upcxx_spelling, same):
    if repro.myrank() == 0:
        mark = "==" if same else "!="
        print(f"  {row:<22} {upc_spelling:<28} {mark} {upcxx_spelling}")


def main():
    me = repro.myrank()
    if me == 0:
        print("Table I — UPC idioms and their UPC++ equivalents, executed:")

    # execution units / id
    show("execution units", f"THREADS = {upc.THREADS()}",
         f"ranks() = {repro.ranks()}", upc.THREADS() == repro.ranks())
    show("my id", f"MYTHREAD = {upc.MYTHREAD()}",
         f"myrank() = {repro.myrank()}", upc.MYTHREAD() == repro.myrank())

    # shared variable
    v = repro.SharedVar(np.int64, init=5)
    show("shared variable", "shared int v", "shared_var<int> v",
         v.value == 5)

    # shared array with matching layout
    a_upc = upc.shared_array(np.int64, 8, block=2)
    a_xx = repro.SharedArray(np.int64, size=8, block=2)
    repro.barrier()
    same_layout = all(a_upc.where(i) == a_xx.where(i) for i in range(8))
    show("shared array", "shared [2] int A[8]",
         "shared_array<int,2> A(8)", same_layout)

    # global pointer
    p = a_xx.gptr(3)
    show("global pointer", "shared int *p",
         f"global_ptr<int> (rank {p.where()})", True)

    # allocation
    ptr = upc.upc_alloc(64)
    ptr2 = repro.allocate(me, 64, np.uint8)
    show("allocation", "upc_alloc(64)", "allocate<char>(me, 64)",
         ptr.where() == ptr2.where())
    upc.upc_free(ptr)
    repro.deallocate(ptr2)

    # data movement
    if me == 0:
        src = repro.allocate(0, 16, np.uint8)
        dst = repro.allocate(0, 16, np.uint8)
        src.put(np.arange(16, dtype=np.uint8))
        upc.upc_memcpy(dst, src, 16)
        moved = bool(np.array_equal(dst.get(16), src.get(16)))
    else:
        moved = True
    show("data movement", "upc_memcpy(dst, src, n)",
         "copy(src, dst, n)", moved)

    # synchronization
    upc.upc_barrier()
    repro.barrier()
    show("synchronization", "upc_barrier / upc_fence",
         "barrier() / fence()", True)

    # forall
    n = 12
    sa = repro.SharedArray(np.int64, size=n)
    repro.barrier()
    mine_upc = list(upc.upc_forall(n, affinity=sa))
    mine_xx = [i for i in range(n) if sa.where(i) == me]
    show("forall loop", "upc_forall(...; &A[i])",
         "for + affinity conditional", mine_upc == mine_xx)
    repro.barrier()


if __name__ == "__main__":
    repro.spmd(main, ranks=4)
