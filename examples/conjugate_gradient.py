#!/usr/bin/env python
"""Distributed conjugate-gradient solve of a 2-D Poisson problem.

The kind of "complex scientific application" the paper's introduction
motivates: a Krylov solver where the matrix-free operator is a
distributed 5-point stencil (ghost exchange per application) and the
dot products are allreduces.

Solves  -∇²u = f  on a unit square, Dirichlet u=0, f = point sources,
and checks the residual against a serial NumPy CG.

    python examples/conjugate_gradient.py
"""

import numpy as np

import repro
from repro.arrays import DistNdArray, RectDomain

N = 48          # grid points per side
TOL = 1e-8


def apply_A(x: DistNdArray, out: DistNdArray) -> None:
    """out <- A x with A the 5-point negative Laplacian (h=1)."""
    x.ghost_exchange(faces_only=True)
    a = x.local.local_view()
    o = out.local.local_view()
    o[1:-1, 1:-1] = (
        4.0 * a[1:-1, 1:-1]
        - a[1:-1, 2:] - a[1:-1, :-2] - a[2:, 1:-1] - a[:-2, 1:-1]
    )


def dot(a: DistNdArray, b: DistNdArray) -> float:
    local = float(np.sum(a.interior_view() * b.interior_view()))
    return repro.collectives.allreduce(local)


def main():
    me = repro.myrank()
    dom = RectDomain((0, 0), (N, N))
    x = DistNdArray(np.float64, dom, ghost=1)
    r = DistNdArray(np.float64, dom, ghost=1, pgrid=x.pgrid)
    p = DistNdArray(np.float64, dom, ghost=1, pgrid=x.pgrid)
    Ap = DistNdArray(np.float64, dom, ghost=1, pgrid=x.pgrid)

    # rhs: two point sources (owner writes)
    for pt, val in (((N // 3, N // 3), 1.0),
                    ((2 * N // 3, 2 * N // 3), -0.5)):
        if r.owner_of(pt) == me:
            r[pt] = val
    repro.barrier()
    p.interior_view()[:] = r.interior_view()

    rs_old = dot(r, r)
    it = 0
    while rs_old > TOL ** 2 and it < 4 * N:
        apply_A(p, Ap)
        alpha = rs_old / dot(p, Ap)
        x.interior_view()[:] += alpha * p.interior_view()
        r.interior_view()[:] -= alpha * Ap.interior_view()
        rs_new = dot(r, r)
        p.interior_view()[:] = (
            r.interior_view() + (rs_new / rs_old) * p.interior_view()
        )
        rs_old = rs_new
        it += 1
        if me == 0 and it % 20 == 0:
            print(f"iter {it:4d}  ||r|| = {np.sqrt(rs_old):.3e}")

    if me == 0:
        print(f"CG converged in {it} iterations, "
              f"||r|| = {np.sqrt(rs_old):.3e}")

    # verification vs serial CG on rank 0
    sol = x.to_numpy()
    if me == 0:
        b = np.zeros((N, N))
        b[N // 3, N // 3] = 1.0
        b[2 * N // 3, 2 * N // 3] = -0.5

        def A_serial(v):
            o = np.zeros_like(v)
            o[1:-1, 1:-1] = (4 * v[1:-1, 1:-1] - v[1:-1, 2:]
                             - v[1:-1, :-2] - v[2:, 1:-1] - v[:-2, 1:-1])
            return o

        resid = np.linalg.norm((A_serial(sol) - b)[1:-1, 1:-1])
        print(f"serial-checked residual: {resid:.3e}")
        assert resid < 1e-6
    repro.barrier()


if __name__ == "__main__":
    repro.spmd(main, ranks=4, timeout=300)
