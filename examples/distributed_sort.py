#!/usr/bin/env python
"""Distributed sample sort (the paper's §V-C case study, demo scale).

Shows the full pipeline — key generation into a shared array, splitter
sampling via fine-grained global reads, one-sided redistribution into
remote landing buffers, local sort — and verifies the global order.

    python examples/distributed_sort.py
"""

import numpy as np

import repro
from repro.bench.sample_sort import sample_sort


def main():
    me = repro.myrank()
    result = sample_sort(keys_per_rank=8192, variant="upcxx")
    if me == 0:
        print(f"sorted {result.total_keys} keys in "
              f"{result.seconds * 1e3:.1f} ms "
              f"({result.tb_per_min:.2e} TB/min at this toy scale)")
        print(f"verified: {result.verified}; "
              f"worst-rank load {result.max_skew:.2f}x average")
    repro.barrier()
    return result.verified


if __name__ == "__main__":
    ok = repro.spmd(main, ranks=4)
    assert all(ok)
