#!/usr/bin/env python
"""Quickstart: the UPC++ programming model in five minutes.

Runs an SPMD region on 4 ranks and tours the core constructs of the
paper — shared objects, global pointers, one-sided copies, asyncs and
finish, all inside one OS process (threads-as-ranks SMP conduit).

    python examples/quickstart.py
"""

import numpy as np

import repro


def main():
    me = repro.myrank()
    n = repro.ranks()

    # --- shared scalar (paper §III-A): lives on rank 0, visible to all
    s = repro.SharedVar(np.int64, init=0)
    if me == 0:
        s.value = 42
    repro.barrier()
    assert s.value == 42

    # --- shared array: block-cyclic distribution, one-sided access
    sa = repro.SharedArray(np.int64, size=4 * n, block=2)
    for i in range(len(sa)):
        if sa.where(i) == me:       # write my elements
            sa[i] = i * i
    repro.barrier()
    if me == 0:
        print("shared array:", [int(sa[i]) for i in range(len(sa))])

    # --- global pointers and dynamic *remote* allocation (§III-C):
    # rank 0 builds a buffer in rank 1's memory and fills it.
    if me == 0 and n > 1:
        buf = repro.allocate(1, 8, np.float64)   # memory on rank 1!
        buf.put(np.linspace(0, 1, 8))
        print(f"remote buffer on rank {buf.where()}:", buf.get(8))
        repro.deallocate(buf)

    # --- bulk one-sided copy with completion events (§III-D)
    src = repro.allocate(me, 1024, np.uint8)
    dst = repro.allocate((me + 1) % n, 1024, np.uint8)
    done = repro.Event()
    repro.async_copy(src, dst, 1024, event=done)
    done.wait()

    # --- async remote function invocation + finish (§III-G)
    if me == 0:
        with repro.finish():
            futures = [
                repro.async_(r)(lambda x: x * x, r) for r in range(n)
            ]
        print("squares via asyncs:", [f.get() for f in futures])

    repro.barrier()
    return me


if __name__ == "__main__":
    results = repro.spmd(main, ranks=4)
    print("per-rank results:", results)
