#!/usr/bin/env python
"""Distributed ray tracing (the paper's Embree case study, §V-D).

Tiles are dealt to ranks in a static cyclic distribution; a final
sum-reduction combines the partial images; rank 0 writes a PPM file.

    python examples/render_scene.py [out.ppm]
"""

import sys

import numpy as np

import repro
from repro.bench.raytrace import Scene, render_tile

IMAGE, TILE, SPP = 128, 16, 4


def main(path: str):
    me, n = repro.myrank(), repro.ranks()
    scene = Scene()  # geometry replicated on every rank (paper §V-D)
    nt = IMAGE // TILE
    tiles = [(ty, tx) for ty in range(nt) for tx in range(nt)]

    partial = np.zeros((IMAGE, IMAGE, 3))
    for ty, tx in tiles[me::n]:  # static cyclic tile distribution
        partial[ty * TILE:(ty + 1) * TILE, tx * TILE:(tx + 1) * TILE] = \
            render_tile(scene, IMAGE, TILE, ty, tx, SPP)
    img = repro.collectives.reduce(partial, op="sum", root=0)

    if me == 0:
        data = (np.clip(img, 0, 1) * 255).astype(np.uint8)
        with open(path, "wb") as f:
            f.write(b"P6\n%d %d\n255\n" % (IMAGE, IMAGE))
            f.write(data.tobytes())
        print(f"wrote {path} ({IMAGE}x{IMAGE}, {SPP} spp, {n} ranks, "
              f"{len(tiles[me::n])} tiles on rank 0)")
    repro.barrier()


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "scene.ppm"
    repro.spmd(main, ranks=4, args=(out,), timeout=300)
