"""Deterministic random-number helpers.

The paper's Sample Sort generates keys with the Mersenne Twister; the
Random Access benchmark uses the HPCC polynomial sequence.  Both need
per-rank *deterministic* streams so that distributed runs can be verified
against serial replays.
"""

from __future__ import annotations

import numpy as np

_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """One step of the splitmix64 generator (used to derive seeds)."""
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a uint64 array.

    Bit-exact with the scalar version (wrap-around multiplies), so the
    batched GUPS kernel indexes the same table slots as the per-element
    path."""
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z + np.uint64(_SPLITMIX_GAMMA)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def mt_seed_for_rank(base_seed: int, rank: int) -> np.random.Generator:
    """A per-rank Mersenne-Twister-family generator.

    Seeds are decorrelated through splitmix64 so neighbouring ranks do not
    produce overlapping streams.
    """
    seed = splitmix64((base_seed << 20) ^ rank)
    return np.random.Generator(np.random.MT19937(seed))
