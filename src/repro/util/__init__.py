"""Small shared utilities (timers, RNG, formatting)."""

from repro.util.timer import Timer
from repro.util.rng import mt_seed_for_rank, splitmix64

__all__ = ["Timer", "mt_seed_for_rank", "splitmix64"]
