"""Wall-clock timing helper used by the calibration and bench code."""

from __future__ import annotations

import time


class Timer:
    """A context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start

    def lap(self) -> float:
        """Seconds since ``__enter__`` without stopping the timer."""
        return time.perf_counter() - self.start
