"""PyPGAS — a Python reproduction of *UPC++: A PGAS Extension for C++*
(Zheng, Kamil, Driscoll, Shan, Yelick — IPDPS 2014).

The public API mirrors the paper's ``upcxx`` namespace:

.. code-block:: python

    import numpy as np
    import repro

    def main():
        sa = repro.SharedArray(np.int64, size=100)   # shared_array<int64>
        if repro.myrank() == 0:
            sa[0] = 1                                # one-sided put
        repro.barrier()
        with repro.finish():
            repro.async_(1)(print, "hello from an async on rank 1")
        return sa[0]                                 # one-sided get

    repro.spmd(main, ranks=4)

Sub-packages: :mod:`repro.core` (the UPC++ model), :mod:`repro.arrays`
(Titanium-style multidimensional arrays), :mod:`repro.containers`
(distributed data structures), :mod:`repro.gasnet` (the
communication substrate), :mod:`repro.compat` (UPC and MPI veneers),
:mod:`repro.sim` (machine performance models), :mod:`repro.bench` (the
paper's five case studies).
"""

from repro.core import (
    CopyHandle,
    Directory,
    DistWorkQueue,
    Event,
    Future,
    GlobalLock,
    GlobalPtr,
    MYTHREAD,
    SharedArray,
    SharedVar,
    THREADS,
    Team,
    advance,
    allocate,
    async_,
    async_after,
    async_copy,
    async_copy_fence,
    async_wait,
    barrier,
    collectives,
    copy,
    current_world,
    dead_ranks,
    deallocate,
    die,
    escalate,
    fence,
    finish,
    live_ranks,
    myrank,
    null_ptr,
    ranks,
    spmd,
)
from repro.containers import DistHashMap, DistQueue
from repro.errors import (
    BadPointer,
    CommTimeout,
    DomainError,
    NotInSpmdRegion,
    PeerFailure,
    PgasError,
    RankDead,
    SegmentOutOfMemory,
    SerializationError,
    TransientCommError,
)

__version__ = "0.1.0"

__all__ = [
    "spmd", "myrank", "ranks", "MYTHREAD", "THREADS",
    "barrier", "fence", "advance", "current_world",
    "live_ranks", "dead_ranks",
    "GlobalPtr", "null_ptr", "allocate", "deallocate", "escalate",
    "SharedVar", "SharedArray", "Directory",
    "copy", "async_copy", "async_copy_fence", "CopyHandle",
    "Event", "Future", "async_", "async_after", "async_wait", "finish",
    "Team", "GlobalLock", "collectives", "DistWorkQueue",
    "DistHashMap", "DistQueue",
    "PgasError", "NotInSpmdRegion", "PeerFailure", "SegmentOutOfMemory",
    "BadPointer", "CommTimeout", "SerializationError", "DomainError",
    "TransientCommError", "RankDead", "die",
    "__version__",
]
