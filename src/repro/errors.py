"""Exception hierarchy for the PyPGAS runtime.

Every error raised by :mod:`repro` derives from :class:`PgasError` so that
applications can catch runtime failures without masking unrelated bugs.
"""

from __future__ import annotations


class PgasError(Exception):
    """Base class for all PyPGAS errors."""


class NotInSpmdRegion(PgasError):
    """A PGAS operation was attempted outside of :func:`repro.spmd`.

    Almost every API in :mod:`repro.core` needs a *rank context* (the
    calling thread must be one of the SPMD ranks).  This error means the
    call happened from the launching thread or some unrelated thread.
    """


class PeerFailure(PgasError):
    """Another rank raised an exception; this rank was unblocked.

    When any rank of an SPMD world fails, blocking operations on all other
    ranks raise :class:`PeerFailure` instead of deadlocking.  The original
    exception is re-raised by :func:`repro.spmd` on the launching thread.
    """

    def __init__(self, failed_rank: int, original: BaseException):
        super().__init__(
            f"rank {failed_rank} failed with "
            f"{type(original).__name__}: {original}"
        )
        self.failed_rank = failed_rank
        self.original = original

    def __reduce__(self):
        # The default BaseException reduction replays args — which here
        # is the formatted message, not (rank, original) — so spell out
        # the constructor call (proc backend ships these cross-process).
        return (PeerFailure, (self.failed_rank, self.original))


class SegmentOutOfMemory(PgasError):
    """The per-rank global segment could not satisfy an allocation."""


class BadPointer(PgasError):
    """Invalid use of a global pointer (null deref, bad cast, double free,
    dereferencing remote memory through a local cast, ...)."""


class CommTimeout(PgasError):
    """A blocking communication operation exceeded its deadline."""


class TransientCommError(PgasError):
    """A conduit operation failed transiently (lost packet, NIC hiccup,
    unreachable peer).  Retryable: the reliability layer
    (:mod:`repro.gasnet.reliability`) retries these with backoff; without
    that layer they surface to the caller."""


class RankDead(PgasError):
    """A rank was declared dead by a failure detector (missed heartbeats
    or a simulated crash).  Peers blocked on the dead rank observe it as
    the ``original`` of a :class:`PeerFailure`."""


class SerializationError(PgasError):
    """Arguments of a remote task could not be serialized."""


class DomainError(PgasError):
    """Malformed point/domain arithmetic in the multidimensional array
    library (mismatched arity, non-positive stride, ...)."""
