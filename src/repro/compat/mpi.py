"""A two-sided message-passing layer with an mpi4py-like surface.

Built entirely on the active-message conduit, it provides what the
LULESH port needs: tagged point-to-point sends/receives (blocking and
non-blocking, with wildcard source/tag), ``sendrecv``, request
completion, and the collectives (delegated to
:mod:`repro.core.collectives`).

Following the mpi4py idiom the guides recommend, lowercase methods move
pickled Python objects; uppercase-named fast paths move NumPy arrays
by buffer (``Send``/``Recv``) — both over the same transport.

Semantics notes (documented divergences from full MPI):

* sends are *eager/buffered*: ``send`` never blocks waiting for a
  matching receive (like MPI's buffered mode; fine for proxy apps);
* message order between a fixed (source, dest) pair is preserved,
  matching MPI's non-overtaking rule.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import Any, Optional

import numpy as np

from repro.core import collectives
from repro.core.world import RankState, current
from repro.errors import PgasError
from repro.gasnet.am import am_handler

ANY_SOURCE = -1
ANY_TAG = -1


def _state(ctx: RankState) -> dict:
    st = ctx.scratch.get("mpi")
    if st is None:
        st = {"unexpected": deque(), "posted": []}
        ctx.scratch["mpi"] = st
    return st


class Request:
    """Completion handle for a non-blocking operation."""

    __slots__ = ("_done", "_data", "_source", "_tag", "_decode")

    def __init__(self, done: bool = False, data: Any = None,
                 source: int = -1, tag: int = -1, decode=None):
        self._done = done
        self._data = data
        self._source = source
        self._tag = tag
        self._decode = decode

    def _complete(self, data, source: int, tag: int) -> None:
        self._data = data
        self._source = source
        self._tag = tag
        self._done = True

    def test(self) -> bool:
        current().advance()
        return self._done

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; returns the received object (recv
        requests) or None (send requests)."""
        current().wait_until(lambda: self._done, what="mpi request",
                             timeout=timeout)
        if self._decode is not None:
            return self._decode(self._data)
        return self._data

    @property
    def source(self) -> int:
        return self._source

    @property
    def tag(self) -> int:
        return self._tag


def waitall(requests: list[Request]) -> list:
    """Complete every request; returns their values in order."""
    return [r.wait() for r in requests]


@am_handler("mpi_msg")
def _mpi_msg_handler(ctx: RankState, am) -> None:
    tag = am.args[0]
    st = _state(ctx)
    for i, (src_want, tag_want, req) in enumerate(st["posted"]):
        if (src_want in (ANY_SOURCE, am.src_rank)
                and tag_want in (ANY_TAG, tag)):
            del st["posted"][i]
            req._complete(am.payload, am.src_rank, tag)
            return
    st["unexpected"].append((am.src_rank, tag, am.payload))


def _match_unexpected(ctx: RankState, source: int, tag: int):
    st = _state(ctx)
    q = st["unexpected"]
    for i, (src, t, payload) in enumerate(q):
        if source in (ANY_SOURCE, src) and tag in (ANY_TAG, t):
            del q[i]
            return (src, t, payload)
    return None


def _post_recv(source: int, tag: int, decode) -> Request:
    ctx = current()
    hit = _match_unexpected(ctx, source, tag)
    if hit is not None:
        src, t, payload = hit
        return Request(done=True, data=payload, source=src, tag=t,
                       decode=decode)
    req = Request(decode=decode)
    _state(ctx)["posted"].append((source, tag, req))
    return req


# ---------------------------------------------------------------------------
# object (pickle) interface — lowercase, mpi4py style
# ---------------------------------------------------------------------------

def send(obj: Any, dest: int, tag: int = 0) -> None:
    """Eager object send."""
    ctx = current()
    ctx.send_am(dest, "mpi_msg", args=(tag,),
                payload=pickle.dumps(obj, protocol=-1))


def isend(obj: Any, dest: int, tag: int = 0) -> Request:
    """Non-blocking object send (eager: completes immediately)."""
    send(obj, dest, tag)
    return Request(done=True)


def irecv(source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
    """Non-blocking object receive; ``req.wait()`` returns the object."""
    return _post_recv(source, tag, decode=_decode_obj)


def recv(source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
    """Blocking object receive."""
    return irecv(source, tag).wait()


def sendrecv(obj: Any, dest: int, source: int = ANY_SOURCE,
             sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
    """Combined send+receive (deadlock-free shift pattern)."""
    req = irecv(source, recvtag)
    send(obj, dest, sendtag)
    return req.wait()


def iprobe(source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
    """Non-blocking probe: is a matching message already here?

    Drives progress once (so freshly delivered AMs are visible) and
    checks the unexpected queue without consuming anything."""
    ctx = current()
    ctx.advance()
    st = _state(ctx)
    return any(
        source in (ANY_SOURCE, src) and tag in (ANY_TAG, t)
        for src, t, _payload in st["unexpected"]
    )


def probe(source: int = ANY_SOURCE, tag: int = ANY_TAG,
          timeout: float | None = None) -> None:
    """Blocking probe: wait until a matching message is available."""
    ctx = current()
    ctx.wait_until(
        lambda: any(
            source in (ANY_SOURCE, src) and tag in (ANY_TAG, t)
            for src, t, _p in _state(ctx)["unexpected"]
        ),
        what="mpi probe", timeout=timeout,
    )


def _decode_obj(payload) -> Any:
    return pickle.loads(payload)


# ---------------------------------------------------------------------------
# buffer (NumPy) interface — uppercase, mpi4py style
# ---------------------------------------------------------------------------

def Send(array: np.ndarray, dest: int, tag: int = 0) -> None:
    """Buffer send of a contiguous NumPy array."""
    ctx = current()
    arr = np.ascontiguousarray(array)
    ctx.send_am(dest, "mpi_msg", args=(tag,), payload=arr.copy())


def Isend(array: np.ndarray, dest: int, tag: int = 0) -> Request:
    Send(array, dest, tag)
    return Request(done=True)


def Irecv(buf: np.ndarray, source: int = ANY_SOURCE,
          tag: int = ANY_TAG) -> Request:
    """Non-blocking buffer receive into ``buf`` (completed at wait)."""
    buf = np.asarray(buf)

    def decode(payload):
        data = np.asarray(payload)
        flat = buf.reshape(-1)
        flat[: data.size] = data.view(buf.dtype).reshape(-1)
        return buf

    return _post_recv(source, tag, decode=decode)


def Recv(buf: np.ndarray, source: int = ANY_SOURCE,
         tag: int = ANY_TAG) -> np.ndarray:
    return Irecv(buf, source, tag).wait()


# ---------------------------------------------------------------------------
# communicator facade
# ---------------------------------------------------------------------------

class Comm:
    """An MPI_COMM_WORLD facade — handy for porting mpi4py-shaped code."""

    def Get_rank(self) -> int:
        return current().rank

    def Get_size(self) -> int:
        return current().world.n_ranks

    # object layer
    send = staticmethod(send)
    recv = staticmethod(recv)
    isend = staticmethod(isend)
    irecv = staticmethod(irecv)
    sendrecv = staticmethod(sendrecv)
    # buffer layer
    Send = staticmethod(Send)
    Recv = staticmethod(Recv)
    Isend = staticmethod(Isend)
    Irecv = staticmethod(Irecv)

    # collectives (delegated)
    @staticmethod
    def barrier() -> None:
        collectives.barrier()

    Barrier = barrier

    @staticmethod
    def bcast(obj: Any = None, root: int = 0) -> Any:
        return collectives.bcast(obj, root=root)

    @staticmethod
    def reduce(value: Any, op="sum", root: int = 0) -> Any:
        return collectives.reduce(value, op=op, root=root)

    @staticmethod
    def allreduce(value: Any, op="sum") -> Any:
        return collectives.allreduce(value, op=op)

    @staticmethod
    def gather(value: Any, root: int = 0):
        return collectives.gather(value, root=root)

    @staticmethod
    def allgather(value: Any):
        return collectives.allgather(value)

    @staticmethod
    def scatter(values=None, root: int = 0):
        return collectives.scatter(values, root=root)

    @staticmethod
    def alltoall(values):
        return collectives.alltoall(values)


#: The world communicator (mpi4py spelling).
COMM_WORLD = Comm()
