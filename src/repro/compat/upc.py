"""A UPC-flavoured veneer over the PGAS runtime (paper Table I).

This module exists for two reasons.  First, it demonstrates the paper's
porting story: every UPC idiom in Table I has a direct equivalent here,
so UPC-shaped code moves over with minimal syntactic change.  Second,
the UPC *variants* of the Random Access and Sample Sort benchmarks are
written against this API, giving the baseline programming model its own
code path (the performance gap between the paths is what the machine
model's per-model software overheads represent).

=============================  =====================================
UPC                            repro.compat.upc
=============================  =====================================
``THREADS`` / ``MYTHREAD``     :func:`THREADS` / :func:`MYTHREAD`
``shared [BS] T A[n]``         :func:`shared_array` (T, n, BS)
``shared T *p`` (with phase)   :class:`UpcSharedPtr`
``upc_alloc`` /``upc_all_alloc``  :func:`upc_alloc` / :func:`upc_all_alloc`
``upc_memcpy/get/put``         :func:`upc_memcpy` etc.
``upc_barrier`` / ``upc_fence``  :func:`upc_barrier` / :func:`upc_fence`
``upc_forall(...; aff)``       :func:`upc_forall`
``upc_lock_t``                 :func:`upc_global_lock_alloc`
=============================  =====================================
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from repro.core.api import MYTHREAD, THREADS, barrier, fence
from repro.core.allocator import allocate
from repro.core.copy import copy as _copy
from repro.core.global_ptr import GlobalPtr
from repro.core.lock import GlobalLock
from repro.core.shared_array import SharedArray
from repro.core.world import current
from repro.errors import BadPointer

__all__ = [
    "THREADS", "MYTHREAD", "upc_barrier", "upc_fence",
    "shared_array", "UpcSharedPtr",
    "upc_alloc", "upc_all_alloc", "upc_free",
    "upc_memcpy", "upc_memget", "upc_memput",
    "upc_forall", "upc_global_lock_alloc",
]

upc_barrier = barrier
upc_fence = fence


def shared_array(dtype, size: int, block: int = 1) -> SharedArray:
    """``shared [block] dtype A[size]`` — collective declaration."""
    return SharedArray(dtype, size=size, block=block)


class UpcSharedPtr:
    """A UPC pointer-to-shared **with phase**.

    This is the semantics UPC++ deliberately dropped (paper §III-B);
    it is provided here so the difference is demonstrable: incrementing
    a :class:`UpcSharedPtr` walks the *global* (block-cyclic) element
    order — hopping between threads — whereas ``GlobalPtr + 1`` walks
    the owner's local memory.
    """

    __slots__ = ("array", "index")

    def __init__(self, array: SharedArray, index: int = 0):
        self.array = array
        self.index = int(index)

    # UPC pointer components
    @property
    def thread(self) -> int:
        return self.array.where(self.index)

    @property
    def phase(self) -> int:
        return self.index % self.array.block

    def __add__(self, n: int) -> "UpcSharedPtr":
        return UpcSharedPtr(self.array, self.index + int(n))

    def __sub__(self, other: Union[int, "UpcSharedPtr"]):
        if isinstance(other, UpcSharedPtr):
            if other.array is not self.array:
                raise BadPointer("pointer difference across shared arrays")
            return self.index - other.index
        return UpcSharedPtr(self.array, self.index - int(other))

    def deref(self):
        """``*p`` read."""
        return self.array[self.index]

    def assign(self, value) -> None:
        """``*p = value`` write."""
        self.array[self.index] = value

    def __getitem__(self, i: int):
        return self.array[self.index + i]

    def __setitem__(self, i: int, value) -> None:
        self.array[self.index + i] = value

    def to_global_ptr(self) -> GlobalPtr:
        """Cast to the phase-less UPC++ pointer (drops the phase)."""
        return self.array.gptr(self.index)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"UpcSharedPtr(idx={self.index}, thread={self.thread}, "
            f"phase={self.phase})"
        )


def upc_alloc(nbytes: int) -> GlobalPtr:
    """Allocate shared memory with affinity to the caller."""
    return allocate(current().rank, nbytes, np.uint8)


def upc_all_alloc(nblocks: int, nbytes: int) -> SharedArray:
    """Collective allocation of ``nblocks`` blocks of ``nbytes`` (as in
    UPC, returns block-cyclically distributed storage)."""
    return SharedArray(np.uint8, size=nblocks * nbytes, block=nbytes)


def upc_free(ptr: GlobalPtr) -> None:
    from repro.core.allocator import deallocate

    deallocate(ptr)


def upc_memcpy(dst: GlobalPtr, src: GlobalPtr, nbytes: int) -> None:
    """shared-to-shared byte copy (UPC argument order: dst first)."""
    _copy(src.cast(np.uint8), dst.cast(np.uint8), nbytes)


def upc_memget(dst: np.ndarray, src: GlobalPtr, nbytes: int) -> None:
    """shared-to-private copy."""
    data = src.cast(np.uint8).get(nbytes)
    dst.view(np.uint8).reshape(-1)[:nbytes] = data


def upc_memput(dst: GlobalPtr, src: np.ndarray, nbytes: int) -> None:
    """private-to-shared copy."""
    raw = np.ascontiguousarray(src).view(np.uint8).reshape(-1)[:nbytes]
    dst.cast(np.uint8).put(raw)


def upc_forall(n: int, affinity=None) -> Iterator[int]:
    """``upc_forall (i = 0; i < n; i++; affinity)`` as a generator.

    ``affinity`` selects which iterations this thread executes:

    * ``None`` — every thread runs every iteration (like a plain for);
    * a constant ``int`` — only thread ``affinity % THREADS`` runs
      (UPC's constant integer affinity);
    * an ``int``-returning callable ``f(i)`` — run when
      ``f(i) % THREADS == MYTHREAD`` (UPC's integer affinity
      expression);
    * a :class:`SharedArray` — run when element ``i`` has affinity to
      this thread (UPC's pointer-to-shared affinity).

    The paper's Table I shows UPC++ spelling this as a plain loop with
    an affinity conditional — which is exactly what this generator does.
    """
    me = MYTHREAD()
    nt = THREADS()
    if affinity is None:
        yield from range(n)
    elif isinstance(affinity, SharedArray):
        for i in range(n):
            if affinity.where(i) == me:
                yield i
    elif isinstance(affinity, int):
        if affinity % nt == me:
            yield from range(n)
    elif callable(affinity):
        for i in range(n):
            if affinity(i) % nt == me:
                yield i
    else:
        raise TypeError(f"unsupported affinity {affinity!r}")


def upc_global_lock_alloc() -> GlobalLock:
    """Collective lock allocation (UPC's upc_all_lock_alloc)."""
    return GlobalLock(owner=0)
