"""Interoperability veneers (paper objective #3: "an easy on-ramp ...
interoperability with other existing parallel programming systems").

* :mod:`repro.compat.mpi` — a two-sided message-passing layer with the
  mpi4py surface (send/recv, isend/irecv, Sendrecv, collectives), built
  on the same active-message conduit.  Used as the baseline programming
  model for the LULESH case study, and to demonstrate the paper's
  one-to-one UPC++ ↔ MPI rank mapping.
* :mod:`repro.compat.upc` — a UPC-flavoured API (upc_forall, phase-ful
  pointers-to-shared, upc_memcpy, upc_alloc, locks), used by the UPC
  variants of the Random Access and Sample Sort benchmarks and by the
  Table I idiom demonstrations.
"""

from repro.compat import mpi, upc

__all__ = ["mpi", "upc"]
