"""3-D 7-point Stencil — paper §V-B.

Jacobi (out-of-place) iteration of the heat-equation stencil::

    B[i][j][k] = c * A[i][j][k] +
                 A[i][j][k+1] + A[i][j][k-1] +
                 A[i][j+1][k] + A[i][j-1][k] +
                 A[i+1][j][k] + A[i-1][j][k]

The grid is distributed in all three dimensions, each rank owning a
fixed ``box``³ portion (weak scaling), with one ghost layer — the
paper's 256³ local / 258³ padded layout.  Ghost updates are the
one-statement one-sided copies of §III-E
(``A.constrict(ghost_domain).copy(B)`` inside
:meth:`~repro.arrays.distarray.DistNdArray.ghost_exchange`).

Two local-compute kernels are provided:

* ``vectorized`` — NumPy shifted-view arithmetic on
  ``local_view()`` (the production path; the HPC-Python guides'
  "views, not copies" idiom);
* ``foreach`` — the paper's foreach3 point loop, for API fidelity
  (tests check the two agree exactly).

Verification compares against a serial NumPy reference on the global
grid with Dirichlet (zero) boundaries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro
from repro.arrays import DistNdArray, Point, RectDomain, foreach

STENCIL_C = -6.0  # center coefficient (heat-equation Jacobi flavour)
FLOPS_PER_POINT = 8


@dataclass
class StencilResult:
    box: int
    iters: int
    seconds: float
    verified: bool
    gflops: float
    messages_per_rank_iter: float


def serial_reference(grid: np.ndarray, iters: int,
                     c: float = STENCIL_C) -> np.ndarray:
    """Serial Jacobi with zero boundaries (the verification oracle)."""
    a = np.zeros(tuple(s + 2 for s in grid.shape), dtype=grid.dtype)
    a[1:-1, 1:-1, 1:-1] = grid
    b = np.zeros_like(a)
    for _ in range(iters):
        b[1:-1, 1:-1, 1:-1] = (
            c * a[1:-1, 1:-1, 1:-1]
            + a[1:-1, 1:-1, 2:] + a[1:-1, 1:-1, :-2]
            + a[1:-1, 2:, 1:-1] + a[1:-1, :-2, 1:-1]
            + a[2:, 1:-1, 1:-1] + a[:-2, 1:-1, 1:-1]
        )
        a, b = b, a
        a[0, :, :] = a[-1, :, :] = 0.0
        a[:, 0, :] = a[:, -1, :] = 0.0
        a[:, :, 0] = a[:, :, -1] = 0.0
    return a[1:-1, 1:-1, 1:-1].copy()


def _kernel_vectorized(src: np.ndarray, dst: np.ndarray,
                       c: float = STENCIL_C) -> None:
    """dst interior <- stencil(src); arrays include the ghost layer."""
    dst[1:-1, 1:-1, 1:-1] = (
        c * src[1:-1, 1:-1, 1:-1]
        + src[1:-1, 1:-1, 2:] + src[1:-1, 1:-1, :-2]
        + src[1:-1, 2:, 1:-1] + src[1:-1, :-2, 1:-1]
        + src[2:, 1:-1, 1:-1] + src[:-2, 1:-1, 1:-1]
    )


def _kernel_foreach(A: DistNdArray, B: DistNdArray,
                    c: float = STENCIL_C) -> None:
    """The paper's foreach3 loop over the interior domain."""
    a = A.local.local_view()
    b = B.local.constrict(B.my_interior).local_view()
    lb = A.local.domain.lb
    interior = A.my_interior.translate(-lb)  # local (ghost-padded) coords
    out_shift = B.my_interior.lb - lb
    for (i, j, k) in foreach(interior):
        b[i - out_shift[0], j - out_shift[1], k - out_shift[2]] = (
            c * a[i, j, k]
            + a[i, j, k + 1] + a[i, j, k - 1]
            + a[i, j + 1, k] + a[i, j - 1, k]
            + a[i + 1, j, k] + a[i - 1, j, k]
        )


def stencil(box: int = 8, iters: int = 2, kernel: str = "vectorized",
            verify: bool = True, seed: int = 42) -> StencilResult:
    """SPMD body: weak-scaled Jacobi on a box³-per-rank grid."""
    me, n = repro.myrank(), repro.ranks()
    from repro.arrays import process_grid

    pgrid = process_grid(n, 3)
    gshape = tuple(p * box for p in pgrid)
    gdom = RectDomain(Point.zero(3), Point(*gshape))

    A = DistNdArray(np.float64, gdom, ghost=1)
    B = DistNdArray(np.float64, gdom, ghost=1, pgrid=A.pgrid)

    rng = np.random.default_rng(seed)  # same stream everywhere
    init = rng.random(gshape)
    dom = A.my_interior
    sl = tuple(slice(dom.lb[d], dom.ub[d]) for d in range(3))
    A.interior_view()[:] = init[sl]
    # ghosts start at zero (Dirichlet boundary at the physical edge);
    # allocation is zero-initialized, B is cleared for symmetry.
    B.local.set(0.0)
    repro.barrier()

    stats0 = repro.current_world().ranks[me].stats.snapshot()
    t0 = time.perf_counter()
    for _ in range(iters):
        A.ghost_exchange(faces_only=True)
        if kernel == "vectorized":
            _kernel_vectorized(A.local.local_view(), B.local.local_view())
        elif kernel == "foreach":
            _kernel_foreach(A, B)
        else:
            raise ValueError(f"unknown kernel {kernel!r}")
        A, B = B, A
    repro.barrier()
    dt = time.perf_counter() - t0
    stats1 = repro.current_world().ranks[me].stats.snapshot()
    msgs = (stats1["ams_sent"] - stats0["ams_sent"]) / max(1, iters)

    verified = True
    if verify:
        mine = A.local.constrict(A.my_interior).local_view()
        expect = serial_reference(init, iters)[sl]
        verified = bool(np.allclose(mine, expect, rtol=1e-12, atol=1e-12))
        verified = bool(repro.collectives.allreduce(int(verified), op="min"))

    flops = box ** 3 * FLOPS_PER_POINT * iters * n
    return StencilResult(
        box=box, iters=iters, seconds=dt, verified=verified,
        gflops=flops / dt / 1e9, messages_per_rank_iter=msgs,
    )


def run(ranks: int = 8, box: int = 8, iters: int = 2,
        kernel: str = "vectorized", verify: bool = True) -> StencilResult:
    """Launch in a fresh SPMD world; returns rank 0's result."""
    return repro.spmd(
        stencil, ranks=ranks,
        kwargs=dict(box=box, iters=iters, kernel=kernel, verify=verify),
    )[0]
