"""Mini-LULESH — paper §V-E (shock hydrodynamics proxy).

Per DESIGN.md §2 this is a substitution: a compact Lagrangian-flavoured
hydro proxy that reproduces the *communication skeleton* the paper
measures — a 3-D domain decomposition over a perfect-cube process grid
where every rank talks to its **26 neighbours** (faces, edges and
corners), exchanged data is **non-contiguous** (packed/unpacked), a
**dt all-reduce** happens every step, and the whole thing runs in two
interchangeable communication modes:

* ``one-sided`` (the UPC++ port): ghost zones filled with one-sided
  array copies (``constrict(halo).copy(remote)``), one fence per phase;
* ``two-sided`` (the MPI baseline): explicit pack → ``Isend``/``Irecv``
  → wait → unpack through :mod:`repro.compat.mpi`, retaining the
  original code's structure as the paper describes.

The physics: compressible Euler (ideal gas) on a uniform grid with a
dimensionally-split Lax–Friedrichs update plus a 27-point artificial
smoothing term (which is what makes the *corner* neighbours real data
dependencies), driven by a Sedov-like point blast.  Verification checks
(a) the two communication modes produce bit-identical fields, (b) the
distributed run matches a serial NumPy reference, and (c) mass/energy
drift stays tiny while the blast is far from the boundary.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

import repro
from repro.arrays import DistNdArray, Point, RectDomain
from repro.compat import mpi

GAMMA = 1.4
CFL = 0.3
SMOOTH_EPS = 0.02
FIELDS = ("rho", "E", "mx", "my", "mz")


# ---------------------------------------------------------------------------
# physics kernel (pure NumPy on ghost-padded blocks)
# ---------------------------------------------------------------------------

def _primitives(U: dict) -> tuple:
    rho = U["rho"]
    inv_rho = 1.0 / rho
    ux = U["mx"] * inv_rho
    uy = U["my"] * inv_rho
    uz = U["mz"] * inv_rho
    kinetic = 0.5 * rho * (ux * ux + uy * uy + uz * uz)
    p = (GAMMA - 1.0) * np.maximum(U["E"] - kinetic, 1e-12)
    return ux, uy, uz, p


def _fluxes(U: dict) -> dict:
    """Euler fluxes along each axis for each conserved field."""
    ux, uy, uz, p = _primitives(U)
    Ep = U["E"] + p
    return {
        # axis 0 (x): advection velocity ux
        0: {"rho": U["mx"], "E": Ep * ux,
            "mx": U["mx"] * ux + p, "my": U["my"] * ux, "mz": U["mz"] * ux},
        1: {"rho": U["my"], "E": Ep * uy,
            "mx": U["mx"] * uy, "my": U["my"] * uy + p, "mz": U["mz"] * uy},
        2: {"rho": U["mz"], "E": Ep * uz,
            "mx": U["mx"] * uz, "my": U["my"] * uz, "mz": U["mz"] * uz + p},
    }


def _shift(a: np.ndarray, axis: int, step: int) -> np.ndarray:
    """Interior-sized view of ``a`` displaced by ``step`` along ``axis``
    (``a`` is ghost-padded by one on every side)."""
    sl = [slice(1, -1)] * a.ndim
    sl[axis] = slice(1 + step, a.shape[axis] - 1 + step)
    return a[tuple(sl)]


def _avg27(a: np.ndarray) -> np.ndarray:
    """27-point average (the corner-coupled smoothing stencil)."""
    acc = np.zeros(tuple(s - 2 for s in a.shape))
    for dx, dy, dz in itertools.product((-1, 0, 1), repeat=3):
        acc += a[1 + dx:a.shape[0] - 1 + dx,
                 1 + dy:a.shape[1] - 1 + dy,
                 1 + dz:a.shape[2] - 1 + dz]
    return acc / 27.0


def max_wavespeed(U: dict) -> float:
    """max(|u| + c_s) over the interior (for the CFL dt)."""
    ux, uy, uz, p = _primitives(U)
    c = np.sqrt(GAMMA * p / U["rho"])
    speed = np.sqrt(ux * ux + uy * uy + uz * uz) + c
    return float(speed[1:-1, 1:-1, 1:-1].max())


def lxf_step(U: dict, dt: float, dx: float) -> dict:
    """One Lax–Friedrichs + smoothing step; returns interior updates."""
    F = _fluxes(U)
    out = {}
    lam = dt / (2.0 * dx)
    for name in FIELDS:
        a = U[name]
        face_avg = sum(
            _shift(a, ax, s) for ax in range(3) for s in (-1, 1)
        ) / 6.0
        div = sum(
            _shift(F[ax][name], ax, 1) - _shift(F[ax][name], ax, -1)
            for ax in range(3)
        )
        new = face_avg - lam * div
        out[name] = (1.0 - SMOOTH_EPS) * new + SMOOTH_EPS * _avg27(a)
    return out


def sedov_init(shape: tuple[int, ...], dx: float,
               blast_energy: float = 10.0) -> dict:
    """Uniform cold gas with an energy spike at the domain centre."""
    U = {
        "rho": np.ones(shape),
        "E": np.full(shape, 1e-3),
        "mx": np.zeros(shape),
        "my": np.zeros(shape),
        "mz": np.zeros(shape),
    }
    c = tuple(s // 2 for s in shape)
    U["E"][c] = blast_energy / dx ** 3
    return U


def serial_reference(shape: tuple[int, ...], steps: int,
                     dx: float = 1.0) -> dict:
    """The oracle: run the same scheme on one padded global grid."""
    U = sedov_init(shape, dx)
    pad = {k: np.pad(v, 1, mode="edge") for k, v in U.items()}
    for _ in range(steps):
        dt = CFL * dx / max_wavespeed(pad)
        upd = lxf_step(pad, dt, dx)
        for k in FIELDS:
            pad[k][1:-1, 1:-1, 1:-1] = upd[k]
            # Neumann boundary: ghosts copy the adjacent interior cell.
            _apply_edge_bc(pad[k])
    return {k: v[1:-1, 1:-1, 1:-1].copy() for k, v in pad.items()}


def _apply_edge_bc(a: np.ndarray) -> None:
    a[0, :, :] = a[1, :, :]
    a[-1, :, :] = a[-2, :, :]
    a[:, 0, :] = a[:, 1, :]
    a[:, -1, :] = a[:, -2, :]
    a[:, :, 0] = a[:, :, 1]
    a[:, :, -1] = a[:, :, -2]


# ---------------------------------------------------------------------------
# distributed proxy
# ---------------------------------------------------------------------------

#: Direction index <-> offset maps for the two-sided tag scheme.
DIRECTIONS = [
    Point(*offs)
    for offs in itertools.product((-1, 0, 1), repeat=3)
    if any(offs)
]
DIR_INDEX = {tuple(d): i for i, d in enumerate(DIRECTIONS)}


def _interior_border(dist: DistNdArray, offs: Point) -> RectDomain:
    """My interior cells that neighbour ``offs`` needs (pack source)."""
    dom = dist.my_interior
    for ax, o in enumerate(offs):
        if o:
            dom = dom.border(ax, o, dist.ghost)
    return dom


def _exchange_two_sided(dists: list[DistNdArray]) -> None:
    """MPI-style ghost exchange: pack → Isend/Irecv → waitall → unpack.

    This is deliberately the shape of the original LULESH communication
    code ("a packing and unpacking strategy"): non-contiguous border
    regions are copied into contiguous buffers around two-sided calls.
    """
    d0 = dists[0]
    nbrs = list(d0.neighbors())
    recv_reqs = []
    for nbr_rank, offs in nbrs:
        # neighbour sends us data tagged with *their* direction towards
        # us, which is -offs.
        tag = DIR_INDEX[tuple(-offs)]
        recv_reqs.append((nbr_rank, offs, mpi.irecv(nbr_rank, tag)))
    for nbr_rank, offs in nbrs:
        packed = [
            d.local.constrict(_interior_border(d, offs)).local_view().copy()
            for d in dists
        ]
        mpi.send(packed, nbr_rank, DIR_INDEX[tuple(offs)])
    for nbr_rank, offs, req in recv_reqs:
        blocks = req.wait()
        halo = dists[0]._halo_region(offs)
        for d, block in zip(dists, blocks):
            view = d.local.constrict(halo)
            if not view.domain.is_empty:
                view.local_view()[...] = block
    repro.barrier()


def _exchange_one_sided(dists: list[DistNdArray]) -> None:
    """UPC++-style ghost exchange: one-sided halo copies, corners too."""
    for d in dists:
        d.ghost_exchange(faces_only=False)


@dataclass
class LuleshResult:
    shape: tuple
    steps: int
    seconds: float
    verified: bool
    mass_drift: float
    energy_drift: float
    comm: str

    @property
    def fom_zones_per_sec(self) -> float:
        zones = int(np.prod(self.shape)) * self.steps
        return zones / self.seconds


def lulesh(box: int = 6, steps: int = 3, comm: str = "one-sided",
           verify: bool = True, dx: float = 1.0) -> LuleshResult:
    """SPMD body.  Requires a perfect-cube rank count (paper's rule:
    "the number of processes is required to be a perfect cube")."""
    me, n = repro.myrank(), repro.ranks()
    side = round(n ** (1 / 3))
    if side ** 3 != n:
        raise ValueError(
            f"LULESH requires a perfect-cube number of ranks, got {n}"
        )
    pgrid = (side, side, side)
    gshape = tuple(box * side for _ in range(3))
    gdom = RectDomain(Point.zero(3), Point(*gshape))

    dists = [
        DistNdArray(np.float64, gdom, ghost=1, pgrid=pgrid)
        for _ in FIELDS
    ]
    U0 = sedov_init(gshape, dx)
    sl = tuple(
        slice(dists[0].my_interior.lb[d], dists[0].my_interior.ub[d])
        for d in range(3)
    )
    for d, name in zip(dists, FIELDS):
        d.interior_view()[:] = U0[name][sl]
    repro.barrier()

    exchange = (_exchange_one_sided if comm == "one-sided"
                else _exchange_two_sided)
    mass0 = repro.collectives.allreduce(float(dists[0].interior_view().sum()))
    energy0 = repro.collectives.allreduce(
        float(dists[1].interior_view().sum())
    )

    t0 = time.perf_counter()
    for _ in range(steps):
        exchange(dists)
        _apply_physical_bc(dists)
        padded = {
            name: d.local.local_view() for d, name in zip(dists, FIELDS)
        }
        # Lagrange-leapfrog structure: local wavespeed, global dt
        # reduction (the per-step allreduce of real LULESH) ...
        local_speed = max_wavespeed(padded)
        dt = CFL * dx / repro.collectives.allreduce(local_speed, op="max")
        # ... then the element update.
        upd = lxf_step(padded, dt, dx)
        for d, name in zip(dists, FIELDS):
            d.interior_view()[...] = upd[name]
    repro.barrier()
    dt_wall = time.perf_counter() - t0

    mass1 = repro.collectives.allreduce(float(dists[0].interior_view().sum()))
    energy1 = repro.collectives.allreduce(
        float(dists[1].interior_view().sum())
    )

    verified = True
    if verify:
        ref = serial_reference(gshape, steps, dx)
        ok = all(
            np.allclose(d.interior_view(), ref[name][sl],
                        rtol=1e-12, atol=1e-12)
            for d, name in zip(dists, FIELDS)
        )
        verified = bool(repro.collectives.allreduce(int(ok), op="min"))

    return LuleshResult(
        shape=gshape, steps=steps, seconds=dt_wall, verified=verified,
        mass_drift=abs(mass1 - mass0) / abs(mass0),
        energy_drift=abs(energy1 - energy0) / abs(energy0),
        comm=comm,
    )


def _apply_physical_bc(dists: list[DistNdArray]) -> None:
    """Fill ghost layers that lie outside the global domain (Neumann)."""
    d0 = dists[0]
    for ax in range(3):
        for side_, at_edge in ((-1, d0.my_interior.lb[ax]
                                == d0.global_domain.lb[ax]),
                               (1, d0.my_interior.ub[ax]
                                == d0.global_domain.ub[ax])):
            if not at_edge:
                continue
            for d in dists:
                a = d.local.local_view()
                sl_ghost = [slice(None)] * 3
                sl_edge = [slice(None)] * 3
                if side_ < 0:
                    sl_ghost[ax] = 0
                    sl_edge[ax] = 1
                else:
                    sl_ghost[ax] = a.shape[ax] - 1
                    sl_edge[ax] = a.shape[ax] - 2
                a[tuple(sl_ghost)] = a[tuple(sl_edge)]


def run(ranks: int = 8, box: int = 6, steps: int = 3,
        comm: str = "one-sided", verify: bool = True) -> LuleshResult:
    """Launch in a fresh SPMD world; returns rank 0's result."""
    return repro.spmd(
        lulesh, ranks=ranks,
        kwargs=dict(box=box, steps=steps, comm=comm, verify=verify),
    )[0]
