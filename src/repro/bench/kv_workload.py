"""YCSB-style key-value workload over :class:`repro.DistHashMap`.

The north-star workload the containers exist for: every rank runs a
read-heavy mix (zipf-ish hot set) against one sharded map, with periodic
batched ``multi_get`` scans, and reports the numbers a serving system is
judged by — per-op p50/p99, throughput, cache hit rate, and the
coalescing ratio of the batched path.

Two phases:

1. **mixed phase** — each rank issues ``ops_per_rank`` operations:
   ``read_fraction`` point gets (skewed toward a hot set), the rest puts
   into the rank's own disjoint key stripe (shadowed locally so the run
   self-verifies), and every ``multi_every``-th op a ``multi_get`` of
   ``multi_batch`` random keys;
2. **microbenchmark** — on an uncached map, rank 0 times one
   ``multi_get`` of ``microbench_keys`` keys against the equivalent
   per-key ``get`` loop, counting request AMs for the batched call.
   This is the acceptance gate: ≤ nranks AMs per ``multi_get`` and a
   ≥ 5× speedup over the scalar loop.

:func:`run_failover` is the survivability variant: a replicated map
(``replicas=1``) under ``ReliableConduit(ChaosConduit)`` with a victim
rank that partitions itself (``kill_rank``) and dies mid-workload.  The
survivors keep operating through the failure — the first op that
touches the dead primary stalls on detection, fails over to the
promoted backup, and the run then verifies **every write any rank ever
got an ack for** (including the victim's, read post-mortem from shared
memory) is still readable.  Reported: zero-loss verification, failover
latency percentiles, promotion count, replication write-amplification,
and pre-kill vs recovered throughput.

Run as a module (``python -m repro.bench.kv_workload``) or through the
harness (``python -m repro.bench.harness --kv BENCH.json`` /
``--failover BENCH_7.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.core import collectives
from repro.gasnet.stats import aggregate


@dataclass
class KvResult:
    ranks: int
    keys: int
    ops_per_rank: int
    read_fraction: float
    # mixed-phase latency percentiles (microseconds, across all ranks)
    get_p50_us: float
    get_p99_us: float
    put_p50_us: float
    put_p99_us: float
    multi_p50_us: float
    multi_p99_us: float
    ops_per_sec: float
    cache_hit_rate: float
    coalescing_ratio: float
    # microbenchmark (rank 0, uncached map): one multi_get of
    # ``microbench_keys`` keys vs the equivalent per-key get loop
    ams_per_multi: int
    multi_us: float
    loop_us: float
    multi_speedup: float
    verified: bool
    stats: dict = field(default_factory=dict)


@dataclass
class KvFailoverResult:
    ranks: int
    keys: int
    ops_per_rank: int
    replicas: int
    victim: int
    seed: int
    # correctness: every acked write must read back after the kill
    acked_writes: int
    lost_writes: int
    verified: bool
    # failover mechanics
    failovers: int
    promotions: int
    failover_p50_ms: float
    failover_p99_ms: float
    detect_stall_ms: float
    # replication cost
    repl_records: int
    mutations: int
    write_amplification: float
    # throughput: pre-kill steady state vs post-kill (including the
    # detection stall) vs recovered steady state (first successful
    # post-kill op onward)
    pre_kill_ops_per_sec: float
    post_kill_ops_per_sec: float
    recovered_ops_per_sec: float
    recovery_ratio: float
    fault_schedule: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)


def _percentiles(lat_us: list) -> tuple:
    if not lat_us:
        return 0.0, 0.0
    arr = np.asarray(lat_us)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def run(ranks: int = 4, keys: int = 2048, ops_per_rank: int = 1500,
        read_fraction: float = 0.9, multi_every: int = 8,
        multi_batch: int = 64, value_size: int = 32,
        cache: bool = True, hot_fraction: float = 0.1,
        hot_weight: float = 0.8, microbench_keys: int = 1000,
        seed: int = 0, conduit=None, reliability=None,
        telemetry=None) -> KvResult:
    """Run the workload at ``ranks`` ranks and gather one result."""
    holder: dict = {}

    def body():
        me = repro.myrank()
        n = repro.ranks()
        rng = np.random.default_rng((seed << 8) ^ me)
        m = repro.DistHashMap(cache=cache)
        keyspace = [f"key:{i:06d}" for i in range(keys)]
        hot = keyspace[:max(1, int(keys * hot_fraction))]
        filler = "v" * value_size

        # -- preload: each rank bulk-loads its stripe in one multi_put
        m.multi_put({k: (filler, i) for i, k in enumerate(keyspace)
                     if i % n == me})
        repro.barrier()
        ctx = repro.current_world().ranks[me]
        ctx.stats.reset()
        repro.barrier()

        # -- mixed phase
        get_lat: list = []
        put_lat: list = []
        multi_lat: list = []
        # Writes go to a per-rank disjoint stripe, shadowed locally, so
        # the verification below needs no cross-rank ordering argument.
        my_writes: dict = {}
        write_keys = [k for i, k in enumerate(keyspace) if i % n == me]
        t_phase = time.perf_counter()
        for op in range(ops_per_rank):
            if multi_every and op % multi_every == multi_every - 1:
                batch = [keyspace[i] for i in
                         rng.integers(0, keys, size=multi_batch)]
                t0 = time.perf_counter()
                m.multi_get(batch)
                multi_lat.append((time.perf_counter() - t0) * 1e6)
            elif rng.random() < read_fraction:
                pool = hot if rng.random() < hot_weight else keyspace
                k = pool[int(rng.integers(len(pool)))]
                t0 = time.perf_counter()
                m.get(k)
                get_lat.append((time.perf_counter() - t0) * 1e6)
            else:
                k = write_keys[int(rng.integers(len(write_keys)))]
                v = (filler, int(rng.integers(1 << 30)))
                t0 = time.perf_counter()
                m.put(k, v)
                put_lat.append((time.perf_counter() - t0) * 1e6)
                my_writes[k] = v
        phase_s = time.perf_counter() - t_phase
        repro.barrier()

        # -- verify: this rank's writes read back exactly (disjoint
        # stripes, so last-writer-wins is this rank's own last write)
        m.refresh()
        ok = True
        if my_writes:
            wk = sorted(my_writes)
            got = m.multi_get(wk)
            ok = all(g == my_writes[k] for k, g in zip(wk, got))
        ok = collectives.allreduce(ok, op="and")

        agg = None
        if me == 0:
            agg = aggregate([r.stats for r in repro.current_world().ranks])
            holder["world"] = repro.current_world()
        repro.barrier()

        # -- microbenchmark: batched vs per-key gets on an uncached map.
        # Ranks != 0 block in the barrier below; blocked ranks poll
        # their progress engine, so they keep serving rank 0's AMs.
        mb = repro.DistHashMap(cache=False)
        mb_keys = [f"mb:{i:06d}" for i in range(microbench_keys)]
        if me == 0:
            mb.multi_put({k: i for i, k in enumerate(mb_keys)})
            before = ctx.stats.snapshot()["ams_sent"]
            t0 = time.perf_counter()
            mb.multi_get(mb_keys)
            multi_s = time.perf_counter() - t0
            ams_per_multi = ctx.stats.snapshot()["ams_sent"] - before
            t0 = time.perf_counter()
            for k in mb_keys:
                mb.get(k)
            loop_s = time.perf_counter() - t0
            micro = (ams_per_multi, multi_s, loop_s)
        else:
            micro = None
        repro.barrier()

        lats = collectives.gather((get_lat, put_lat, multi_lat), root=0)
        return (me, ok, phase_s, m.cache_hit_rate, agg, micro, lats)

    res = repro.spmd(body, ranks=ranks, conduit=conduit,
                     reliability=reliability, telemetry=telemetry)
    by_rank = {r[0]: r for r in res}
    _, _, _, _, agg, micro, lats = by_rank[0]
    verified = all(r[1] for r in res)
    phase_s = max(r[2] for r in res)
    total_ops = ops_per_rank * ranks
    get_all = [u for g, _p, _m in lats for u in g]
    put_all = [u for _g, p, _m in lats for u in p]
    multi_all = [u for _g, _p, mm in lats for u in mm]
    get_p50, get_p99 = _percentiles(get_all)
    put_p50, put_p99 = _percentiles(put_all)
    multi_p50, multi_p99 = _percentiles(multi_all)
    ams_per_multi, multi_s, loop_s = micro
    hits = agg["kv_cache_hits"]
    misses = agg["kv_cache_misses"]
    mops = agg["kv_multi_ops"]
    return KvResult(
        ranks=ranks, keys=keys, ops_per_rank=ops_per_rank,
        read_fraction=read_fraction,
        get_p50_us=get_p50, get_p99_us=get_p99,
        put_p50_us=put_p50, put_p99_us=put_p99,
        multi_p50_us=multi_p50, multi_p99_us=multi_p99,
        ops_per_sec=total_ops / phase_s if phase_s > 0 else 0.0,
        cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
        coalescing_ratio=(agg["kv_batched_keys"] / mops) if mops else 0.0,
        ams_per_multi=ams_per_multi,
        multi_us=multi_s * 1e6,
        loop_us=loop_s * 1e6,
        multi_speedup=loop_s / multi_s if multi_s > 0 else 0.0,
        verified=verified,
        stats=agg,
    )


def run_failover(ranks: int = 4, keys: int = 1024,
                 ops_per_rank: int = 1200, read_fraction: float = 0.7,
                 zipf_a: float = 1.5, value_size: int = 32,
                 seed: int = 7, am_drop_rate: float = 0.01,
                 am_dup_rate: float = 0.01, am_reorder_rate: float = 0.02,
                 peer_timeout: float = 0.4,
                 telemetry=None) -> KvFailoverResult:
    """Kill a rank mid-workload and prove no acked write is lost.

    Phase A: every rank runs a zipf-skewed read/write mix against a
    ``replicas=1`` map over ``ReliableConduit(ChaosConduit)``.  At the
    midpoint the victim partitions itself (``kill_rank``) and dies;
    the survivors run phase B through the failover and then verify the
    union of all shadowed acked writes — the victim's shadow survives
    it in shared memory, so its acked-but-orphaned writes are checked
    too.  Rendezvous after the kill uses shared-memory flags, never
    collectives (a tree barrier would hang on the dead member).
    """
    from repro.gasnet.chaos import ChaosConduit

    conduit = ChaosConduit(
        seed=seed, am_drop_rate=am_drop_rate, am_dup_rate=am_dup_rate,
        am_reorder_rate=am_reorder_rate,
    )
    victim = 1 if ranks > 1 else 0
    # Cross-rank state shared by closure: SMP ranks are threads of one
    # process, so the victim's shadow dict outlives the victim.
    shadow: dict = {r: {} for r in range(ranks)}
    counts: dict = {r: 0 for r in range(ranks)}
    flags: dict = {"killed": False, "t_kill": None}
    wrote: dict = {r: False for r in range(ranks)}
    done: dict = {r: False for r in range(ranks)}
    ready: dict = {r: False for r in range(ranks)}

    def body():
        me, n = repro.myrank(), repro.ranks()
        ctx = repro.current_world().ranks[me]
        rng = np.random.default_rng((seed << 8) ^ me)
        m = repro.DistHashMap(replicas=1)
        keyspace = [f"fo:{i:06d}" for i in range(keys)]
        write_keys = [k for i, k in enumerate(keyspace) if i % n == me]
        filler = "v" * value_size

        m.multi_put({k: (filler, -1) for i, k in enumerate(keyspace)
                     if i % n == me})
        repro.barrier()
        ctx.stats.reset()
        repro.barrier()

        def one_op(op):
            if rng.random() < read_fraction:
                i = int(rng.zipf(zipf_a) - 1) % keys
                m.get(keyspace[i])
            else:
                k = write_keys[int(rng.integers(len(write_keys)))]
                v = (filler, int(rng.integers(1 << 30)))
                m.put(k, v)
                # recorded only after the ack returned: the shadow is
                # exactly the set of writes the workload was promised
                shadow[me][k] = v
                counts[me] += 1

        half = ops_per_rank // 2
        stamps_a: list = []
        for op in range(half):
            one_op(op)
            stamps_a.append(time.perf_counter())
        repro.barrier()  # all alive: a real barrier is still legal here
        # Shared-memory rendezvous before the partition: a rank that
        # has *returned* from the barrier may still owe release
        # forwarding to its tree children, so the victim must not go
        # silent until everyone is past it.
        ready[me] = True
        ctx.world.poke_all()
        ctx.wait_until(lambda: all(ready[r] for r in range(n)),
                       what="failover bench: past-the-barrier rendezvous")

        if me == victim and n > 1:
            # Partition, don't exit: a silent-but-running victim forces
            # the survivors through the *detection* path (heartbeat
            # silence -> RankDead after peer_timeout) instead of the
            # instant in-process dead-flag shortcut, so the measured
            # failover latency includes real detection time.
            conduit.kill_rank(me)
            flags["t_kill"] = time.perf_counter()
            flags["killed"] = True
            ctx.wait_until(
                lambda: all(done[r] for r in range(n) if r != victim),
                what="failover bench: partitioned victim parks",
            )
            return None

        if n > 1:
            ctx.wait_until(lambda: flags["killed"],
                           what="failover bench: wait for the kill")
        stamps_b: list = []
        # First post-kill op targets the victim's own shard, so every
        # survivor measures a client-observed failover (an op actually
        # in flight to the dead primary when detection fires).  Without
        # this the sample is interleaving-dependent: a rank whose first
        # blocked op hits a shard the victim only *backs up* stalls in
        # the owner's re-replication instead and never sees RankDead.
        probe = next((k for k in write_keys
                      if m.shard_of_key(k) == victim), None)
        if probe is not None and n > 1:
            v = (filler, int(rng.integers(1 << 30)))
            m.put(probe, v)
            shadow[me][probe] = v
            counts[me] += 1
            stamps_b.append(time.perf_counter())
        for op in range(half):
            one_op(op)
            stamps_b.append(time.perf_counter())

        # Survivors must all finish writing before anyone verifies:
        # the shadows are shared mutable state, and reading another
        # rank's shadow mid-write would race its next overwrite.
        wrote[me] = True
        ctx.world.poke_all()
        ctx.wait_until(
            lambda: all(wrote[r] for r in range(n) if r != victim),
            what="failover bench: end-of-writes rendezvous",
        )

        # -- verify every acked write in the union of all shadows
        m.refresh()
        lost = 0
        total = 0
        for r in range(n):
            items = sorted(shadow[r].items())
            if not items:
                continue
            total += len(items)
            got = m.multi_get([k for k, _v in items], default=None)
            lost += sum(1 for (_k, v), g in zip(items, got) if g != v)

        done[me] = True
        ctx.world.poke_all()
        ctx.wait_until(
            lambda: all(done[r] for r in range(n) if r != victim),
            what="failover bench: survivor rendezvous",
        )
        agg = None
        if me == 0:
            agg = aggregate([r.stats for r in repro.current_world().ranks])
        return (me, total, lost, stamps_a, stamps_b,
                m.failovers, list(m.failover_latencies), agg)

    res = repro.spmd(
        body, ranks=ranks, conduit=conduit,
        reliability={"seed": seed, "peer_timeout": peer_timeout,
                     "heartbeat_period": 0.02},
        heartbeat_timeout=peer_timeout, heartbeat_period=0.02,
        survive_rank_death=True, telemetry=telemetry, timeout=120.0,
    )
    alive = [r for r in res if r is not None]
    agg = next(r[7] for r in alive if r[7] is not None)
    acked = max(r[1] for r in alive)
    lost = max(r[2] for r in alive)
    failovers = sum(r[5] for r in alive)
    fo_lat_ms = [1e3 * x for r in alive for x in r[6]]
    fo_p50, fo_p99 = _percentiles(fo_lat_ms)

    # throughput windows from per-op completion stamps
    a_stamps = [t for r in alive for t in r[3]]
    b_stamps = [t for r in alive for t in r[4]]
    t_kill = flags["t_kill"] or (max(a_stamps) if a_stamps else 0.0)
    pre = (len(a_stamps) / (max(a_stamps) - min(a_stamps))
           if len(a_stamps) > 1 else 0.0)
    post = recovered = stall_ms = 0.0
    if len(b_stamps) > 1:
        t_first, t_end = min(b_stamps), max(b_stamps)
        stall_ms = max(0.0, (t_first - t_kill)) * 1e3
        if t_end > t_kill:
            post = len(b_stamps) / (t_end - t_kill)
        if t_end > t_first:
            recovered = len(b_stamps) / (t_end - t_first)
    mutations = sum(counts.values())
    repl = agg["kv_repl_records"]
    return KvFailoverResult(
        ranks=ranks, keys=keys, ops_per_rank=ops_per_rank, replicas=1,
        victim=victim, seed=seed,
        acked_writes=acked, lost_writes=lost, verified=lost == 0,
        failovers=failovers, promotions=agg["kv_promotions"],
        failover_p50_ms=fo_p50, failover_p99_ms=fo_p99,
        detect_stall_ms=stall_ms,
        repl_records=repl, mutations=mutations,
        write_amplification=repl / mutations if mutations else 0.0,
        pre_kill_ops_per_sec=pre, post_kill_ops_per_sec=post,
        recovered_ops_per_sec=recovered,
        recovery_ratio=recovered / pre if pre > 0 else 0.0,
        fault_schedule=conduit.fault_schedule(),
        stats=agg,
    )


def main_failover() -> int:
    r = run_failover()
    print(f"kv failover: {r.ranks} ranks, replicas={r.replicas}, "
          f"victim={r.victim} killed mid-workload (seed {r.seed})")
    print(f"  acked writes     {r.acked_writes:12d}  lost {r.lost_writes}")
    print(f"  failovers        {r.failovers:12d}  promotions "
          f"{r.promotions}")
    print(f"  failover p50/p99 {r.failover_p50_ms:8.2f} / "
          f"{r.failover_p99_ms:8.2f} ms  (detect stall "
          f"{r.detect_stall_ms:.1f} ms)")
    print(f"  write amp        {r.write_amplification:12.2f} "
          f"({r.repl_records} repl records / {r.mutations} mutations)")
    print(f"  throughput       {r.pre_kill_ops_per_sec:10.0f} pre  "
          f"{r.recovered_ops_per_sec:10.0f} recovered  "
          f"(ratio {r.recovery_ratio:.2f})")
    print(f"  faults injected  {len(r.fault_schedule['faults']):12d}")
    print(f"  verified         {r.verified}")
    return 0 if r.verified and r.promotions >= 1 else 1


def main() -> int:
    r = run()
    print(f"kv workload: {r.ranks} ranks, {r.keys} keys, "
          f"{r.ops_per_rank} ops/rank, {r.read_fraction:.0%} reads")
    print(f"  throughput       {r.ops_per_sec:12.0f} ops/s")
    print(f"  get  p50/p99     {r.get_p50_us:8.1f} / {r.get_p99_us:8.1f} us")
    print(f"  put  p50/p99     {r.put_p50_us:8.1f} / {r.put_p99_us:8.1f} us")
    print(f"  multi p50/p99    {r.multi_p50_us:8.1f} / "
          f"{r.multi_p99_us:8.1f} us")
    print(f"  cache hit rate   {r.cache_hit_rate:12.1%}")
    print(f"  coalescing       {r.coalescing_ratio:12.1f} keys/AM")
    print(f"  multi_get(1k)    {r.ams_per_multi} AMs, {r.multi_us:.0f} us "
          f"vs {r.loop_us:.0f} us per-key loop "
          f"(x{r.multi_speedup:.1f})")
    print(f"  verified         {r.verified}")
    return 0 if r.verified else 1


if __name__ == "__main__":
    raise SystemExit(main())
