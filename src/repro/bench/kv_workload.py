"""YCSB-style key-value workload over :class:`repro.DistHashMap`.

The north-star workload the containers exist for: every rank runs a
read-heavy mix (zipf-ish hot set) against one sharded map, with periodic
batched ``multi_get`` scans, and reports the numbers a serving system is
judged by — per-op p50/p99, throughput, cache hit rate, and the
coalescing ratio of the batched path.

Two phases:

1. **mixed phase** — each rank issues ``ops_per_rank`` operations:
   ``read_fraction`` point gets (skewed toward a hot set), the rest puts
   into the rank's own disjoint key stripe (shadowed locally so the run
   self-verifies), and every ``multi_every``-th op a ``multi_get`` of
   ``multi_batch`` random keys;
2. **microbenchmark** — on an uncached map, rank 0 times one
   ``multi_get`` of ``microbench_keys`` keys against the equivalent
   per-key ``get`` loop, counting request AMs for the batched call.
   This is the acceptance gate: ≤ nranks AMs per ``multi_get`` and a
   ≥ 5× speedup over the scalar loop.

Run as a module (``python -m repro.bench.kv_workload``) or through the
harness (``python -m repro.bench.harness --kv BENCH.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.core import collectives
from repro.gasnet.stats import aggregate


@dataclass
class KvResult:
    ranks: int
    keys: int
    ops_per_rank: int
    read_fraction: float
    # mixed-phase latency percentiles (microseconds, across all ranks)
    get_p50_us: float
    get_p99_us: float
    put_p50_us: float
    put_p99_us: float
    multi_p50_us: float
    multi_p99_us: float
    ops_per_sec: float
    cache_hit_rate: float
    coalescing_ratio: float
    # microbenchmark (rank 0, uncached map): one multi_get of
    # ``microbench_keys`` keys vs the equivalent per-key get loop
    ams_per_multi: int
    multi_us: float
    loop_us: float
    multi_speedup: float
    verified: bool
    stats: dict = field(default_factory=dict)


def _percentiles(lat_us: list) -> tuple:
    if not lat_us:
        return 0.0, 0.0
    arr = np.asarray(lat_us)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 99))


def run(ranks: int = 4, keys: int = 2048, ops_per_rank: int = 1500,
        read_fraction: float = 0.9, multi_every: int = 8,
        multi_batch: int = 64, value_size: int = 32,
        cache: bool = True, hot_fraction: float = 0.1,
        hot_weight: float = 0.8, microbench_keys: int = 1000,
        seed: int = 0, conduit=None, reliability=None,
        telemetry=None) -> KvResult:
    """Run the workload at ``ranks`` ranks and gather one result."""
    holder: dict = {}

    def body():
        me = repro.myrank()
        n = repro.ranks()
        rng = np.random.default_rng((seed << 8) ^ me)
        m = repro.DistHashMap(cache=cache)
        keyspace = [f"key:{i:06d}" for i in range(keys)]
        hot = keyspace[:max(1, int(keys * hot_fraction))]
        filler = "v" * value_size

        # -- preload: each rank bulk-loads its stripe in one multi_put
        m.multi_put({k: (filler, i) for i, k in enumerate(keyspace)
                     if i % n == me})
        repro.barrier()
        ctx = repro.current_world().ranks[me]
        ctx.stats.reset()
        repro.barrier()

        # -- mixed phase
        get_lat: list = []
        put_lat: list = []
        multi_lat: list = []
        # Writes go to a per-rank disjoint stripe, shadowed locally, so
        # the verification below needs no cross-rank ordering argument.
        my_writes: dict = {}
        write_keys = [k for i, k in enumerate(keyspace) if i % n == me]
        t_phase = time.perf_counter()
        for op in range(ops_per_rank):
            if multi_every and op % multi_every == multi_every - 1:
                batch = [keyspace[i] for i in
                         rng.integers(0, keys, size=multi_batch)]
                t0 = time.perf_counter()
                m.multi_get(batch)
                multi_lat.append((time.perf_counter() - t0) * 1e6)
            elif rng.random() < read_fraction:
                pool = hot if rng.random() < hot_weight else keyspace
                k = pool[int(rng.integers(len(pool)))]
                t0 = time.perf_counter()
                m.get(k)
                get_lat.append((time.perf_counter() - t0) * 1e6)
            else:
                k = write_keys[int(rng.integers(len(write_keys)))]
                v = (filler, int(rng.integers(1 << 30)))
                t0 = time.perf_counter()
                m.put(k, v)
                put_lat.append((time.perf_counter() - t0) * 1e6)
                my_writes[k] = v
        phase_s = time.perf_counter() - t_phase
        repro.barrier()

        # -- verify: this rank's writes read back exactly (disjoint
        # stripes, so last-writer-wins is this rank's own last write)
        m.refresh()
        ok = True
        if my_writes:
            wk = sorted(my_writes)
            got = m.multi_get(wk)
            ok = all(g == my_writes[k] for k, g in zip(wk, got))
        ok = collectives.allreduce(ok, op="and")

        agg = None
        if me == 0:
            agg = aggregate([r.stats for r in repro.current_world().ranks])
            holder["world"] = repro.current_world()
        repro.barrier()

        # -- microbenchmark: batched vs per-key gets on an uncached map.
        # Ranks != 0 block in the barrier below; blocked ranks poll
        # their progress engine, so they keep serving rank 0's AMs.
        mb = repro.DistHashMap(cache=False)
        mb_keys = [f"mb:{i:06d}" for i in range(microbench_keys)]
        if me == 0:
            mb.multi_put({k: i for i, k in enumerate(mb_keys)})
            before = ctx.stats.snapshot()["ams_sent"]
            t0 = time.perf_counter()
            mb.multi_get(mb_keys)
            multi_s = time.perf_counter() - t0
            ams_per_multi = ctx.stats.snapshot()["ams_sent"] - before
            t0 = time.perf_counter()
            for k in mb_keys:
                mb.get(k)
            loop_s = time.perf_counter() - t0
            micro = (ams_per_multi, multi_s, loop_s)
        else:
            micro = None
        repro.barrier()

        lats = collectives.gather((get_lat, put_lat, multi_lat), root=0)
        return (me, ok, phase_s, m.cache_hit_rate, agg, micro, lats)

    res = repro.spmd(body, ranks=ranks, conduit=conduit,
                     reliability=reliability, telemetry=telemetry)
    by_rank = {r[0]: r for r in res}
    _, _, _, _, agg, micro, lats = by_rank[0]
    verified = all(r[1] for r in res)
    phase_s = max(r[2] for r in res)
    total_ops = ops_per_rank * ranks
    get_all = [u for g, _p, _m in lats for u in g]
    put_all = [u for _g, p, _m in lats for u in p]
    multi_all = [u for _g, _p, mm in lats for u in mm]
    get_p50, get_p99 = _percentiles(get_all)
    put_p50, put_p99 = _percentiles(put_all)
    multi_p50, multi_p99 = _percentiles(multi_all)
    ams_per_multi, multi_s, loop_s = micro
    hits = agg["kv_cache_hits"]
    misses = agg["kv_cache_misses"]
    mops = agg["kv_multi_ops"]
    return KvResult(
        ranks=ranks, keys=keys, ops_per_rank=ops_per_rank,
        read_fraction=read_fraction,
        get_p50_us=get_p50, get_p99_us=get_p99,
        put_p50_us=put_p50, put_p99_us=put_p99,
        multi_p50_us=multi_p50, multi_p99_us=multi_p99,
        ops_per_sec=total_ops / phase_s if phase_s > 0 else 0.0,
        cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
        coalescing_ratio=(agg["kv_batched_keys"] / mops) if mops else 0.0,
        ams_per_multi=ams_per_multi,
        multi_us=multi_s * 1e6,
        loop_us=loop_s * 1e6,
        multi_speedup=loop_s / multi_s if multi_s > 0 else 0.0,
        verified=verified,
        stats=agg,
    )


def main() -> int:
    r = run()
    print(f"kv workload: {r.ranks} ranks, {r.keys} keys, "
          f"{r.ops_per_rank} ops/rank, {r.read_fraction:.0%} reads")
    print(f"  throughput       {r.ops_per_sec:12.0f} ops/s")
    print(f"  get  p50/p99     {r.get_p50_us:8.1f} / {r.get_p99_us:8.1f} us")
    print(f"  put  p50/p99     {r.put_p50_us:8.1f} / {r.put_p99_us:8.1f} us")
    print(f"  multi p50/p99    {r.multi_p50_us:8.1f} / "
          f"{r.multi_p99_us:8.1f} us")
    print(f"  cache hit rate   {r.cache_hit_rate:12.1%}")
    print(f"  coalescing       {r.coalescing_ratio:12.1f} keys/AM")
    print(f"  multi_get(1k)    {r.ams_per_multi} AMs, {r.multi_us:.0f} us "
          f"vs {r.loop_us:.0f} us per-key loop "
          f"(x{r.multi_speedup:.1f})")
    print(f"  verified         {r.verified}")
    return 0 if r.verified else 1


if __name__ == "__main__":
    raise SystemExit(main())
