"""The figure/table harness — regenerates every artifact of §V.

For each artifact the harness does two things:

1. **validate** — run the real benchmark on the SMP conduit at a small
   rank count and check its correctness oracle (exactness of GUPS
   replay, stencil vs NumPy, sort order/permutation, image equality,
   hydro field equality across communication modes);
2. **model** — evaluate the calibrated machine model at the paper's
   scales and print the same rows/series the paper reports, next to the
   paper's values where the text states them.

Run as a module::

    python -m repro.bench.harness            # everything
    python -m repro.bench.harness fig5 table4 --validate-ranks 8
"""

from __future__ import annotations

import argparse
import sys

from repro.sim import perfmodel as pm


def _fmt_row(cols, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(cols, widths))


_CHARTS = False  # toggled by --charts


def ascii_chart(xs, series: dict, title: str = "", height: int = 12,
                logy: bool = True) -> str:
    """A terminal rendering of a figure: one column per x, log-y axis.

    Good enough to eyeball the paper's shapes (crossovers, slopes,
    plateaus) without a plotting stack.
    """
    import math

    vals = [v for s in series.values() for v in s if v > 0]
    if not vals:
        return "(no data)"
    f = (lambda v: math.log10(v)) if logy else (lambda v: v)
    lo = min(f(v) for v in vals)
    hi = max(f(v) for v in vals)
    span = (hi - lo) or 1.0
    marks = "ox+*#"
    width = len(xs)
    grid = [[" "] * width for _ in range(height)]
    for si, (_name, s) in enumerate(series.items()):
        for col, v in enumerate(s):
            if v <= 0:
                continue
            row = height - 1 - int(round((f(v) - lo) / span * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = "@" if cell not in (" ", marks[si % 5]) \
                else marks[si % 5]
    unit = "log10 " if logy else ""
    out = [f"  {title}"]
    for i, row in enumerate(grid):
        label = hi - span * i / (height - 1)
        out.append(f"  {label:7.2f} |" + "".join(row))
    out.append("  " + " " * 8 + "+" + "-" * width)
    out.append(f"  ({unit}y; x = {xs[0]} .. {xs[-1]} cores; " +
               ", ".join(f"{marks[i % 5]}={n}"
                         for i, n in enumerate(series)) + ")")
    return "\n".join(out)


def _maybe_chart(s: dict, title: str, keys: tuple) -> None:
    if _CHARTS:
        print(ascii_chart(s["cores"], {k: s[k] for k in keys},
                          title=title))
        print()


def print_table3() -> None:
    """Table III: benchmark characteristics (inventory)."""
    rows = [
        ("Benchmark", "Computation", "Communication"),
        ("Random Access", "bit-xor operations",
         "global fine-grained random access"),
        ("Stencil", "nearest-neighbor computation", "bulk ghost zone copies"),
        ("Sample Sort", "local quick sort", "irregular one-sided comm"),
        ("Embree", "Monte Carlo integration", "single gatherv/reduction"),
        ("LULESH", "Lagrange leapfrog", "nearest-neighbor (26) comm"),
    ]
    print("== Table III: benchmark characteristics ==")
    for r in rows:
        print(f"  {r[0]:<14} {r[1]:<30} {r[2]}")
    print()


def print_fig4() -> None:
    s = pm.fig4_random_access()
    print("== Fig. 4: Random Access latency per update (usec), BG/Q ==")
    widths = (6, 10, 10)
    print(_fmt_row(("cores", "UPC", "UPC++"), widths))
    for c, u, x in zip(s["cores"], s["upc"], s["upcxx"]):
        print(_fmt_row((c, f"{u:.2f}", f"{x:.2f}"), widths))
    print()
    _maybe_chart(s, "Fig. 4 (usec/update)", ("upc", "upcxx"))


def print_table4() -> None:
    s = pm.table4_gups()
    p = pm.PAPER_TABLE4
    print("== Table IV: Random Access GUPS (model vs paper) ==")
    widths = (8, 12, 12, 12, 12)
    print(_fmt_row(
        ("THREADS", "UPC", "UPC paper", "UPC++", "UPC++ paper"), widths
    ))
    for i, t in enumerate(s["threads"]):
        print(_fmt_row((
            t, f"{s['upc'][i]:.4f}", f"{p['upc'][i]:.4f}",
            f"{s['upcxx'][i]:.4f}", f"{p['upcxx'][i]:.4f}",
        ), widths))
    print()


def print_fig5() -> None:
    s = pm.fig5_stencil()
    print("== Fig. 5: Stencil weak scaling (GFLOPS), Cray XC30 ==")
    widths = (6, 12, 12)
    print(_fmt_row(("cores", "Titanium", "UPC++"), widths))
    for c, t, u in zip(s["cores"], s["titanium"], s["upcxx"]):
        print(_fmt_row((c, f"{t:.1f}", f"{u:.1f}"), widths))
    print(f"  (paper endpoints: ~{pm.PAPER_FIG5['gflops'][0]:.0f} GFLOPS at "
          f"{pm.PAPER_FIG5['cores'][0]}, ~{pm.PAPER_FIG5['gflops'][1]:.0f} "
          f"at {pm.PAPER_FIG5['cores'][1]})\n")
    _maybe_chart(s, "Fig. 5 (GFLOPS)", ("titanium", "upcxx"))


def print_fig6() -> None:
    s = pm.fig6_sample_sort()
    print("== Fig. 6: Sample Sort weak scaling (TB/min), Cray XC30 ==")
    widths = (6, 12, 12)
    print(_fmt_row(("cores", "UPC", "UPC++"), widths))
    for c, u, x in zip(s["cores"], s["upc"], s["upcxx"]):
        print(_fmt_row((c, f"{u:.4g}", f"{x:.4g}"), widths))
    print(f"  (paper: {pm.PAPER_FIG6['tb_per_min'][1]} TB/min at "
          f"{pm.PAPER_FIG6['cores'][1]} cores)\n")
    _maybe_chart(s, "Fig. 6 (TB/min)", ("upc", "upcxx"))


def print_fig7() -> None:
    s = pm.fig7_embree()
    print("== Fig. 7: Embree ray tracing strong scaling (speedup) ==")
    widths = (6, 12, 12)
    print(_fmt_row(("cores", "UPC++", "ideal"), widths))
    for c, x in zip(s["cores"], s["upcxx"]):
        print(_fmt_row((c, f"{x:.1f}", c), widths))
    print("  (paper: 'nearly perfect strong scaling')\n")
    _maybe_chart(s, "Fig. 7 (speedup)", ("upcxx",))


def print_fig8() -> None:
    s = pm.fig8_lulesh()
    print("== Fig. 8: LULESH weak scaling (FOM z/s), Cray XC30 ==")
    widths = (6, 12, 12, 10)
    print(_fmt_row(("cores", "MPI", "UPC++", "UPC++/MPI"), widths))
    for c, m, u in zip(s["cores"], s["mpi"], s["upcxx"]):
        print(_fmt_row((c, f"{m:.3g}", f"{u:.3g}", f"{u / m:.3f}"), widths))
    print(f"  (paper: UPC++ ~{pm.PAPER_FIG8_UPCXX_SPEEDUP_AT_32K:.0%} of MPI "
          "at 32K cores — i.e. about 10% faster)\n")
    _maybe_chart(s, "Fig. 8 (FOM z/s)", ("mpi", "upcxx"))


def print_fig1() -> None:
    """Fig. 1: execute Listing 1's task DAG for real and show the order."""
    import repro

    def body():
        if repro.myrank() != 0:
            repro.barrier()
            return None
        order: list[str] = []
        e1, e2, e3 = repro.Event(), repro.Event(), repro.Event()

        def task(name: str) -> str:
            return name

        def record(name):
            return lambda fut: order.append(name)

        repro.async_(1, signal=e1)(task, "t1").add_callback(record("t1"))
        repro.async_(2, signal=e1)(task, "t2").add_callback(record("t2"))
        repro.async_after(3, after=e1, signal=e2)(task, "t3") \
            .add_callback(record("t3"))
        repro.async_(4 % repro.ranks(), signal=e2)(task, "t4") \
            .add_callback(record("t4"))
        repro.async_after(1, after=e2, signal=e3)(task, "t5") \
            .add_callback(record("t5"))
        repro.async_after(2, after=e2, signal=e3)(task, "t6") \
            .add_callback(record("t6"))
        e3.wait()
        repro.barrier()
        return order

    order = repro.spmd(body, ranks=4)[0]
    print("== Fig. 1 / Listing 1: task dependency graph execution ==")
    print(f"  completion order: {' -> '.join(order)}")
    print("  constraints: t1,t2 before t3; t3,t4 before t5,t6\n")


def validate(ranks: int = 4, conduit=None) -> dict:
    """Run every real benchmark small and return the verification map.

    ``conduit`` ("smp"/"proc"/None) selects the backend for the
    benchmarks that are conduit-parametric (GUPS); the rest run on the
    default backend.
    """
    from repro.bench import gups, lulesh, raytrace, sample_sort, stencil

    cube = max(8, ranks) if round(ranks ** (1 / 3)) ** 3 == ranks else 8
    out = {}
    r = gups.run(ranks=ranks, log2_table_size=10, updates_per_rank=64,
                 variant="upcxx", conduit=conduit)
    out["gups/upcxx"] = r.verified
    r = gups.run(ranks=ranks, log2_table_size=10, updates_per_rank=64,
                 variant="upc", conduit=conduit)
    out["gups/upc"] = r.verified
    r = stencil.run(ranks=ranks, box=6, iters=2)
    out["stencil"] = r.verified
    r = sample_sort.run(ranks=ranks, keys_per_rank=2048, variant="upcxx")
    out["sample_sort/upcxx"] = r.verified
    r = sample_sort.run(ranks=ranks, keys_per_rank=2048, variant="upc")
    out["sample_sort/upc"] = r.verified
    r = raytrace.run(ranks=ranks, image=32, tile=8, spp=2)
    out["raytrace"] = r.verified
    r = lulesh.run(ranks=cube, box=5, steps=2, comm="one-sided")
    out["lulesh/one-sided"] = r.verified
    r = lulesh.run(ranks=cube, box=5, steps=2, comm="two-sided")
    out["lulesh/two-sided"] = r.verified
    return out


def print_fig3() -> None:
    """Fig. 3, executed: the runtime's local/remote branch for a
    shared-array assignment, shown by tracing the conduit."""
    import numpy as np

    import repro
    from repro.gasnet.trace import Trace

    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        report = None
        if me == 0:
            trace = Trace(repro.current_world())
            with trace:
                sa[0] = 1   # element 0: local
                local_ops = trace.count()
                sa[1] = 1   # element 1: remote (rank 1)
            remote_ops = trace.count() - local_ops
            stats = repro.current_world().ranks[0].stats
            report = (local_ops, remote_ops, stats.local_accesses)
        repro.barrier()
        return report

    local_ops, remote_ops, local_hits = repro.spmd(body, ranks=2)[0]
    print("== Fig. 3: translation & execution flow, executed ==")
    print("  sa[0] = 1   (owner: rank 0)  ->  local access branch:"
          f"   {local_ops} conduit ops (direct segment view)")
    print("  sa[1] = 1   (owner: rank 1)  ->  remote access branch:"
          f"  {remote_ops} conduit op (one-sided put)")
    print(f"  runtime counters: {local_hits} local accesses recorded\n")


def print_calibration() -> None:
    """Live software-overhead measurement -> model parameters."""
    from repro.sim.calibrate import fitted_overheads, \
        measure_software_overheads
    from repro.sim.machine import EDISON

    meas = measure_software_overheads(iters=1000)
    print("== live calibration (SMP conduit) ==")
    print(f"  local shared access     {meas.local_access * 1e6:9.2f} us")
    print(f"  remote access (UPC++)   {meas.upcxx_remote * 1e6:9.2f} us")
    print(f"  remote access (UPC)     {meas.upc_remote * 1e6:9.2f} us")
    print(f"  async round trip        {meas.async_rtt * 1e6:9.2f} us")
    print(f"  bulk copy bandwidth     {meas.copy_bw / 1e9:9.2f} GB/s")
    print(f"  UPC/UPC++ ratio         {meas.upc_over_upcxx:9.3f}")
    fit = fitted_overheads(EDISON, meas)
    print(f"  refit upc fine-grained  "
          f"{fit['upc'].fine_grained * 1e6:9.3f} us (model scale)")
    print(f"  python->model scale     {fit['python_to_model_scale']:.2e}")
    print()


def export_metrics(path: str, ranks: int = 4, log2_table_size: int = 10,
                   updates_per_rank: int = 4096, reps: int = 3) -> dict:
    """GUPS smoke at every telemetry mode -> structured ``metrics.json``.

    Runs the same workload with telemetry off / flight / full
    (best-of-``reps`` to damp scheduler noise), records throughput,
    overhead ratios against the off baseline, aggregated
    :class:`~repro.gasnet.stats.CommStats`, and (for "full") the merged
    latency-histogram snapshots.  CI uploads the file as an artifact and
    asserts the telemetry-off overhead bound from it.
    """
    import functools
    import json

    import repro
    from repro.bench import gups
    from repro.gasnet.stats import aggregate
    from repro.telemetry import (
        finalize_snapshot, merge_snapshots, rank_snapshot,
    )

    out: dict = {
        "benchmark": "gups",
        "config": {
            "ranks": ranks,
            "log2_table_size": log2_table_size,
            "updates_per_rank": updates_per_rank,
            "variant": "upcxx",
            "reps": reps,
        },
        "modes": {},
    }
    # One throwaway run first: the initial world pays one-time costs
    # (imports, numpy warm-up, thread spin-up) that would otherwise be
    # charged entirely to whichever mode happens to run first.
    gups.run(ranks=ranks, log2_table_size=log2_table_size,
             updates_per_rank=updates_per_rank, variant="upcxx",
             verify=False)
    for mode in ("off", "flight", "full"):
        best = None
        world = None
        best_holder: dict = {}
        for _ in range(reps):
            holder: dict = {}

            def body(holder=holder, mode=mode):
                r = gups.random_access(
                    log2_table_size=log2_table_size,
                    updates_per_rank=updates_per_rank,
                    variant="upcxx",
                )
                if repro.myrank() == 0:
                    # Threads share the process: the world object (and
                    # its stats/telemetry) outlives the spmd region.
                    holder["world"] = repro.current_world()
                if mode == "full":
                    # Exercise the cluster metrics plane: every rank
                    # freezes its raw snapshot, then the tree allreduce
                    # folds them; the result must equal the offline fold
                    # of the frozen snapshots, bit for bit.
                    from repro.core.world import current as _cur

                    snap = rank_snapshot(_cur())
                    holder.setdefault("snaps", {})[repro.myrank()] = snap
                    merged = repro.current_world().metrics_reduce(
                        snapshot=snap)
                    if repro.myrank() == 0:
                        holder["cluster"] = merged
                return r

            res = repro.spmd(body, ranks=ranks, telemetry=mode)[0]
            if best is None or res.seconds < best.seconds:
                best = res
                world = holder["world"]
                best_holder = holder
        entry = {
            "seconds": best.seconds,
            "gups": best.gups,
            "updates": best.updates,
            "verified": best.verified,
            "conduit_ops": best.conduit_ops,
            "comm_stats": aggregate([r.stats for r in world.ranks]),
        }
        if mode == "full":
            entry["telemetry"] = world.telemetry.metrics()
            snaps = best_holder["snaps"]
            offline = finalize_snapshot(functools.reduce(
                merge_snapshots, (snaps[r] for r in sorted(snaps))))
            entry["cluster"] = {
                "merged": best_holder["cluster"],
                "metrics_reduce_ok": best_holder["cluster"] == offline,
            }
        out["modes"][mode] = entry
    base = out["modes"]["off"]["seconds"]
    for mode in ("off", "flight", "full"):
        out["modes"][mode]["overhead_vs_off"] = (
            out["modes"][mode]["seconds"] / base if base > 0 else 0.0
        )
    # End-to-end wall time of a threaded Python run is scheduler-noisy
    # (easily +-30% on shared CI machines); the *per-operation* conduit
    # cost is the stable signal, so measure it directly too — a tight
    # loop of remote batched atomics through the full wrapped stack.
    out["per_op_us"] = _per_op_microbench()
    for mode in ("off", "flight", "full"):
        out["per_op_us"][f"{mode}_overhead"] = (
            out["per_op_us"][mode] / out["per_op_us"]["off"]
        )
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")
    for mode, e in out["modes"].items():
        print(f"  telemetry={mode:<7} {e['seconds'] * 1e3:8.1f} ms  "
              f"{e['gups'] * 1e9:10.0f} updates/s  "
              f"overhead x{e['overhead_vs_off']:.3f}  "
              f"per-op {out['per_op_us'][mode]:.1f} us "
              f"(x{out['per_op_us'][mode + '_overhead']:.3f})")
    cluster = out["modes"]["full"]["cluster"]
    n_hists = len(cluster["merged"]["histograms"])
    print(f"  metrics_reduce: {n_hists} cluster histograms over ranks "
          f"{cluster['merged']['ranks']}, bit-identical to offline "
          f"fold: {cluster['metrics_reduce_ok']}")
    return out


def _per_op_microbench(iters: int = 200, reps: int = 3) -> dict:
    """Per-operation conduit latency (µs) at each telemetry mode.

    Rank 0 hammers rank 1 with indexed batched atomics; best-of-``reps``
    of the mean per-op time.  This isolates the telemetry wrapper's cost
    from thread-scheduling noise in end-to-end wall times.
    """
    import time as _time

    import numpy as np

    import repro

    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.uint64, size=1024, block=512)
        repro.barrier()
        per_op = None
        if me == 0:
            idx = np.arange(512, 768, dtype=np.int64)  # remote half
            vals = np.arange(256, dtype=np.uint64)
            t0 = _time.perf_counter()
            for _ in range(iters):
                sa.atomic_batch(idx, "xor", vals)
            per_op = (_time.perf_counter() - t0) / iters * 1e6
        repro.barrier()
        return per_op

    out = {}
    for mode in ("off", "flight", "full"):
        best = min(
            repro.spmd(body, ranks=2,
                       telemetry=None if mode == "off" else mode)[0]
            for _ in range(reps)
        )
        out[mode] = best
    return out


def export_kv(path: str, ranks: int = 4, conduit=None) -> dict:
    """KV workload smoke -> structured ``BENCH_4.json``.

    Runs :func:`repro.bench.kv_workload.run` and writes per-op
    p50/p99, throughput, coalescing ratio, cache hit rate, and the
    batched-vs-scalar microbenchmark.  CI uploads the file as an
    artifact (the start of the KV perf trajectory) and asserts the
    coalescing and speedup acceptance bounds from it.
    """
    import dataclasses
    import json

    from repro.bench import kv_workload

    r = kv_workload.run(ranks=ranks, conduit=conduit)
    out = dataclasses.asdict(r)
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")
    print(f"  {r.ops_per_sec:.0f} ops/s  "
          f"get p50/p99 {r.get_p50_us:.0f}/{r.get_p99_us:.0f} us  "
          f"hit rate {r.cache_hit_rate:.1%}  "
          f"coalescing {r.coalescing_ratio:.1f} keys/AM")
    print(f"  multi_get(1k): {r.ams_per_multi} AMs, "
          f"x{r.multi_speedup:.1f} vs per-key loop, "
          f"verified={r.verified}")
    return out


def export_collectives(path: str, ranks: int = 4,
                       iters: int = 40) -> dict:
    """Collectives microbenchmark -> structured ``BENCH_5.json``.

    Runs :func:`repro.bench.collectives.run` — tree barrier/allgather/
    alltoallv latency and per-rank AM counts vs the re-created
    centralized-rendezvous baseline, plus sample-sort phase spans — and
    writes the result.  CI uploads the file and asserts the op-count
    bounds (``bounds`` must be all-true).
    """
    import dataclasses
    import json

    from repro.bench import collectives as collbench

    r = collbench.run(ranks=ranks, iters=iters)
    out = dataclasses.asdict(r)
    out["bounds_ok"] = r.bounds_ok
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")
    print(f"  barrier: {r.barrier['us']:.0f} us, "
          f"{r.barrier['coll_ams_per_rank']:.0f} AMs/rank "
          f"(ceil(log2 {r.ranks}) = {r.log2_ranks})")
    for key, row in r.allgather.items():
        base = r.centralized[key]["us"]
        print(f"  allgather {key:>6}B: {row['us']:.0f} us "
              f"({row['coll_ams_per_rank']:.0f} AMs/rank)  "
              f"centralized {base:.0f} us  x{r.speedup[key]:.2f}")
    for key, row in r.alltoallv.items():
        print(f"  alltoallv {key:>6}B: {row['us']:.0f} us "
              f"({row['coll_ams_per_rank']:.0f} AMs/rank, "
              f"bound {r.ranks - 1})")
    print(f"  bounds: {r.bounds} -> "
          f"{'PASS' if r.bounds_ok else 'FAIL'}")
    return out


def export_serde(path: str, ranks: int = 4) -> dict:
    """Serialization microbenchmark -> structured ``BENCH_6.json``.

    Runs :func:`repro.bench.serde.run` — the identical AM/KV/GUPS
    workload under the forced-pickle baseline and the wire codec —
    and writes per-mode p50s, speedups, ser/deser histogram p50s, and
    the fixed-layout hit rate.  CI uploads the file and asserts the
    speedup and hit-rate acceptance bounds (``bounds`` must be
    all-true).
    """
    import dataclasses
    import json

    from repro.bench import serde

    r = serde.run(ranks=ranks)
    out = dataclasses.asdict(r)
    out["bounds"] = r.bounds
    out["bounds_ok"] = r.bounds_ok
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")
    print(f"  send_am p50: pickle {r.send_am_p50_us['pickle']:.0f} us, "
          f"codec {r.send_am_p50_us['codec']:.0f} us "
          f"(x{r.send_am_speedup:.2f})")
    print(f"  kv_get  p50: pickle {r.kv_get_p50_us['pickle']:.1f} us/key, "
          f"codec {r.kv_get_p50_us['codec']:.1f} us/key "
          f"(x{r.kv_get_speedup:.2f})")
    print(f"  gups ratio x{r.gups_ratio:.2f}  "
          f"ser/deser p50 {r.ser_p50_us:.1f}/{r.deser_p50_us:.1f} us")
    print(f"  fixed-layout {r.wire_fixed}/{r.wire_frames} "
          f"({r.wire_fixed_rate:.1%}), "
          f"{r.pickle_fallbacks} pickle fallbacks")
    print(f"  bounds: {r.bounds} -> "
          f"{'PASS' if r.bounds_ok else 'FAIL'}")
    return out


def export_failover(path: str, ranks: int = 4) -> dict:
    """Kill-mid-workload failover benchmark -> ``BENCH_7.json``.

    Runs :func:`repro.bench.kv_workload.run_failover` — a replicated
    map under ``ReliableConduit(ChaosConduit)`` with a victim rank
    partitioned mid-workload — and writes acked-write loss, failover
    latency percentiles, promotion count, replication
    write-amplification, pre/post-kill throughput, and the seeded
    fault schedule.  CI uploads the file and asserts zero loss, at
    least one promotion, the recovered-throughput floor, and the
    failover-latency bound.
    """
    import dataclasses
    import json

    from repro.bench import kv_workload

    r = kv_workload.run_failover(ranks=ranks, telemetry="full")
    out = dataclasses.asdict(r)
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path}")
    print(f"  acked writes {r.acked_writes}, lost {r.lost_writes}, "
          f"failovers {r.failovers}, promotions {r.promotions}")
    print(f"  failover p50/p99 {r.failover_p50_ms:.2f}/"
          f"{r.failover_p99_ms:.2f} ms  "
          f"detect stall {r.detect_stall_ms:.0f} ms")
    print(f"  write amp x{r.write_amplification:.2f}  "
          f"throughput pre {r.pre_kill_ops_per_sec:.0f} -> recovered "
          f"{r.recovered_ops_per_sec:.0f} ops/s "
          f"(ratio {r.recovery_ratio:.2f})")
    print(f"  {len(r.fault_schedule['faults'])} injected faults "
          f"(seed {r.fault_schedule['seed']}), "
          f"verified={r.verified}")
    return out


def export_tracing(path: str, ranks: int = 4, keys: int = 512,
                   ops_per_rank: int = 300, seed: int = 13) -> dict:
    """Traced zipf KV run under chaos -> ``BENCH_8.json`` + flow trace.

    Every rank runs a zipf-skewed get/put mix against a replicated
    :class:`~repro.containers.DistHashMap` over
    ``ReliableConduit(ChaosConduit)`` with full telemetry: client ops
    open root spans, the trace context rides every AM's wire trailer,
    and handler/replication/retransmit work joins the originating
    trace.  Writes trace/flow counts plus a per-op tracing-overhead
    microbench, and a Perfetto export (``<path>.perfetto.json`` next to
    the JSON) whose kv traces render as flow arrows across rank tracks.
    CI uploads both and asserts at least one cross-rank kv flow and the
    tracing overhead bound.
    """
    import json
    import os
    import time as _time

    import numpy as np

    import repro
    from repro.gasnet.chaos import ChaosConduit
    from repro.telemetry import to_perfetto, write_perfetto

    def run_workload(telemetry):
        conduit = ChaosConduit(seed=seed, am_drop_rate=0.03,
                               am_dup_rate=0.01, am_reorder_rate=0.02)
        holder: dict = {}

        def body():
            me, n = repro.myrank(), repro.ranks()
            if me == 0:
                holder["world"] = repro.current_world()
            rng = np.random.default_rng((seed << 8) ^ me)
            m = repro.DistHashMap(replicas=1)
            keyspace = [f"tr:{i:05d}" for i in range(keys)]
            m.multi_put({k: 0 for i, k in enumerate(keyspace)
                         if i % n == me})
            repro.barrier()
            t0 = _time.perf_counter()
            for _ in range(ops_per_rank):
                i = int(rng.zipf(1.5) - 1) % keys
                if rng.random() < 0.5:
                    m.get(keyspace[i])
                else:
                    m.put(keyspace[i], int(rng.integers(1 << 30)))
            secs = _time.perf_counter() - t0
            repro.barrier()
            return secs

        secs = repro.spmd(
            body, ranks=ranks, conduit=conduit,
            reliability={"seed": seed, "peer_timeout": 2.0,
                         "heartbeat_period": 0.05},
            telemetry=telemetry, timeout=180.0,
        )
        return max(secs), holder["world"], conduit

    off_s, _w, _c = run_workload(None)
    full_s, world, conduit = run_workload("full")

    spans = world.telemetry.all_spans()
    by_trace: dict[int, list] = {}
    for s in spans:
        if s.trace_id:
            by_trace.setdefault(s.trace_id, []).append(s)
    cross = {t for t, ss in by_trace.items()
             if len({s.rank for s in ss}) >= 2}
    retrans_traces = {s.trace_id for s in spans
                      if s.name.startswith("retransmit:") and s.trace_id}

    data = to_perfetto(telemetry=world.telemetry)
    flow_pids: dict[int, set] = {}
    flow_names: dict[int, str] = {}
    for e in data["traceEvents"]:
        if e["ph"] in ("s", "t", "f"):
            flow_pids.setdefault(e["id"], set()).add(e["pid"])
            flow_names[e["id"]] = e["name"]
    cross_flows = [fid for fid, pids in flow_pids.items()
                   if len(pids) >= 2]
    kv_cross_flows = [fid for fid in cross_flows
                      if flow_names[fid].startswith("kv_")]

    trace_path = os.path.splitext(path)[0] + ".perfetto.json"
    write_perfetto(trace_path, telemetry=world.telemetry)

    out = {
        "benchmark": "kv_tracing",
        "config": {"ranks": ranks, "keys": keys,
                   "ops_per_rank": ops_per_rank, "seed": seed,
                   "am_drop_rate": 0.03, "replicas": 1},
        "seconds": {"off": off_s, "full": full_s},
        "trace_overhead": full_s / off_s if off_s > 0 else 0.0,
        "per_op_us": _per_op_traced_microbench(),
        "traces": len(by_trace),
        "cross_rank_traces": len(cross),
        "retransmit_traces": len(retrans_traces),
        "retransmit_traces_cross_rank": len(retrans_traces & cross),
        "flows": {"total": len(flow_pids),
                  "cross_rank": len(cross_flows),
                  "kv_cross_rank": len(kv_cross_flows)},
        "chaos_faults": len(conduit.fault_log),
        "trace_file": trace_path,
    }
    out["per_op_us"]["traced_overhead"] = (
        out["per_op_us"]["full"] / out["per_op_us"]["off"]
        if out["per_op_us"]["off"] > 0 else 0.0
    )
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path} (+ {trace_path})")
    print(f"  {out['traces']} traces, {out['cross_rank_traces']} "
          f"cross-rank, {out['retransmit_traces']} with retransmits "
          f"({out['retransmit_traces_cross_rank']} cross-rank)")
    print(f"  flows: {out['flows']['total']} total, "
          f"{out['flows']['cross_rank']} cross-rank, "
          f"{out['flows']['kv_cross_rank']} kv cross-rank")
    print(f"  wall overhead x{out['trace_overhead']:.3f} "
          f"(chaos workload)  per-op traced "
          f"{out['per_op_us']['full']:.1f} us "
          f"(x{out['per_op_us']['traced_overhead']:.3f} vs off)")
    return out


def _per_op_traced_microbench(iters: int = 150, reps: int = 3) -> dict:
    """Per-op cost (µs) of a *traced* remote kv put vs telemetry off.

    A clean SMP conduit (no chaos, no reliability) so the delta is
    exactly the tracing plane: root span, id minting, 16-byte wire
    trailer, handler rebinding, span recording.
    """
    import time as _time

    import repro

    def body():
        me = repro.myrank()
        m = repro.DistHashMap()
        repro.barrier()
        per_op = None
        if me == 0:
            remote = [k for k in (f"po:{i}" for i in range(64))
                      if m.shard_of_key(k) == 1][:8]
            for k in remote:
                m.put(k, 0)  # warm the shard
            t0 = _time.perf_counter()
            for i in range(iters):
                m.put(remote[i % len(remote)], i)
            per_op = (_time.perf_counter() - t0) / iters * 1e6
        repro.barrier()
        return per_op

    out = {}
    for mode in ("off", "full"):
        out[mode] = min(
            repro.spmd(body, ranks=2,
                       telemetry=None if mode == "off" else mode)[0]
            for _ in range(reps)
        )
    return out


def export_conduits(path: str, ranks: int = 4,
                    log2_table_size: int = 10,
                    updates_per_rank: int = 1024,
                    kv_keys: int = 1024, kv_ops: int = 600,
                    reps: int = 2) -> dict:
    """SMP (threads) vs proc (processes) comparison -> ``BENCH_9.json``.

    Runs the same GUPS and KV workloads over both conduit backends at
    the same rank count and records throughput plus the proc/smp
    speedup ratio.  The proc backend's win is real parallelism: rank
    bodies are Python, so threads serialize on the GIL while processes
    do not — but only when there are cores to run them on, so the
    machine's ``cpu_count`` is recorded alongside (a 1-core container
    legitimately shows no speedup).
    """
    import json
    import os as _os

    from repro.bench import gups, kv_workload

    cpus = _os.cpu_count() or 1
    out: dict = {
        "benchmark": "conduit_comparison",
        "config": {
            "ranks": ranks, "log2_table_size": log2_table_size,
            "updates_per_rank": updates_per_rank,
            "kv_keys": kv_keys, "kv_ops_per_rank": kv_ops, "reps": reps,
        },
        "cpu_count": cpus,
        "conduits": {},
    }
    for name in ("smp", "proc"):
        best_g = None
        for _ in range(reps):
            g = gups.run(ranks=ranks, log2_table_size=log2_table_size,
                         updates_per_rank=updates_per_rank,
                         variant="upcxx", conduit=name)
            if best_g is None or g.seconds < best_g.seconds:
                best_g = g
        best_kv = None
        for _ in range(reps):
            kv = kv_workload.run(ranks=ranks, keys=kv_keys,
                                 ops_per_rank=kv_ops,
                                 microbench_keys=200, conduit=name)
            if best_kv is None or kv.ops_per_sec > best_kv.ops_per_sec:
                best_kv = kv
        out["conduits"][name] = {
            "gups": {
                "seconds": best_g.seconds,
                "updates_per_sec": best_g.gups * 1e9,
                "verified": best_g.verified,
            },
            "kv": {
                "ops_per_sec": best_kv.ops_per_sec,
                "get_p50_us": best_kv.get_p50_us,
                "get_p99_us": best_kv.get_p99_us,
                "verified": best_kv.verified,
            },
        }
    smp, proc = out["conduits"]["smp"], out["conduits"]["proc"]
    out["speedup_proc_over_smp"] = {
        "gups": (proc["gups"]["updates_per_sec"]
                 / smp["gups"]["updates_per_sec"]
                 if smp["gups"]["updates_per_sec"] > 0 else 0.0),
        "kv": (proc["kv"]["ops_per_sec"] / smp["kv"]["ops_per_sec"]
               if smp["kv"]["ops_per_sec"] > 0 else 0.0),
    }
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path} (cpu_count={cpus})")
    for name, e in out["conduits"].items():
        print(f"  {name:<5} gups {e['gups']['updates_per_sec']:10.0f} "
              f"updates/s  kv {e['kv']['ops_per_sec']:8.0f} ops/s  "
              f"verified={e['gups']['verified'] and e['kv']['verified']}")
    s = out["speedup_proc_over_smp"]
    print(f"  proc/smp speedup: gups x{s['gups']:.2f}, kv x{s['kv']:.2f}"
          + ("  (1 core: no parallel win expected)" if cpus < 2 else ""))
    return out


def _bench_ping_handler(ctx, am) -> None:
    ctx.reply(am)


def _register_bench_ping() -> None:
    """Register the ping handler exactly once (import-time, so the proc
    launcher interns it into the pre-fork agreed handler prefix)."""
    from repro.gasnet.am import am_handler, handler_registry

    if "__bench_ping__" not in handler_registry:
        am_handler("__bench_ping__")(_bench_ping_handler)


_register_bench_ping()


def _am_lat_body(iters: int, warmup: int):
    """SPMD body for the AM ping-pong microbench: rank 0 round-trips a
    handler-level AM to rank 1 (reply sent from inside the handler, so
    the measurement is the AM substrate, not the async-task machinery)."""
    import time as _time

    import repro
    from repro.core import world as _w

    r = repro.myrank()
    repro.barrier()
    ctx = _w._tls.ctx
    lats: list[float] = []
    if r == 0:
        for _ in range(warmup):
            ctx.send_am(1, "__bench_ping__", expect_reply=True).get()
        for _ in range(iters):
            t0 = _time.perf_counter()
            ctx.send_am(1, "__bench_ping__", expect_reply=True).get()
            lats.append(_time.perf_counter() - t0)
    repro.barrier()
    ring = {k: v for k, v in ctx.stats.snapshot().items()
            if k.startswith("wire_ring_")}
    return lats, ring


def _lat_summary(lats: list[float]) -> dict:
    lats = sorted(lats)
    n = len(lats)
    return {
        "samples": n,
        "p50_us": lats[n // 2] * 1e6,
        "p90_us": lats[min(n - 1, int(n * 0.90))] * 1e6,
        "p99_us": lats[min(n - 1, int(n * 0.99))] * 1e6,
        "mean_us": sum(lats) / n * 1e6,
    }


def export_am_lat(path: str, iters: int = 500, warmup: int = 50,
                  ranks: int = 4, log2_table_size: int = 10,
                  updates_per_rank: int = 1024,
                  kv_keys: int = 1024, kv_ops: int = 600,
                  reps: int = 5) -> dict:
    """AM round-trip latency per transport + conduit comparison ->
    ``BENCH_10.json``.

    The ping-pong runs at 2 ranks (one directed pair — latency, not
    contention); the GUPS/KV comparison runs at ``ranks`` over smp,
    proc+ring, and proc+socket so the ring transport's win (or, on a
    starved machine, its honest non-win) is attributable.  As with
    BENCH_9, ``cpu_count`` is recorded: the proc-vs-smp *throughput*
    comparison only means something with cores to run on, while the
    ring-vs-socket *latency* comparison holds on any machine.
    """
    import json
    import os as _os

    import repro
    from repro.bench import gups, kv_workload

    cpus = _os.cpu_count() or 1
    out: dict = {
        "benchmark": "am_latency_and_conduits",
        "config": {
            "iters": iters, "warmup": warmup, "lat_ranks": 2,
            "ranks": ranks, "log2_table_size": log2_table_size,
            "updates_per_rank": updates_per_rank,
            "kv_keys": kv_keys, "kv_ops_per_rank": kv_ops, "reps": reps,
        },
        "cpu_count": cpus,
        "am_lat": {},
        "conduits": {},
    }
    for name in ("smp", "proc+ring", "proc+socket"):
        # Median across repetitions (latency convention: a lucky rep
        # must not define a transport's number), percentile tails from
        # the median rep.
        summaries = []
        ring_counters: dict = {}
        for _ in range(reps):
            results = repro.spmd(_am_lat_body, ranks=2,
                                 args=(iters, warmup), conduit=name,
                                 timeout=300.0)
            lats, ring = results[0]
            summaries.append(_lat_summary(lats))
            ring_counters = ring
        summaries.sort(key=lambda s: s["p50_us"])
        entry = dict(summaries[len(summaries) // 2])
        entry["rep_p50s_us"] = [s["p50_us"] for s in summaries]
        if name == "proc+ring":
            entry["ring_counters"] = ring_counters
        out["am_lat"][name] = entry
    # Throughput runs are best-of (not median), so extra reps only add
    # wall time; cap them while the latency medians get the full count.
    tp_reps = min(reps, 3)
    for name in ("smp", "proc+ring", "proc+socket"):
        best_g = None
        for _ in range(tp_reps):
            g = gups.run(ranks=ranks, log2_table_size=log2_table_size,
                         updates_per_rank=updates_per_rank,
                         variant="upcxx", conduit=name)
            if best_g is None or g.seconds < best_g.seconds:
                best_g = g
        best_kv = None
        for _ in range(tp_reps):
            kv = kv_workload.run(ranks=ranks, keys=kv_keys,
                                 ops_per_rank=kv_ops,
                                 microbench_keys=200, conduit=name)
            if best_kv is None or kv.ops_per_sec > best_kv.ops_per_sec:
                best_kv = kv
        out["conduits"][name] = {
            "gups": {
                "seconds": best_g.seconds,
                "updates_per_sec": best_g.gups * 1e9,
                "verified": best_g.verified,
            },
            "kv": {
                "ops_per_sec": best_kv.ops_per_sec,
                "get_p50_us": best_kv.get_p50_us,
                "get_p99_us": best_kv.get_p99_us,
                "verified": best_kv.verified,
            },
        }
    ring_p50 = out["am_lat"]["proc+ring"]["p50_us"]
    sock_p50 = out["am_lat"]["proc+socket"]["p50_us"]
    smp_gups = out["conduits"]["smp"]["gups"]["updates_per_sec"]
    ring_gups = out["conduits"]["proc+ring"]["gups"]["updates_per_sec"]
    out["speedups"] = {
        "ring_am_p50_vs_socket": sock_p50 / ring_p50 if ring_p50 else 0.0,
        "ring_gups_vs_smp": ring_gups / smp_gups if smp_gups else 0.0,
    }
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {path} (cpu_count={cpus})")
    for name, e in out["am_lat"].items():
        print(f"  {name:<12} am rtt p50 {e['p50_us']:8.1f} us  "
              f"p99 {e['p99_us']:8.1f} us")
    for name, e in out["conduits"].items():
        print(f"  {name:<12} gups {e['gups']['updates_per_sec']:10.0f} "
              f"updates/s  kv {e['kv']['ops_per_sec']:8.0f} ops/s")
    s = out["speedups"]
    print(f"  ring vs socket am p50: x{s['ring_am_p50_vs_socket']:.2f}; "
          f"ring vs smp gups: x{s['ring_gups_vs_smp']:.2f}"
          + ("  (1 core: no parallel win expected)" if cpus < 2 else ""))
    return out


def export_perfetto(path: str, ranks: int = 4,
                    keys_per_rank: int = 2048) -> None:
    """4-rank sample sort -> Chrome/Perfetto ``trace_event`` JSON.

    Runs :func:`repro.bench.sample_sort.sample_sort` under both a
    :class:`~repro.gasnet.trace.Trace` (per-op instants) and full
    telemetry (finish/task spans, latency histograms); merges them into
    one trace loadable at ui.perfetto.dev.
    """
    import repro
    from repro.bench.sample_sort import sample_sort
    from repro.gasnet.trace import Trace
    from repro.telemetry import write_perfetto

    holder: dict = {}

    def body():
        me = repro.myrank()
        trace = None
        if me == 0:
            # One trace wraps the shared world conduit: it sees every
            # rank's operations, not just rank 0's.
            trace = Trace(repro.current_world())
            trace.__enter__()
            holder["trace"] = trace
            holder["world"] = repro.current_world()
        repro.barrier()
        result = sample_sort(keys_per_rank=keys_per_rank, variant="upcxx")
        repro.barrier()
        if me == 0:
            trace.__exit__(None, None, None)
        return result.verified

    oks = repro.spmd(body, ranks=ranks, telemetry="full")
    write_perfetto(path, trace=holder["trace"],
                   telemetry=holder["world"].telemetry)
    n_ev = len(holder["trace"].events)
    print(f"wrote {path} ({n_ev} trace events, "
          f"{len(holder['world'].telemetry.all_spans())} spans, "
          f"verified={all(oks)})")


ARTIFACTS = {
    "table3": print_table3,
    "fig1": print_fig1,
    "fig3": print_fig3,
    "fig4": print_fig4,
    "table4": print_table4,
    "fig5": print_fig5,
    "fig6": print_fig6,
    "fig7": print_fig7,
    "fig8": print_fig8,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument("artifacts", nargs="*",
                        help=f"subset of {sorted(ARTIFACTS)} (default: all)")
    parser.add_argument("--validate-ranks", type=int, default=0,
                        help="also run real small-scale validation at N ranks")
    parser.add_argument("--charts", action="store_true",
                        help="render ascii charts of each figure")
    parser.add_argument("--calibrate", action="store_true",
                        help="measure this library's live software "
                             "overheads and the refit model parameters")
    parser.add_argument("--metrics", metavar="PATH",
                        help="run the GUPS smoke at telemetry off/flight/"
                             "full and write histograms + CommStats + "
                             "overhead ratios as JSON")
    parser.add_argument("--perfetto", metavar="PATH",
                        help="run a traced sample sort and write a "
                             "Chrome/Perfetto trace_event JSON")
    parser.add_argument("--kv", metavar="PATH",
                        help="run the DistHashMap KV workload and write "
                             "per-op p50/p99, coalescing ratio and cache "
                             "hit rate as JSON")
    parser.add_argument("--collectives", metavar="PATH",
                        help="run the collectives microbenchmark (tree "
                             "vs centralized, AM counts, sample-sort "
                             "phase spans) and write JSON")
    parser.add_argument("--serde", metavar="PATH",
                        help="run the serialization microbenchmark "
                             "(wire codec vs forced-pickle baseline) "
                             "and write per-mode p50s, speedups and "
                             "the fixed-layout hit rate as JSON")
    parser.add_argument("--failover", metavar="PATH",
                        help="run the replicated-map kill-mid-workload "
                             "failover benchmark and write acked-write "
                             "loss, failover percentiles, write "
                             "amplification and the fault schedule as "
                             "JSON")
    parser.add_argument("--tracing", metavar="PATH",
                        help="run the traced zipf KV workload under "
                             "chaos, write trace/flow counts and the "
                             "tracing-overhead microbench as JSON plus "
                             "a Perfetto flow trace alongside")
    parser.add_argument("--conduit",
                        choices=("smp", "proc", "proc+ring", "proc+socket"),
                        default=None,
                        help="conduit backend for the conduit-parametric "
                             "runs (--validate-ranks GUPS, --kv): smp = "
                             "ranks as threads, proc = ranks as OS "
                             "processes over shared memory (+ring/+socket "
                             "pins the proc AM transport)")
    parser.add_argument("--conduits", metavar="PATH",
                        help="run GUPS + KV over both the smp and proc "
                             "backends and write throughput plus the "
                             "proc/smp speedup ratios as JSON")
    parser.add_argument("--am-lat", metavar="PATH", dest="am_lat",
                        help="run the AM ping-pong latency microbench "
                             "over smp/proc+ring/proc+socket plus the "
                             "per-transport GUPS/KV comparison and write "
                             "round-trip percentiles, ring counters and "
                             "speedup ratios as JSON")
    args = parser.parse_args(argv)
    global _CHARTS
    _CHARTS = args.charts
    if (args.metrics or args.perfetto or args.kv or args.collectives
            or args.serde or args.failover or args.tracing
            or args.conduits or args.am_lat):
        if args.metrics:
            export_metrics(args.metrics,
                           ranks=args.validate_ranks or 4)
        if args.perfetto:
            export_perfetto(args.perfetto,
                            ranks=args.validate_ranks or 4)
        if args.kv:
            export_kv(args.kv, ranks=args.validate_ranks or 4,
                      conduit=args.conduit)
        if args.conduits:
            export_conduits(args.conduits,
                            ranks=args.validate_ranks or 4)
        if args.am_lat:
            export_am_lat(args.am_lat,
                          ranks=args.validate_ranks or 4)
        if args.collectives:
            export_collectives(args.collectives,
                               ranks=args.validate_ranks or 4)
        if args.serde:
            export_serde(args.serde, ranks=args.validate_ranks or 4)
        if args.failover:
            export_failover(args.failover,
                            ranks=args.validate_ranks or 4)
        if args.tracing:
            export_tracing(args.tracing,
                           ranks=args.validate_ranks or 4)
        if not (args.artifacts or args.calibrate or args.validate_ranks):
            return 0
    wanted = args.artifacts or list(ARTIFACTS)
    for name in wanted:
        if name not in ARTIFACTS:
            print(f"unknown artifact {name!r}; known: {sorted(ARTIFACTS)}")
            return 2
        ARTIFACTS[name]()
    if args.calibrate:
        print_calibration()
    if args.validate_ranks:
        print("== real small-scale validation ==")
        for k, ok in validate(args.validate_ranks,
                              conduit=args.conduit).items():
            print(f"  {k:<22} {'PASS' if ok else 'FAIL'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
