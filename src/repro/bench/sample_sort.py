"""Sample Sort — paper §V-C.

Sorts a distributed array of 64-bit keys with the classic sample sort
(Frazer & McKellar):

1. keys are generated with a Mersenne-Twister-family generator into a
   globally shared array (one slab per rank);
2. each rank samples random *global* keys (fine-grained shared-array
   reads — the paper's code excerpt), rank 0 sorts the candidates and
   selects P-1 splitters, broadcast to all;
3. keys are partitioned by splitter and redistributed;
4. each rank quick-sorts its received keys.

Variants differ in the redistribution transport:

* ``upcxx`` — non-blocking **one-sided** puts into remote landing
  buffers at offsets agreed through a counts exchange, completed with a
  single ``async_copy_fence`` (the paper's "handle-less" style);
* ``upc`` — ``upc_memput`` transfers through the UPC veneer.

Verification: the concatenation of per-rank outputs must be a sorted
permutation of the inputs — checked via per-rank sortedness, boundary
ordering between ranks, and conservation of key counts/sum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro
from repro.compat import upc
from repro.util.rng import mt_seed_for_rank


@dataclass
class SortResult:
    variant: str
    total_keys: int
    seconds: float
    verified: bool
    max_skew: float  # max over ranks of received/expected keys

    @property
    def tb_per_min(self) -> float:
        return self.total_keys * 8 / self.seconds * 60.0 / 1e12


def _select_splitters(keys: repro.SharedArray, oversample: int,
                      seed: int) -> np.ndarray:
    """Phase 2: sample the key space, agree on P-1 splitters."""
    me, n = repro.myrank(), repro.ranks()
    rng = mt_seed_for_rank(seed + 7, me)
    candidates = np.empty(oversample, dtype=np.uint64)
    for i in range(oversample):
        s = int(rng.integers(0, len(keys)))
        candidates[i] = keys[s]  # global fine-grained accesses (paper)
    allc = repro.collectives.gather(candidates, root=0)
    if me == 0:
        flat = np.sort(np.concatenate(allc))
        # every P-th quantile of the oversampled candidates
        picks = [flat[(i + 1) * len(flat) // n] for i in range(n - 1)]
        splitters = np.asarray(picks, dtype=np.uint64)
    else:
        splitters = None
    return repro.collectives.bcast(splitters, root=0)


def _redistribute_one_sided(sorted_mine: np.ndarray, bounds: np.ndarray):
    """Phase 3, UPC++ style: counts exchange, then one-sided puts.

    The counts allgather is launched non-blocking and overlapped with
    materializing the per-destination partitions — the paper's
    communication/computation overlap idiom, here on a collective.
    """
    me, n = repro.myrank(), repro.ranks()
    edges = np.concatenate(([0], bounds, [len(sorted_mine)]))
    counts = np.diff(edges).tolist()
    # Every rank learns the full counts matrix -> offsets are computable
    # locally and the data motion itself needs no handshakes.
    fut = repro.collectives.allgather_async(counts)
    parts = [np.ascontiguousarray(p)
             for p in np.split(sorted_mine, bounds)]
    matrix = np.asarray(fut.get())  # [src][dst]
    incoming = int(matrix[:, me].sum())
    recv = repro.allocate(me, max(incoming, 1), np.uint64)
    dirn = repro.Directory()
    dirn.publish_and_sync(recv)
    for dst in range(n):
        if counts[dst] == 0:
            continue
        base = dirn.lookup(dst)
        offset = int(matrix[:me, dst].sum())
        # one-sided: put my partition into dst's landing zone
        (base + offset).put(parts[dst])
    repro.async_copy_fence()
    repro.barrier()
    out = recv.local(incoming).copy() if incoming else np.empty(
        0, dtype=np.uint64
    )
    repro.barrier()
    repro.deallocate(recv)
    return out


def _redistribute_upc(mine: np.ndarray, parts: list[np.ndarray]):
    """Phase 3, UPC style: upc_memput through the veneer."""
    me, n = repro.myrank(), repro.ranks()
    counts = [len(p) for p in parts]
    matrix = np.asarray(repro.collectives.allgather(counts))
    incoming = int(matrix[:, me].sum())
    recv = repro.allocate(me, max(incoming, 1), np.uint64)
    dirn = repro.Directory()
    dirn.publish_and_sync(recv)
    for dst in range(n):
        if counts[dst] == 0:
            continue
        base = dirn.lookup(dst)
        offset = int(matrix[:me, dst].sum())
        upc.upc_memput(base + offset, parts[dst], counts[dst] * 8)
    upc.upc_barrier()
    out = recv.local(incoming).copy() if incoming else np.empty(
        0, dtype=np.uint64
    )
    repro.barrier()
    repro.deallocate(recv)
    return out


def sample_sort(keys_per_rank: int = 4096, variant: str = "upcxx",
                oversample: int = 32, seed: int = 12345,
                verify: bool = True) -> SortResult:
    """SPMD body; returns the rank-local result object."""
    me, n = repro.myrank(), repro.ranks()
    total = keys_per_rank * n

    # Phase 1: generate keys into the shared array.
    keys = repro.SharedArray(np.uint64, size=total, block=keys_per_rank)
    rng = mt_seed_for_rank(seed, me)
    mine = rng.integers(0, 1 << 63, size=keys_per_rank, dtype=np.uint64)
    keys.local_view()[:keys_per_rank] = mine
    repro.barrier()

    # Phase spans land in the telemetry span log (no-ops when telemetry
    # is not "full") so a Perfetto export shows the sort's anatomy:
    # splitters / partition / redistribute / merge nested under the
    # timed region.
    tel = repro.current_world().ranks[me].telemetry

    t0 = time.perf_counter()
    splitters = _select_splitters(keys, oversample, seed)
    tel.record_span("sort:splitters", t0, time.perf_counter() - t0)

    # partition local keys by splitter (vectorized)
    tp = time.perf_counter()
    order = np.argsort(mine, kind="stable")
    sorted_mine = mine[order]
    bounds = np.searchsorted(sorted_mine, splitters, side="right")
    tel.record_span("sort:partition", tp, time.perf_counter() - tp)

    tr = time.perf_counter()
    if variant == "upcxx":
        received = _redistribute_one_sided(sorted_mine, bounds)
    elif variant == "upc":
        received = _redistribute_upc(mine, np.split(sorted_mine, bounds))
    else:
        raise ValueError(f"unknown variant {variant!r}")
    tel.record_span("sort:redistribute", tr, time.perf_counter() - tr)

    tm = time.perf_counter()
    result = np.sort(received, kind="quicksort")
    tel.record_span("sort:merge", tm, time.perf_counter() - tm)
    repro.barrier()
    dt = time.perf_counter() - t0
    tel.record_span("sort:total", t0, dt,
                    detail=f"{total} keys, variant={variant}")

    verified = True
    if verify:
        ok_sorted = bool(np.all(np.diff(result.astype(np.int64)) >= 0)) \
            if len(result) > 1 else True
        lo = int(result[0]) if len(result) else None
        hi = int(result[-1]) if len(result) else None
        # Two independent collectives in flight at once (allgather of
        # the per-rank digests + allreduce of the input checksum); both
        # futures complete through the same advance() progress.
        edges_f = repro.collectives.allgather_async(
            (lo, hi, len(result),
             int(result.sum(dtype=np.uint64)) if len(result) else 0))
        in_sum_f = repro.collectives.allreduce_async(
            int(mine.sum(dtype=np.uint64)) & ((1 << 64) - 1)
        )
        edges = edges_f.get()
        ok_global = True
        prev_hi = None
        for lo_i, hi_i, cnt, _s in edges:
            if cnt == 0:
                continue
            if prev_hi is not None and lo_i < prev_hi:
                ok_global = False
            prev_hi = hi_i
        total_count = sum(c for _l, _h, c, _s in edges)
        in_sum = in_sum_f.get()
        out_sum = sum(s for _l, _h, _c, s in edges)
        ok_conserved = (total_count == total
                        and (in_sum & ((1 << 64) - 1))
                        == (out_sum & ((1 << 64) - 1)))
        verified = bool(repro.collectives.allreduce(
            int(ok_sorted and ok_global and ok_conserved), op="min"
        ))

    skew = repro.collectives.allreduce(
        len(result) / keys_per_rank, op="max"
    )
    return SortResult(
        variant=variant, total_keys=total, seconds=dt,
        verified=verified, max_skew=skew,
    )


def run(ranks: int = 4, keys_per_rank: int = 4096,
        variant: str = "upcxx", verify: bool = True) -> SortResult:
    """Launch in a fresh SPMD world; returns rank 0's result."""
    return repro.spmd(
        sample_sort, ranks=ranks,
        kwargs=dict(keys_per_rank=keys_per_rank, variant=variant,
                    verify=verify),
    )[0]
