"""Random Access (GUPS) — paper §V-A.

The HPCC Random Access benchmark: a table of 2^k 64-bit words in a
globally shared array; each thread applies xor updates at indices drawn
from the HPCC polynomial sequence.  The paper's main loop is::

    shared_array<uint64_t> Table(TableSize);
    for (i = MYTHREAD; i < NUPDATE; i += THREADS) {
        ran = (ran << 1) ^ ((int64_t)ran < 0 ? POLY : 0);
        Table[ran & (TableSize-1)] ^= ran;
    }

Three variants exercise the programming models' access paths:

* ``upcxx`` — the batched :class:`repro.SharedArray` path: updates are
  issued in windows of :data:`BATCH_WINDOW` through
  ``SharedArray.atomic_batch`` (one conduit op per owning rank per
  window — HPCC permits up to 1024 updates of look-ahead);
* ``upcxx-element`` — the per-element baseline (global pointer +
  one-sided atomic xor per update), kept for coalescing comparisons;
* ``upc`` — the :mod:`repro.compat.upc` veneer (phase-ful pointer
  arithmetic resolving each global index).

Verification follows HPCC: applying the identical update sequence a
second time restores the table to its initial contents (xor is an
involution; our updates are atomic so the check is exact).
"""

from __future__ import annotations

from dataclasses import dataclass
import time

import numpy as np

import repro
from repro.compat import upc

#: HPCC polynomial for the update stream.
POLY = 0x0000000000000007
_MASK64 = (1 << 64) - 1

#: Updates per atomic_batch window in the ``upcxx`` variant (HPCC's
#: rules allow a look-ahead of up to 1024 updates).
BATCH_WINDOW = 256


def hpcc_stream(start: int, count: int) -> np.ndarray:
    """``count`` values of the HPCC random sequence from ``start``."""
    out = np.empty(count, dtype=np.uint64)
    ran = start & _MASK64
    for i in range(count):
        ran = ((ran << 1) & _MASK64) ^ (POLY if ran & (1 << 63) else 0)
        out[i] = ran
    return out


def hpcc_starts(n: int) -> int:
    """The n-th value of the HPCC random sequence, by GF(2) jumping.

    This is the reference implementation's ``HPCC_starts``: squaring the
    step matrix lets every rank start at a far-apart, well-mixed point
    of the LFSR period in O(log n) — stepping there one update at a time
    would be both slow and (for small n) degenerate, since the sequence
    out of seed 1 begins with 63 plain powers of two.
    """
    PERIOD = (1 << 64) - 1  # upper bound; exact period not needed here
    n %= PERIOD
    if n == 0:
        return 1

    def step(x: int) -> int:
        return ((x << 1) & _MASK64) ^ (POLY if x & (1 << 63) else 0)

    # m2[i] = the (2^(i+1))-th power basis: advance e_i by 2^i steps.
    m2 = []
    temp = 1
    for _ in range(64):
        m2.append(temp)
        temp = step(step(temp))
    i = 62
    while i >= 0 and not (n >> i) & 1:
        i -= 1
    ran = 2
    while i > 0:
        temp = 0
        for j in range(64):
            if (ran >> j) & 1:
                temp ^= m2[j]
        ran = temp
        i -= 1
        if (n >> i) & 1:
            ran = step(ran)
    return ran


@dataclass
class GupsResult:
    variant: str
    table_size: int
    updates: int
    seconds: float
    verified: bool
    remote_fraction: float
    #: Conduit operations issued by rank 0's update loop (RMA + AMs) —
    #: the coalescing numerator: batched variants issue far fewer.
    conduit_ops: int = 0

    @property
    def gups(self) -> float:
        return self.updates / self.seconds / 1e9


def _index_of(ran: int, mask: int) -> int:
    """Table index for an update value.

    Deviation from strict HPCC (documented in EXPERIMENTS.md): the
    reference code uses ``ran & (TableSize-1)`` against tables of 2^29+
    words, where the LFSR's short-window low-bit bias is irrelevant.  At
    in-process scales (2^8..2^12 words) that bias concentrates updates
    on rank 0, so the index goes through a splitmix64 finalizer first —
    preserving determinism and the uniform fine-grained access pattern
    the benchmark exists to measure.
    """
    from repro.util.rng import splitmix64

    return splitmix64(ran) & mask


def _update_loop(table: repro.SharedArray, stream: np.ndarray,
                 variant: str) -> None:
    mask = len(table) - 1
    if variant == "upcxx":
        # Batched path: translate a whole window of indices vectorized
        # and issue one conduit op per owning rank per window.
        from repro.util.rng import splitmix64_array

        mask_u = np.uint64(mask)
        for lo in range(0, len(stream), BATCH_WINDOW):
            window = stream[lo : lo + BATCH_WINDOW]
            idx = (splitmix64_array(window) & mask_u).astype(np.int64)
            table.atomic_batch(idx, "xor", window)
    elif variant == "upcxx-element":
        for ran in stream:
            table.atomic(_index_of(int(ran), mask), "xor", ran)
    elif variant == "upc":
        base = upc.UpcSharedPtr(table, 0)
        for ran in stream:
            # pointer-style indexing through the veneer; the update
            # itself stays atomic so verification is exact.
            p = base + _index_of(int(ran), mask)
            p.array.atomic(p.index, "xor", ran)
    else:
        raise ValueError(f"unknown variant {variant!r}")


def random_access(log2_table_size: int = 10, updates_per_rank: int = 256,
                  variant: str = "upcxx", verify: bool = True) -> GupsResult:
    """SPMD body: run the update loop; returns rank 0's result object."""
    me = repro.myrank()
    n = repro.ranks()
    table_size = 1 << log2_table_size
    table = repro.SharedArray(np.uint64, size=table_size, block=1)
    # HPCC initialization: Table[i] = i.
    local = table.local_view()
    table.fill_local(0)
    local[: len(table.local_indices())] = table.local_indices().astype(
        np.uint64
    )
    repro.barrier()

    total_updates = updates_per_rank * n
    # Each rank takes its own slice of the global HPCC sequence — the
    # reference code's HPCC_starts(NUPDATE/THREADS * id) jump.
    stream = hpcc_stream(
        hpcc_starts(total_updates // n * me), updates_per_rank
    )

    stats0 = repro.current_world().ranks[me].stats.snapshot()
    t0 = time.perf_counter()
    _update_loop(table, stream, variant)
    repro.barrier()
    dt = time.perf_counter() - t0

    stats1 = repro.current_world().ranks[me].stats.snapshot()
    remote = stats1["remote_accesses"] - stats0["remote_accesses"]
    local_acc = stats1["local_accesses"] - stats0["local_accesses"]
    denom = max(1, remote + local_acc)

    def _msgs(s: dict) -> int:
        return (s["puts"] + s["gets"] + s["atomics"] + s["ams_sent"]
                + s["puts_indexed"] + s["gets_indexed"]
                + s["atomic_batches"])

    conduit_ops = _msgs(stats1) - _msgs(stats0)

    verified = True
    if verify:
        # Second identical pass undoes the first (xor involution) ...
        _update_loop(table, stream, variant)
        repro.barrier()
        # ... so every local element equals its initial value.
        idx = table.local_indices()
        verified = bool(
            np.array_equal(
                table.local_view()[: len(idx)], idx.astype(np.uint64)
            )
        )
        verified = bool(repro.collectives.allreduce(int(verified), op="min"))
    repro.barrier()
    return GupsResult(
        variant=variant,
        table_size=table_size,
        updates=total_updates,
        seconds=dt,
        verified=verified,
        remote_fraction=remote / denom,
        conduit_ops=conduit_ops,
    )


def run(ranks: int = 4, log2_table_size: int = 10,
        updates_per_rank: int = 256, variant: str = "upcxx",
        verify: bool = True, telemetry=None, conduit=None) -> GupsResult:
    """Launch the benchmark in its own SPMD world.

    ``telemetry`` is forwarded to :func:`repro.spmd` ("off"/"flight"/
    "full" or a :class:`repro.telemetry.TelemetryConfig`) — the overhead
    comparison in the bench harness runs the same workload at each mode.
    ``conduit`` selects the backend ("smp"/"proc", a conduit instance,
    or None for the default), so the harness can compare thread- vs
    process-backed worlds on the same workload.
    """
    results = repro.spmd(
        random_access, ranks=ranks,
        kwargs=dict(
            log2_table_size=log2_table_size,
            updates_per_rank=updates_per_rank,
            variant=variant, verify=verify,
        ),
        telemetry=telemetry,
        conduit=conduit,
    )
    return results[0]
