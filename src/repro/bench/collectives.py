"""Collectives microbenchmark — tree engine vs the retired centralized path.

Measures per-collective latency and per-rank conduit traffic for the
three shapes the engine optimises hardest:

* ``barrier``   — dissemination, ceil(log2 P) AMs per rank;
* ``allgather`` — Bruck doubling, ceil(log2 P) coalesced AMs per rank;
* ``alltoallv`` — pairwise exchange, P-1 coalesced AMs per rank;

each at several payload sizes, against an in-bench re-creation of the
rendezvous-slot exchange the runtime used before the tree engine (one
lock-protected dict every rank deposits into and spins on — the old
path no longer exists in the library, so the baseline lives here).

Also records the sample-sort phase spans (splitters / redistribute are
collective-heavy) so the harness can track phase-level deltas, and
self-checks the ISSUE's op-count bounds.  ``--collectives BENCH_5.json``
on the harness writes the whole result for CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.core.world import current


DEFAULT_PAYLOADS = (8, 1024, 65536)


def ceil_log2(p: int) -> int:
    return max(p - 1, 0).bit_length()


# ------------------------------------------------------- baseline path

def _centralized_exchange(value, seq: int):
    """The retired rendezvous-slot allgather: every rank deposits its
    contribution into one lock-serialized dict, spins until the last
    depositor completes it, then extracts the full result.  O(P) lock
    acquisitions on the critical path, zero conduit traffic — exactly
    the shape :func:`repro.sim.centralized_exchange_time` models."""
    ctx = current()
    world = ctx.world
    n = world.n_ranks
    slots = world.__dict__.setdefault("_bench_rendezvous", {})
    with world._glock:
        slot = slots.setdefault(seq, {"vals": {}, "extracted": 0})
        slot["vals"][ctx.rank] = value
    ctx.wait_until(lambda: len(slot["vals"]) == n,
                   what="bench centralized exchange")
    with world._glock:
        out = [slot["vals"][r] for r in range(n)]
        slot["extracted"] += 1
        if slot["extracted"] == n:
            slots.pop(seq, None)
    return out


# ------------------------------------------------------------- results

@dataclass
class CollBenchResult:
    """Rank-0 view of the microbenchmark (all latencies are max-over-
    ranks means, microseconds per operation)."""

    ranks: int
    iters: int
    log2_ranks: int
    barrier: dict = field(default_factory=dict)
    allgather: dict = field(default_factory=dict)      # payload -> row
    alltoallv: dict = field(default_factory=dict)      # payload -> row
    centralized: dict = field(default_factory=dict)    # payload -> row
    speedup: dict = field(default_factory=dict)        # payload -> ratio
    sample_sort_phases: dict = field(default_factory=dict)
    bounds: dict = field(default_factory=dict)

    @property
    def bounds_ok(self) -> bool:
        return all(self.bounds.values())


def _timed(fn, reps: int):
    """Per-rank mean latency (us) and coll AMs sent per op."""
    ctx = current()
    s0 = ctx.stats.snapshot()
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    dt = time.perf_counter() - t0
    s1 = ctx.stats.snapshot()
    return (dt / reps * 1e6,
            (s1["coll_msgs"] - s0["coll_msgs"]) / reps)


def _bench_body(iters: int, payloads) -> dict | None:
    me, n = repro.myrank(), repro.ranks()
    out: dict = {"barrier": {}, "allgather": {}, "alltoallv": {},
                 "centralized": {}}

    # Warm code paths (pickle caches, handler dispatch) out of the
    # measured region.
    repro.barrier()
    repro.collectives.allgather(0)

    us, ams = _timed(repro.barrier, iters)
    row = {"us": repro.collectives.allreduce(us, op="max"),
           "coll_ams_per_rank": ams}
    out["barrier"] = row

    for nbytes in payloads:
        blob = np.zeros(nbytes, dtype=np.uint8)
        us, ams = _timed(lambda: repro.collectives.allgather(blob), iters)
        out["allgather"][str(nbytes)] = {
            "us": repro.collectives.allreduce(us, op="max"),
            "coll_ams_per_rank": ams,
        }

        blocks = [np.zeros(nbytes, dtype=np.uint8) for _ in range(n)]
        us, ams = _timed(lambda: repro.collectives.alltoallv(blocks), iters)
        out["alltoallv"][str(nbytes)] = {
            "us": repro.collectives.allreduce(us, op="max"),
            "coll_ams_per_rank": ams,
        }

        seqs = iter(range(1 << 30))
        reps = max(iters // 2, 1)
        us, _ = _timed(
            lambda: _centralized_exchange(blob, next(seqs)), reps)
        out["centralized"][str(nbytes)] = {
            "us": repro.collectives.allreduce(us, op="max"),
        }
        repro.barrier()   # drain stragglers before the next size

    return out if me == 0 else None


def _sample_sort_phases(ranks: int, keys_per_rank: int) -> dict:
    """Phase spans of one full-telemetry sample sort, max over ranks —
    the collective-heavy phases (splitters, redistribute) are where the
    tree engine shows up at the application level."""
    from repro.bench.sample_sort import sample_sort

    holder: dict = {}

    def body():
        if repro.myrank() == 0:
            holder["world"] = repro.current_world()
        repro.barrier()
        r = sample_sort(keys_per_rank=keys_per_rank, variant="upcxx")
        return r.verified

    oks = repro.spmd(body, ranks=ranks, telemetry="full")
    phases: dict = {}
    for span in holder["world"].telemetry.all_spans():
        if span.name.startswith("sort:"):
            phases[span.name] = max(phases.get(span.name, 0.0),
                                    span.dur * 1e6)
    phases["verified"] = bool(all(oks))
    return phases


def run(ranks: int = 4, iters: int = 40,
        payloads=DEFAULT_PAYLOADS,
        keys_per_rank: int = 2048) -> CollBenchResult:
    """Run the full microbenchmark in fresh SPMD worlds."""
    raw = repro.spmd(_bench_body, ranks=ranks,
                     kwargs=dict(iters=iters, payloads=tuple(payloads)))[0]

    res = CollBenchResult(ranks=ranks, iters=iters,
                          log2_ranks=ceil_log2(ranks))
    res.barrier = raw["barrier"]
    res.allgather = raw["allgather"]
    res.alltoallv = raw["alltoallv"]
    res.centralized = raw["centralized"]
    for key, row in raw["allgather"].items():
        base = raw["centralized"][key]["us"]
        res.speedup[key] = base / row["us"] if row["us"] > 0 else 0.0

    res.sample_sort_phases = _sample_sort_phases(ranks, keys_per_rank)

    # The ISSUE's acceptance bounds, checked on real traffic counts.
    lim = res.log2_ranks
    res.bounds = {
        "barrier_ams_eq_ceil_log2":
            raw["barrier"]["coll_ams_per_rank"] == lim,
        "allgather_ams_le_ceil_log2": all(
            row["coll_ams_per_rank"] <= lim
            for row in raw["allgather"].values()),
        "alltoallv_ams_le_nminus1": all(
            row["coll_ams_per_rank"] <= ranks - 1
            for row in raw["alltoallv"].values()),
        "sample_sort_verified":
            bool(res.sample_sort_phases.get("verified", False)),
    }
    return res
