"""Serialization microbenchmark: wire codec vs forced-pickle baseline.

The zero-copy wire layer claims two things: (1) fixed-layout AM traffic
(kv batches, steal loot, collective frames) is cheaper to encode/decode
than the pickle-everything path it replaced, and (2) nearly all frames
of a realistic workload stay on the fast path.  This bench measures
both in one process by running the identical workload twice —

* ``pickle`` mode: :func:`repro.gasnet.wire.set_force_pickle` routes
  every frame's args and payload through in-band pickle, modelling the
  pre-codec wire;
* ``codec`` mode: the normal tagged/fixed-layout encoding.

Three phases per mode:

1. **AM ping-pong** — rank 0 round-trips request/reply AMs carrying a
   bulk ndarray value (the zero-copy headline case: the codec ships a
   dtype/shape header + one out-of-band buffer where pickle embeds the
   array in the stream); per-op wall latency.
2. **KV ops** — ``DistHashMap`` puts/gets of 8–64 KiB byte values
   under int keys (the codec's bread and butter: bytes ride as
   zero-copy out-of-band views both ways), measured uncached so every
   get crosses the wire.  Puts are point ops; gets go through
   ``multi_get`` batches and report **per-key** latency — amortizing
   the thread-wakeup RTT so the serialization cost is the signal, and
   matching how the kv workload actually reads.
3. **GUPS** — the RMA-path guardrail: serialization must not tax the
   one-sided path (it shares conduit plumbing but moves no frames).

A final short full-telemetry pass in codec mode collects the ``ser``/
``deser`` histograms and the fixed-layout hit rate.  CI gates on the
p50 speedups and the hit rate (``python -m repro.bench.harness --serde
BENCH_6.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.gasnet.stats import aggregate
from repro.gasnet.wire import set_force_pickle


@dataclass
class SerdeResult:
    ranks: int
    iters: int
    # per-mode p50 latencies, microseconds ("pickle" vs "codec")
    send_am_p50_us: dict
    kv_get_p50_us: dict
    kv_put_p50_us: dict
    gups: dict
    # speedups: pickle p50 / codec p50 (>1 means the codec wins)
    send_am_speedup: float
    kv_get_speedup: float
    gups_ratio: float           # codec / pickle (>=1: no RMA-path tax)
    # codec-mode observability (full-telemetry pass)
    ser_p50_us: float
    deser_p50_us: float
    wire_frames: int
    wire_fixed: int
    pickle_fallbacks: int
    wire_fixed_rate: float
    stats: dict = field(default_factory=dict)

    @property
    def bounds(self) -> dict:
        return {
            "send_am_speedup >= 1.1": self.send_am_speedup >= 1.1,
            "kv_get_speedup >= 1.1": self.kv_get_speedup >= 1.1,
            # GUPS moves no frames; the ratio is a guardrail against a
            # serialization tax leaking into the RMA path, with head
            # room for scheduler noise on loaded CI machines.
            "gups_ratio >= 0.7": self.gups_ratio >= 0.7,
            "wire_fixed_rate >= 0.9": self.wire_fixed_rate >= 0.9,
        }

    @property
    def bounds_ok(self) -> bool:
        return all(self.bounds.values())


def _p50(lat_us: list) -> float:
    return float(np.percentile(np.asarray(lat_us), 50)) if lat_us else 0.0


def _kv_values(n: int, seed: int = 0) -> list:
    """Deterministic bytes values spanning 8–64 KiB — large enough
    that copying them in-band (the pickle baseline) costs real time."""
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=int(s), dtype=np.uint8).tobytes()
            for s in rng.integers(8 << 10, (64 << 10) + 1, size=n)]


#: Ping-pong payload element count (float64 -> 256 KiB): big enough
#: that serialization cost dominates the thread-wakeup RTT noise.
PINGPONG_ELEMS = 32768


def _phase_body(iters, kv_keys, seed):
    """One mode's workload; returns per-rank latency lists + stats."""
    me = repro.myrank()
    n = repro.ranks()
    ctx = repro.current_world().ranks[me]
    rng = np.random.default_rng((seed << 8) ^ me)
    values = _kv_values(64, seed=seed)

    # -- phase 1: AM ping-pong (rank 0 -> rank 1) with a bulk ndarray
    send_lat: list = []
    if me == 0 and n > 1:
        arr = np.arange(PINGPONG_ELEMS, dtype=np.float64)
        for i in range(iters):
            t0 = time.perf_counter()
            fut = ctx.send_am(1, "kv_put", args=(10 ** 9,),
                              payload={i: arr}, expect_reply=True)
            fut.get()
            send_lat.append((time.perf_counter() - t0) * 1e6)
    repro.barrier()

    # -- phase 2: kv point ops, int keys, bytes values, uncached
    m = repro.DistHashMap(cache=False)
    stripe = [k for k in range(kv_keys) if k % n == me]
    put_lat: list = []
    get_lat: list = []
    for k in stripe:
        v = values[k % len(values)]
        t0 = time.perf_counter()
        m.put(k, v)
        put_lat.append((time.perf_counter() - t0) * 1e6)
    repro.barrier()
    batch = 64
    for _ in range(max(1, len(stripe) // 8)):
        sample = [int(k) for k in rng.integers(0, kv_keys, size=batch)]
        t0 = time.perf_counter()
        m.multi_get(sample)
        get_lat.append((time.perf_counter() - t0) / batch * 1e6)
    repro.barrier()
    agg = None
    if me == 0:
        agg = aggregate([r.stats for r in repro.current_world().ranks])
    return send_lat, put_lat, get_lat, agg


def run(ranks: int = 4, iters: int = 300, kv_keys: int = 1024,
        log2_table_size: int = 10, seed: int = 0,
        reps: int = 3) -> SerdeResult:
    """Run both modes and gather one result (best-of-``reps`` p50s)."""
    from repro.bench import gups

    lat: dict = {}
    gups_num: dict = {}
    stats_codec: dict = {}
    # Warm-up: first world pays thread spin-up/numpy import costs.
    repro.spmd(lambda: repro.barrier(), ranks=ranks)
    for mode in ("pickle", "codec"):
        set_force_pickle(mode == "pickle")
        try:
            # Best-of-reps per metric: scheduler noise on a threaded
            # Python world easily swamps a single rep's percentile.
            sends, puts, gets, agg = [], [], [], None
            for _ in range(reps):
                res = repro.spmd(
                    lambda: _phase_body(iters, kv_keys, seed),
                    ranks=ranks,
                )
                sends.append(_p50([u for r in res for u in r[0]]))
                puts.append(_p50([u for r in res for u in r[1]]))
                gets.append(_p50([u for r in res for u in r[2]]))
                agg = res[0][3]
            lat[mode] = (min(sends), min(puts), min(gets), agg)
            gups_num[mode] = max(
                gups.run(ranks=ranks, log2_table_size=log2_table_size,
                         variant="upcxx").gups
                for _ in range(reps)
            )
        finally:
            set_force_pickle(False)
    stats_codec = lat["codec"][3]

    # -- full-telemetry pass: ser/deser histograms (codec mode)
    holder: dict = {}

    def tel_body():
        out = _phase_body(iters // 4, kv_keys // 4, seed)
        if repro.myrank() == 0:
            holder["world"] = repro.current_world()
        return out

    repro.spmd(tel_body, ranks=ranks, telemetry="full")
    hists = holder["world"].telemetry.metrics().get("histograms", {})

    def _hist_p50(name: str) -> float:
        h = hists.get(name)
        return float(h["p50"]) / 1e3 if h else 0.0  # ns -> us

    send_p50 = {m: lat[m][0] for m in lat}
    put_p50 = {m: lat[m][1] for m in lat}
    get_p50 = {m: lat[m][2] for m in lat}
    frames = stats_codec.get("wire_frames", 0)
    fixed = stats_codec.get("wire_fixed", 0)
    return SerdeResult(
        ranks=ranks, iters=iters,
        send_am_p50_us=send_p50,
        kv_put_p50_us=put_p50,
        kv_get_p50_us=get_p50,
        gups=gups_num,
        send_am_speedup=(send_p50["pickle"] / send_p50["codec"]
                         if send_p50["codec"] else 0.0),
        kv_get_speedup=(get_p50["pickle"] / get_p50["codec"]
                        if get_p50["codec"] else 0.0),
        gups_ratio=(gups_num["codec"] / gups_num["pickle"]
                    if gups_num["pickle"] else 0.0),
        ser_p50_us=_hist_p50("ser"),
        deser_p50_us=_hist_p50("deser"),
        wire_frames=frames,
        wire_fixed=fixed,
        pickle_fallbacks=stats_codec.get("pickle_fallbacks", 0),
        wire_fixed_rate=fixed / frames if frames else 0.0,
        stats=stats_codec,
    )


def main() -> int:
    r = run()
    print(f"serde bench: {r.ranks} ranks, {r.iters} ping-pong iters")
    for name, d in (("send_am p50", r.send_am_p50_us),
                    ("kv_put  p50", r.kv_put_p50_us),
                    ("kv_get  p50", r.kv_get_p50_us)):
        print(f"  {name}   pickle {d['pickle']:8.1f} us   "
              f"codec {d['codec']:8.1f} us")
    print(f"  speedup: send_am x{r.send_am_speedup:.2f}  "
          f"kv_get x{r.kv_get_speedup:.2f}")
    print(f"  gups: pickle {r.gups['pickle'] * 1e9:.0f}  "
          f"codec {r.gups['codec'] * 1e9:.0f} updates/s "
          f"(ratio {r.gups_ratio:.2f})")
    print(f"  ser/deser p50: {r.ser_p50_us:.1f} / {r.deser_p50_us:.1f} us")
    print(f"  fixed-layout: {r.wire_fixed}/{r.wire_frames} frames "
          f"({r.wire_fixed_rate:.1%}), "
          f"{r.pickle_fallbacks} pickle fallbacks")
    print(f"  bounds: {r.bounds} -> "
          f"{'PASS' if r.bounds_ok else 'FAIL'}")
    return 0 if r.bounds_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
