"""The paper's five case studies (§V), runnable for real on the SMP
conduit at small rank counts (with correctness verification), plus the
harness that also replays them through the machine models at the
paper's scales to regenerate every figure and table.

===========  ==========================  ================================
Benchmark    Computation                 Communication (paper Table III)
===========  ==========================  ================================
gups         bit-xor operations          global fine-grained random access
stencil      nearest-neighbour compute   bulk ghost zone copies
sample_sort  local quick sort            irregular one-sided communication
raytrace     Monte Carlo integration     single gatherv / sum reduction
lulesh       Lagrange leapfrog           nearest-neighbour (26) exchange
===========  ==========================  ================================
"""

from repro.bench import gups, stencil, sample_sort, raytrace, lulesh, harness

__all__ = ["gups", "stencil", "sample_sort", "raytrace", "lulesh", "harness"]
