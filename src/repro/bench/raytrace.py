"""Distributed ray tracing — paper §V-D (the Embree case study).

The paper takes an existing shared-memory C++ renderer and distributes
it: the image plane is divided into tiles, tiles are dealt to ranks in a
**static cyclic distribution**, scene geometry is replicated, and a
final **sum-reduction adds the partial images**.  This module mirrors
that structure around a small NumPy-vectorized renderer (the Embree
substitution of DESIGN.md §2): Lambertian spheres + ground plane, a
point light with hard shadows, and jittered supersampling whose samples
are seeded per-pixel — so the distributed image is bit-identical to the
serial one regardless of rank count (the verification oracle).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

import repro

# ---------------------------------------------------------------------------
# scene
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scene:
    """Sphere positions/radii/colors + a ground plane and one light."""

    centers: np.ndarray = field(default_factory=lambda: np.array([
        [0.0, 0.0, 3.0],
        [1.2, -0.4, 2.4],
        [-1.1, 0.3, 2.6],
    ]))
    radii: np.ndarray = field(default_factory=lambda: np.array(
        [1.0, 0.45, 0.6]
    ))
    colors: np.ndarray = field(default_factory=lambda: np.array([
        [0.9, 0.3, 0.25],
        [0.25, 0.6, 0.9],
        [0.35, 0.85, 0.4],
    ]))
    plane_y: float = -0.85
    plane_color: tuple = (0.7, 0.7, 0.65)
    light: tuple = (4.0, 5.0, -2.0)
    ambient: float = 0.08


def _intersect(scene: Scene, org: np.ndarray, d: np.ndarray):
    """Nearest-hit of ray bundles against the scene (vectorized).

    Returns (t, hit_id) with hit_id -1 = miss, -2 = plane, k = sphere k.
    """
    n = org.shape[0]
    t_best = np.full(n, np.inf)
    hit = np.full(n, -1, dtype=np.int32)
    for k in range(len(scene.radii)):
        oc = org - scene.centers[k]
        b = np.einsum("ij,ij->i", oc, d)
        c = np.einsum("ij,ij->i", oc, oc) - scene.radii[k] ** 2
        disc = b * b - c
        ok = disc > 0
        sq = np.sqrt(np.where(ok, disc, 0.0))
        t0 = -b - sq
        t1 = -b + sq
        t = np.where(t0 > 1e-4, t0, t1)
        ok &= t > 1e-4
        closer = ok & (t < t_best)
        t_best = np.where(closer, t, t_best)
        hit = np.where(closer, k, hit)
    # ground plane y = plane_y
    dy = d[:, 1]
    tp = np.where(np.abs(dy) > 1e-9, (scene.plane_y - org[:, 1]) / dy, np.inf)
    okp = tp > 1e-4
    closer = okp & (tp < t_best)
    t_best = np.where(closer, tp, t_best)
    hit = np.where(closer, -2, hit)
    return t_best, hit


def _shade(scene: Scene, org: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Lambert + hard shadow shading of ray bundles -> RGB in [0,1]."""
    t, hit = _intersect(scene, org, d)
    n_rays = org.shape[0]
    rgb = np.zeros((n_rays, 3))
    miss = hit == -1
    # sky gradient
    sky_t = 0.5 * (d[:, 1] + 1.0)
    rgb[miss] = (np.outer(1 - sky_t, [1.0, 1.0, 1.0])
                 + np.outer(sky_t, [0.5, 0.7, 1.0]))[miss]
    lit = ~miss
    if not lit.any():
        return rgb
    # miss lanes carry t=inf; zero them so the masked arithmetic below
    # stays finite (their results are never read).
    t = np.where(np.isfinite(t), t, 0.0)
    p = org + d * t[:, None]
    normal = np.zeros_like(p)
    albedo = np.zeros_like(p)
    plane = hit == -2
    normal[plane] = (0.0, 1.0, 0.0)
    # checkerboard on the plane
    checker = ((np.floor(p[:, 0]) + np.floor(p[:, 2])) % 2).astype(bool)
    albedo[plane] = np.where(
        checker[plane, None], np.array(scene.plane_color) * 0.55,
        scene.plane_color,
    )
    for k in range(len(scene.radii)):
        sel = hit == k
        normal[sel] = (p[sel] - scene.centers[k]) / scene.radii[k]
        albedo[sel] = scene.colors[k]
    to_light = np.asarray(scene.light) - p
    dist = np.linalg.norm(to_light, axis=1, keepdims=True)
    ldir = to_light / np.maximum(dist, 1e-9)
    lambert = np.maximum(
        0.0, np.einsum("ij,ij->i", normal, ldir)
    )
    # shadow rays
    sh_t, sh_hit = _intersect(scene, p + normal * 1e-3, ldir)
    shadowed = (sh_hit != -1) & (sh_t[:, None] < dist).reshape(-1)
    lambert = np.where(shadowed, 0.0, lambert)
    shade = scene.ambient + (1 - scene.ambient) * lambert
    rgb[lit] = (albedo * shade[:, None])[lit]
    return np.clip(rgb, 0.0, 1.0)


def render_tile(scene: Scene, image: int, tile: int, ty: int, tx: int,
                spp: int) -> np.ndarray:
    """Render one ``tile`` x ``tile`` block with jittered supersampling.

    The jitter stream is seeded by absolute pixel position, so the
    result is independent of which rank renders the tile.
    """
    ys = np.arange(ty * tile, (ty + 1) * tile)
    xs = np.arange(tx * tile, (tx + 1) * tile)
    yy, xx = np.meshgrid(ys, xs, indexing="ij")
    out = np.zeros((tile, tile, 3))
    for s in range(spp):
        rng = np.random.default_rng(
            (yy.astype(np.uint64) * np.uint64(image)
             + xx.astype(np.uint64)).ravel() * np.uint64(spp)
            + np.uint64(s)
        )
        jit = rng.random((tile * tile, 2))
        u = (xx.ravel() + jit[:, 0]) / image * 2 - 1
        v = 1 - (yy.ravel() + jit[:, 1]) / image * 2
        d = np.stack([u, v, np.ones_like(u)], axis=1)
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        org = np.zeros_like(d)
        org[:, 2] = -1.0
        out += _shade(scene, org, d).reshape(tile, tile, 3)
    return out / spp


def render_serial(scene: Scene, image: int, tile: int,
                  spp: int) -> np.ndarray:
    """The oracle: render every tile on the calling thread."""
    nt = image // tile
    img = np.zeros((image, image, 3))
    for ty in range(nt):
        for tx in range(nt):
            img[ty * tile:(ty + 1) * tile, tx * tile:(tx + 1) * tile] = \
                render_tile(scene, image, tile, ty, tx, spp)
    return img


# ---------------------------------------------------------------------------
# the distributed renderer (the paper's structure)
# ---------------------------------------------------------------------------


@dataclass
class RenderResult:
    image: int
    tile: int
    spp: int
    seconds: float
    verified: bool
    tiles_rendered: int
    speedup_estimate: float


def raytrace(image: int = 64, tile: int = 16, spp: int = 2,
             verify: bool = True) -> RenderResult:
    """SPMD body: cyclic tile distribution + partial-image sum reduction."""
    me, n = repro.myrank(), repro.ranks()
    scene = Scene()  # replicated scene geometry (paper's assumption)
    nt = image // tile
    tiles = [(ty, tx) for ty in range(nt) for tx in range(nt)]

    t0 = time.perf_counter()
    partial = np.zeros((image, image, 3))
    mine = tiles[me::n]  # static cyclic distribution (paper §V-D)
    for ty, tx in mine:
        partial[ty * tile:(ty + 1) * tile, tx * tile:(tx + 1) * tile] = \
            render_tile(scene, image, tile, ty, tx, spp)
    t_render = time.perf_counter() - t0
    # "our implementation uses a simpler reduction to add the partial
    # images" — a sum-reduce of the full image buffers.
    img = repro.collectives.reduce(partial, op="sum", root=0)
    repro.barrier()
    dt = time.perf_counter() - t0

    verified = True
    if verify and me == 0:
        expect = render_serial(scene, image, tile, spp)
        verified = bool(np.allclose(img, expect, rtol=0, atol=1e-12))
    verified = bool(repro.collectives.allreduce(int(verified), op="min"))

    t_max_render = repro.collectives.allreduce(t_render, op="max")
    speedup = len(tiles) / max(1, len(mine)) if mine else float(len(tiles))
    return RenderResult(
        image=image, tile=tile, spp=spp, seconds=dt, verified=verified,
        tiles_rendered=len(mine),
        speedup_estimate=speedup * (t_render / max(t_max_render, 1e-12)),
    )


def run(ranks: int = 4, image: int = 64, tile: int = 16, spp: int = 2,
        verify: bool = True) -> RenderResult:
    """Launch in a fresh SPMD world; returns rank 0's result."""
    return repro.spmd(
        raytrace, ranks=ranks,
        kwargs=dict(image=image, tile=tile, spp=spp, verify=verify),
    )[0]


# ---------------------------------------------------------------------------
# the paper's §V-D future work, implemented as extensions:
#   1. "global load balancing via distributed work queues and work
#      stealing"  -> tiles come from a DistWorkQueue;
#   2. "overlap the computation and gathering of the tiles using ...
#      one-sided writes"  -> each finished tile is PUT directly into
#      rank 0's image buffer, no reduction at the end.
# ---------------------------------------------------------------------------


def raytrace_dynamic(image: int = 64, tile: int = 16, spp: int = 2,
                     verify: bool = True, skew: bool = True):
    """SPMD body: work-stealing tiles + one-sided tile delivery.

    With ``skew=True`` every tile is initially seeded on rank 0 — the
    worst-case imbalance — so correctness of the result demonstrates
    that stealing actually redistributes the work (reported via
    ``steals``)."""
    me, n = repro.myrank(), repro.ranks()
    scene = Scene()
    nt = image // tile
    tiles = [(ty, tx) for ty in range(nt) for tx in range(nt)]

    # rank 0 owns the final image; everyone learns its global pointer
    img_ptr = None
    if me == 0:
        img_ptr = repro.allocate(0, image * image * 3, np.float64)
    img_ptr = repro.collectives.bcast(img_ptr, root=0)

    wq = repro.DistWorkQueue()
    if skew:
        if me == 0:
            wq.add_local(tiles)
    else:
        wq.add_local(tiles[me::n])
    repro.barrier()

    t0 = time.perf_counter()
    rendered = 0
    while (item := wq.get()) is not None:
        ty, tx = item
        block = render_tile(scene, image, tile, ty, tx, spp)
        # one-sided delivery: one put per tile row into rank 0's buffer
        for row in range(tile):
            off = ((ty * tile + row) * image + tx * tile) * 3
            (img_ptr + off).put(block[row].ravel())
        wq.task_done()
        rendered += 1
    repro.async_copy_fence()
    repro.barrier()
    dt = time.perf_counter() - t0

    verified = True
    if verify and me == 0:
        img = img_ptr.get(image * image * 3).reshape(image, image, 3)
        expect = render_serial(scene, image, tile, spp)
        verified = bool(np.allclose(img, expect, rtol=0, atol=1e-12))
    verified = bool(repro.collectives.allreduce(int(verified), op="min"))
    total_rendered = repro.collectives.allreduce(rendered)
    steals = repro.collectives.allreduce(wq.steals_successful)
    return {
        "verified": verified,
        "seconds": dt,
        "rendered": rendered,
        "total_rendered": total_rendered,
        "steals": steals,
        "stolen_from_me": wq.stolen_from_me(),
    }


def run_dynamic(ranks: int = 4, image: int = 64, tile: int = 16,
                spp: int = 2, verify: bool = True, skew: bool = True):
    """Launch the work-stealing renderer; returns per-rank dicts."""
    return repro.spmd(
        raytrace_dynamic, ranks=ranks,
        kwargs=dict(image=image, tile=tile, spp=spp, verify=verify,
                    skew=skew),
    )
