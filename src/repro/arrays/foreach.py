"""Unordered domain iteration — the paper's ``foreach`` macro.

Titanium's ``foreach (p in dom)`` binds ``p`` to each point of a domain;
iterations run sequentially on the calling thread (unlike
``upc_forall``).  In Python the natural spelling is a generator::

    for p in foreach(interior):          # p is a Point
        B[p] = c * A[p] + ...

    for (i, j, k) in foreach(interior):  # points unpack (paper's foreach3)
        B[i, j, k] = c * A[i, j, k] + ...

The iteration order is row-major but, as in Titanium, programs must not
rely on it ("unordered iteration") — a property the test suite checks by
asserting order-independence of reference kernels.
"""

from __future__ import annotations

from typing import Iterator

from repro.arrays.point import Point
from repro.arrays.rectdomain import RectDomain


def foreach(dom) -> Iterator[Point]:
    """Iterate over every point of a RectDomain or Domain."""
    return iter(dom)


def foreach_tuples(dom: RectDomain) -> Iterator[tuple[int, ...]]:
    """Like :func:`foreach` but yields plain tuples (slightly faster in
    tight Python loops; identical contents)."""
    for p in dom:
        yield tuple(p)
