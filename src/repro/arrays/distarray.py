"""Distributed multidimensional arrays — the paper's *future work*,
built here as an extension.

The paper's §III-E closes with: "In the future, we plan to take further
advantage of this capability by building true distributed
multidimensional arrays on top of the current non-distributed library."
:class:`DistNdArray` is that construction, done exactly the way the
paper prescribes for today's users: a directory of per-rank
:class:`~repro.arrays.ndarray.NdArray` handles (the
``shared_array< ndarray<int, 3> > dir(THREADS)`` idiom), plus the
single-statement ghost update ``A.constrict(ghost).copy(B)``.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.arrays.ndarray import NdArray, ndarray
from repro.arrays.point import Point
from repro.arrays.rectdomain import RectDomain
from repro.core import collectives
from repro.core.directory import Directory
from repro.core.world import current
from repro.errors import DomainError


def process_grid(nranks: int, ndim: int) -> tuple[int, ...]:
    """Factor ``nranks`` into an ``ndim``-d grid, as square as possible
    (MPI ``MPI_Dims_create`` flavour).  Largest factors first."""
    dims = [1] * ndim
    remaining = nranks
    # Repeatedly strip the smallest prime factor and give it to the
    # currently smallest grid dimension.
    factors = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


def _split_extent(lo: int, hi: int, parts: int, which: int) -> tuple[int, int]:
    """Near-equal contiguous split of [lo, hi) into ``parts`` pieces."""
    n = hi - lo
    base, extra = divmod(n, parts)
    start = lo + which * base + min(which, extra)
    length = base + (1 if which < extra else 0)
    return start, start + length


class DistNdArray:
    """An N-d array block-partitioned across all ranks, with ghost zones.

    Collective constructor.  Each rank owns a contiguous block of the
    global domain (``my_interior``) stored in an :class:`NdArray` whose
    domain is the interior *accreted* by ``ghost`` layers; neighbours'
    handles come from a :class:`~repro.core.directory.Directory`.
    """

    def __init__(self, dtype, global_domain: RectDomain, ghost: int = 0,
                 pgrid: tuple[int, ...] | None = None,
                 periodic: bool | tuple = False):
        if any(s != 1 for s in global_domain.stride):
            raise DomainError("DistNdArray requires a unit-stride domain")
        if ghost < 0:
            raise DomainError("ghost width must be non-negative")
        ctx = current()
        nranks = ctx.world.n_ranks
        ndim = global_domain.dim
        self.dtype = np.dtype(dtype)
        self.global_domain = global_domain
        self.ghost = int(ghost)
        self.pgrid = tuple(pgrid) if pgrid else process_grid(nranks, ndim)
        if len(self.pgrid) != ndim:
            raise DomainError(
                f"process grid {self.pgrid} does not match {ndim}-d domain"
            )
        used = 1
        for p in self.pgrid:
            used *= p
        if used != nranks:
            raise DomainError(
                f"process grid {self.pgrid} needs {used} ranks, have {nranks}"
            )
        for p, n in zip(self.pgrid, global_domain.shape):
            if p > n:
                raise DomainError(
                    f"process grid {self.pgrid} exceeds domain shape "
                    f"{global_domain.shape}"
                )
        if periodic is True:
            self.periodic = tuple([True] * ndim)
        elif periodic is False:
            self.periodic = tuple([False] * ndim)
        else:
            self.periodic = tuple(bool(p) for p in periodic)
            if len(self.periodic) != ndim:
                raise DomainError("periodic flags must match arity")
        if any(self.periodic):
            for d, (p, n) in enumerate(zip(self.pgrid,
                                           global_domain.shape)):
                if self.periodic[d] and ghost > n // max(1, p):
                    raise DomainError(
                        "ghost width exceeds a periodic block extent"
                    )
        self.my_coords = self.coords_of(ctx.rank)
        self.my_interior = self.interior_of(ctx.rank)
        self.local = ndarray(
            self.dtype,
            self.my_interior.accrete(self.ghost) if ghost else self.my_interior,
        )
        self._dir = Directory()
        self._dir.publish(self.local)
        collectives.barrier()

    # -- rank <-> block geometry ------------------------------------------
    def coords_of(self, rank: int) -> Point:
        """Process-grid coordinates of ``rank`` (row-major)."""
        coords = []
        for p in reversed(self.pgrid):
            coords.append(rank % p)
            rank //= p
        return Point(*reversed(coords))

    def rank_of(self, coords) -> int:
        coords = coords if isinstance(coords, Point) else Point(coords)
        rank = 0
        for c, p in zip(coords, self.pgrid):
            if not 0 <= c < p:
                raise DomainError(f"grid coords {coords} outside {self.pgrid}")
            rank = rank * p + c
        return rank

    def interior_of(self, rank: int) -> RectDomain:
        """The global subdomain owned by ``rank`` (no ghosts)."""
        coords = self.coords_of(rank)
        lbs, ubs = [], []
        for d in range(self.global_domain.dim):
            lo, hi = _split_extent(
                self.global_domain.lb[d], self.global_domain.ub[d],
                self.pgrid[d], coords[d],
            )
            lbs.append(lo)
            ubs.append(hi)
        return RectDomain(Point(*lbs), Point(*ubs))

    def owner_of(self, pt) -> int:
        """Rank owning global point ``pt``."""
        pt = pt if isinstance(pt, Point) else Point(pt)
        if pt not in self.global_domain:
            raise DomainError(f"{pt} outside the global domain")
        coords = []
        for d in range(self.global_domain.dim):
            lo, hi = self.global_domain.lb[d], self.global_domain.ub[d]
            parts = self.pgrid[d]
            # invert _split_extent by scanning the (few) parts
            for which in range(parts):
                s, e = _split_extent(lo, hi, parts, which)
                if s <= pt[d] < e:
                    coords.append(which)
                    break
        return self.rank_of(coords)

    def remote(self, rank: int) -> NdArray:
        """The NdArray handle of ``rank`` (cached directory lookup)."""
        return self._dir.lookup(rank)

    # -- global element access --------------------------------------------
    def __getitem__(self, index):
        pt = index if isinstance(index, Point) else Point(index)
        return self.remote(self.owner_of(pt))[pt]

    def __setitem__(self, index, value) -> None:
        pt = index if isinstance(index, Point) else Point(index)
        self.remote(self.owner_of(pt))[pt] = value

    # -- ghost exchange ------------------------------------------------------
    def neighbors(self) -> Iterator[tuple[int, Point]]:
        """(rank, grid-offset) of every face/edge/corner neighbour —
        up to 3^N - 1 of them (LULESH's 26 in 3-D).  Along periodic
        axes the grid wraps, so edge ranks see neighbours on the far
        side (possibly themselves)."""
        for offs in itertools.product((-1, 0, 1), repeat=len(self.pgrid)):
            if all(o == 0 for o in offs):
                continue
            coords = list(self.my_coords + Point(*offs))
            ok = True
            for d, (c, p) in enumerate(zip(coords, self.pgrid)):
                if 0 <= c < p:
                    continue
                if self.periodic[d]:
                    coords[d] = c % p
                else:
                    ok = False
                    break
            if ok:
                yield self.rank_of(coords), Point(*offs)

    def ghost_exchange(self, faces_only: bool = True) -> None:
        """Fill this rank's ghost cells from the neighbours' interiors.

        Each transfer is the paper's one-statement one-sided update::

            local.constrict(halo_region).copy(neighbor_array)

        ``faces_only=True`` exchanges the 2N face slabs (enough for a
        7-point stencil); ``False`` also fills edge/corner ghosts.
        Collective: all ranks must call it (a barrier delimits the
        exchange epoch).
        """
        if self.ghost == 0:
            raise DomainError("array was created without ghost zones")
        collectives.barrier()  # neighbours' interiors are settled
        extents = tuple(
            u - l for l, u in zip(self.global_domain.lb,
                                  self.global_domain.ub)
        )
        for nbr_rank, offs in self.neighbors():
            if faces_only and sum(abs(o) for o in offs) != 1:
                continue
            halo = self._halo_region(offs)
            if halo.is_empty:
                continue
            src = self.remote(nbr_rank)
            # Periodic wrap: my halo lies outside the global domain, so
            # shift the (far-side) neighbour's view to overlap it.
            shift = [0] * len(offs)
            for d, o in enumerate(offs):
                nc = self.my_coords[d] + o
                if nc < 0:
                    shift[d] = -extents[d]
                elif nc >= self.pgrid[d]:
                    shift[d] = extents[d]
            if any(shift):
                src = src.translate(Point(*shift))
            self.local.constrict(halo).copy(src)
        collectives.barrier()  # everyone's ghosts are filled

    def _halo_region(self, offs: Point) -> RectDomain:
        """My ghost cells in direction ``offs`` (global coordinates)."""
        lb, ub = list(self.my_interior.lb), list(self.my_interior.ub)
        for d, o in enumerate(offs):
            if o < 0:
                ub[d] = lb[d]
                lb[d] = lb[d] - self.ghost
            elif o > 0:
                lb[d] = ub[d]
                ub[d] = ub[d] + self.ghost
        return RectDomain(Point(*lb), Point(*ub))

    # -- whole-array utilities ------------------------------------------------
    def interior_view(self) -> np.ndarray:
        """Writable NumPy view of my interior (no ghosts)."""
        return self.local.constrict(self.my_interior).local_view()

    def to_numpy(self) -> np.ndarray:
        """Gather the whole global array on the caller (verification aid)."""
        out = np.empty(self.global_domain.shape, dtype=self.dtype)
        ctx = current()
        for r in range(ctx.world.n_ranks):
            dom = self.interior_of(r)
            block = (
                self.remote(r).constrict(dom).to_numpy()
                if r != ctx.rank
                else self.interior_view().copy()
            )
            sl = tuple(
                slice(dom.lb[d] - self.global_domain.lb[d],
                      dom.ub[d] - self.global_domain.lb[d])
                for d in range(dom.dim)
            )
            out[sl] = block
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DistNdArray(dtype={self.dtype}, global={self.global_domain}, "
            f"pgrid={self.pgrid}, ghost={self.ghost})"
        )
