"""Rectangular domains (paper §III-E, Table II).

A :class:`RectDomain` is the set of points::

    { lb + k * stride : 0 <= k, componentwise, lb + k*stride < ub }

with an **exclusive** upper bound (the paper's deliberate deviation from
Titanium's inclusive bound, footnote 1).  Intersection of strided
domains is exact (per-dimension Chinese-remainder solve); union and
difference generally produce multi-rectangle :class:`~repro.arrays.domain.Domain`
objects.
"""

from __future__ import annotations

import itertools
from math import gcd
from typing import Iterator

from repro.arrays.point import Point
from repro.errors import DomainError


def _egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended gcd: returns (g, x, y) with a*x + b*y == g."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def _intersect_1d(lo1, hi1, s1, lo2, hi2, s2):
    """Intersect two 1-D strided ranges; returns (lo, hi, stride) or None.

    Solves x ≡ lo1 (mod s1), x ≡ lo2 (mod s2) on [max(lo1,lo2), min(hi1,hi2)).
    """
    lo = max(lo1, lo2)
    hi = min(hi1, hi2)
    if lo >= hi:
        return None
    g, p, _q = _egcd(s1, s2)
    if (lo2 - lo1) % g:
        return None  # congruences incompatible: empty
    lcm = s1 // g * s2
    # x = lo1 + s1 * t ; need lo1 + s1*t ≡ lo2 (mod s2)
    t = ((lo2 - lo1) // g * p) % (s2 // g)
    x0 = lo1 + s1 * t  # smallest solution ≥ lo1 in the combined lattice
    if x0 < lo:
        x0 += ((lo - x0 + lcm - 1) // lcm) * lcm
    if x0 >= hi:
        return None
    return (x0, hi, lcm)


class RectDomain:
    """A strided N-dimensional rectangle of integer points."""

    __slots__ = ("lb", "ub", "stride")

    def __init__(self, lb, ub, stride=None):
        self.lb = lb if isinstance(lb, Point) else Point(lb)
        self.ub = ub if isinstance(ub, Point) else Point(ub)
        if self.lb.dim != self.ub.dim:
            raise DomainError("lower/upper bound arity mismatch")
        if stride is None:
            stride = Point.ones(self.lb.dim)
        self.stride = stride if isinstance(stride, Point) else Point(stride)
        if self.stride.dim != self.lb.dim:
            raise DomainError("stride arity mismatch")
        if any(s < 1 for s in self.stride):
            raise DomainError(f"strides must be positive, got {self.stride}")

    # -- basic geometry -------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lb.dim

    @property
    def shape(self) -> tuple[int, ...]:
        """Points per dimension."""
        return tuple(
            max(0, -(-(u - l) // s))
            for l, u, s in zip(self.lb, self.ub, self.stride)
        )

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def min_point(self) -> Point:
        if self.is_empty:
            raise DomainError("empty domain has no min point")
        return self.lb

    def max_point(self) -> Point:
        """The largest point actually contained (inclusive)."""
        if self.is_empty:
            raise DomainError("empty domain has no max point")
        return Point(
            *(l + (n - 1) * s for l, n, s in zip(self.lb, self.shape, self.stride))
        )

    def __contains__(self, pt) -> bool:
        pt = pt if isinstance(pt, Point) else Point(pt)
        if pt.dim != self.dim:
            return False
        return all(
            l <= c < u and (c - l) % s == 0
            for c, l, u, s in zip(pt, self.lb, self.ub, self.stride)
        )

    def __iter__(self) -> Iterator[Point]:
        """Row-major iteration over contained points."""
        axes = [
            range(l, l + n * s, s)
            for l, n, s in zip(self.lb, self.shape, self.stride)
        ]
        for coords in itertools.product(*axes):
            yield Point(*coords)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RectDomain):
            return NotImplemented
        if self.is_empty and other.is_empty and self.dim == other.dim:
            return True
        return (
            self.lb == other.lb
            and self.shape == other.shape
            and self.stride == other.stride
        )

    def __hash__(self) -> int:
        if self.is_empty:
            return hash(("empty", self.dim))
        return hash((tuple(self.lb), self.shape, tuple(self.stride)))

    # -- algebra ---------------------------------------------------------------
    def intersect(self, other: "RectDomain") -> "RectDomain":
        """Exact intersection (the paper's ``rd1 * rd2``)."""
        if self.dim != other.dim:
            raise DomainError("intersection of domains of different arity")
        lbs, ubs, strides = [], [], []
        for d in range(self.dim):
            r = _intersect_1d(
                self.lb[d], self.ub[d], self.stride[d],
                other.lb[d], other.ub[d], other.stride[d],
            )
            if r is None:
                return RectDomain(
                    Point.zero(self.dim), Point.zero(self.dim)
                )
            lo, hi, st = r
            lbs.append(lo)
            ubs.append(hi)
            strides.append(st)
        return RectDomain(Point(*lbs), Point(*ubs), Point(*strides))

    def __mul__(self, other):
        if isinstance(other, RectDomain):
            return self.intersect(other)
        return NotImplemented

    def __add__(self, other):
        """Union — generally a multi-rectangle Domain (paper rd1 + rd2)."""
        from repro.arrays.domain import Domain

        if isinstance(other, RectDomain):
            return Domain([self]) + Domain([other])
        return NotImplemented

    def __sub__(self, other):
        """Set difference — a multi-rectangle Domain."""
        from repro.arrays.domain import Domain

        if isinstance(other, RectDomain):
            return Domain([self]) - Domain([other])
        return NotImplemented

    # -- transformations ----------------------------------------------------
    def translate(self, pt) -> "RectDomain":
        pt = pt if isinstance(pt, Point) else Point(pt)
        return RectDomain(self.lb + pt, self.ub + pt, self.stride)

    def permute(self, perm) -> "RectDomain":
        perm = tuple(perm)
        return RectDomain(
            self.lb.permute(perm), self.ub.permute(perm),
            self.stride.permute(perm),
        )

    def slice(self, axis: int, coord: int) -> "RectDomain":
        """The (N-1)-d domain obtained by fixing one coordinate."""
        if not 0 <= axis < self.dim:
            raise DomainError(f"axis {axis} out of range")
        probe = self.lb.replace(axis, coord)
        if not (
            self.lb[axis] <= coord < self.ub[axis]
            and (coord - self.lb[axis]) % self.stride[axis] == 0
        ):
            raise DomainError(f"coordinate {coord} not in axis {axis} extent")
        return RectDomain(
            self.lb.drop(axis), self.ub.drop(axis), self.stride.drop(axis)
        )

    def shrink(self, k: int) -> "RectDomain":
        """Erode ``k`` index units off every face (interior of a grid
        with ghost width k).  Defined for unit-stride domains."""
        self._require_unit_stride("shrink")
        return RectDomain(self.lb + k, self.ub - k, self.stride)

    def accrete(self, k: int) -> "RectDomain":
        """Dilate by ``k`` index units on every face (add ghost zones)."""
        self._require_unit_stride("accrete")
        return RectDomain(self.lb - k, self.ub + k, self.stride)

    def border(self, axis: int, side: int, width: int = 1) -> "RectDomain":
        """The slab of ``width`` layers just *inside* one face.

        ``side`` is -1 (low face) or +1 (high face).  The classic ghost
        source region: ``grid.interior.border(d, +1)`` is what a neighbour
        at +d needs.
        """
        self._require_unit_stride("border")
        if side not in (-1, 1):
            raise DomainError("side must be -1 or +1")
        lb, ub = list(self.lb), list(self.ub)
        if side < 0:
            ub[axis] = min(ub[axis], lb[axis] + width)
        else:
            lb[axis] = max(lb[axis], ub[axis] - width)
        return RectDomain(Point(*lb), Point(*ub), self.stride)

    def halo(self, axis: int, side: int, width: int = 1) -> "RectDomain":
        """The slab of ``width`` layers just *outside* one face (where
        ghost data lands)."""
        self._require_unit_stride("halo")
        if side not in (-1, 1):
            raise DomainError("side must be -1 or +1")
        lb, ub = list(self.lb), list(self.ub)
        if side < 0:
            ub[axis] = lb[axis]
            lb[axis] = lb[axis] - width
        else:
            lb[axis] = ub[axis]
            ub[axis] = ub[axis] + width
        return RectDomain(Point(*lb), Point(*ub), self.stride)

    def inject(self, factor) -> "RectDomain":
        """Scale every point by ``factor`` (Titanium's inject): the
        domain {p * factor : p ∈ D}.  Stride scales accordingly — the
        standard trick for embedding a coarse grid in a fine index
        space (multigrid)."""
        factor = factor if isinstance(factor, Point) else \
            Point.all(int(factor), self.dim)
        if any(f < 1 for f in factor):
            raise DomainError("inject factor must be positive")
        if self.is_empty:
            return RectDomain(self.lb * factor, self.lb * factor,
                              self.stride * factor)
        return RectDomain(
            self.lb * factor,
            self.max_point() * factor + 1,
            self.stride * factor,
        )

    def project(self, factor) -> "RectDomain":
        """Divide every point by ``factor`` (Titanium's project):
        {p // factor : p ∈ D}.  Requires the lattice to be divisible
        (lb and stride multiples of factor) so the map is exact."""
        factor = factor if isinstance(factor, Point) else \
            Point.all(int(factor), self.dim)
        if any(f < 1 for f in factor):
            raise DomainError("project factor must be positive")
        if self.is_empty:
            return RectDomain(self.lb // factor, self.lb // factor,
                              Point.ones(self.dim))
        if any(l % f or s % f
               for l, s, f in zip(self.lb, self.stride, factor)):
            raise DomainError(
                "project requires lb and stride divisible by the factor"
            )
        return RectDomain(
            self.lb // factor,
            self.max_point() // factor + 1,
            self.stride // factor,
        )

    def _require_unit_stride(self, what: str) -> None:
        if any(s != 1 for s in self.stride):
            raise DomainError(f"{what} requires a unit-stride domain")

    def __repr__(self) -> str:
        if all(s == 1 for s in self.stride):
            return f"RectDomain({tuple(self.lb)}, {tuple(self.ub)})"
        return (
            f"RectDomain({tuple(self.lb)}, {tuple(self.ub)}, "
            f"stride={tuple(self.stride)})"
        )


def RECTDOMAIN(lb, ub, stride=None) -> RectDomain:
    """The paper's RECTDOMAIN((lb...), (ub...), (stride...)) macro."""
    return RectDomain(lb, ub, stride)
