"""Titanium-style multidimensional arrays over rectangular domains
(paper §III-E).

An :class:`NdArray` couples a :class:`~repro.arrays.rectdomain.RectDomain`
(the logical index space) with storage allocated in *one* rank's segment
("the elements of an array must be located on a single thread, which may
be in a remote memory location").  The object itself is a lightweight,
picklable descriptor — it can be published in a
:class:`~repro.core.directory.Directory` or shipped inside an async,
which is exactly how the paper composes ``shared_array<ndarray<...>>``.

Views (``constrict``, ``slice``, ``translate``, ``permute``) share
storage and only rewrite the affine index map.  ``A.copy(B)`` is the
paper's one-sided copy: intersect domains, pack at the source, transfer,
unpack at the destination — active messages doing the remote halves.

The ``unstrided`` specialization of the paper (matching logical and
physical stride) corresponds here to the *affine fast path*: for
unit-stride views the index map needs no per-dimension division and
local access compiles to plain NumPy views.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arrays.point import Point
from repro.arrays.rectdomain import RectDomain
from repro.core.world import RankState, current
from repro.errors import BadPointer, DomainError
from repro.gasnet import rma
from repro.gasnet.am import am_handler


class NdArray:
    """A (possibly remote) N-d array over a rectangular domain.

    Do not call the constructor directly — use :func:`ndarray` to
    allocate, or view methods to derive.  All fields are plain data; the
    object is picklable and rank-agnostic.
    """

    __slots__ = (
        "rank", "base_offset", "dtype_str", "domain",
        "elem_base", "elem_strides", "alloc_elems",
    )

    def __init__(self, rank: int, base_offset: int, dtype, domain: RectDomain,
                 elem_base: int, elem_strides: tuple[int, ...],
                 alloc_elems: int):
        self.rank = rank
        self.base_offset = base_offset          # byte offset of allocation
        self.dtype_str = np.dtype(dtype).str    # picklable dtype spec
        self.domain = domain
        self.elem_base = elem_base              # element index of domain.lb
        self.elem_strides = tuple(elem_strides)  # elems per +stride step/dim
        self.alloc_elems = alloc_elems          # total allocation length

    # -- basic properties --------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.dtype_str)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.domain.shape

    @property
    def size(self) -> int:
        return self.domain.size

    @property
    def ndim(self) -> int:
        return self.domain.dim

    def where(self) -> int:
        """The rank holding the storage (affinity)."""
        return self.rank

    def is_local(self) -> bool:
        return current().rank == self.rank

    @property
    def unstrided(self) -> bool:
        """True when the logical and physical strides match: a unit-stride
        domain laid out contiguously in row-major order (the paper's
        template specialization that skips stride arithmetic)."""
        if any(s != 1 for s in self.domain.stride):
            return False
        return self.elem_strides == _row_major(self.shape)

    # -- index mapping -----------------------------------------------------
    def _elem_index(self, pt: Point) -> int:
        """Element index (into the allocation) of logical point ``pt``."""
        if pt not in self.domain:
            raise IndexError(f"{pt} not in {self.domain}")
        idx = self.elem_base
        for c, l, s, es in zip(pt, self.domain.lb, self.domain.stride,
                               self.elem_strides):
            idx += ((c - l) // s) * es
        return idx

    def _byte_offset(self, pt: Point) -> int:
        return self.base_offset + self._elem_index(pt) * self.dtype.itemsize

    # -- element access (overloaded indexing; remote if needed) ------------
    def _as_point(self, index) -> Point:
        if isinstance(index, Point):
            return index
        if isinstance(index, tuple):
            return Point(*index)
        if isinstance(index, int) and self.ndim == 1:
            return Point(index)
        raise IndexError(
            f"index {index!r} cannot address a {self.ndim}-d array; "
            "use a point/tuple, or .slice() for partial indexing"
        )

    def __getitem__(self, index):
        pt = self._as_point(index)
        ctx = current()
        return rma.get(
            ctx, self.rank, self._byte_offset(pt), self.dtype, 1
        )[0]

    def __setitem__(self, index, value) -> None:
        pt = self._as_point(index)
        ctx = current()
        rma.put(
            ctx, self.rank, self._byte_offset(pt),
            np.asarray(value, dtype=self.dtype),
        )

    # -- views ------------------------------------------------------------
    def constrict(self, dom: RectDomain) -> "NdArray":
        """Restrict the view to ``domain ∩ dom`` (paper's ``constrict``)."""
        inter = self.domain.intersect(dom)
        if inter.is_empty:
            return NdArray(
                self.rank, self.base_offset, self.dtype, inter,
                self.elem_base, self.elem_strides, self.alloc_elems,
            )
        new_strides = tuple(
            es * (ns // os)
            for es, ns, os in zip(
                self.elem_strides, inter.stride, self.domain.stride
            )
        )
        base = self.elem_base
        for c, l, s, es in zip(inter.lb, self.domain.lb, self.domain.stride,
                               self.elem_strides):
            base += ((c - l) // s) * es
        return NdArray(
            self.rank, self.base_offset, self.dtype, inter,
            base, new_strides, self.alloc_elems,
        )

    def slice(self, axis: int, coord: int) -> "NdArray":
        """Fix one coordinate: an (N-1)-d view (paper's array slicing)."""
        if self.ndim == 1:
            raise DomainError("cannot slice a 1-d array to 0-d")
        newdom = self.domain.slice(axis, coord)
        base = self.elem_base + (
            (coord - self.domain.lb[axis]) // self.domain.stride[axis]
        ) * self.elem_strides[axis]
        strides = (
            self.elem_strides[:axis] + self.elem_strides[axis + 1:]
        )
        return NdArray(
            self.rank, self.base_offset, self.dtype, newdom,
            base, strides, self.alloc_elems,
        )

    def translate(self, pt) -> "NdArray":
        """Shift the logical domain; storage untouched."""
        pt = pt if isinstance(pt, Point) else Point(pt)
        return NdArray(
            self.rank, self.base_offset, self.dtype,
            self.domain.translate(pt), self.elem_base,
            self.elem_strides, self.alloc_elems,
        )

    def permute(self, perm) -> "NdArray":
        """Reorder dimensions (generalized transpose)."""
        perm = tuple(perm)
        newdom = self.domain.permute(perm)
        strides = tuple(self.elem_strides[p] for p in perm)
        return NdArray(
            self.rank, self.base_offset, self.dtype, newdom,
            self.elem_base, strides, self.alloc_elems,
        )

    def transpose(self) -> "NdArray":
        return self.permute(tuple(reversed(range(self.ndim))))

    def inject(self, factor) -> "NdArray":
        """View with coordinates scaled up: ``A.inject(k)[p*k] == A[p]``
        (Titanium's inject — embed a coarse array in a fine index
        space).  Storage untouched."""
        from repro.arrays.point import Point as _P

        f = factor if isinstance(factor, _P) else \
            _P.all(int(factor), self.ndim)
        return NdArray(
            self.rank, self.base_offset, self.dtype,
            self.domain.inject(f), self.elem_base, self.elem_strides,
            self.alloc_elems,
        )

    def project(self, factor) -> "NdArray":
        """View with coordinates scaled down (inverse of :meth:`inject`;
        the lattice must be divisible by ``factor``)."""
        from repro.arrays.point import Point as _P

        f = factor if isinstance(factor, _P) else \
            _P.all(int(factor), self.ndim)
        return NdArray(
            self.rank, self.base_offset, self.dtype,
            self.domain.project(f), self.elem_base, self.elem_strides,
            self.alloc_elems,
        )

    # -- owner-side bulk access ------------------------------------------
    def local_view(self) -> np.ndarray:
        """Zero-copy writable NumPy view shaped like the domain.

        Owner-only (the local-pointer cast rule).  Works for any view —
        the affine map becomes NumPy strides.
        """
        ctx = current()
        if ctx.rank != self.rank:
            raise BadPointer(
                f"rank {ctx.rank} cannot take a local view of an array on "
                f"rank {self.rank}"
            )
        flat = rma.local_view(
            ctx, self.base_offset, self.dtype, self.alloc_elems
        )
        itemsize = self.dtype.itemsize
        return np.lib.stride_tricks.as_strided(
            flat[self.elem_base:],
            shape=self.shape,
            strides=tuple(es * itemsize for es in self.elem_strides),
            writeable=True,
        )

    def set(self, value) -> None:
        """Fill the (local or remote) array with ``value``."""
        if self.is_local():
            self.local_view()[:] = value
        else:
            block = np.full(self.shape, value, dtype=self.dtype)
            _scatter_remote(self, self.domain, block)

    def to_numpy(self) -> np.ndarray:
        """A private copy of the full contents (works remotely)."""
        if self.is_local():
            return self.local_view().copy()
        return _pack(self, self.domain)

    def from_numpy(self, arr: np.ndarray) -> None:
        """Overwrite contents from a NumPy array of matching shape."""
        arr = np.asarray(arr, dtype=self.dtype)
        if arr.shape != self.shape:
            raise DomainError(
                f"shape mismatch: array {self.shape} vs data {arr.shape}"
            )
        if self.is_local():
            self.local_view()[:] = arr
        else:
            _scatter_remote(self, self.domain, arr)

    # -- the one-sided copy (paper's A.copy(B)) -----------------------------
    def copy(self, src: "NdArray", event=None) -> None:
        """Copy from ``src`` into ``self`` over the domain intersection.

        Fully one-sided from the caller's perspective: neither owner needs
        to cooperate beyond servicing active messages.  Packing, transfer
        and unpacking are automatic, including for strided/sliced views —
        the single-statement ghost update of the paper:

        ``A.constrict(ghost_domain).copy(B)``
        """
        if np.dtype(src.dtype).itemsize != self.dtype.itemsize:
            raise DomainError("copy between incompatible dtypes")
        inter = self.domain.intersect(src.domain)
        if event is not None:
            event.incref()
        try:
            if inter.is_empty:
                return
            block = _pack(src, inter)
            _unpack(self, inter, block)
        finally:
            if event is not None:
                event.decref()

    async_copy = copy  # data movement is eager in the SMP conduit

    # -- misc ----------------------------------------------------------------
    def free(self) -> None:
        """Release the underlying allocation (owner's segment)."""
        from repro.core.allocator import deallocate
        from repro.core.global_ptr import GlobalPtr

        deallocate(GlobalPtr(self.rank, self.base_offset, self.dtype))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"NdArray(rank={self.rank}, dtype={self.dtype_str}, "
            f"domain={self.domain})"
        )


# ---------------------------------------------------------------------------
# allocation
# ---------------------------------------------------------------------------

def _row_major(shape: tuple[int, ...]) -> tuple[int, ...]:
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return tuple(strides)


def ndarray(dtype, domain: RectDomain, rank: Optional[int] = None) -> NdArray:
    """Allocate an array over ``domain`` on ``rank`` (default: caller).

    The paper's ``ARRAY(int, ((1,2),(9,9),(1,3)))`` macro — storage is
    zero-initialized, laid out row-major over the domain's points.
    """
    from repro.core.allocator import allocate

    ctx = current()
    if rank is None:
        rank = ctx.rank
    dt = np.dtype(dtype)
    n = max(domain.size, 1)
    ptr = allocate(rank, n, dt)
    return NdArray(
        rank=rank,
        base_offset=ptr.offset,
        dtype=dt,
        domain=domain,
        elem_base=0,
        elem_strides=_row_major(domain.shape),
        alloc_elems=n,
    )


def ARRAY(dtype, domain_spec) -> NdArray:
    """Paper Table II shorthand: ``ARRAY(int, ((1,2),(9,9),(1,3)))``."""
    if isinstance(domain_spec, RectDomain):
        dom = domain_spec
    else:
        dom = RectDomain(*domain_spec)
    return ndarray(dtype, dom)


# ---------------------------------------------------------------------------
# pack / unpack engine (vectorized gather/scatter over the affine map)
# ---------------------------------------------------------------------------

def _flat_indices(arr: NdArray, dom: RectDomain) -> np.ndarray:
    """Element indices (into the allocation) of ``dom``'s points, shaped
    ``dom.shape`` — computed with broadcasting, no Python point loop."""
    idx = np.full(dom.shape, arr.elem_base, dtype=np.int64)
    for d in range(dom.dim):
        steps = (
            np.arange(dom.shape[d], dtype=np.int64) * dom.stride[d]
            + (dom.lb[d] - arr.domain.lb[d])
        ) // arr.domain.stride[d]
        shape = [1] * dom.dim
        shape[d] = dom.shape[d]
        idx += steps.reshape(shape) * arr.elem_strides[d]
    return idx


def _pack_local(ctx: RankState, arr: NdArray, dom: RectDomain) -> np.ndarray:
    """Owner-side gather of ``dom`` into a contiguous block."""
    flat = rma.local_view(ctx, arr.base_offset, arr.dtype, arr.alloc_elems)
    return flat[_flat_indices(arr, dom)].copy()


def _unpack_local(ctx: RankState, arr: NdArray, dom: RectDomain,
                  block: np.ndarray) -> None:
    """Owner-side scatter of a contiguous block into ``dom``."""
    flat = rma.local_view(ctx, arr.base_offset, arr.dtype, arr.alloc_elems)
    flat[_flat_indices(arr, dom)] = block


@am_handler("nd_pack")
def _nd_pack_handler(ctx: RankState, am) -> None:
    arr, dom = am.args
    with ctx._activate():
        block = _pack_local(ctx, arr, dom)
    ctx.reply(am, payload=block)


@am_handler("nd_unpack")
def _nd_unpack_handler(ctx: RankState, am) -> None:
    arr, dom = am.args
    block = np.asarray(am.payload).reshape(dom.shape)
    with ctx._activate():
        _unpack_local(ctx, arr, dom, block)
    ctx.reply(am, args=("ok",))


def _pack(src: NdArray, dom: RectDomain) -> np.ndarray:
    """Gather ``dom`` from ``src`` wherever it lives."""
    ctx = current()
    if src.rank == ctx.rank:
        ctx.stats.record_local()
        return _pack_local(ctx, src, dom)
    fut = ctx.send_am(
        src.rank, "nd_pack", args=(src, dom), expect_reply=True
    )
    _args, payload = fut.get()
    return np.asarray(payload).reshape(dom.shape)


def _unpack(dst: NdArray, dom: RectDomain, block: np.ndarray) -> None:
    """Scatter a block into ``dst`` wherever it lives."""
    ctx = current()
    if dst.rank == ctx.rank:
        ctx.stats.record_local()
        _unpack_local(ctx, dst, dom, block)
        return
    fut = ctx.send_am(
        dst.rank, "nd_unpack", args=(dst, dom),
        payload=np.ascontiguousarray(block), expect_reply=True,
    )
    fut.get()


def _scatter_remote(dst: NdArray, dom: RectDomain, block: np.ndarray) -> None:
    _unpack(dst, dom, np.asarray(block, dtype=dst.dtype))
