"""Titanium-style multidimensional domains and arrays (paper §III-E).

The components match the paper's list:

* **points** — coordinates in N-dimensional space (:class:`Point`);
* **rectangular domains** — lower bound, *exclusive* upper bound and a
  stride (:class:`RectDomain`; the paper's footnote 1 chooses exclusive
  upper bounds over Titanium's inclusive ones — so do we);
* **arrays** — constructed over a rectangular domain and indexed by
  points (:class:`NdArray`), with views (constrict/slice/translate/
  permute), the one-sided ``A.copy(B)`` with automatic domain
  intersection, and an ``unstrided`` fast path.

The macro shorthands of Table II map to plain constructors::

    POINT(1, 2)                  -> Point(1, 2)
    RECTDOMAIN((1,2), (9,9))     -> RectDomain((1, 2), (9, 9))
    ARRAY(int, ((1,2),(9,9)))    -> ndarray(np.int64, RectDomain((1,2),(9,9)))
    foreach (p, dom)             -> for p in foreach(dom)
"""

from repro.arrays.point import Point, POINT
from repro.arrays.rectdomain import RectDomain, RECTDOMAIN
from repro.arrays.domain import Domain
from repro.arrays.ndarray import NdArray, ndarray, ARRAY
from repro.arrays.foreach import foreach, foreach_tuples
from repro.arrays.distarray import DistNdArray, process_grid

__all__ = [
    "Point", "POINT",
    "RectDomain", "RECTDOMAIN",
    "Domain",
    "NdArray", "ndarray", "ARRAY",
    "foreach", "foreach_tuples",
    "DistNdArray", "process_grid",
]
