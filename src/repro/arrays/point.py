"""Points: coordinates in N-dimensional index space (paper §III-E).

A :class:`Point` is an immutable tuple of integers with elementwise
arithmetic.  Being a tuple subclass, a point unpacks naturally::

    for (i, j, k) in foreach(interior):   # paper's foreach3(i, j, k, ...)
        ...

Indexing is 0-based (Pythonic), unlike Titanium's 1-based ``pt[1]``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import DomainError


class Point(tuple):
    """An N-dimensional integer coordinate."""

    __slots__ = ()

    def __new__(cls, *coords):
        if len(coords) == 1 and isinstance(coords[0], Iterable) and not isinstance(
            coords[0], (int, float)
        ):
            coords = tuple(coords[0])
        vals = []
        for c in coords:
            if not isinstance(c, (int,)) and not (
                hasattr(c, "__index__")
            ):
                raise DomainError(f"point coordinates must be integers, got {c!r}")
            vals.append(int(c))
        if not vals:
            raise DomainError("points must have at least one dimension")
        return super().__new__(cls, vals)

    # -- structure ---------------------------------------------------------
    @property
    def dim(self) -> int:
        """Arity (the N of N-dimensional)."""
        return len(self)

    @staticmethod
    def all(value: int, dim: int) -> "Point":
        """The point (value, value, ..., value) of arity ``dim``."""
        return Point(*([int(value)] * dim))

    @staticmethod
    def zero(dim: int) -> "Point":
        return Point.all(0, dim)

    @staticmethod
    def ones(dim: int) -> "Point":
        return Point.all(1, dim)

    def replace(self, axis: int, value: int) -> "Point":
        """Copy with coordinate ``axis`` set to ``value``."""
        coords = list(self)
        coords[axis] = int(value)
        return Point(*coords)

    def drop(self, axis: int) -> "Point":
        """Copy with coordinate ``axis`` removed (used by slicing)."""
        if self.dim == 1:
            raise DomainError("cannot drop the last dimension of a point")
        coords = list(self)
        del coords[axis]
        return Point(*coords)

    def permute(self, perm: Iterable[int]) -> "Point":
        perm = tuple(perm)
        if sorted(perm) != list(range(self.dim)):
            raise DomainError(f"{perm} is not a permutation of 0..{self.dim - 1}")
        return Point(*(self[p] for p in perm))

    # -- arithmetic ----------------------------------------------------------
    def _coerce(self, other) -> "Point":
        if isinstance(other, Point):
            if other.dim != self.dim:
                raise DomainError(
                    f"arity mismatch: {self.dim}-d vs {other.dim}-d point"
                )
            return other
        if isinstance(other, int):
            return Point.all(other, self.dim)
        if isinstance(other, tuple):
            return Point(*other)
        return NotImplemented  # type: ignore[return-value]

    def _zip(self, other, op) -> "Point":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return Point(*(op(a, b) for a, b in zip(self, o)))

    def __add__(self, other):
        return self._zip(other, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, other):
        return self._zip(other, lambda a, b: a - b)

    def __rsub__(self, other):
        o = self._coerce(other)
        return o - self if o is not NotImplemented else NotImplemented

    def __mul__(self, other):
        return self._zip(other, lambda a, b: a * b)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        return self._zip(other, lambda a, b: a // b)

    def __mod__(self, other):
        return self._zip(other, lambda a, b: a % b)

    def __neg__(self) -> "Point":
        return Point(*(-a for a in self))

    # -- domination order (componentwise) -------------------------------------
    # NOTE: tuple's lexicographic <, <= are *shadowed* by the componentwise
    # partial order, which is what domain logic needs.
    def __lt__(self, other) -> bool:
        o = self._coerce(other)
        return all(a < b for a, b in zip(self, o))

    def __le__(self, other) -> bool:
        o = self._coerce(other)
        return all(a <= b for a, b in zip(self, o))

    def __gt__(self, other) -> bool:
        o = self._coerce(other)
        return all(a > b for a, b in zip(self, o))

    def __ge__(self, other) -> bool:
        o = self._coerce(other)
        return all(a >= b for a, b in zip(self, o))

    def min(self, other) -> "Point":
        return self._zip(other, min)

    def max(self, other) -> "Point":
        return self._zip(other, max)

    def dot(self, other) -> int:
        o = self._coerce(other)
        return sum(a * b for a, b in zip(self, o))

    def __repr__(self) -> str:
        return f"Point{tuple(self)}"


def POINT(*coords) -> Point:
    """The paper's POINT(...) macro shorthand."""
    return Point(*coords)
