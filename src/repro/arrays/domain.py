"""General (multi-rectangle) domains.

Union and difference of rectangles are generally not rectangles; a
:class:`Domain` holds a list of *disjoint* :class:`RectDomain` pieces.
Titanium exposes the same split: ``RectDomain`` for the common regular
case, ``Domain`` for results of domain algebra (e.g. "interior = whole -
ghost shells").

Union/difference require the operands' strides to match componentwise
(all practical uses — ghost regions, boundaries — are unit-stride);
intersection is exact for arbitrary strides via
:meth:`RectDomain.intersect`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.arrays.point import Point
from repro.arrays.rectdomain import RectDomain
from repro.errors import DomainError


def _rect_minus_rect(a: RectDomain, b: RectDomain) -> list[RectDomain]:
    """a - b as a list of disjoint rects (strides must match)."""
    if a.stride != b.stride:
        raise DomainError(
            "difference requires matching strides "
            f"({tuple(a.stride)} vs {tuple(b.stride)})"
        )
    inter = a.intersect(b)
    if inter.is_empty:
        return [a] if not a.is_empty else []
    pieces: list[RectDomain] = []
    # Sweep axis by axis: carve off the slabs of `a` strictly below and
    # strictly above the intersection in each dimension, shrinking the
    # working box as we go; what remains at the end equals `inter`.
    lb, ub = list(a.lb), list(a.ub)
    for d in range(a.dim):
        if lb[d] < inter.lb[d]:
            lo = RectDomain(
                Point(*lb),
                Point(*(ub[:d] + [inter.lb[d]] + ub[d + 1:])),
                a.stride,
            )
            if not lo.is_empty:
                pieces.append(lo)
        hi_start = inter.max_point()[d] + a.stride[d]
        if hi_start < ub[d]:
            hi = RectDomain(
                Point(*(lb[:d] + [hi_start] + lb[d + 1:])),
                Point(*ub),
                a.stride,
            )
            if not hi.is_empty:
                pieces.append(hi)
        lb[d] = inter.lb[d]
        ub[d] = hi_start
    return pieces


class Domain:
    """A finite union of disjoint rectangular domains."""

    __slots__ = ("rects", "dim")

    def __init__(self, rects: Iterable[RectDomain] = ()):
        pieces = [r for r in rects if not r.is_empty]
        if pieces:
            dim = pieces[0].dim
            if any(r.dim != dim for r in pieces):
                raise DomainError("mixed-arity domain")
        else:
            dim = 0
        # Make the list disjoint: each new rect subtracts everything
        # already accepted.
        disjoint: list[RectDomain] = []
        for r in pieces:
            fragments = [r]
            for seen in disjoint:
                fragments = [
                    f for frag in fragments for f in _rect_minus_rect(frag, seen)
                ]
            disjoint.extend(fragments)
        self.rects: tuple[RectDomain, ...] = tuple(disjoint)
        self.dim = dim if pieces else 0

    # -- queries --------------------------------------------------------
    @property
    def size(self) -> int:
        return sum(r.size for r in self.rects)

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def __contains__(self, pt) -> bool:
        return any(pt in r for r in self.rects)

    def __iter__(self) -> Iterator[Point]:
        for r in self.rects:
            yield from r

    def point_set(self) -> frozenset:
        """All points as a frozenset (testing/verification aid)."""
        return frozenset(tuple(p) for p in self)

    def __eq__(self, other) -> bool:
        if isinstance(other, RectDomain):
            other = Domain([other])
        if not isinstance(other, Domain):
            return NotImplemented
        if self.size != other.size:
            return False
        return all(p in other for p in self)

    def __hash__(self):
        raise TypeError("Domain is not hashable (set semantics)")

    # -- algebra ---------------------------------------------------------
    @staticmethod
    def _as_domain(x) -> "Domain":
        if isinstance(x, RectDomain):
            return Domain([x])
        if isinstance(x, Domain):
            return x
        raise DomainError(f"not a domain: {x!r}")

    def __add__(self, other) -> "Domain":
        other = Domain._as_domain(other)
        return Domain(list(self.rects) + list(other.rects))

    __or__ = __add__

    def __sub__(self, other) -> "Domain":
        other = Domain._as_domain(other)
        remaining = list(self.rects)
        for b in other.rects:
            remaining = [
                f for frag in remaining for f in _rect_minus_rect(frag, b)
            ]
        return Domain(remaining)

    def __mul__(self, other) -> "Domain":
        other = Domain._as_domain(other)
        out = []
        for a in self.rects:
            for b in other.rects:
                out.append(a.intersect(b))
        return Domain(out)

    __and__ = __mul__

    def translate(self, pt) -> "Domain":
        return Domain([r.translate(pt) for r in self.rects])

    def bounding_box(self) -> RectDomain:
        """The smallest unit-stride rect containing every point."""
        if self.is_empty:
            raise DomainError("empty domain has no bounding box")
        lb = self.rects[0].lb
        ub_incl = self.rects[0].max_point()
        for r in self.rects[1:]:
            lb = lb.min(r.lb)
            ub_incl = ub_incl.max(r.max_point())
        return RectDomain(lb, ub_incl + 1)

    def __repr__(self) -> str:
        return f"Domain[{', '.join(map(repr, self.rects))}]"
