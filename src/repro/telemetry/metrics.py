"""The cluster-wide metrics plane.

Three pieces, all feeding ROADMAP Open item 5 (self-tuning runtime):

* a **typed per-rank registry** (:class:`MetricsRegistry`) of monotonic
  :class:`Counter`\\ s and last-value :class:`Gauge`\\ s, living next to
  the rank's mergeable ``LogHistogram``\\ s;
* a **collective reduction** — :func:`metrics_reduce` folds every
  rank's metrics snapshot over the tree-collectives engine itself
  (``allreduce`` with :func:`merge_snapshots` as the operator).  The
  merge is pure integer bucket/count arithmetic, hence associative and
  commutative, so the tree's reduction order is irrelevant: the result
  is **bit-identical** to offline merging of the same per-rank
  snapshots (asserted in tests);
* a **background sampler + straggler watchdog**
  (:class:`MetricsSampler`) — one daemon thread sampling runtime depth
  gauges (task queue, pending reply futures, outstanding retransmits,
  segment bytes, steal rate) and flagging in-flight AMs that exceed a
  percentile-derived deadline as ``slow_op`` flight-recorder events
  *before* they escalate to ``CommTimeout``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.telemetry.histogram import LogHistogram


# -- typed registry ----------------------------------------------------------
class Counter:
    """A monotonically increasing integer; cross-rank merge is ``+``."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value; cross-rank merge keeps min/max/sum/n so
    cluster-level mean and extremes survive the reduction."""

    __slots__ = ("name", "_last", "_min", "_max", "_sum", "_n", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._last = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None
        self._sum = 0
        self._n = 0
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._last = value
            self._sum += value
            self._n += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def value(self):
        return self._last

    def state(self) -> dict:
        with self._lock:
            return {"last": self._last, "min": self._min, "max": self._max,
                    "sum": self._sum, "n": self._n}


class MetricsRegistry:
    """Get-or-create registry of named counters and gauges (one per
    rank, hanging off ``ctx.telemetry.metrics``)."""

    __slots__ = ("_counters", "_gauges", "_lock")

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def snapshot(self) -> dict:
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.state() for n, g in self._gauges.items()}
        return {"counters": counters, "gauges": gauges}


# -- mergeable snapshots -----------------------------------------------------
def _hist_state(h: LogHistogram) -> dict:
    """Raw mergeable state of one histogram: exact integers only, no
    derived floats — derivation happens once, after the final merge."""
    snap = h.snapshot()
    return {"unit": snap["unit"], "count": snap["count"],
            "sum": snap["sum"], "min": snap["min"], "max": snap["max"],
            "buckets": dict(snap["buckets"])}


def rank_snapshot(ctx) -> dict:
    """One rank's full metrics snapshot: histograms (raw state),
    CommStats counters, registry counters, and gauges."""
    tel = ctx.telemetry
    counters = dict(ctx.stats.snapshot())
    reg = tel.metrics.snapshot()
    for name, v in reg["counters"].items():
        counters[name] = counters.get(name, 0) + v
    return {
        "ranks": [ctx.rank],
        "histograms": {name: _hist_state(h)
                       for name, h in sorted(tel.histograms().items())},
        "counters": counters,
        "gauges": reg["gauges"],
    }


def _merge_hist_state(a: dict, b: dict) -> dict:
    buckets = dict(a["buckets"])
    for bit, n in b["buckets"].items():
        buckets[bit] = buckets.get(bit, 0) + n
    lo = (a["min"] if b["min"] is None else
          b["min"] if a["min"] is None else min(a["min"], b["min"]))
    hi = (a["max"] if b["max"] is None else
          b["max"] if a["max"] is None else max(a["max"], b["max"]))
    return {"unit": a["unit"], "count": a["count"] + b["count"],
            "sum": a["sum"] + b["sum"], "min": lo, "max": hi,
            "buckets": buckets}


def merge_snapshots(a: dict, b: dict) -> dict:
    """Pure, associative, commutative merge of two metrics snapshots —
    the reduction operator for both the collective and offline paths
    (using the same function is what makes them bit-identical)."""
    hists = {}
    for name in set(a["histograms"]) | set(b["histograms"]):
        ha, hb = a["histograms"].get(name), b["histograms"].get(name)
        if ha is None:
            hists[name] = dict(hb, buckets=dict(hb["buckets"]))
        elif hb is None:
            hists[name] = dict(ha, buckets=dict(ha["buckets"]))
        else:
            hists[name] = _merge_hist_state(ha, hb)
    counters = dict(a["counters"])
    for name, v in b["counters"].items():
        counters[name] = counters.get(name, 0) + v
    gauges = dict(a["gauges"])
    for name, g in b["gauges"].items():
        ga = gauges.get(name)
        if ga is None:
            gauges[name] = dict(g)
        else:
            lo = (ga["min"] if g["min"] is None else
                  g["min"] if ga["min"] is None else min(ga["min"], g["min"]))
            hi = (ga["max"] if g["max"] is None else
                  g["max"] if ga["max"] is None else max(ga["max"], g["max"]))
            # "last" has no canonical cluster value; keep the one from
            # the lowest rank so the result is order-independent
            last = ga["last"] if min(a["ranks"]) < min(b["ranks"]) else g["last"]
            gauges[name] = {"last": last, "min": lo, "max": hi,
                            "sum": ga["sum"] + g["sum"],
                            "n": ga["n"] + g["n"]}
    return {"ranks": sorted(a["ranks"] + b["ranks"]),
            "histograms": hists, "counters": counters, "gauges": gauges}


def hist_from_state(name: str, st: dict) -> LogHistogram:
    """Rebuild a live LogHistogram from merged raw state (so derived
    quantiles use the exact same interpolation everywhere)."""
    h = LogHistogram(name, st["unit"])
    for bit, n in st["buckets"].items():
        h.buckets[int(bit)] = n
    h.count = st["count"]
    h.total = st["sum"]
    h.min_value = st["min"]
    h.max_value = st["max"]
    return h


def finalize_snapshot(snap: dict) -> dict:
    """Attach derived stats (mean/p50/p90/p99) to every histogram of a
    merged snapshot.  Derivation is a pure function of the exact merged
    integers, so any two identically merged snapshots finalize
    identically."""
    out = dict(snap)
    hists = {}
    for name, st in snap["histograms"].items():
        h = hist_from_state(name, st)
        full = dict(st)
        full.update(mean=h.mean, p50=h.p50, p90=h.p90, p99=h.p99)
        hists[name] = full
    out["histograms"] = hists
    return out


def metrics_reduce(team=None, snapshot: dict | None = None) -> dict:
    """Collective: fold every participating rank's metrics snapshot into
    one cluster view, over the tree-collectives engine itself.

    Must be called from rank context (inside ``spmd``) by every member
    of ``team``.  ``snapshot`` overrides this rank's contribution (the
    bit-identical test passes the same snapshot it stashed for offline
    merging); by default the rank snapshots itself at call time.
    """
    from repro.core import collectives
    from repro.core.world import current

    ctx = current()
    if snapshot is None:
        snapshot = rank_snapshot(ctx)
    merged = collectives.allreduce(snapshot, op=merge_snapshots, team=team)
    return finalize_snapshot(merged)


# -- background sampler + straggler watchdog ---------------------------------
class MetricsSampler(threading.Thread):
    """Daemon thread sampling runtime depth metrics and flagging slow
    in-flight ops.

    Sampled per live rank every ``sample_period``: task queue depth,
    pending reply futures, outstanding retransmits (reliability layer),
    segment bytes in use, and work-steal rate — each into a gauge plus
    (mode ``full``) a mergeable histogram, so ``metrics_reduce`` can see
    cluster-wide distributions.

    The watchdog half scans in-flight request metadata every
    ``watchdog_period`` and emits a ``slow_op`` flight event for any op
    older than ``max(slow_op_min_s, slow_op_factor * p99(am_rtt))`` —
    the flight recorder shows the straggler while it is still alive,
    not after the 15 s op timeout declares it dead.
    """

    def __init__(self, world, sample_period: float | None,
                 watchdog_period: float | None,
                 slow_op_factor: float, slow_op_min_s: float):
        super().__init__(name="pgas-metrics-sampler", daemon=True)
        self.world = world
        self.sample_period = sample_period
        self.watchdog_period = watchdog_period
        self.slow_op_factor = slow_op_factor
        self.slow_op_min_s = slow_op_min_s
        self._stop_ev = threading.Event()
        self._flagged: set[tuple[int, int]] = set()
        self._last_steals: dict[int, int] = {}
        periods = [p for p in (sample_period, watchdog_period) if p]
        self._tick = min(periods) if periods else 0.05

    def stop(self) -> None:
        self._stop_ev.set()

    def run(self) -> None:
        next_sample = next_watchdog = time.monotonic()
        while not self._stop_ev.wait(self._tick):
            now = time.monotonic()
            try:
                if self.sample_period and now >= next_sample:
                    next_sample = now + self.sample_period
                    self._sample()
                if self.watchdog_period and now >= next_watchdog:
                    next_watchdog = now + self.watchdog_period
                    self._watchdog()
            except Exception:
                # sampling must never take the runtime down
                pass

    # -- depth sampling ---------------------------------------------------
    def _sample(self) -> None:
        world = self.world
        rc = getattr(world, "_reliable", None)
        unacked_by_src: dict[int, int] = {}
        if rc is not None:
            for (src, _dst, _seq) in list(rc._unacked):
                unacked_by_src[src] = unacked_by_src.get(src, 0) + 1
        local = getattr(world, "local_ranks", None)
        for ctx in world.ranks:
            if ctx.rank in world.dead_ranks:
                continue
            if local is not None and ctx.rank not in local:
                continue  # proc backend: remote stubs have no metrics
            tel = ctx.telemetry
            m = tel.metrics
            depth = len(ctx.task_queue)
            pending = len(ctx._pending)
            unacked = unacked_by_src.get(ctx.rank, 0)
            seg = ctx.segment._bytes_in_use
            m.gauge("task_queue_depth").set(depth)
            m.gauge("pending_replies").set(pending)
            m.gauge("outstanding_retransmits").set(unacked)
            m.gauge("segment_bytes_in_use").set(seg)
            steals = m.counter("wq_steals_ok").value
            prev = self._last_steals.get(ctx.rank, steals)
            self._last_steals[ctx.rank] = steals
            if self.sample_period:
                m.gauge("steal_rate_per_s").set(
                    int((steals - prev) / self.sample_period))
            tel.record_value("sampled_task_queue_depth", depth, "items")
            tel.record_value("sampled_pending_replies", pending, "items")
            tel.record_value("sampled_retransmit_backlog", unacked, "items")
            tel.record_value("sampled_segment_bytes", seg, "bytes")

    # -- straggler watchdog -----------------------------------------------
    def _deadline_for(self, tel) -> float:
        h = tel.histograms().get("am_rtt")
        if h is not None and h.count >= 32:
            return max(self.slow_op_min_s,
                       self.slow_op_factor * h.p99 / 1e9)
        return self.slow_op_min_s

    def _watchdog(self) -> None:
        now = time.monotonic()
        for ctx in self.world.ranks:
            if ctx.rank in self.world.dead_ranks:
                continue
            tel = ctx.telemetry
            pending = list(ctx._pending_meta.items())
            if not pending:
                continue
            deadline = self._deadline_for(tel)
            live = set()
            for token, (t0, handler, dst, trace_id) in pending:
                key = (ctx.rank, token)
                live.add(key)
                age = now - t0
                if age > deadline and key not in self._flagged:
                    self._flagged.add(key)
                    tel.flight_event(
                        "slow_op", src=ctx.rank, dst=dst,
                        detail=(f"{handler} token={token} in flight "
                                f"{age * 1e3:.1f}ms > deadline "
                                f"{deadline * 1e3:.1f}ms"),
                        trace_id=trace_id)
                    tel.metrics.counter("slow_ops_flagged").inc()
            self._flagged = {k for k in self._flagged
                             if k[0] != ctx.rank or k in live}


__all__ = [
    "Counter", "Gauge", "MetricsRegistry", "MetricsSampler",
    "rank_snapshot", "merge_snapshots", "finalize_snapshot",
    "hist_from_state", "metrics_reduce",
]
