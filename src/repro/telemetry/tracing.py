"""Cross-rank causal tracing — distributed trace-context propagation.

A *trace* is the causal closure of one client-visible operation: the
client op span is the root, and every AM sent while it is open carries
the pair ``(trace_id, span_id)`` in a 16-byte wire-frame trailer (see
``repro.gasnet.wire.frame.F_HAS_TRACE``).  The receiving rank's handler
dispatch rebinds that context for the duration of the handler, so
handler spans, replication hops (``kv_repl``), retransmits, and replies
all join the originating trace — exactly the "context propagation" half
of Dapper-style tracing, scaled down to one process full of rank
threads.

Binding is **thread-local**: handlers run either on a rank's own thread
or on a shared progress thread, and a thread acts for exactly one rank
at a time, so a plain ``threading.local`` is both correct and cheap.
When telemetry is off, nothing ever binds and every outgoing AM keeps
``trace_id == 0`` — zero wire bytes, zero branches beyond one falsy
attribute test.

Trace/span ids are generated from a **rank-salted counter**
(``(rank + 1) << 40 | n``) rather than random bits so fixed-seed tests
reproduce identical ids run-to-run.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Tuple

_UNBOUND: Tuple[int, int] = (0, 0)
_tls = threading.local()


def current_ids() -> Tuple[int, int]:
    """The calling thread's bound ``(trace_id, span_id)``; (0, 0) when
    no trace context is active."""
    return getattr(_tls, "ids", _UNBOUND)


def current_trace_id() -> int:
    """The calling thread's bound trace id (0 when untraced)."""
    return getattr(_tls, "ids", _UNBOUND)[0]


class bound:
    """Context manager binding an explicit ``(trace_id, span_id)`` pair
    to the calling thread — the handler-dispatch side of propagation."""

    __slots__ = ("_ids", "_prev")

    def __init__(self, trace_id: int, span_id: int):
        self._ids = (trace_id, span_id)

    def __enter__(self) -> "bound":
        self._prev = getattr(_tls, "ids", _UNBOUND)
        _tls.ids = self._ids
        return self

    def __exit__(self, *exc) -> None:
        _tls.ids = self._prev


class span:
    """Open a traced span on ``tel`` (a :class:`RankTelemetry`).

    * If no trace is bound on this thread, a fresh ``trace_id`` is
      minted — this span is the trace **root** (a client op).
    * If a trace is already bound (e.g. we are inside an AM handler
      whose message carried context), the span joins it as a child.

    While the span is open the context is bound thread-locally, so any
    AM the body sends is stamped with this span as parent.  The span is
    recorded (mode ``full`` only) on exit; flight events emitted inside
    pick up the trace id automatically.  When telemetry is inactive the
    whole object is a no-op and ``trace_id`` stays 0.
    """

    __slots__ = ("tel", "name", "detail", "trace_id", "span_id",
                 "parent_id", "_t0", "_bound")

    def __init__(self, tel, name: str, detail: str = ""):
        self.tel = tel
        self.name = name
        self.detail = detail
        self.trace_id = 0
        self.span_id = 0
        self.parent_id = 0
        self._t0 = 0.0
        self._bound: Optional[bound] = None

    def __enter__(self) -> "span":
        tel = self.tel
        if tel is None or not tel.active:
            return self
        cur_trace, cur_span = current_ids()
        self.trace_id = cur_trace or tel.new_trace_id()
        self.parent_id = cur_span
        self.span_id = tel.new_span_id()
        self._bound = bound(self.trace_id, self.span_id)
        self._bound.__enter__()
        if tel.full:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._bound is None:
            return
        self._bound.__exit__()
        self._bound = None
        tel = self.tel
        if tel.full and self._t0:
            tel.record_span(
                self.name, self._t0, time.perf_counter() - self._t0,
                detail=self.detail, trace_id=self.trace_id,
                span_id=self.span_id, parent_id=self.parent_id)


__all__ = ["bound", "span", "current_ids", "current_trace_id"]
