"""Conduit-boundary instrumentation.

:class:`TelemetryConduit` is a decorating conduit (same pattern as
:class:`repro.gasnet.trace._TracingConduit`) installed by the world when
telemetry is enabled.  It is the **outermost** layer of the conduit
stack — outside :class:`~repro.gasnet.reliability.ReliableConduit` — so
the latencies it records are what the *application* experienced,
retries and backoff included.

Per operation it records:

* a latency histogram sample (``rma_put``/``rma_get``/``rma_atomic``/
  ``rma_put_indexed``/``rma_get_indexed``/``rma_atomic_batch``/
  ``send_am``) in ``"full"`` mode;
* a flight-recorder event in ``"flight"``/``"full"`` modes, charged to
  the initiating rank.

It also exposes the ``trace_control`` hook the reliability/chaos layers
discover via ``getattr(world.conduit, "trace_control", None)``: control
events (retransmits, duplicate suppression, injected chaos, peer
death) land in the initiator's flight ring and are forwarded to any
inner ``trace_control`` so stacking with :class:`~repro.gasnet.trace.
Trace` loses nothing.
"""

from __future__ import annotations

import time

import numpy as np

from repro.gasnet.am import ActiveMessage


class TelemetryConduit:
    """Decorator timing every conduit operation into telemetry."""

    def __init__(self, inner, telemetry):
        self._inner = inner
        self._telemetry = telemetry
        self.world = getattr(inner, "world", None)

    # -- lifecycle ---------------------------------------------------------
    def attach(self, world) -> None:
        self._inner.attach(world)
        self.world = world

    def close(self) -> None:
        self._inner.close()

    def __getattr__(self, name):
        # Delegate extras (fail_next_am, kill_rank, cfg, ...) so test
        # hooks and inner-layer knobs keep working through the wrapper.
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(self.__dict__["_inner"], name)

    # -- helpers -----------------------------------------------------------
    def _rank_tel(self, rank: int):
        return self._telemetry.ranks[rank]

    # -- active messages ----------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        tel = self._rank_tel(src)
        t0 = time.perf_counter()
        try:
            self._inner.send_am(src, dst, am)
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("send_am").record_seconds(dt)
            tel.flight_event("reply" if am.is_reply else "am", src, dst,
                             am.wire_bytes, detail=am.handler)

    # -- one-sided RMA -------------------------------------------------------
    def rma_put(self, src: int, dst: int, offset: int, data) -> None:
        tel = self._rank_tel(src)
        t0 = time.perf_counter()
        try:
            self._inner.rma_put(src, dst, offset, data)
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("rma_put").record_seconds(dt)
            tel.flight_event("rma_put", src, dst,
                             np.asarray(data).nbytes)

    def rma_get(self, src: int, dst: int, offset: int, dtype, count):
        tel = self._rank_tel(src)
        t0 = time.perf_counter()
        try:
            return self._inner.rma_get(src, dst, offset, dtype, count)
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("rma_get").record_seconds(dt)
            tel.flight_event("rma_get", src, dst,
                             np.dtype(dtype).itemsize * count)

    def rma_atomic(self, src: int, dst: int, offset: int, dtype, op,
                   operand):
        tel = self._rank_tel(src)
        t0 = time.perf_counter()
        try:
            return self._inner.rma_atomic(src, dst, offset, dtype, op,
                                          operand)
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("rma_atomic").record_seconds(dt)
            tel.flight_event("rma_atomic", src, dst,
                             np.dtype(dtype).itemsize)

    # -- indexed bulk RMA ----------------------------------------------------
    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets, data) -> None:
        tel = self._rank_tel(src)
        n = np.asarray(elem_offsets).size
        t0 = time.perf_counter()
        try:
            self._inner.rma_put_indexed(src, dst, base, elem_offsets, data)
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("rma_put_indexed").record_seconds(dt)
            tel.flight_event("rma_put_indexed", src, dst,
                             np.asarray(data).nbytes,
                             detail=f"{n} elems")

    def rma_get_indexed(self, src: int, dst: int, base: int, dtype,
                        elem_offsets):
        tel = self._rank_tel(src)
        n = np.asarray(elem_offsets).size
        t0 = time.perf_counter()
        try:
            return self._inner.rma_get_indexed(src, dst, base, dtype,
                                               elem_offsets)
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("rma_get_indexed").record_seconds(dt)
            tel.flight_event("rma_get_indexed", src, dst,
                             np.dtype(dtype).itemsize * n,
                             detail=f"{n} elems")

    def rma_atomic_batch(self, src: int, dst: int, base: int, dtype,
                         elem_offsets, op, operands,
                         return_old: bool = False):
        tel = self._rank_tel(src)
        n = np.asarray(elem_offsets).size
        t0 = time.perf_counter()
        try:
            return self._inner.rma_atomic_batch(
                src, dst, base, dtype, elem_offsets, op, operands,
                return_old,
            )
        finally:
            dt = time.perf_counter() - t0
            if tel.full:
                tel.histogram("rma_atomic_batch").record_seconds(dt)
            tel.flight_event("rma_atomic_batch", src, dst,
                             np.dtype(dtype).itemsize * n,
                             detail=f"{n} elems")

    # -- control events ------------------------------------------------------
    def trace_control(self, kind: str, src: int, dst: int,
                      nbytes: int = 0, detail: str = "") -> None:
        """Receive reliability/chaos control events; flight-record them
        on the initiator and forward down the chain."""
        if 0 <= src < len(self._telemetry.ranks):
            self._rank_tel(src).flight_event(kind, src, dst, nbytes, detail)
        fwd = getattr(self._inner, "trace_control", None)
        if fwd is not None:
            try:
                fwd(kind, src, dst, nbytes, detail)
            except Exception:  # telemetry must never break the transport
                pass
