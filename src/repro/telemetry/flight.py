"""The failure-time flight recorder.

PGAS bugs are *pattern* bugs: by the time a ``CommTimeout`` or
``PeerFailure`` surfaces, the interesting part — what every rank was
doing in the moments before — is gone.  Each rank therefore keeps a
bounded ring buffer of recent runtime events (conduit ops, AM handling,
task lifecycle, reliability control traffic, failures); when a failure
propagates out of :func:`repro.spmd`, all rings are merged into one
time-ordered, human-readable dump — the black box read-out.

Recording one event is a timestamp plus a bounded ``deque.append``;
cheap enough for the ``"flight"`` telemetry mode to ride along on every
conduit operation.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable

#: Default ring capacity (events kept per rank).
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class FlightEvent:
    """One recorded runtime event."""

    t: float          # time.perf_counter() at record time
    rank: int         # the rank that recorded the event
    kind: str         # "rma_put" | "am" | "task_run" | "retransmit" | ...
    src: int = -1     # initiator (-1: not a point-to-point event)
    dst: int = -1     # target (-1: not a point-to-point event)
    nbytes: int = 0
    detail: str = ""
    trace_id: int = 0  # causal trace (repro.telemetry.tracing); 0 = untraced


class FlightRecorder:
    """A bounded per-rank ring of :class:`FlightEvent`."""

    __slots__ = ("rank", "capacity", "_ring", "_lock", "dropped")

    def __init__(self, rank: int, capacity: int = DEFAULT_CAPACITY):
        self.rank = rank
        self.capacity = capacity
        self._ring: deque[FlightEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Events evicted by the ring bound (how much history was lost).
        self.dropped = 0

    def record(self, kind: str, src: int = -1, dst: int = -1,
               nbytes: int = 0, detail: str = "",
               trace_id: int = 0) -> None:
        ev = FlightEvent(t=time.perf_counter(), rank=self.rank, kind=kind,
                         src=src, dst=dst, nbytes=nbytes, detail=detail,
                         trace_id=trace_id)
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(ev)

    def snapshot(self) -> list[FlightEvent]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def merge_dump(recorders: Iterable[FlightRecorder],
               header: str = "", limit_per_rank: int | None = None,
               extra_events: Iterable[FlightEvent] | None = None) -> str:
    """Merge per-rank rings into one human-readable, time-ordered dump.

    ``header`` names the triggering failure (e.g. the ``CommTimeout``
    message — which itself names the stuck op).  Timestamps are printed
    relative to the earliest merged event so the dump reads as a
    countdown to the failure.  ``extra_events`` lets out-of-band sources
    (e.g. the chaos conduit's injected-fault schedule) splice instants
    into the same timeline.
    """
    per_rank: list[tuple[FlightRecorder, list[FlightEvent]]] = []
    for rec in recorders:
        evs = rec.snapshot()
        if limit_per_rank is not None:
            evs = evs[-limit_per_rank:]
        per_rank.append((rec, evs))
    pool: list[FlightEvent] = [ev for _, evs in per_rank for ev in evs]
    if extra_events is not None:
        pool.extend(extra_events)
    merged = sorted(pool, key=lambda ev: ev.t)
    lines = ["=" * 72, "FLIGHT RECORDER DUMP"]
    if header:
        lines.append(f"trigger: {header}")
    for rec, evs in per_rank:
        note = f" ({rec.dropped} older events evicted)" if rec.dropped else ""
        lines.append(f"rank {rec.rank}: {len(evs)} events{note}")
    lines.append("-" * 72)
    if not merged:
        lines.append("(no events recorded)")
    else:
        t0 = merged[0].t
        for ev in merged:
            route = ""
            if ev.src >= 0 or ev.dst >= 0:
                route = f" {ev.src}->{ev.dst}"
            size = f" {ev.nbytes}B" if ev.nbytes else ""
            detail = f"  {ev.detail}" if ev.detail else ""
            trace = f" [trace {ev.trace_id:#x}]" if ev.trace_id else ""
            lines.append(
                f"[{(ev.t - t0) * 1e3:10.3f} ms] rank {ev.rank}: "
                f"{ev.kind}{route}{size}{detail}{trace}"
            )
    lines.append("=" * 72)
    return "\n".join(lines) + "\n"
