"""``repro.telemetry`` — always-available runtime observability.

The paper's evaluation (§V) is entirely about *where time goes*; this
package gives the runtime the instruments to answer that on live runs:

* :class:`LogHistogram` — O(1) log-bucketed latency/size histograms
  (p50/p90/p99/max) recorded at the conduit boundary and inside the
  runtime (lock waits, copy waits, ``advance()`` polls, task lifecycle);
* :class:`FlightRecorder` — a bounded per-rank ring of recent events,
  merged into a human-readable dump when ``CommTimeout`` /
  ``PeerFailure`` / ``RankDead`` propagates out of :func:`repro.spmd`
  (and on demand via ``world.dump_flight_recorder()``);
* :mod:`~repro.telemetry.perfetto` — Chrome/Perfetto ``trace_event``
  export of traces + spans (ranks as pids);
* :class:`TelemetryConduit` — the decorating conduit that feeds all of
  the above.

Enable per world::

    repro.spmd(body, ranks=4, telemetry="full")     # or "flight"
    repro.spmd(body, ranks=4,
               telemetry={"mode": "flight", "flight_capacity": 512})

The default is ``"off"``: no conduit wrapper is installed and the hot
paths are unchanged.
"""

from repro.telemetry import tracing
from repro.telemetry.conduit import TelemetryConduit
from repro.telemetry.flight import FlightEvent, FlightRecorder, merge_dump
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    MetricsSampler,
    finalize_snapshot,
    merge_snapshots,
    metrics_reduce,
    rank_snapshot,
)
from repro.telemetry.perfetto import to_perfetto, write_perfetto
from repro.telemetry.recorder import (
    RankTelemetry,
    Span,
    TelemetryConfig,
    WorldTelemetry,
    resolve_config,
)

__all__ = [
    "LogHistogram",
    "FlightEvent",
    "FlightRecorder",
    "merge_dump",
    "Span",
    "TelemetryConfig",
    "RankTelemetry",
    "WorldTelemetry",
    "resolve_config",
    "TelemetryConduit",
    "to_perfetto",
    "write_perfetto",
    "tracing",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "MetricsSampler",
    "rank_snapshot",
    "merge_snapshots",
    "finalize_snapshot",
    "metrics_reduce",
]
