"""Chrome/Perfetto ``trace_event`` JSON export.

Converts a :class:`~repro.gasnet.trace.Trace` (per-op communication
events) and/or telemetry spans (finish blocks, task execution, waits)
into the Trace Event Format that ``ui.perfetto.dev`` and
``chrome://tracing`` load directly:

* each **rank is a process** (``pid = rank``) with a ``process_name``
  metadata record;
* spans are ``"X"`` (complete) events placed on the recording OS
  thread's track, so nested runtime regions (a task running inside a
  finish block) nest correctly in the UI;
* conduit operations are ``"i"`` (instant) events on a dedicated
  ``comm`` track of the initiating rank;
* timestamps are microseconds rebased to the earliest exported event.

>>> data = to_perfetto(trace=trace, telemetry=world.telemetry)
>>> write_perfetto("run.perfetto.json", trace=trace)
"""

from __future__ import annotations

import json

#: tid reserved for the per-rank conduit-operation (instant-event) track.
COMM_TID = 0


def _sec_to_us(seconds: float) -> float:
    return seconds * 1e6


def to_perfetto(trace=None, telemetry=None, extra_events=None) -> dict:
    """Build a trace_event JSON object (a plain dict, ready to dump).

    ``trace`` is a :class:`~repro.gasnet.trace.Trace` (or None);
    ``telemetry`` is a :class:`~repro.telemetry.recorder.WorldTelemetry`
    (or None); ``extra_events`` appends pre-built trace_event dicts.
    """
    spans = telemetry.all_spans() if telemetry is not None else []
    trace_events = list(trace.events) if trace is not None else []
    trace_t0 = getattr(trace, "_t0", 0.0) if trace is not None else 0.0

    # Absolute perf_counter timestamps for every exported item, so the
    # two sources share one timeline; rebase to the earliest.
    span_ts = [s.t0 for s in spans]
    ev_ts = [trace_t0 + ev.t for ev in trace_events]
    all_ts = span_ts + ev_ts
    base = min(all_ts) if all_ts else 0.0

    events: list[dict] = []
    pids: set[int] = set()
    # Map each (rank, OS thread ident) to a small stable tid (>= 1;
    # COMM_TID = 0 is reserved for the conduit track).
    tid_map: dict[tuple[int, int], int] = {}

    def tid_for(rank: int, raw_tid: int) -> int:
        key = (rank, raw_tid)
        tid = tid_map.get(key)
        if tid is None:
            tid = tid_map[key] = 1 + sum(
                1 for (r, _t) in tid_map if r == rank
            )
        return tid

    # Canonical order: by start time, longest span first on ties, so an
    # enclosing region always precedes the sub-spans that start with it.
    # Spans sharing a non-zero trace_id are one causal chain; collect
    # them (in time order) to emit flow events below.
    flows: dict[int, list] = {}
    for s in sorted(spans, key=lambda s: (s.t0, -s.dur)):
        pids.add(s.rank)
        ev = {
            "name": s.name,
            "ph": "X",
            "pid": s.rank,
            "tid": tid_for(s.rank, s.tid),
            "ts": _sec_to_us(s.t0 - base),
            "dur": _sec_to_us(s.dur),
            "cat": "runtime",
        }
        args = {}
        if s.detail:
            args["detail"] = s.detail
        if s.trace_id:
            args["trace_id"] = f"{s.trace_id:#x}"
            args["span_id"] = f"{s.span_id:#x}"
            if s.parent_id:
                args["parent_id"] = f"{s.parent_id:#x}"
            flows.setdefault(s.trace_id, []).append((ev, s))
        if args:
            ev["args"] = args
        events.append(ev)

    # Flow events ("s" start / "t" step / "f" finish, matched by id)
    # draw the causal arrows between the slices of one trace — e.g.
    # client kv_put -> handler -> kv_repl hop -> reply across rank
    # tracks.  Each flow event is bound to its slice by emitting it at
    # the slice's pid/tid just inside the slice's time range.
    for trace_id, chain in flows.items():
        if len(chain) < 2:
            continue
        root_name = chain[0][1].name
        last = len(chain) - 1
        for i, (slice_ev, _s) in enumerate(chain):
            ph = "s" if i == 0 else ("f" if i == last else "t")
            flow = {
                "name": root_name,
                "cat": "trace",
                "id": trace_id,
                "ph": ph,
                "pid": slice_ev["pid"],
                "tid": slice_ev["tid"],
                "ts": slice_ev["ts"],
            }
            if ph == "f":
                flow["bp"] = "e"
            events.append(flow)

    for ev in trace_events:
        pids.add(ev.src)
        rec = {
            "name": ev.kind,
            "ph": "i",
            "s": "t",
            "pid": ev.src,
            "tid": COMM_TID,
            "ts": _sec_to_us(trace_t0 + ev.t - base),
            "cat": "comm",
            "args": {"dst": ev.dst, "nbytes": ev.nbytes},
        }
        if ev.detail:
            rec["args"]["detail"] = ev.detail
        events.append(rec)

    meta: list[dict] = []
    for pid in sorted(pids):
        meta.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"rank {pid}"},
        })
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": COMM_TID,
            "args": {"name": "comm (conduit ops)"},
        })
    for (rank, _raw), tid in sorted(tid_map.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "thread_name", "ph": "M", "pid": rank, "tid": tid,
            "args": {"name": f"runtime-{tid}"},
        })

    if extra_events:
        events.extend(extra_events)
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry.perfetto"},
    }


def write_perfetto(path: str, trace=None, telemetry=None,
                   extra_events=None) -> dict:
    """Export to ``path`` (conventionally ``*.perfetto.json``) and
    return the written object."""
    data = to_perfetto(trace=trace, telemetry=telemetry,
                       extra_events=extra_events)
    with open(path, "w") as f:
        json.dump(data, f)
    return data
