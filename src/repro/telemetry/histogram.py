"""Log-bucketed histograms for latency and size distributions.

The paper's evaluation (§V) reports *distributions* — per-update latency
in Random Access, per-phase timings in LULESH — and DART-MPI's
evaluation leans on per-op latency percentiles, not means.  A
:class:`LogHistogram` records values into power-of-two buckets, so a
record is O(1) (``int.bit_length`` + one increment under a lock) and
percentiles are recovered by linear interpolation inside the
matched bucket: cheap enough to leave on in production runs, accurate
to ~½ bucket (≤ ~41% relative — plenty for the order-of-magnitude
questions telemetry answers).

Latencies are recorded in **seconds** and stored in nanosecond buckets;
:class:`LogHistogram` is unit-agnostic (task-queue depths use
``unit="items"``).
"""

from __future__ import annotations

import threading

#: Number of power-of-two buckets: values up to 2**63 (ns ≈ 292 years,
#: items ≈ anything) land in a bucket; larger values clamp to the last.
N_BUCKETS = 64


class LogHistogram:
    """A thread-safe power-of-two-bucketed histogram.

    Bucket ``i`` holds values ``v`` with ``v.bit_length() == i`` — i.e.
    ``2**(i-1) <= v < 2**i`` (bucket 0 holds exact zeros).  Tracks
    count/sum/min/max exactly; percentiles interpolate within a bucket.
    """

    __slots__ = ("name", "unit", "buckets", "count", "total",
                 "min_value", "max_value", "_lock")

    def __init__(self, name: str, unit: str = "ns"):
        self.name = name
        self.unit = unit
        self.buckets = [0] * N_BUCKETS
        self.count = 0
        self.total = 0
        self.min_value = None
        self.max_value = None
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------
    def record(self, value: int | float) -> None:
        """Record one non-negative value (in this histogram's unit)."""
        v = int(value)
        if v < 0:
            v = 0
        idx = v.bit_length()
        if idx >= N_BUCKETS:
            idx = N_BUCKETS - 1
        with self._lock:
            self.buckets[idx] += 1
            self.count += 1
            self.total += v
            if self.min_value is None or v < self.min_value:
                self.min_value = v
            if self.max_value is None or v > self.max_value:
                self.max_value = v

    def record_seconds(self, seconds: float) -> None:
        """Record a latency given in seconds (stored as nanoseconds)."""
        self.record(int(seconds * 1e9))

    # -- queries ---------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 < q <= 100), linearly interpolated
        within the matched bucket; exact at the recorded min/max."""
        with self._lock:
            count = self.count
            if count == 0:
                return 0.0
            rank = q / 100.0 * count
            seen = 0
            for i, n in enumerate(self.buckets):
                if n == 0:
                    continue
                if seen + n >= rank:
                    lo = 0 if i == 0 else 1 << (i - 1)
                    hi = 1 if i == 0 else (1 << i) - 1
                    lo = max(lo, self.min_value)
                    hi = min(hi, self.max_value)
                    if hi <= lo:
                        return float(lo)
                    frac = (rank - seen) / n
                    return lo + frac * (hi - lo)
                seen += n
        return float(self.max_value)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    # -- combination / export --------------------------------------------
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other``'s counts into self (cross-rank aggregation)."""
        with other._lock:
            buckets = list(other.buckets)
            count, total = other.count, other.total
            mn, mx = other.min_value, other.max_value
        with self._lock:
            for i, n in enumerate(buckets):
                self.buckets[i] += n
            self.count += count
            self.total += total
            if mn is not None and (self.min_value is None
                                   or mn < self.min_value):
                self.min_value = mn
            if mx is not None and (self.max_value is None
                                   or mx > self.max_value):
                self.max_value = mx
        return self

    def snapshot(self) -> dict:
        """JSON-ready summary: count/sum/min/max, p50/p90/p99, and the
        non-empty buckets as ``{bit_length: count}``."""
        with self._lock:
            nonzero = {str(i): n for i, n in enumerate(self.buckets) if n}
            base = {
                "unit": self.unit,
                "count": self.count,
                "sum": self.total,
                "min": self.min_value,
                "max": self.max_value,
                "buckets": nonzero,
            }
        base["mean"] = self.mean
        base["p50"] = self.percentile(50)
        base["p90"] = self.percentile(90)
        base["p99"] = self.percentile(99)
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LogHistogram({self.name!r}, n={self.count}, "
                f"p50={self.p50:.0f}{self.unit}, "
                f"p99={self.p99:.0f}{self.unit})")
