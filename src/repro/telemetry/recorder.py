"""Per-rank and per-world telemetry state.

Three modes, resolved from the ``telemetry=`` knob on
:class:`~repro.core.world.World` / :func:`repro.spmd`:

``"off"`` (default)
    Nothing is recorded and **no conduit wrapper is installed** — the
    communication fast path is byte-identical to a world built before
    this subsystem existed.  Runtime call sites guard on a single
    attribute read (``tel.full``).
``"flight"``
    Only the :class:`~repro.telemetry.flight.FlightRecorder` ring runs:
    one bounded append per conduit op / task event.  This is the mode
    for long-running jobs that want a black box but no histograms.
``"full"``
    Flight recorder **plus** per-op latency histograms
    (:class:`~repro.telemetry.histogram.LogHistogram`) and bounded span
    records for Perfetto export.

All state hangs off ``world.telemetry`` (a :class:`WorldTelemetry`) and
``ctx.telemetry`` (the rank's :class:`RankTelemetry`); both exist even
in ``"off"`` mode so call sites never need existence checks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.telemetry import tracing
from repro.telemetry.flight import DEFAULT_CAPACITY, FlightRecorder, merge_dump
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.metrics import MetricsRegistry

MODES = ("off", "flight", "full")


@dataclass
class TelemetryConfig:
    """Tuning knobs for the telemetry subsystem."""

    #: "off" | "flight" | "full" (see module docstring).
    mode: str = "off"
    #: Flight-recorder ring capacity (events kept per rank).
    flight_capacity: int = DEFAULT_CAPACITY
    #: Upper bound on retained spans per rank (Perfetto export size).
    max_spans: int = 20000
    #: Background sampler period in seconds (task queue depth, pending
    #: replies, retransmit backlog, segment bytes, steal rate); ``None``
    #: leaves the sampler thread unstarted.
    sample_period: float | None = None
    #: Straggler-watchdog scan period in seconds; ``None`` disables it.
    watchdog_period: float | None = None
    #: An in-flight AM is flagged ``slow_op`` once older than
    #: ``max(slow_op_min_s, slow_op_factor * p99(am_rtt))``.
    slow_op_factor: float = 8.0
    slow_op_min_s: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"telemetry mode must be one of {MODES} (got {self.mode!r})"
            )


def resolve_config(telemetry) -> TelemetryConfig:
    """Resolve the World ``telemetry=`` knob into a config.

    Accepts ``None``/``False`` (off), ``True`` (full), a mode string,
    a dict of :class:`TelemetryConfig` fields, or a ready config.
    """
    if telemetry is None or telemetry is False:
        return TelemetryConfig(mode="off")
    if telemetry is True:
        return TelemetryConfig(mode="full")
    if isinstance(telemetry, TelemetryConfig):
        return telemetry
    if isinstance(telemetry, str):
        return TelemetryConfig(mode=telemetry)
    if isinstance(telemetry, dict):
        return TelemetryConfig(**telemetry)
    raise ValueError(
        f"telemetry= must be None, bool, a mode string {MODES}, a dict of "
        f"TelemetryConfig fields, or a TelemetryConfig (got {telemetry!r})"
    )


@dataclass(frozen=True)
class Span:
    """One completed timed region (Perfetto "complete" event)."""

    name: str
    t0: float        # time.perf_counter() at start
    dur: float       # seconds
    rank: int
    tid: int         # OS thread ident (for physically correct nesting)
    detail: str = ""
    # causal linkage (repro.telemetry.tracing); all 0 for untraced spans
    trace_id: int = 0
    span_id: int = 0
    parent_id: int = 0


class RankTelemetry:
    """Telemetry state owned by one rank.

    The two gate attributes are plain bools read on hot paths:
    ``active`` (any recording at all) and ``full`` (histograms + spans).
    """

    __slots__ = ("rank", "mode", "active", "full", "flight",
                 "_hist", "_hist_lock", "_spans", "_span_lock",
                 "spans_dropped", "max_spans", "metrics", "_id_counter",
                 "_id_lock")

    def __init__(self, rank: int, config: TelemetryConfig):
        self.rank = rank
        self.mode = config.mode
        self.active = config.mode != "off"
        self.full = config.mode == "full"
        self.flight = FlightRecorder(rank, config.flight_capacity)
        self._hist: dict[str, LogHistogram] = {}
        self._hist_lock = threading.Lock()
        self._spans: list[Span] = []
        self._span_lock = threading.Lock()
        self.spans_dropped = 0
        self.max_spans = config.max_spans
        #: Typed counter/gauge registry (repro.telemetry.metrics).
        self.metrics = MetricsRegistry()
        # Trace/span ids are rank-salted counter values, not random
        # bits, so fixed-seed runs reproduce identical ids.
        self._id_counter = 0
        self._id_lock = threading.Lock()

    # -- trace/span id generation -----------------------------------------
    def _next_id(self) -> int:
        with self._id_lock:
            self._id_counter += 1
            return ((self.rank + 1) << 40) | self._id_counter

    def new_trace_id(self) -> int:
        """A fresh, deterministic, rank-unique trace id (never 0)."""
        return self._next_id()

    def new_span_id(self) -> int:
        """A fresh span id (same sequence as trace ids; never 0)."""
        return self._next_id()

    # -- histograms -------------------------------------------------------
    def histogram(self, name: str, unit: str = "ns") -> LogHistogram:
        """Get-or-create the named histogram (stable across calls)."""
        h = self._hist.get(name)
        if h is None:
            with self._hist_lock:
                h = self._hist.setdefault(name, LogHistogram(name, unit))
        return h

    def record_latency(self, name: str, seconds: float) -> None:
        """Record a latency sample (no-op unless mode == "full")."""
        if self.full:
            self.histogram(name).record_seconds(seconds)

    def record_value(self, name: str, value: int, unit: str) -> None:
        """Record a non-latency sample, e.g. a queue depth."""
        if self.full:
            self.histogram(name, unit=unit).record(value)

    def histograms(self) -> dict[str, LogHistogram]:
        with self._hist_lock:
            return dict(self._hist)

    # -- flight recorder --------------------------------------------------
    def flight_event(self, kind: str, src: int = -1, dst: int = -1,
                     nbytes: int = 0, detail: str = "",
                     trace_id: int = 0) -> None:
        if self.active:
            if trace_id == 0:
                # inherit the thread's bound trace context, so e.g.
                # kv_failover/kv_promote events inside a traced client
                # op or handler are tagged without caller changes
                trace_id = tracing.current_trace_id()
            self.flight.record(kind, src, dst, nbytes, detail, trace_id)

    # -- spans ------------------------------------------------------------
    def record_span(self, name: str, t0: float, dur: float,
                    detail: str = "", trace_id: int = 0,
                    span_id: int = 0, parent_id: int = 0) -> None:
        """Retain a completed span for export (no-op unless "full")."""
        if not self.full:
            return
        span = Span(name=name, t0=t0, dur=dur, rank=self.rank,
                    tid=threading.get_ident(), detail=detail,
                    trace_id=trace_id, span_id=span_id,
                    parent_id=parent_id)
        with self._span_lock:
            if len(self._spans) >= self.max_spans:
                self.spans_dropped += 1
                return
            self._spans.append(span)

    def spans(self) -> list[Span]:
        with self._span_lock:
            return list(self._spans)

    def snapshot(self) -> dict:
        """JSON-ready per-rank summary (histograms only; spans and the
        flight ring have their own export paths)."""
        return {
            "rank": self.rank,
            "mode": self.mode,
            "histograms": {
                name: h.snapshot() for name, h in self.histograms().items()
            },
            "flight_events": len(self.flight),
            "spans": len(self._spans),
            "spans_dropped": self.spans_dropped,
        }


class WorldTelemetry:
    """The world-level aggregate: one :class:`RankTelemetry` per rank."""

    def __init__(self, n_ranks: int, config: TelemetryConfig):
        self.config = config
        self.mode = config.mode
        self.enabled = config.mode != "off"
        self.full = config.mode == "full"
        self.ranks = [RankTelemetry(r, config) for r in range(n_ranks)]
        #: Stamped once at construction; spans/flight timestamps are
        #: perf_counter values rebased against this for export.
        self.t0 = time.perf_counter()

    def rank(self, r: int) -> RankTelemetry:
        return self.ranks[r]

    # -- aggregation ------------------------------------------------------
    def merged_histograms(self) -> dict[str, LogHistogram]:
        """Cross-rank fold of every named histogram."""
        merged: dict[str, LogHistogram] = {}
        for rt in self.ranks:
            for name, h in rt.histograms().items():
                agg = merged.get(name)
                if agg is None:
                    agg = merged[name] = LogHistogram(name, h.unit)
                agg.merge(h)
        return merged

    def metrics(self) -> dict:
        """JSON-ready world summary: merged histograms + per-rank."""
        return {
            "mode": self.mode,
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self.merged_histograms().items())
            },
            "per_rank": [rt.snapshot() for rt in self.ranks],
        }

    def all_spans(self) -> list[Span]:
        return [s for rt in self.ranks for s in rt.spans()]

    # -- flight recorder --------------------------------------------------
    def dump_flight_recorder(self, header: str = "",
                             limit_per_rank: int | None = None,
                             extra_events=None) -> str:
        """The merged, human-readable black-box read-out.

        ``extra_events`` splices out-of-band :class:`FlightEvent`\\ s
        (e.g. the chaos conduit's injected-fault schedule) into the
        merged timeline.
        """
        if not self.enabled:
            return ("(flight recorder inactive: telemetry mode is 'off'; "
                    "run with telemetry='flight' or 'full')\n")
        return merge_dump((rt.flight for rt in self.ranks),
                          header=header, limit_per_rank=limit_per_rank,
                          extra_events=extra_events)
