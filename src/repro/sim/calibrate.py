"""Calibration: measure this library's real software overheads.

The paper's UPC-vs-UPC++ gaps are *software overhead* gaps (compiled
shared-access vs template/runtime paths).  This module measures the
analogous per-operation costs of the live Python library on the SMP
conduit — the UPC veneer path, the UPC++ path, local vs remote, async
round trips, bulk copy bandwidth — and maps them onto model parameters:

* the **ratios** between code paths are taken from measurement;
* a single **anchor** (the model's ``upcxx.fine_grained``) converts the
  Python cost scale to the modelled machine's cost scale.

That keeps the model honest about what this reproduction can measure
(relative overheads of real code paths) versus what it must take from
the paper (absolute C++/network magnitudes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

import repro
from repro.compat import upc
from repro.sim.machine import Machine, ModelOverheads


@dataclass(frozen=True)
class Measurements:
    """Seconds per operation, measured on the SMP conduit."""

    local_access: float      # owner-side shared_array element read
    upcxx_remote: float      # remote element read, UPC++ path (gptr)
    upc_remote: float        # remote element read, UPC veneer path
    async_rtt: float         # async task launch -> future.get round trip
    copy_bw: float           # bulk copy bandwidth, bytes/s

    @property
    def upc_over_upcxx(self) -> float:
        """UPC-veneer / UPC++ fine-grained cost ratio."""
        return self.upc_remote / self.upcxx_remote

    @property
    def remote_over_local(self) -> float:
        return self.upcxx_remote / self.local_access


def _timeit(fn, iters: int) -> float:
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return (time.perf_counter() - t0) / iters


def measure_software_overheads(iters: int = 2000,
                               bulk_bytes: int = 1 << 20) -> Measurements:
    """Run the measurement harness (its own 2-rank SPMD world)."""

    def main():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=64, block=1)
        sa.fill_local(1)
        repro.barrier()
        results = None
        if me == 0:
            # element 1 lives on rank 1 (cyclic layout): the remote path.
            local_t = _timeit(lambda: sa[0], iters)
            remote_t = _timeit(lambda: sa[1], iters)
            p = upc.UpcSharedPtr(sa, 1)
            upc_t = _timeit(p.deref, iters)
            async_t = _timeit(
                lambda: repro.async_(1)(int, 1).get(), max(50, iters // 20)
            )
            src = repro.allocate(1, bulk_bytes, np.uint8)
            dst = repro.allocate(0, bulk_bytes, np.uint8)
            n_bulk = 20
            t0 = time.perf_counter()
            for _ in range(n_bulk):
                repro.copy(src, dst, bulk_bytes)
            bw = n_bulk * bulk_bytes / (time.perf_counter() - t0)
            results = (local_t, remote_t, upc_t, async_t, bw)
        repro.barrier()
        return results

    out = repro.spmd(main, ranks=2)[0]
    return Measurements(
        local_access=out[0], upcxx_remote=out[1], upc_remote=out[2],
        async_rtt=out[3], copy_bw=out[4],
    )


def fitted_overheads(machine: Machine, meas: Measurements) -> dict:
    """Model overhead sets rescaled from live measurements.

    The model's ``upcxx.fine_grained`` anchors the scale; every other
    entry is the anchor times a *measured* ratio.  Returns
    ``{model_name: ModelOverheads}`` for the "upc" and "upcxx" models.
    """
    anchor = machine.overheads("upcxx").fine_grained
    scale = anchor / meas.upcxx_remote
    ref = machine.overheads("upcxx")
    upcxx_fit = ModelOverheads(
        fine_grained=anchor,
        message=ref.message,
        base_rtt=ref.base_rtt,
    )
    upc_fit = ModelOverheads(
        fine_grained=anchor * meas.upc_over_upcxx,
        message=machine.overheads("upc").message,
        base_rtt=machine.overheads("upc").base_rtt,
    )
    return {
        "upcxx": upcxx_fit,
        "upc": upc_fit,
        "python_to_model_scale": scale,
    }
