"""Machine presets: Edison (Cray XC30) and Vesta (IBM BG/Q).

Each :class:`Machine` bundles the node architecture, a LogGP parameter
set, a topology factory, and *per-programming-model software overheads*
— the per-operation CPU cost of going through UPC's compiled shared
access, UPC++'s template/runtime path, Titanium's compiled arrays, or
MPI's two-sided matching.  The relative overheads are what separate the
paper's paired curves (UPC vs UPC++, MPI vs UPC++); their ratios can be
refit from live measurements of this library via
:mod:`repro.sim.calibrate`.

Fitted values target the paper's reported endpoints (EXPERIMENTS.md has
the side-by-side numbers):

* Vesta / Random Access: Table IV implies per-update times of
  9.4→11.9 µs (UPC) and 11.4→12.8 µs (UPC++) from 16 to 8192 threads —
  a large, nearly-flat remote-access cost, a slowly growing torus
  hop/contention term, and ~1 µs extra software overhead per
  fine-grained UPC++ access whose *relative* weight shrinks with scale
  (the convergence the paper reports).
* Edison / Stencil: ~0.67 effective GFLOP/s/core on the 8-flop kernel
  reproduces Fig. 5's ≈16 GFLOPS at 24 cores.
* Edison / Sample Sort: the all-to-all taper exponent is set so weak
  scaling lands at ≈3.4 TB/min at 12288 cores (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sim.loggp import LogGP
from repro.sim.topology import Dragonfly, Torus5D

US = 1e-6
GB = 1e9


@dataclass(frozen=True)
class ModelOverheads:
    """Software cost (seconds) per operation, by programming model."""

    fine_grained: float   # one shared-element access (load or store)
    message: float        # per bulk message / AM injection
    base_rtt: float       # remote fine-grained round trip at 0 hops


@dataclass(frozen=True)
class Machine:
    """A modelled platform."""

    name: str
    cores_per_node: int
    loggp: LogGP
    topology: Callable[[int], object]   # nodes -> topology object
    hop_latency: float                  # seconds per router hop (one way)
    contention_per_log_node: float      # extra RTT per log2(nodes) (s)
    alltoall_taper_exp: float           # per-rank a2a bw ~ nodes^-exp
    noise_sigma: float                  # per-step compute jitter (fraction)
    stencil_gflops_per_core: float      # effective rate on the 8-flop kernel
    sort_rate: float                    # key-compare ops/s for local sort
    ray_rate: float                     # effective rays/s/core (path tracing)
    zone_rate: float                    # LULESH zones/s/core (compute only)
    mem_bw_per_core: float              # bytes/s intra-node
    models: dict = field(default_factory=dict)  # name -> ModelOverheads

    def nodes_for(self, cores: int) -> int:
        return max(1, -(-cores // self.cores_per_node))

    def topo(self, cores: int):
        return self.topology(self.nodes_for(cores))

    def avg_hops(self, cores: int) -> float:
        if self.nodes_for(cores) == 1:
            return 0.0
        return self.topo(cores).avg_hops()

    def one_way_latency(self, cores: int) -> float:
        """Effective one-way network latency at this scale."""
        if self.nodes_for(cores) == 1:
            return 0.35 * self.loggp.L  # intra-node transport
        return self.loggp.L + self.avg_hops(cores) * self.hop_latency

    def injection_bw_per_core(self, cores_used_per_node: int) -> float:
        """NIC bandwidth share per process on a fully used node."""
        share = min(cores_used_per_node, self.cores_per_node)
        return self.loggp.bandwidth / max(1, share)

    def effective_bw_per_core(self, cores: int) -> float:
        """Bulk bandwidth per process: memory-limited inside a node,
        NIC-share limited across nodes."""
        if self.nodes_for(cores) == 1:
            return self.mem_bw_per_core
        return self.injection_bw_per_core(min(cores, self.cores_per_node))

    def alltoall_bw_per_core(self, cores: int) -> float:
        """Effective per-process bandwidth under all-to-all traffic —
        the global-link/bisection taper dominates at scale."""
        nodes = self.nodes_for(cores)
        if nodes == 1:
            return self.mem_bw_per_core
        share = self.injection_bw_per_core(min(cores, self.cores_per_node))
        return share * nodes ** (-self.alltoall_taper_exp)

    def overheads(self, model: str) -> ModelOverheads:
        try:
            return self.models[model]
        except KeyError:
            raise KeyError(
                f"{self.name} has no overhead set for model {model!r}; "
                f"known: {sorted(self.models)}"
            ) from None


#: Edison — Cray XC30, dual 12-core Ivy Bridge per node, Aries dragonfly.
EDISON = Machine(
    name="Edison (Cray XC30)",
    cores_per_node=24,
    loggp=LogGP(L=1.3 * US, o=0.7 * US, g=0.25 * US, G=1.0 / (8 * GB)),
    topology=lambda nodes: Dragonfly(nodes),
    hop_latency=0.1 * US,
    contention_per_log_node=0.05 * US,
    alltoall_taper_exp=0.62,
    noise_sigma=0.035,
    stencil_gflops_per_core=0.67,
    sort_rate=50e6,
    ray_rate=0.37e6,
    zone_rate=3.1e3,
    mem_bw_per_core=2.5 * GB,
    models={
        # Compiled UPC shared access is leaner per element; bulk paths
        # are library code in both, hence near-equal message costs.
        "upc": ModelOverheads(fine_grained=0.35 * US, message=0.7 * US,
                              base_rtt=2.6 * US),
        "upcxx": ModelOverheads(fine_grained=0.55 * US, message=0.75 * US,
                                base_rtt=2.7 * US),
        "titanium": ModelOverheads(fine_grained=0.50 * US, message=0.72 * US,
                                   base_rtt=2.7 * US),
        # Two-sided MPI pays tag matching + rendezvous per message.
        "mpi": ModelOverheads(fine_grained=0.55 * US, message=1.3 * US,
                              base_rtt=2.7 * US),
    },
)

#: Vesta — IBM BG/Q, 16-core A2 per node, 5-D torus.
VESTA = Machine(
    name="Vesta (IBM BG/Q)",
    cores_per_node=16,
    loggp=LogGP(L=2.0 * US, o=0.9 * US, g=0.5 * US, G=1.0 / (1.8 * GB)),
    topology=lambda nodes: Torus5D(nodes),
    hop_latency=0.08 * US,
    contention_per_log_node=0.08 * US,
    alltoall_taper_exp=0.5,
    noise_sigma=0.02,
    stencil_gflops_per_core=0.20,
    sort_rate=15e6,
    ray_rate=0.1e6,
    zone_rate=1.0e3,
    mem_bw_per_core=1.0 * GB,
    models={
        # Fitted to Table IV per-update times (see module docstring).
        "upc": ModelOverheads(fine_grained=1.0 * US, message=0.9 * US,
                              base_rtt=9.0 * US),
        "upcxx": ModelOverheads(fine_grained=2.0 * US, message=1.0 * US,
                                base_rtt=9.5 * US),
        "titanium": ModelOverheads(fine_grained=1.9 * US, message=1.0 * US,
                                   base_rtt=9.5 * US),
        "mpi": ModelOverheads(fine_grained=2.0 * US, message=1.8 * US,
                              base_rtt=9.5 * US),
    },
)

MACHINES = {"edison": EDISON, "vesta": VESTA}
