"""Machine performance models — the substitution for Edison and Vesta.

The paper's evaluation ran on two supercomputers (Cray XC30 "Edison",
IBM BG/Q "Vesta") at up to 32K cores.  Neither machine nor scale is
available here, so per DESIGN.md §2 the *figures* are reproduced by
replaying each benchmark's communication pattern through parametric
machine models:

* :mod:`repro.sim.loggp` — LogGP message/transfer costs;
* :mod:`repro.sim.topology` — hop-count models for the Aries dragonfly
  and the BG/Q 5-D torus (validated against explicit networkx graphs);
* :mod:`repro.sim.machine` — the Edison and Vesta parameter presets,
  including per-programming-model software overheads;
* :mod:`repro.sim.des` — a discrete-event simulator for communication
  phases, used to validate the closed-form models at small scale;
* :mod:`repro.sim.patterns` — per-benchmark communication patterns;
* :mod:`repro.sim.collmodel` — closed-form LogGP costs for the tree
  collectives engine (and the retired centralized baseline);
* :mod:`repro.sim.perfmodel` — the per-figure/table series generators;
* :mod:`repro.sim.calibrate` — measures the real per-op software
  overheads of this library's code paths (UPC veneer vs UPC++ path) and
  maps their *ratio* onto the model's overhead parameters.

Absolute numbers are not claimed — shapes (who wins, by what factor,
where curves bend) are; EXPERIMENTS.md records paper-vs-model values.
"""

from repro.sim.loggp import LogGP
from repro.sim.topology import Dragonfly, Torus5D, balanced_factors
from repro.sim.machine import Machine, EDISON, VESTA
from repro.sim.des import DesEngine, Compute, Put, Send, Recv, Barrier
from repro.sim.collmodel import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    centralized_exchange_time,
    reduce_time,
    tree_speedup,
)

__all__ = [
    "LogGP", "Dragonfly", "Torus5D", "balanced_factors",
    "Machine", "EDISON", "VESTA",
    "DesEngine", "Compute", "Put", "Send", "Recv", "Barrier",
    "barrier_time", "bcast_time", "reduce_time", "allreduce_time",
    "allgather_time", "alltoall_time", "centralized_exchange_time",
    "tree_speedup",
]
