"""Per-benchmark communication-pattern generators for the DES.

Each generator returns one operation list per rank — the communication
skeleton of the corresponding case study, with computation collapsed to
:class:`~repro.sim.des.Compute` blocks.  Tests execute these through
:class:`~repro.sim.des.DesEngine` and check the closed-form phase models
of :mod:`repro.sim.perfmodel` against the simulated makespans.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.sim.des import Barrier, Compute, Get, Put, Recv, Send, WaitAll
from repro.sim.machine import Machine
from repro.sim.topology import balanced_factors


def gups_pattern(nranks: int, updates_per_rank: int,
                 t_local: float, seed: int = 1) -> list[list]:
    """Random Access: each rank issues fine-grained gets to random
    owners (remote with probability 1 - 1/P), plus the local xor."""
    rng = np.random.default_rng(seed)
    programs = []
    for r in range(nranks):
        ops: list = []
        targets = rng.integers(0, nranks, size=updates_per_rank)
        for t in targets:
            if t == r:
                ops.append(Compute(t_local))
            else:
                ops.append(Get(int(t), 8))
                ops.append(Compute(t_local))
        ops.append(Barrier())
        programs.append(ops)
    return programs


def halo3d_pattern(nranks: int, iters: int, face_bytes: int,
                   t_compute: float, one_sided: bool = True) -> list[list]:
    """Stencil/LULESH-style 3-D face exchange on a process grid.

    ``one_sided=True`` produces the UPC++ shape (puts + fence);
    ``False`` produces the MPI shape (isends modelled as sends, plus
    matching receives).
    """
    dims = balanced_factors(nranks, 3)

    def coords_of(rank: int) -> tuple[int, ...]:
        c = []
        for d in reversed(dims):
            c.append(rank % d)
            rank //= d
        return tuple(reversed(c))

    def rank_of(c) -> int:
        r = 0
        for x, d in zip(c, dims):
            r = r * d + x
        return r

    def neighbors(rank: int) -> list[int]:
        me = coords_of(rank)
        out = []
        for axis in range(3):
            for step in (-1, 1):
                nc = list(me)
                nc[axis] += step
                if 0 <= nc[axis] < dims[axis]:
                    out.append(rank_of(nc))
        return out

    programs = []
    for r in range(nranks):
        nbrs = neighbors(r)
        ops: list = []
        for _ in range(iters):
            ops.append(Compute(t_compute))
            if one_sided:
                for nb in nbrs:
                    ops.append(Put(nb, face_bytes))
                ops.append(WaitAll())
            else:
                for nb in nbrs:
                    ops.append(Send(nb, face_bytes, tag=r))
                for nb in nbrs:
                    ops.append(Recv(nb, face_bytes, tag=nb))
            ops.append(Barrier())
        programs.append(ops)
    return programs


def alltoall_pattern(nranks: int, bytes_per_pair: int,
                     t_compute: float) -> list[list]:
    """Sample-Sort redistribution: local work then P-1 one-sided puts."""
    programs = []
    for r in range(nranks):
        ops: list = [Compute(t_compute)]
        for dst in range(nranks):
            if dst != r:
                ops.append(Put(dst, bytes_per_pair))
        ops.append(WaitAll())
        ops.append(Barrier())
        programs.append(ops)
    return programs


def reduction_pattern(nranks: int, nbytes: int,
                      t_compute_per_rank: list[float]) -> list[list]:
    """Embree-style compute + binomial-tree sum reduction to rank 0."""
    programs: list[list] = [[] for _ in range(nranks)]
    for r in range(nranks):
        programs[r].append(Compute(t_compute_per_rank[r]))
    # Binomial tree: in round k, ranks with bit k set send to rank - 2^k.
    k = 0
    while (1 << k) < nranks:
        step = 1 << k
        for r in range(nranks):
            if r & step and (r & (step - 1)) == 0:
                parent = r - step
                programs[r].append(Send(parent, nbytes, tag=k))
            elif (r & ((step << 1) - 1)) == 0 and r + step < nranks:
                programs[r].append(Recv(r + step, nbytes, tag=k))
                programs[r].append(Compute(1e-9 * nbytes))  # add partials
        k += 1
    for r in range(nranks):
        programs[r].append(Barrier())
    return programs


def dag_pattern() -> list[list]:
    """The Listing-1 dependency graph as a two-sided DES program
    (used to sanity-check event-driven scheduling costs)."""
    # rank 0 is the orchestrator; tasks t1..t6 run on ranks 1..6 % n
    n = 7
    orch: list = []
    programs: list[list] = [[] for _ in range(n)]
    task_cost = 1e-4
    for i, target in enumerate((1, 2), start=1):  # t1, t2
        orch.append(Send(target, 64, tag=i))
        programs[target] += [Recv(0, 64, tag=i), Compute(task_cost),
                             Send(0, 64, tag=100 + i)]
    orch += [Recv(1, 64, tag=101), Recv(2, 64, tag=102)]  # e1
    orch.append(Send(3, 64, tag=3))                        # t3 after e1
    programs[3] += [Recv(0, 64, tag=3), Compute(task_cost),
                    Send(0, 64, tag=103)]
    orch.append(Send(4, 64, tag=4))                        # t4
    programs[4] += [Recv(0, 64, tag=4), Compute(task_cost),
                    Send(0, 64, tag=104)]
    orch += [Recv(3, 64, tag=103), Recv(4, 64, tag=104)]   # e2
    for i, target in enumerate((5, 6), start=5):           # t5, t6
        orch.append(Send(target, 64, tag=i))
        programs[target] += [Recv(0, 64, tag=i), Compute(task_cost),
                             Send(0, 64, tag=100 + i)]
    orch += [Recv(5, 64, tag=105), Recv(6, 64, tag=106)]   # e3
    programs[0] = orch
    return programs
