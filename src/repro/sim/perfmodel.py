"""Closed-form performance models for every figure and table in the
paper's evaluation (§V).

Each ``figN_*`` function returns a dict with a ``cores`` list and one
series per programming model, in the units of the paper's axis.  The
models compose machine presets (:mod:`repro.sim.machine`), topology hop
counts, and per-model software overheads; benchmark-specific constants
(problem sizes per rank) are the paper's where stated, chosen
representatively where not.

``PAPER_*`` constants hold the values read off the paper's figures and
tables, used by EXPERIMENTS.md and by tests that assert the reproduced
*shapes* (who wins, by roughly what factor, where curves bend).
"""

from __future__ import annotations

from math import ceil, log2, sqrt, log

import numpy as np

from repro.sim.machine import EDISON, VESTA, Machine

# ---------------------------------------------------------------------------
# paper-reported reference values
# ---------------------------------------------------------------------------

#: Table IV — Random Access GUPS on Vesta.
PAPER_TABLE4 = {
    "threads": [16, 128, 1024, 8192],
    "upc": [0.0017, 0.012, 0.094, 0.69],
    "upcxx": [0.0014, 0.0108, 0.084, 0.64],
}

#: Fig. 5 endpoints — Stencil weak scaling on Edison (GFLOPS).
PAPER_FIG5 = {"cores": [24, 6144], "gflops": [16.0, 4000.0]}

#: Fig. 6 endpoints — Sample Sort on Edison (TB/min).
PAPER_FIG6 = {"cores": [1, 12288], "tb_per_min": [1.0e-3, 3.39]}

#: Fig. 8 — the paper's headline LULESH claim.
PAPER_FIG8_UPCXX_SPEEDUP_AT_32K = 1.10  # UPC++ ~10% faster than MPI

# Default sweeps (the paper's x axes).
FIG4_CORES = [2 ** k for k in range(14)]            # 1 .. 8192
FIG5_CORES = [24 * 2 ** k for k in range(9)]        # 24 .. 6144
FIG6_CORES = ([1, 2, 4, 8, 12] +
              [24 * 2 ** k for k in range(10)])     # .. 12288
FIG7_CORES = [24 * 2 ** k for k in range(9)]        # 24 .. 6144
FIG8_CORES = [64, 216, 512, 1000, 4096, 8000, 13824, 32768]  # cubes


# ---------------------------------------------------------------------------
# Random Access (GUPS) — Fig. 4 and Table IV
# ---------------------------------------------------------------------------

def gups_time_per_update(machine: Machine, model: str, cores: int,
                         t_local: float = 0.1e-6) -> float:
    """Seconds per update for the Random Access loop.

    One update = software overhead + (local xor | remote fine-grained
    round trip), with the remote probability (1 - 1/P) of a uniform
    table, torus hop growth, and a mild contention term per log2(nodes).
    """
    ov = machine.overheads(model)
    if cores == 1:
        return ov.fine_grained + t_local
    nodes = machine.nodes_for(cores)
    rtt = ov.base_rtt + 2.0 * machine.avg_hops(cores) * machine.hop_latency
    if nodes > 1:
        rtt += machine.contention_per_log_node * log2(nodes)
    remote_frac = 1.0 - 1.0 / cores
    return (ov.fine_grained
            + (1.0 - remote_frac) * t_local
            + remote_frac * rtt)


def fig4_random_access(machine: Machine = VESTA,
                       cores_list=None,
                       models=("upc", "upcxx")) -> dict:
    """Fig. 4: Random Access latency per update (µs) on BG/Q."""
    cores_list = list(cores_list or FIG4_CORES)
    out = {"cores": cores_list, "unit": "usec/update"}
    for m in models:
        out[m] = [gups_time_per_update(machine, m, c) * 1e6
                  for c in cores_list]
    return out


def table4_gups(machine: Machine = VESTA,
                threads=(16, 128, 1024, 8192),
                models=("upc", "upcxx")) -> dict:
    """Table IV: aggregate giga-updates-per-second."""
    out = {"threads": list(threads), "unit": "GUPS"}
    for m in models:
        out[m] = [
            t / gups_time_per_update(machine, m, t) / 1e9 for t in threads
        ]
    return out


# ---------------------------------------------------------------------------
# Stencil — Fig. 5
# ---------------------------------------------------------------------------

#: Paper §V-B: each thread owns a fixed 256^3 grid portion; 7-point
#: Jacobi is 8 flops per point.
STENCIL_BOX = 256
STENCIL_FLOPS_PER_POINT = 8


def stencil_iteration_time(machine: Machine, model: str, cores: int,
                           box: int = STENCIL_BOX) -> float:
    """Seconds per Jacobi iteration (compute + ghost exchange + barrier)."""
    ov = machine.overheads(model)
    flops = box ** 3 * STENCIL_FLOPS_PER_POINT
    t_comp = flops / (machine.stencil_gflops_per_core * 1e9)
    face_bytes = box * box * 8
    bw = machine.effective_bw_per_core(cores)
    latency = machine.one_way_latency(cores)
    # 6 one-sided ghost copies (pack AM + payload + unpack), overlapped:
    # injection serializes, the wire pipeline overlaps.
    t_comm = 6 * (2 * ov.message + face_bytes / bw) + latency
    t_barrier = max(1, ceil(log2(max(2, cores)))) * (ov.message + latency)
    return t_comp + t_comm + t_barrier


def fig5_stencil(machine: Machine = EDISON, cores_list=None,
                 models=("titanium", "upcxx"),
                 box: int = STENCIL_BOX) -> dict:
    """Fig. 5: Stencil weak-scaling performance in GFLOPS."""
    cores_list = list(cores_list or FIG5_CORES)
    out = {"cores": cores_list, "unit": "GFLOPS"}
    flops = box ** 3 * STENCIL_FLOPS_PER_POINT
    for m in models:
        out[m] = [
            c * flops / stencil_iteration_time(machine, m, c, box) / 1e9
            for c in cores_list
        ]
    return out


# ---------------------------------------------------------------------------
# Sample Sort — Fig. 6
# ---------------------------------------------------------------------------

#: Keys per rank (weak scaling), 64-bit keys as in §V-C.
SORT_KEYS_PER_RANK = 1 << 24
SORT_OVERSAMPLE = 32


def sample_sort_time(machine: Machine, model: str, cores: int,
                     keys_per_rank: int = SORT_KEYS_PER_RANK) -> float:
    """Seconds to sort ``cores * keys_per_rank`` keys."""
    ov = machine.overheads(model)
    n = keys_per_rank
    # 1) splitter sampling: P*oversample fine-grained global reads
    #    (amortized: each rank reads `oversample` random elements).
    t_sample = SORT_OVERSAMPLE * gups_time_per_update(machine, model, cores)
    # 2) redistribution: all-to-all of ~n keys per rank under the taper.
    if cores > 1:
        bytes_out = n * 8 * (1.0 - 1.0 / cores)
        t_redist = (bytes_out / machine.alltoall_bw_per_core(cores)
                    + (cores - 1) * ov.message)
    else:
        t_redist = 0.0
    # 3) local sort of the received ~n keys.
    t_sort = n * max(1.0, log2(n)) / machine.sort_rate
    # 4) final barrier
    latency = machine.one_way_latency(cores)
    t_barrier = max(1, ceil(log2(max(2, cores)))) * (ov.message + latency)
    return t_sample + t_redist + t_sort + t_barrier


def fig6_sample_sort(machine: Machine = EDISON, cores_list=None,
                     models=("upc", "upcxx"),
                     keys_per_rank: int = SORT_KEYS_PER_RANK) -> dict:
    """Fig. 6: Sample Sort weak-scaling throughput in TB/min."""
    cores_list = list(cores_list or FIG6_CORES)
    out = {"cores": cores_list, "unit": "TB/min"}
    for m in models:
        series = []
        for c in cores_list:
            t = sample_sort_time(machine, m, c, keys_per_rank)
            total_bytes = c * keys_per_rank * 8
            series.append(total_bytes / t * 60.0 / 1e12)
        out[m] = series
    return out


# ---------------------------------------------------------------------------
# Embree ray tracing — Fig. 7
# ---------------------------------------------------------------------------

RAY_IMAGE = 1024           # image is RAY_IMAGE x RAY_IMAGE pixels
RAY_TILE = 8               # tile edge (paper: image plane divided in tiles)
RAY_SPP = 512              # effective samples per pixel (path tracing)


def embree_time(machine: Machine, model: str, cores: int,
                image: int = RAY_IMAGE, tile: int = RAY_TILE,
                spp: int = RAY_SPP) -> float:
    """Seconds to render one frame at ``cores`` ranks."""
    ov = machine.overheads(model)
    tiles = (image // tile) ** 2
    t_tile = tile * tile * spp / machine.ray_rate
    # static cyclic distribution; OpenMP dynamic inside a rank keeps
    # intra-rank imbalance small — model a mild 2% residual.
    my_tiles = ceil(tiles / cores)
    t_comp = my_tiles * t_tile * 1.02
    # sum-reduction of partial images (recursive halving allreduce).
    img_bytes = image * image * 3 * 4
    bw = machine.effective_bw_per_core(cores)
    latency = machine.one_way_latency(cores)
    rounds = max(1, ceil(log2(max(2, cores))))
    t_reduce = 2 * img_bytes * (1 - 1 / cores) / bw \
        + rounds * (ov.message + latency)
    return t_comp + t_reduce


def fig7_embree(machine: Machine = EDISON, cores_list=None,
                models=("upcxx",)) -> dict:
    """Fig. 7: strong-scaling speedup of the distributed renderer.

    Speedup baseline is the 1-core render time (serial renderer)."""
    cores_list = list(cores_list or FIG7_CORES)
    out = {"cores": cores_list, "unit": "speedup"}
    for m in models:
        t1 = embree_time(machine, m, 1)
        out[m] = [t1 / embree_time(machine, m, c) for c in cores_list]
    return out


# ---------------------------------------------------------------------------
# LULESH — Fig. 8
# ---------------------------------------------------------------------------

LULESH_ZONES_PER_RANK = 30 ** 3      # fixed per-rank subdomain (weak)
LULESH_COMM_PHASES = 3               # force / position / monoq exchanges
LULESH_FIELDS = 3                    # doubles per face point and phase


def lulesh_step_time(machine: Machine, model: str, cores: int,
                     zones_per_rank: int = LULESH_ZONES_PER_RANK) -> float:
    """Seconds per timestep of the hydro proxy at ``cores`` ranks."""
    ov = machine.overheads(model)
    edge = round(zones_per_rank ** (1 / 3))
    t_comp = zones_per_rank / machine.zone_rate
    # --- neighbour exchange: 26 neighbours, 3 phases -----------------
    face_bytes = edge * edge * 8 * LULESH_FIELDS
    edge_bytes = edge * 8 * LULESH_FIELDS
    n_msgs = 26 * LULESH_COMM_PHASES
    bytes_total = LULESH_COMM_PHASES * (
        6 * face_bytes + 12 * edge_bytes + 8 * 24
    )
    bw = machine.effective_bw_per_core(cores)
    latency = machine.one_way_latency(cores)
    if model == "mpi":
        # two-sided: per-message matching on both sides + a sync delay
        # per phase (the receiver cannot proceed before the match).
        t_comm = (n_msgs * 2 * ov.message + bytes_total / bw
                  + LULESH_COMM_PHASES * 2 * latency)
    else:
        # one-sided: injection overhead + single fence per phase.
        t_comm = (n_msgs * ov.message + bytes_total / bw
                  + LULESH_COMM_PHASES * latency)
    # --- dt allreduce per step ----------------------------------------
    rounds = max(1, ceil(log2(max(2, cores))))
    t_allreduce = rounds * (ov.message + latency)
    # --- system noise amplification ------------------------------------
    # Per-rank compute jitter turns into waiting at each sync point; the
    # expected max of P jitters grows ~ sigma*sqrt(2 ln P).  Two-sided
    # exchanges wait at every neighbour message; one-sided communication
    # absorbs much of it (data is pushed; only the fence syncs).
    if cores > 1:
        jitter = machine.noise_sigma * t_comp * sqrt(2.0 * log(cores))
        absorb = 1.0 if model == "mpi" else 0.35
        t_noise = absorb * jitter
    else:
        t_noise = 0.0
    return t_comp + t_comm + t_allreduce + t_noise


def fig8_lulesh(machine: Machine = EDISON, cores_list=None,
                models=("mpi", "upcxx"),
                zones_per_rank: int = LULESH_ZONES_PER_RANK) -> dict:
    """Fig. 8: LULESH weak-scaling figure of merit (zones/second)."""
    cores_list = list(cores_list or FIG8_CORES)
    out = {"cores": cores_list, "unit": "FOM z/s"}
    for m in models:
        out[m] = [
            c * zones_per_rank / lulesh_step_time(machine, m, c,
                                                  zones_per_rank)
            for c in cores_list
        ]
    return out


# ---------------------------------------------------------------------------
# convenience: everything at once (the harness uses this)
# ---------------------------------------------------------------------------

def all_series() -> dict:
    """Every modelled figure/table, keyed by artifact id."""
    return {
        "fig4": fig4_random_access(),
        "table4": table4_gups(),
        "fig5": fig5_stencil(),
        "fig6": fig6_sample_sort(),
        "fig7": fig7_embree(),
        "fig8": fig8_lulesh(),
    }
