"""LogGP cost models for the tree-based collectives engine.

Closed forms for the algorithms :mod:`repro.core.coll_engine` runs —
dissemination barrier, binomial bcast/reduce, Bruck allgather, pairwise
alltoall — plus the retired centralized-rendezvous baseline, so the
machine models can answer "at what P does the tree win, and by how
much" without running anything.

Conventions match :class:`~repro.sim.loggp.LogGP`: times in seconds,
``L_eff`` lets a topology fold hop latency in.  Rounds in a tree
collective are serialized on the critical path (each round waits for
the previous round's message), so costs are per-round sums; fan-out
within a round is injection-gap limited.
"""

from __future__ import annotations

from repro.sim.loggp import LogGP


def ceil_log2(p: int) -> int:
    """Rounds needed to span ``p`` participants by doubling."""
    return max(p - 1, 0).bit_length()


def barrier_time(net: LogGP, p: int, L_eff: float | None = None) -> float:
    """Dissemination barrier: ceil(log2 P) rounds, one small message
    sent and one received per rank per round."""
    L = net.L if L_eff is None else L_eff
    return ceil_log2(p) * (2.0 * net.o + L)


def bcast_time(net: LogGP, p: int, nbytes: int,
               L_eff: float | None = None) -> float:
    """Binomial-tree broadcast of an ``nbytes`` blob: the critical path
    is the deepest leaf, one full transfer per tree level."""
    L = net.L if L_eff is None else L_eff
    return ceil_log2(p) * (net.o + net.bulk(nbytes, L))


def reduce_time(net: LogGP, p: int, nbytes: int,
                L_eff: float | None = None,
                gamma: float = 0.0) -> float:
    """Binomial-tree reduction: mirror of bcast plus a per-byte combine
    cost ``gamma`` (s/byte) at every level."""
    L = net.L if L_eff is None else L_eff
    return ceil_log2(p) * (net.o + net.bulk(nbytes, L) + gamma * nbytes)


def allreduce_time(net: LogGP, p: int, nbytes: int,
                   L_eff: float | None = None,
                   gamma: float = 0.0) -> float:
    """Reduce to the tree root, then broadcast back down."""
    return (reduce_time(net, p, nbytes, L_eff, gamma)
            + bcast_time(net, p, nbytes, L_eff))


def allgather_time(net: LogGP, p: int, nbytes_block: int,
                   L_eff: float | None = None) -> float:
    """Bruck allgather: round k ships min(2^k, P - 2^k) coalesced
    blocks, so total traffic is (P-1) blocks in ceil(log2 P) rounds."""
    L = net.L if L_eff is None else L_eff
    total = 0.0
    for k in range(ceil_log2(p)):
        count = min(1 << k, p - (1 << k))
        total += net.o + net.bulk(count * nbytes_block, L)
    return total


def alltoall_time(net: LogGP, p: int, nbytes_per_pair: int,
                  L_eff: float | None = None) -> float:
    """Pairwise exchange: P-1 non-blocking sends injected back-to-back
    (gap-limited), the last arrival completes the collective."""
    return net.pipelined(p - 1, nbytes_per_pair, L_eff)


def centralized_exchange_time(net: LogGP, p: int, nbytes: int,
                              L_eff: float | None = None) -> float:
    """The retired rendezvous-slot path, modelled as communication: every
    rank deposits its ``nbytes`` contribution through one serialization
    point, then every rank extracts the published result — 2P serialized
    transfers through a single bottleneck, O(P) on the critical path
    versus the trees' O(log P)."""
    L = net.L if L_eff is None else L_eff
    deposit = net.o + max(net.g, nbytes * net.G)
    extract = net.o + max(net.g, nbytes * net.G)
    return L + p * (deposit + extract)


def tree_speedup(net: LogGP, p: int, nbytes: int,
                 L_eff: float | None = None) -> float:
    """Modelled centralized/tree time ratio for an allgather-shaped
    exchange (every rank contributes and receives everything)."""
    tree = allgather_time(net, p, nbytes, L_eff)
    central = centralized_exchange_time(net, p, nbytes, L_eff)
    return central / tree if tree > 0 else float("inf")
