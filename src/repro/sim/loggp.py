"""LogGP network cost model (Alexandrov et al.).

Parameters (seconds / seconds-per-byte):

* ``L`` — base network latency,
* ``o`` — per-message CPU overhead (send + receive halves combined
  unless split),
* ``g`` — gap between consecutive small-message injections,
* ``G`` — gap per byte for bulk transfers (1/bandwidth).

These compose with a topology's hop latency: an effective one-way
latency ``L_eff = L + hops * hop_latency``; the cost helpers below take
``L_eff`` explicitly so machines can combine the pieces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LogGP:
    """LogGP parameters for one machine's network."""

    L: float      # base one-way latency (s)
    o: float      # per-message CPU overhead (s)
    g: float      # inter-message gap (s)
    G: float      # per-byte gap (s/byte) == 1 / injection bandwidth

    @property
    def bandwidth(self) -> float:
        """Injection bandwidth in bytes/second."""
        return 1.0 / self.G

    # -- composed costs ---------------------------------------------------
    def small_message(self, L_eff: float | None = None) -> float:
        """One-way time for a message of negligible size."""
        L = self.L if L_eff is None else L_eff
        return self.o + L

    def round_trip(self, L_eff: float | None = None) -> float:
        """Request/response pair (a blocking remote get)."""
        L = self.L if L_eff is None else L_eff
        return 2.0 * (self.o + L)

    def bulk(self, nbytes: int, L_eff: float | None = None) -> float:
        """One-way time for an ``nbytes`` transfer."""
        L = self.L if L_eff is None else L_eff
        return self.o + L + max(0, nbytes - 1) * self.G

    def pipelined(self, n_messages: int, nbytes_each: int,
                  L_eff: float | None = None) -> float:
        """``n`` back-to-back non-blocking transfers, overlap permitted:
        first message pays full latency, the rest are gap-limited."""
        if n_messages <= 0:
            return 0.0
        L = self.L if L_eff is None else L_eff
        per = max(self.g, self.o + nbytes_each * self.G)
        first = self.o + L + max(0, nbytes_each - 1) * self.G
        return first + (n_messages - 1) * per
