"""Interconnect topology models.

Two topologies matter for the paper's figures:

* **Aries dragonfly** (Edison, Cray XC30): all-to-all connected groups
  of routers; the diameter is tiny (≤ 5 hops: router → group hub →
  global link → group hub → router) and grows only marginally with
  system size, but *global-link bandwidth* tapers for bisection-heavy
  traffic.
* **5-D torus** (Vesta, IBM BG/Q): average hop distance grows with the
  torus dimensions (~``sum(dims_i)/4`` for balanced tori with
  bidirectional links), which is the latency growth visible in the
  paper's Fig. 4.

``as_networkx`` builds the explicit graph so tests can validate the
closed-form average-hop formulas against true shortest paths for small
networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np


def balanced_factors(n: int, ndim: int) -> tuple[int, ...]:
    """Factor ``n`` into ``ndim`` near-equal factors (descending).

    Used to pick torus dimensions for a node count the way system
    software partitions BG/Q midplanes.
    """
    if n < 1:
        raise ValueError("need a positive node count")
    factors: list[int] = []
    m = n
    f = 2
    while f * f <= m:
        while m % f == 0:
            factors.append(f)
            m //= f
        f += 1
    if m > 1:
        factors.append(m)
    dims = [1] * ndim
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class Torus5D:
    """A k-ary 5-D torus (BG/Q style)."""

    nodes: int

    @property
    def dims(self) -> tuple[int, ...]:
        return balanced_factors(self.nodes, 5)

    def avg_hops(self) -> float:
        """Mean shortest-path hop count between distinct nodes.

        For one ring of length d the mean distance over all ordered
        pairs (including self) is ``(d//2 * (d - d//2 + d%2)) / d`` —
        computed exactly below by enumeration per dimension (dims are
        tiny), then summed over dimensions (L1 metric on the torus).
        """
        if self.nodes == 1:
            return 0.0
        total = 0.0
        for d in self.dims:
            dist = [min(k, d - k) for k in range(d)]
            total += sum(dist) / d
        # Correct for excluding self-pairs: E[sum | not all zero].
        return total * self.nodes / (self.nodes - 1)

    def diameter(self) -> int:
        return sum(d // 2 for d in self.dims)

    def bisection_links(self) -> int:
        """Links crossing the worst bisection (cut the longest dim)."""
        dims = self.dims
        other = self.nodes // dims[0]
        return 2 * other  # torus wrap gives 2 links per cut column

    def as_networkx(self) -> nx.Graph:
        """The explicit torus graph (small sizes; validation only)."""
        g = nx.Graph()
        dims = self.dims
        coords = list(np.ndindex(*dims))
        for c in coords:
            g.add_node(c)
        for c in coords:
            for axis, d in enumerate(dims):
                if d == 1:
                    continue
                nbr = list(c)
                nbr[axis] = (nbr[axis] + 1) % d
                g.add_edge(c, tuple(nbr))
        return g


@dataclass(frozen=True)
class Dragonfly:
    """An Aries-like dragonfly: groups of routers, all-to-all between
    groups; ``routers_per_group`` routers per group, ``nodes_per_router``
    nodes per router."""

    nodes: int
    routers_per_group: int = 16
    nodes_per_router: int = 4

    @property
    def routers(self) -> int:
        return -(-self.nodes // self.nodes_per_router)

    @property
    def groups(self) -> int:
        return max(1, -(-self.routers // self.routers_per_group))

    def avg_hops(self) -> float:
        """Mean router-to-router hops.

        Same router: 0; same group: 1 (all-to-all intra-group, modelled
        flat); other group: 3 (router → gateway → global link → router).
        """
        if self.routers == 1:
            return 0.0
        r = self.routers
        same_router = 0.0
        per_group = min(self.routers_per_group, r)
        frac_same_group = (per_group - 1) / (r - 1) if r > 1 else 0.0
        frac_other = 1.0 - frac_same_group
        return same_router + frac_same_group * 1.0 + frac_other * 3.0

    def diameter(self) -> int:
        return 1 if self.groups == 1 else 3

    def global_taper(self) -> float:
        """Bandwidth taper factor (≥ 1) for bisection-heavy traffic.

        All-to-all traffic on a dragonfly is limited by global links;
        the effective per-node bandwidth shrinks roughly with the ratio
        of nodes per group to global links per group.  We model a gentle
        logarithmic taper, calibrated against the paper's Sample Sort
        efficiency at 12288 cores (EXPERIMENTS.md).
        """
        if self.groups <= 1:
            return 1.0
        return 1.0 + 0.75 * np.log2(self.groups)

    def as_networkx(self) -> nx.Graph:
        """Explicit router graph (validation only, small sizes)."""
        g = nx.Graph()
        rpg = self.routers_per_group
        routers = [(grp, i) for grp in range(self.groups)
                   for i in range(min(rpg, self.routers - grp * rpg))]
        g.add_nodes_from(routers)
        # intra-group all-to-all
        for grp in range(self.groups):
            members = [r for r in routers if r[0] == grp]
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    g.add_edge(a, b)
        # one global link between every pair of groups (router 0 acts
        # as the gateway; adequate for hop-count validation)
        for ga in range(self.groups):
            for gb in range(ga + 1, self.groups):
                g.add_edge((ga, 0), (gb, 0))
        return g
