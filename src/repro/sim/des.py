"""A discrete-event simulator for rank communication programs.

The closed-form figure models in :mod:`repro.sim.perfmodel` make
independence/aggregation assumptions; this engine executes the *actual
per-rank operation sequences* (from :mod:`repro.sim.patterns`) under the
same LogGP + topology costs, so tests can check the closed forms against
an executable semantics at small scale.

Programs are lists of ops per rank:

* :class:`Compute` — local work for a given time;
* :class:`Put` — non-blocking one-sided write (completion tracked for
  :class:`WaitAll`, the model of ``async_copy`` + ``async_copy_fence``);
* :class:`Get` — blocking one-sided read (fine-grained round trip);
* :class:`Send`/:class:`Recv` — two-sided tagged messages with MPI
  matching semantics (Recv blocks until a matching Send arrived);
* :class:`WaitAll` — fence on this rank's outstanding Puts;
* :class:`Barrier` — global synchronization (dissemination cost).

The engine advances ranks round-robin; a full pass with no progress and
unfinished programs is reported as deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Sequence

from repro.errors import PgasError
from repro.sim.machine import Machine


@dataclass(frozen=True)
class Compute:
    seconds: float


@dataclass(frozen=True)
class Put:
    dst: int
    nbytes: int


@dataclass(frozen=True)
class Get:
    dst: int
    nbytes: int


@dataclass(frozen=True)
class Send:
    dst: int
    nbytes: int
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    src: int
    nbytes: int
    tag: int = 0


@dataclass(frozen=True)
class WaitAll:
    pass


@dataclass(frozen=True)
class Barrier:
    pass


class DesEngine:
    """Execute per-rank programs; report per-rank and global finish times."""

    def __init__(self, machine: Machine, model: str, cores: int):
        self.machine = machine
        self.ov = machine.overheads(model)
        self.latency = machine.one_way_latency(cores)
        self.G = machine.loggp.G
        self.cores = cores

    # -- cost helpers -----------------------------------------------------
    def _inject_cost(self, nbytes: int) -> float:
        return self.ov.message + nbytes * self.G

    def _barrier_cost(self, nranks: int) -> float:
        rounds = max(1, ceil(log2(max(2, nranks))))
        return rounds * (self.ov.message + self.latency)

    # -- execution -----------------------------------------------------------
    def run(self, programs: Sequence[Sequence[object]]) -> dict:
        """Simulate; returns {'finish_times': [...], 'makespan': float}."""
        n = len(programs)
        clock = [0.0] * n
        pc = [0] * n
        outstanding: list[list[float]] = [[] for _ in range(n)]
        mailbox: list[list[tuple[int, int, float]]] = [[] for _ in range(n)]
        in_barrier = [False] * n

        def runnable(r: int) -> bool:
            return pc[r] < len(programs[r])

        total_remaining = sum(len(p) for p in programs)
        while total_remaining:
            progressed = False
            # Barrier resolution: ALL ranks must be parked at a barrier.
            # A rank that terminated without reaching it is a program
            # error and falls through to deadlock detection below.
            waiting = [r for r in range(n) if runnable(r) and in_barrier[r]]
            if len(waiting) == n:
                release = max(clock[r] for r in waiting) + self._barrier_cost(n)
                for r in waiting:
                    clock[r] = release
                    in_barrier[r] = False
                    pc[r] += 1
                    total_remaining -= 1
                progressed = True
                continue
            for r in range(n):
                if not runnable(r) or in_barrier[r]:
                    continue
                op = programs[r][pc[r]]
                if isinstance(op, Barrier):
                    in_barrier[r] = True
                    progressed = True
                    continue
                if isinstance(op, Compute):
                    clock[r] += op.seconds
                elif isinstance(op, Put):
                    clock[r] += self._inject_cost(op.nbytes)
                    outstanding[r].append(clock[r] + self.latency)
                elif isinstance(op, Get):
                    clock[r] += (
                        2 * self.ov.message + 2 * self.latency
                        + op.nbytes * self.G
                    )
                elif isinstance(op, Send):
                    clock[r] += self._inject_cost(op.nbytes)
                    mailbox[op.dst].append((r, op.tag, clock[r] + self.latency))
                elif isinstance(op, Recv):
                    hit = None
                    for i, (src, tag, arrival) in enumerate(mailbox[r]):
                        if src == op.src and tag == op.tag:
                            hit = i
                            break
                    if hit is None:
                        continue  # blocked: matching send not issued yet
                    _src, _tag, arrival = mailbox[r].pop(hit)
                    clock[r] = max(clock[r], arrival) + self.ov.message
                elif isinstance(op, WaitAll):
                    if outstanding[r]:
                        clock[r] = max(clock[r], max(outstanding[r]))
                        outstanding[r].clear()
                else:
                    raise PgasError(f"unknown op {op!r}")
                pc[r] += 1
                total_remaining -= 1
                progressed = True
            if not progressed:
                stuck = [r for r in range(n) if runnable(r)]
                raise PgasError(
                    f"DES deadlock: ranks {stuck} cannot progress "
                    f"(unmatched Recv or mismatched Barrier)"
                )
        return {"finish_times": clock, "makespan": max(clock) if n else 0.0}
