"""Reliable delivery over an unreliable conduit.

The UPC++ runtime (paper §IV) assumes GASNet semantics: active messages
are delivered exactly once, in FIFO order per (src, dst) pair, and RMA
either completes or the job dies.  :class:`ReliableConduit` restores that
contract on top of a transport that drops, duplicates, reorders, and
transiently fails — e.g. :class:`~repro.gasnet.chaos.ChaosConduit` — the
way DART-MPI layers PGAS delivery semantics over an imperfect substrate.

Mechanisms
----------
* **Sequencing + dedup** — every AM travels in an envelope carrying a
  per-(src, dst) sequence number; the receiver delivers in order,
  buffers early arrivals, and suppresses duplicates.
* **Positive acks + retransmit** — the receiver acks every envelope; the
  sender retransmits unacked envelopes on a capped exponential backoff
  with jitter, and gives up at a per-op deadline, raising
  :class:`~repro.errors.CommTimeout` with a diagnostic naming the stuck
  op (delivered to the initiator's future when the AM expects a reply).
* **Bounded RMA retry** — ``rma_put``/``rma_get`` and the indexed bulk
  ops are idempotent and retried freely on
  :class:`~repro.errors.TransientCommError`; ``rma_atomic`` and
  ``rma_atomic_batch`` are guarded by op-ids so a retried update applies
  **exactly once** even when the fault fired after the update landed.
* **Heartbeat failure detection** — the conduit pings every rank pair;
  a rank silent past ``peer_timeout`` is declared dead via
  :meth:`~repro.core.world.World.mark_dead`.  By default that fails the
  world (:class:`~repro.errors.PeerFailure` on every blocked rank); with
  ``survive_rank_death=True`` the survivors keep running — traffic
  already in flight to the dead rank fails with
  :class:`~repro.errors.RankDead` error replies, later sends to it
  fail fast, and death subscribers (e.g. replicated containers) take
  over the dead rank's duties.

Retry/dup/timeout counts land in :class:`~repro.gasnet.stats.CommStats`
(``am_retransmits``/``dup_ams``/``acks_sent``/``rma_retries``/
``op_timeouts``/``heartbeats_sent``) and in an active
:class:`~repro.gasnet.trace.Trace` as control events.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    CommTimeout,
    PeerFailure,
    RankDead,
    TransientCommError,
)
from repro.gasnet.am import ActiveMessage, am_handler
from repro.gasnet.atomics import resolve_scalar
from repro.gasnet.conduit import Conduit


@dataclass
class ReliabilityConfig:
    """Tuning knobs for :class:`ReliableConduit`.

    Defaults are sized for the in-process SMP/chaos conduits (sub-ms
    "wire"); a real network would scale them up.
    """

    #: Initial retransmission timeout (seconds) for an unacked AM.
    ack_timeout: float = 0.01
    #: Exponential backoff multiplier per retransmission.
    backoff: float = 2.0
    #: Cap on the backed-off retransmission interval (seconds).
    rto_max: float = 0.25
    #: Jitter fraction added to each backoff interval (decorrelates
    #: retransmission storms).
    jitter: float = 0.25
    #: Give up on an AM/RMA op after this many retries.
    max_retries: int = 64
    #: Per-op deadline (seconds); ``None`` falls back to the world's
    #: ``op_timeout`` (and to 30 s if that is also ``None``).
    op_deadline: float | None = None
    #: Initial backoff between RMA retries (seconds).
    rma_retry_delay: float = 0.002
    #: Interval between heartbeat probe rounds (seconds).
    heartbeat_period: float = 0.05
    #: Declare a peer dead after this much silence (seconds);
    #: ``None`` disables the failure detector.
    peer_timeout: float | None = 2.0
    #: Monitor-thread polling granularity (seconds).
    tick: float = 0.002
    #: Seed for the retransmission-jitter RNG.
    seed: int = 0


class _PendingAm:
    """One unacked in-flight envelope on the sender side."""

    __slots__ = ("env", "inner", "src", "dst", "seq", "attempts",
                 "next_at", "deadline")

    def __init__(self, env, inner, src, dst, seq, next_at, deadline):
        self.env = env
        self.inner = inner
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = 0
        self.next_at = next_at
        self.deadline = deadline


def _control_am(handler: str, src: int, aux: int = 0) -> ActiveMessage:
    """A reliability-protocol control AM.  The seq/ack number rides in
    the frame header's ``aux`` word, so control traffic encodes to a
    bare 42-byte header — no args, no pickle."""
    return ActiveMessage(handler=handler, src_rank=src, aux=aux)


class ReliableConduit(Conduit):
    """Wrap any conduit with sequencing, acks/retransmit, bounded RMA
    retry, exactly-once atomics, per-op deadlines, and a heartbeat
    failure detector.

    >>> conduit = ReliableConduit(ChaosConduit(seed=0, am_drop_rate=0.1))
    >>> repro.spmd(body, ranks=4, conduit=conduit)

    or, equivalently, via the world knob::

    >>> repro.spmd(body, ranks=4, conduit=ChaosConduit(...),
    ...            reliability={"peer_timeout": 1.0})
    """

    def __init__(self, inner: Conduit,
                 config: ReliabilityConfig | None = None, **overrides):
        self._inner = inner
        if config is None:
            config = ReliabilityConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides")
        self.cfg = config
        self.world = None
        self._rng = np.random.default_rng(config.seed)
        self._rng_lock = threading.Lock()
        # sender state
        self._tx_lock = threading.Lock()
        self._tx_seq: dict[tuple[int, int], int] = {}
        self._unacked: dict[tuple[int, int, int], _PendingAm] = {}
        # receiver state
        self._rx_lock = threading.Lock()
        self._rx_next: dict[tuple[int, int], int] = {}
        self._rx_buf: dict[tuple[int, int], dict[int, ActiveMessage]] = {}
        # exactly-once bookkeeping / diagnostics
        self._op_ids = itertools.count(1)
        # failure detector
        self._last_heard: dict[int, float] = {}
        self._dead_peers: set[int] = set()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    def attach(self, world) -> None:
        self.world = world
        self._inner.attach(world)
        world._reliable = self
        now = time.monotonic()
        self._last_heard = {r: now for r in range(world.n_ranks)}
        self._monitor = threading.Thread(
            target=self._monitor_main,
            name=f"pgas-reliable-{world.id}", daemon=True,
        )
        self._monitor.start()

    def close(self) -> None:
        """Stop the retransmit/heartbeat monitor and close the inner
        conduit (the world is ending)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        self._inner.close()

    def __getattr__(self, name):
        # Delegate extras (fail_next_am, kill_rank, ...) to the inner
        # conduit so test hooks keep working through the wrapper.
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(self.__dict__["_inner"], name)

    @property
    def caps(self):
        # The Conduit base class defines ``caps`` as a class attribute,
        # which would shadow __getattr__ delegation — forward explicitly
        # so capability checks see through the wrapper.
        return self._inner.caps

    # -- helpers -----------------------------------------------------------
    def _deadline_for(self, now: float) -> float:
        limit = self.cfg.op_deadline
        if limit is None and self.world is not None:
            limit = self.world.op_timeout
        if limit is None:
            limit = 30.0
        return now + limit

    def _jitter(self) -> float:
        with self._rng_lock:
            return 1.0 + self.cfg.jitter * float(self._rng.random())

    def _note_alive(self, rank: int) -> None:
        self._last_heard[rank] = time.monotonic()

    def _trace_control(self, kind: str, src: int, dst: int,
                       nbytes: int = 0, detail: str = "") -> None:
        hook = None
        if self.world is not None:
            hook = getattr(self.world.conduit, "trace_control", None)
        if hook is not None:
            try:
                hook(kind, src, dst, nbytes, detail)
            except Exception:
                pass

    def _check_peer(self, dst: int, what: str) -> None:
        if dst in self._dead_peers:
            raise PeerFailure(dst, RankDead(
                f"rank {dst} declared dead before {what}"
            ))

    def _note_peer_dead(self, rank: int, exc: BaseException) -> None:
        """Record ``rank`` as dead and fail every in-flight AM addressed
        to it: retransmitting into a black hole would only stall the
        initiator until its op deadline, so pending token-carrying AMs
        get an immediate RankDead error reply instead."""
        if rank in self._dead_peers:
            return
        self._dead_peers.add(rank)
        self._trace_control("peer_dead", rank, rank, detail=str(exc))
        world = self.world
        with self._tx_lock:
            doomed = [e for k, e in self._unacked.items() if e.dst == rank]
            for e in doomed:
                self._unacked.pop((e.src, e.dst, e.seq), None)
        for e in doomed:
            self._fail_pending(world, e, exc)

    def _fail_pending(self, world, e: _PendingAm,
                      exc: BaseException) -> None:
        world.ranks[e.src].stats.record_dead_peer_fastfail()
        self._trace_control(
            "dead_peer_fastfail", e.src, e.dst,
            detail=f"{e.inner.handler} seq={e.seq}",
        )
        if e.inner.token is not None and not e.inner.is_reply:
            err = ActiveMessage(
                handler="__reply__", src_rank=e.dst,
                args=("__error__", RankDead(
                    f"reliable conduit: AM {e.inner.handler!r} "
                    f"{e.src}->{e.dst} abandoned: rank {e.dst} is dead "
                    f"({exc})"
                )),
                token=e.inner.token, is_reply=True,
            )
            world.ranks[e.src].deliver(err)

    # -- active messages: sequencing + acks --------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if src == dst:  # loopback is reliable; skip the protocol
            self._inner.send_am(src, dst, am)
            return
        if am.is_reply and self.world is not None:
            # Replies are charged where the conduit sees the reply flag;
            # here the inner conduit only ever sees the data envelope,
            # so the counter must be fed before wrapping.
            self.world.ranks[src].stats.record_reply()
        if dst in self._dead_peers:
            # Fail fast instead of queueing for a peer that can never
            # ack: token AMs get an immediate RankDead error reply,
            # fire-and-forget AMs are dropped.
            if self.world is not None:
                self.world.ranks[src].stats.record_dead_peer_fastfail()
            self._trace_control("dead_peer_fastfail", src, dst,
                                detail=am.handler)
            if am.token is not None and not am.is_reply:
                err = ActiveMessage(
                    handler="__reply__", src_rank=dst,
                    args=("__error__", RankDead(
                        f"reliable conduit: refusing AM {am.handler!r} "
                        f"{src}->{dst}: rank {dst} is dead"
                    )),
                    token=am.token, is_reply=True,
                )
                self.world.ranks[src].deliver(err)
            return
        now = time.monotonic()
        with self._tx_lock:
            seq = self._tx_seq.get((src, dst), 0)
            self._tx_seq[(src, dst)] = seq + 1
            # The sequence number travels in the envelope header's aux
            # word; the inner AM's frame is spliced in whole, so
            # retransmissions reuse one encode.
            env = ActiveMessage(
                handler="__rel_data__", src_rank=src, aux=seq,
                payload=am,
            )
            self._unacked[(src, dst, seq)] = _PendingAm(
                env, am, src, dst, seq,
                next_at=now + self.cfg.ack_timeout,
                deadline=self._deadline_for(now),
            )
        try:
            self._inner.send_am(src, dst, env)
        except TransientCommError:
            pass  # counts as a drop; the retransmitter recovers it

    def _on_data(self, ctx, env: ActiveMessage) -> None:
        """Receiver side: ack, dedup, reorder into per-pair FIFO."""
        src, dst, seq = env.src_rank, ctx.rank, env.aux
        self._note_alive(src)
        ctx.stats.record_ack()
        try:
            self._inner.send_am(dst, src, _control_am(
                "__rel_ack__", dst, aux=seq
            ))
        except TransientCommError:
            pass  # a lost ack just means one more retransmission
        key = (src, dst)
        with self._rx_lock:
            nxt = self._rx_next.get(key, 0)
            buf = self._rx_buf.setdefault(key, {})
            if seq < nxt or seq in buf:
                ctx.stats.record_dup_am()
                self._trace_control("dup_suppressed", src, dst,
                                    detail=f"seq={seq}")
                return
            buf[seq] = env.payload
            ready: list[ActiveMessage] = []
            while nxt in buf:
                ready.append(buf.pop(nxt))
                nxt += 1
            self._rx_next[key] = nxt
        # Dispatch outside the rx lock; per-dst ordering is preserved
        # because the caller holds the rank's handler lock.
        for inner_am in ready:
            ctx._handle(inner_am)

    def _on_ack(self, ctx, am: ActiveMessage) -> None:
        seq = am.aux
        self._note_alive(am.src_rank)
        with self._tx_lock:
            self._unacked.pop((ctx.rank, am.src_rank, seq), None)

    # -- monitor: retransmit, deadlines, heartbeats ------------------------
    def _monitor_main(self) -> None:
        cfg = self.cfg
        next_hb = 0.0
        while not self._stop.wait(cfg.tick):
            world = self.world
            if world is None:
                continue
            now = time.monotonic()
            self._service_retransmits(world, now)
            if cfg.peer_timeout is not None and world.n_ranks > 1:
                if now >= next_hb:
                    next_hb = now + cfg.heartbeat_period
                    self._send_heartbeats(world)
                self._check_peers(world)

    def _service_retransmits(self, world, now: float) -> None:
        cfg = self.cfg
        with self._tx_lock:
            entries = list(self._unacked.items())
        for key, e in entries:
            if now >= e.deadline or e.attempts >= cfg.max_retries:
                with self._tx_lock:
                    self._unacked.pop(key, None)
                self._expire(world, e)
                continue
            if now < e.next_at:
                continue
            e.attempts += 1
            rto = min(cfg.ack_timeout * cfg.backoff ** e.attempts,
                      cfg.rto_max)
            e.next_at = now + rto * self._jitter()
            world.ranks[e.src].stats.record_am_retransmit()
            self._trace_control(
                "retransmit", e.src, e.dst, e.env.wire_bytes,
                detail=f"{e.inner.handler} seq={e.seq} try={e.attempts}",
            )
            inner = e.inner
            if inner.trace_id:
                # Link the retransmit into the originating op's causal
                # trace: a tiny span joins the Perfetto flow chain, and
                # the flight event carries the trace id.
                tel = world.telemetry.rank(e.src)
                tel.flight_event(
                    "retransmit_traced", src=e.src, dst=e.dst,
                    nbytes=e.env.wire_bytes,
                    detail=f"{inner.handler} seq={e.seq} try={e.attempts}",
                    trace_id=inner.trace_id)
                if tel.full:
                    tel.record_span(
                        f"retransmit:{inner.handler}",
                        time.perf_counter(), 2e-6,
                        detail=f"seq={e.seq} try={e.attempts}",
                        trace_id=inner.trace_id,
                        span_id=tel.new_span_id(),
                        parent_id=inner.span_id)
            try:
                self._inner.send_am(e.src, e.dst, e.env)
            except TransientCommError:
                pass

    def _expire(self, world, e: _PendingAm) -> None:
        """An AM exhausted its deadline/retry budget: surface CommTimeout
        on the initiator (via its reply future when there is one)."""
        world.ranks[e.src].stats.record_op_timeout()
        diag = (
            f"reliable conduit: AM {e.inner.handler!r} "
            f"{e.src}->{e.dst} seq {e.seq} still unacked after "
            f"{e.attempts} retransmits; giving up"
        )
        self._trace_control("op_timeout", e.src, e.dst, detail=diag)
        if e.inner.token is not None and not e.inner.is_reply:
            # Delivered directly (never encoded): _handle accepts plain
            # frameless AMs alongside thawed wire frames.
            err = ActiveMessage(
                handler="__reply__", src_rank=e.dst,
                args=("__error__", CommTimeout(diag)),
                token=e.inner.token, is_reply=True,
            )
            world.ranks[e.src].deliver(err)

    def _send_heartbeats(self, world) -> None:
        # Only ranks executing in this process originate pings: on the
        # proc backend a rank must not impersonate its remote peers.
        for i in range(world.n_ranks):
            if not world.is_local(i):
                continue
            if world.ranks[i].done or world.ranks[i].dead:
                continue
            for j in range(world.n_ranks):
                if i == j or j in self._dead_peers:
                    continue
                world.ranks[i].stats.record_heartbeat()
                try:
                    self._inner.send_am(i, j, _control_am(
                        "__rel_ping__", i
                    ))
                except TransientCommError:
                    pass

    def _check_peers(self, world) -> None:
        now = time.monotonic()
        timeout = self.cfg.peer_timeout
        for r in range(world.n_ranks):
            if world.local_ranks is not None and r in world.local_ranks:
                # Local ranks never ping themselves; their liveness is
                # the world heartbeat detector's job, not ours.
                continue
            rk = world.ranks[r]
            if rk.done:
                self._last_heard[r] = now  # finished ≠ failed
                continue
            if r in self._dead_peers:
                continue
            silent = now - self._last_heard.get(r, now)
            if silent > timeout:
                # mark_dead routes back through _note_peer_dead (adds r
                # to _dead_peers, fails in-flight AMs), notifies death
                # subscribers, and — unless the world opted into
                # survivable death — fails the whole world.
                world.mark_dead(r, RankDead(
                    f"reliable conduit: rank {r} missed its heartbeat "
                    f"deadline ({silent:.2f}s silent > "
                    f"peer_timeout={timeout}s)"
                ))

    def _on_ping(self, ctx, am: ActiveMessage) -> None:
        self._note_alive(am.src_rank)
        try:
            self._inner.send_am(ctx.rank, am.src_rank, _control_am(
                "__rel_pong__", ctx.rank
            ))
        except TransientCommError:
            pass

    def _on_pong(self, ctx, am: ActiveMessage) -> None:
        self._note_alive(am.src_rank)

    # -- RMA: bounded retry ------------------------------------------------
    def _retry_rma(self, attempt_fn, *, src: int, dst: int, what: str):
        """Run ``attempt_fn`` retrying TransientCommError with capped
        exponential backoff until ``max_retries``/deadline, then raise
        CommTimeout naming the stuck op."""
        cfg = self.cfg
        now = time.monotonic()
        deadline = self._deadline_for(now)
        attempts = 0
        while True:
            self._check_peer(dst, what)
            try:
                return attempt_fn()
            except TransientCommError as exc:
                attempts += 1
                if self.world is not None:
                    self.world.ranks[src].stats.record_rma_retry()
                self._trace_control("rma_retry", src, dst,
                                    detail=f"{what} try={attempts}")
                now = time.monotonic()
                if attempts > cfg.max_retries or now >= deadline:
                    if self.world is not None:
                        self.world.ranks[src].stats.record_op_timeout()
                    raise CommTimeout(
                        f"reliable conduit: {what} {src}->{dst} failed "
                        f"after {attempts} retries "
                        f"(last: {exc})"
                    ) from exc
                delay = min(cfg.rma_retry_delay * cfg.backoff ** attempts,
                            cfg.rto_max)
                time.sleep(delay * self._jitter())

    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        self._retry_rma(
            lambda: self._inner.rma_put(src, dst, offset, data),
            src=src, dst=dst, what=f"rma_put[{offset}]",
        )

    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        return self._retry_rma(
            lambda: self._inner.rma_get(src, dst, offset, dtype, count),
            src=src, dst=dst, what=f"rma_get[{offset}]",
        )

    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets: np.ndarray, data: np.ndarray) -> None:
        self._retry_rma(
            lambda: self._inner.rma_put_indexed(
                src, dst, base, elem_offsets, data
            ),
            src=src, dst=dst, what=f"rma_put_indexed[{base}]",
        )

    def rma_get_indexed(self, src: int, dst: int, base: int,
                        dtype: np.dtype, elem_offsets: np.ndarray
                        ) -> np.ndarray:
        return self._retry_rma(
            lambda: self._inner.rma_get_indexed(
                src, dst, base, dtype, elem_offsets
            ),
            src=src, dst=dst, what=f"rma_get_indexed[{base}]",
        )

    # -- atomics: exactly-once under retry ---------------------------------
    #
    # A transient fault can fire *after* the read-modify-write applied at
    # the target (the chaos conduit's "post" faults).  Blind retry would
    # double-apply.  The guard: the scalar update callable we hand the
    # inner conduit records the observed old value under the target's
    # segment lock — atomically with the update itself.  On retry, a
    # recorded old value proves the op already applied, and we return it
    # without touching the target again.

    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        fn = resolve_scalar(op)
        op_id = next(self._op_ids)
        applied: dict[str, object] = {}

        def guarded(old, v):
            applied["old"] = old
            return fn(old, v)

        def attempt():
            if "old" in applied:  # fault fired post-application
                return applied["old"]
            return self._inner.rma_atomic(
                src, dst, offset, dtype, guarded, operand
            )

        return self._retry_rma(
            attempt, src=src, dst=dst,
            what=f"rma_atomic[{offset}]#op{op_id}",
        )

    def rma_atomic_batch(self, src: int, dst: int, base: int,
                         dtype: np.dtype, elem_offsets: np.ndarray,
                         op, operands, return_old: bool = False):
        fn = resolve_scalar(op)
        op_id = next(self._op_ids)
        dtype = np.dtype(dtype)
        n = np.asarray(elem_offsets).size
        olds: list = []

        def guarded(old, v):
            olds.append(old)
            return fn(old, v)

        def attempt():
            # The inner conduit applies the whole batch under one
            # segment-lock acquisition, and faults only fire at the
            # conduit boundary — so the batch either fully applied
            # (len(olds) == n) or not at all.
            if len(olds) != n:
                olds.clear()
                self._inner.rma_atomic_batch(
                    src, dst, base, dtype, elem_offsets, guarded,
                    operands, return_old=False,
                )
            return np.array(olds, dtype=dtype) if return_old else None

        if n == 0:
            return np.empty(0, dtype=dtype) if return_old else None
        return self._retry_rma(
            attempt, src=src, dst=dst,
            what=f"rma_atomic_batch[{base}]x{n}#op{op_id}",
        )


# ---------------------------------------------------------------------------
# protocol AM handlers
# ---------------------------------------------------------------------------

def _reliable_of(ctx) -> ReliableConduit | None:
    return getattr(ctx.world, "_reliable", None)


@am_handler("__rel_data__")
def _rel_data_handler(ctx, am) -> None:
    rc = _reliable_of(ctx)
    if rc is not None:
        rc._on_data(ctx, am)


@am_handler("__rel_ack__")
def _rel_ack_handler(ctx, am) -> None:
    rc = _reliable_of(ctx)
    if rc is not None:
        rc._on_ack(ctx, am)


@am_handler("__rel_ping__")
def _rel_ping_handler(ctx, am) -> None:
    rc = _reliable_of(ctx)
    if rc is not None:
        rc._on_ping(ctx, am)


@am_handler("__rel_pong__")
def _rel_pong_handler(ctx, am) -> None:
    rc = _reliable_of(ctx)
    if rc is not None:
        rc._on_pong(ctx, am)
