"""Communication tracing.

A :class:`Trace` records every conduit operation of a world —
(wall time, initiator, kind, target, bytes) — while active.  Uses:

* debugging communication patterns ("which rank is hammering rank 0?");
* asserting *pattern shapes* in tests beyond what the aggregate
  counters in :mod:`repro.gasnet.stats` can express (e.g. "every rank
  sent exactly its 6 face neighbours, nothing else");
* feeding per-benchmark traces to the DES for replay.

Implementation: a decorating conduit installed around the world's
conduit for the duration of a ``with`` block.  Tracing is cooperative
and cheap (one list append per op), but not free — keep it out of
timed regions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.gasnet.am import ActiveMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.world import World


@dataclass(frozen=True)
class TraceEvent:
    """One recorded communication operation."""

    t: float          # seconds since trace start
    kind: str         # "put" | "get" | "atomic" | "put_indexed"
                      # | "get_indexed" | "atomic_batch" | "am" | "reply"
                      # — plus reliability/chaos control events:
                      # "retransmit" | "ack"-less "dup_suppressed"
                      # | "rma_retry" | "op_timeout" | "peer_dead"
                      # | "chaos_drop" | "chaos_dup" | "chaos_reorder"
                      # | "chaos_fault"
    src: int
    dst: int
    nbytes: int
    detail: str = ""  # AM handler name, dtype, ...


class _TracingConduit:
    """Decorator around the world's real conduit."""

    def __init__(self, inner, trace: "Trace"):
        self._inner = inner
        self._trace = trace
        self.world = inner.world

    def attach(self, world) -> None:  # pragma: no cover - defensive
        self._inner.attach(world)
        self.world = world

    # conduit surface ------------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        self._trace._record(
            "reply" if am.is_reply else "am", src, dst, am.wire_bytes,
            detail=am.handler,
        )
        self._inner.send_am(src, dst, am)

    def rma_put(self, src: int, dst: int, offset: int, data) -> None:
        nbytes = np.asarray(data).nbytes
        self._trace._record("put", src, dst, nbytes)
        self._inner.rma_put(src, dst, offset, data)

    def rma_get(self, src: int, dst: int, offset: int, dtype, count):
        nbytes = np.dtype(dtype).itemsize * count
        self._trace._record("get", src, dst, nbytes)
        return self._inner.rma_get(src, dst, offset, dtype, count)

    def rma_atomic(self, src: int, dst: int, offset: int, dtype, op,
                   operand):
        self._trace._record("atomic", src, dst,
                            np.dtype(dtype).itemsize)
        return self._inner.rma_atomic(src, dst, offset, dtype, op,
                                      operand)

    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets, data) -> None:
        arr = np.asarray(data)
        self._trace._record("put_indexed", src, dst, arr.nbytes,
                            detail=f"{np.asarray(elem_offsets).size} elems")
        self._inner.rma_put_indexed(src, dst, base, elem_offsets, data)

    def rma_get_indexed(self, src: int, dst: int, base: int, dtype,
                        elem_offsets):
        n = np.asarray(elem_offsets).size
        self._trace._record("get_indexed", src, dst,
                            np.dtype(dtype).itemsize * n,
                            detail=f"{n} elems")
        return self._inner.rma_get_indexed(src, dst, base, dtype,
                                           elem_offsets)

    def rma_atomic_batch(self, src: int, dst: int, base: int, dtype,
                         elem_offsets, op, operands,
                         return_old: bool = False):
        n = np.asarray(elem_offsets).size
        self._trace._record("atomic_batch", src, dst,
                            np.dtype(dtype).itemsize * n,
                            detail=f"{n} elems")
        return self._inner.rma_atomic_batch(
            src, dst, base, dtype, elem_offsets, op, operands, return_old
        )

    def trace_control(self, kind: str, src: int, dst: int,
                      nbytes: int = 0, detail: str = "") -> None:
        """Record a reliability/chaos control event (retransmission, dup
        suppression, injected drop, ...).  Inner conduits discover this
        hook via ``getattr(world.conduit, "trace_control", None)`` so
        control traffic shows up in traces even though it never crosses
        the decorated surface.  Forwarded down the decorator chain so a
        stacked consumer (another Trace, the telemetry flight recorder)
        sees the event too."""
        self._trace._record(kind, src, dst, nbytes, detail=detail)
        fwd = getattr(self._inner, "trace_control", None)
        if fwd is not None:
            try:
                fwd(kind, src, dst, nbytes, detail)
            except Exception:  # tracing must never break the transport
                pass

    def __getattr__(self, name):  # delegate the rest (fail_next_am, ...)
        return getattr(self._inner, name)


class Trace:
    """Context manager recording a world's communication.

    Collective discipline is the caller's business: installing/removing
    the tracing conduit swaps one attribute and is safe while other
    ranks communicate, but for meaningful traces bracket the region
    with barriers (see tests).

    >>> trace = Trace(repro.current_world())
    >>> with trace:
    ...     sa[remote_index] = 1
    >>> trace.count(kind="put")
    1
    """

    def __init__(self, world: World):
        self.world = world
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._t0 = 0.0
        self._installed = False
        self._wrapper: _TracingConduit | None = None

    def _record(self, kind: str, src: int, dst: int, nbytes: int,
                detail: str = "") -> None:
        ev = TraceEvent(
            t=time.perf_counter() - self._t0, kind=kind, src=src,
            dst=dst, nbytes=nbytes, detail=detail,
        )
        with self._lock:
            self.events.append(ev)

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "Trace":
        if self._installed:
            raise RuntimeError("trace already active")
        self._t0 = time.perf_counter()
        self._wrapper = _TracingConduit(self.world.conduit, self)
        self.world.conduit = self._wrapper
        self._installed = True
        return self

    def __exit__(self, *exc) -> None:
        # Splice out *our* wrapper, wherever it now sits.  Popping
        # ``world.conduit._inner`` unconditionally would unwind whatever
        # decorator happens to be outermost — wrong if another layer was
        # installed inside the ``with`` block.  Idempotent: exiting twice
        # (e.g. after an exception already triggered cleanup) is a no-op.
        wrapper, self._wrapper = self._wrapper, None
        self._installed = False
        if wrapper is None:
            return
        node = self.world.conduit
        if node is wrapper:
            self.world.conduit = wrapper._inner
            return
        while node is not None:
            inner = getattr(node, "_inner", None)
            if inner is wrapper:
                node._inner = wrapper._inner
                return
            node = inner
        # Wrapper no longer in the chain (someone else removed it): done.

    # -- queries ---------------------------------------------------------------
    def select(self, kind: str | None = None, src: int | None = None,
               dst: int | None = None) -> Iterator[TraceEvent]:
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if src is not None and ev.src != src:
                continue
            if dst is not None and ev.dst != dst:
                continue
            yield ev

    def count(self, **kw) -> int:
        return sum(1 for _ in self.select(**kw))

    def bytes(self, **kw) -> int:
        return sum(ev.nbytes for ev in self.select(**kw))

    def matrix(self, kind: str | None = None) -> np.ndarray:
        """The (src, dst) message-count matrix — the classic comm heatmap."""
        n = self.world.n_ranks
        m = np.zeros((n, n), dtype=np.int64)
        for ev in self.select(kind=kind):
            m[ev.src, ev.dst] += 1
        return m

    def partners(self, rank: int) -> set[int]:
        """Every rank this rank initiated an operation towards."""
        return {ev.dst for ev in self.select(src=rank)}
