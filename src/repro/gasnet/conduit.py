"""Conduit interface — what a network must provide to the UPC++ runtime.

A conduit moves bytes and active messages between ranks.  Its contracts:

* ``rma_put``/``rma_get``/``rma_atomic`` are **one-sided**: they complete
  without the target executing any code (RDMA semantics).
* ``send_am`` is **asynchronous**: delivery enqueues the message at the
  target; execution happens at the target's next progress call.
* Point-to-point AM ordering between a fixed (src, dst) pair is FIFO —
  the guarantee GASNet provides and the runtime relies on.
* ``rma_put_indexed``/``rma_get_indexed``/``rma_atomic_batch`` are the
  **indexed bulk** primitives behind the batched RMA engine: one call
  moves/updates a whole vector of same-rank elements.  The base class
  supplies a generic per-element fallback, so every conduit supports
  them; conduits able to do better (the SMP conduit's fancy-indexed
  single-lock implementation) override them.

The FIFO and exactly-once guarantees are what the *runtime* relies on;
a conduit that cannot provide them natively (e.g.
:class:`~repro.gasnet.chaos.ChaosConduit`, which drops/duplicates/
reorders and raises :class:`~repro.errors.TransientCommError` from RMA)
must be wrapped in :class:`~repro.gasnet.reliability.ReliableConduit`,
which restores the contract with sequence numbers, acks/retransmit,
bounded RMA retry, and op-id-guarded exactly-once atomics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.gasnet.am import ActiveMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.world import World


@dataclass(frozen=True)
class ConduitCaps:
    """Capability flags a conduit advertises to the runtime and to tests.

    The backend factory (:mod:`repro.gasnet.backends`) and the fault
    wrappers consult these instead of isinstance checks, so new backends
    compose with the existing stack by declaring what they can do.
    """

    #: Ranks live in separate OS processes: objects cannot be shared by
    #: reference across the conduit, and per-process state (handler
    #: interning, telemetry rings) is not globally visible.
    cross_process: bool = False
    #: :func:`repro.die` produces a detectable rank death on this
    #: backend (thread simulation or a real process exit).
    supports_kill_rank: bool = True
    #: Chaos/delay fault injection can hook delivery in-process.  False
    #: for cross-process transports, where the wrapper would only see
    #: one rank's side of the wire.
    in_process_hooks: bool = True
    #: RMA reads/writes the target segment with no serialization and no
    #: intermediate copy beyond the transfer itself.
    zero_copy_rma: bool = True
    #: spmd() must go through the process launcher: the conduit cannot
    #: be instantiated standalone in the calling process.
    needs_launcher: bool = False
    #: Active messages travel through shared-memory SPSC rings with
    #: sender-side aggregation (:mod:`repro.gasnet.ring`) instead of a
    #: kernel transport.
    shm_rings: bool = False


class Conduit(abc.ABC):
    """Abstract network conduit."""

    world: "World | None" = None
    #: Default capability set (in-process, full-featured); backends
    #: override the class attribute, wrappers forward the inner one.
    caps: ConduitCaps = ConduitCaps()

    def attach(self, world: "World") -> None:
        """Bind the conduit to a world (called by the world constructor)."""
        self.world = world

    def close(self) -> None:
        """Release conduit resources (threads, buffers) at world teardown.

        Called by :func:`repro.spmd` after all ranks joined; the default
        is a no-op so simple conduits need not define it.
        """

    # -- shared send-path helpers ----------------------------------------
    def _rank(self, r: int):
        from repro.errors import PgasError

        if self.world is None:
            raise PgasError("conduit not attached to a world")
        if not 0 <= r < self.world.n_ranks:
            raise PgasError(
                f"rank {r} out of range [0, {self.world.n_ranks})"
            )
        return self.world.ranks[r]

    def _encode_and_record(self, src: int, am: ActiveMessage):
        """Encode ``am`` into its wire frame and charge the sender's
        stats.  Every conduit send path (smp, proc, chaos, delay)
        funnels through here so the frame exists before delivery and the
        fixed-layout hit rate is observable."""
        from repro.gasnet.wire import encode_am

        rank = self._rank(src)
        frame = encode_am(am, rank.telemetry)
        rank.stats.record_am_wire(
            frame.nbytes, frame.used_pickle, frame.has_refs,
            am.is_reply)
        return frame

    def deliver_encoded(self, src: int, dst: int,
                        am: ActiveMessage) -> None:
        """Transport an AM whose frame was already encoded and whose
        stats were already recorded.

        This is the raw delivery primitive the fault wrappers
        (:class:`~repro.gasnet.chaos.ChaosConduit`,
        :class:`~repro.gasnet.delay.DelayConduit`) use: they do the
        encode/record once per *send decision* and then hand zero, one,
        or two copies of the message to the backend without re-charging
        the sender's counters.  The default simply re-enters
        :meth:`send_am`."""
        self.send_am(src, dst, am)

    # -- active messages ------------------------------------------------
    @abc.abstractmethod
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        """Deliver ``am`` into rank ``dst``'s inbox."""

    # -- one-sided RMA ---------------------------------------------------
    @abc.abstractmethod
    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        """Write ``data`` into ``dst``'s segment at ``offset``."""

    @abc.abstractmethod
    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        """Read ``count`` elements of ``dtype`` from ``dst``'s segment."""

    @abc.abstractmethod
    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        """Atomically read-modify-write one element; returns old value."""

    # -- indexed bulk RMA (batched engine) -------------------------------
    #
    # ``elem_offsets`` is an int64 array of *element* offsets relative to
    # byte offset ``base`` in ``dst``'s segment: element k lives at byte
    # ``base + elem_offsets[k] * dtype.itemsize``.  The defaults below
    # loop over the scalar primitives so any conduit works unmodified.

    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets: np.ndarray, data: np.ndarray) -> None:
        """Scatter ``data[k]`` to element offset ``elem_offsets[k]``."""
        data = np.ascontiguousarray(data)
        itemsize = data.dtype.itemsize
        for off, val in zip(np.asarray(elem_offsets, dtype=np.int64), data):
            self.rma_put(src, dst, base + int(off) * itemsize,
                         np.asarray([val], dtype=data.dtype))

    def rma_get_indexed(self, src: int, dst: int, base: int,
                        dtype: np.dtype, elem_offsets: np.ndarray
                        ) -> np.ndarray:
        """Gather the elements at ``elem_offsets`` into a new array."""
        dtype = np.dtype(dtype)
        idx = np.asarray(elem_offsets, dtype=np.int64)
        out = np.empty(idx.size, dtype=dtype)
        for k, off in enumerate(idx):
            out[k] = self.rma_get(
                src, dst, base + int(off) * dtype.itemsize, dtype, 1
            )[0]
        return out

    def rma_atomic_batch(self, src: int, dst: int, base: int,
                         dtype: np.dtype, elem_offsets: np.ndarray,
                         op, operands, return_old: bool = False):
        """Read-modify-write every element of ``elem_offsets``.

        ``op`` is an op name (``"xor"``, ``"add"``, ...) or a scalar
        callable; ``operands`` broadcasts against ``elem_offsets``.
        Elements are updated atomically; the batch as a whole need not
        be.  Returns the old values when ``return_old`` is true.
        """
        from repro.gasnet.atomics import resolve_scalar

        fn = resolve_scalar(op)
        dtype = np.dtype(dtype)
        idx = np.asarray(elem_offsets, dtype=np.int64)
        ops = np.broadcast_to(np.asarray(operands, dtype=dtype), idx.shape)
        old = np.empty(idx.size, dtype=dtype)
        for k, off in enumerate(idx):
            old[k] = self.rma_atomic(
                src, dst, base + int(off) * dtype.itemsize, dtype, fn, ops[k]
            )
        return old if return_old else None
