"""Conduit interface — what a network must provide to the UPC++ runtime.

A conduit moves bytes and active messages between ranks.  Its contracts:

* ``rma_put``/``rma_get``/``rma_atomic`` are **one-sided**: they complete
  without the target executing any code (RDMA semantics).
* ``send_am`` is **asynchronous**: delivery enqueues the message at the
  target; execution happens at the target's next progress call.
* Point-to-point AM ordering between a fixed (src, dst) pair is FIFO —
  the guarantee GASNet provides and the runtime relies on.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.gasnet.am import ActiveMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.world import World


class Conduit(abc.ABC):
    """Abstract network conduit."""

    world: "World | None" = None

    def attach(self, world: "World") -> None:
        """Bind the conduit to a world (called by the world constructor)."""
        self.world = world

    # -- active messages ------------------------------------------------
    @abc.abstractmethod
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        """Deliver ``am`` into rank ``dst``'s inbox."""

    # -- one-sided RMA ---------------------------------------------------
    @abc.abstractmethod
    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        """Write ``data`` into ``dst``'s segment at ``offset``."""

    @abc.abstractmethod
    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        """Read ``count`` elements of ``dtype`` from ``dst``'s segment."""

    @abc.abstractmethod
    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        """Atomically read-modify-write one element; returns old value."""
