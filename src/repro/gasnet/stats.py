"""Per-rank communication counters.

Every conduit operation is recorded here.  The counters serve three
purposes:

1. tests can assert *communication patterns* (e.g. one ghost exchange
   issues exactly six messages per rank per timestep);
2. :mod:`repro.sim.calibrate` converts measured per-op software overheads
   into machine-model parameters;
3. the bench harness reports traffic alongside timings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class CommStats:
    """Mutable counters for one rank. Thread-safe via an internal lock."""

    puts: int = 0
    put_bytes: int = 0
    gets: int = 0
    get_bytes: int = 0
    atomics: int = 0
    # Batched (indexed) RMA: one conduit op covering many elements.
    puts_indexed: int = 0
    gets_indexed: int = 0
    atomic_batches: int = 0
    batched_elements: int = 0
    ams_sent: int = 0
    am_bytes: int = 0
    ams_handled: int = 0
    replies_sent: int = 0
    barriers: int = 0
    collectives: int = 0
    # Tree-collectives engine (repro.core.coll_engine): point-to-point
    # AMs issued on behalf of collectives (subset of ams_sent).
    coll_msgs: int = 0
    local_accesses: int = 0
    remote_accesses: int = 0
    # Reliability layer (repro.gasnet.reliability): retries, duplicate
    # suppression, acks, deadline expiries, liveness probes.
    am_retransmits: int = 0
    dup_ams: int = 0
    acks_sent: int = 0
    rma_retries: int = 0
    op_timeouts: int = 0
    stale_replies: int = 0
    heartbeats_sent: int = 0
    # Chaos conduit (repro.gasnet.chaos): injected failures.
    chaos_drops: int = 0
    chaos_dups: int = 0
    chaos_reorders: int = 0
    chaos_faults: int = 0
    # Distributed containers (repro.containers): per-key op counts and
    # the multi-op coalescing/caching counters.
    kv_gets: int = 0
    kv_puts: int = 0
    kv_deletes: int = 0
    kv_updates: int = 0
    kv_multi_ops: int = 0
    kv_batched_keys: int = 0
    kv_cache_hits: int = 0
    kv_cache_misses: int = 0
    # Replication / failover (repro.containers.hashmap + reliability):
    # backup-log records shipped, client-side failovers, owner-side
    # backup promotions, reads served from a replica, live shard
    # migrations, and sends refused because the peer is already dead.
    kv_repl_records: int = 0
    kv_failovers: int = 0
    kv_promotions: int = 0
    kv_replica_reads: int = 0
    kv_migrations: int = 0
    dead_peer_fastfails: int = 0
    # Wire layer (repro.gasnet.wire): frames encoded, how many stayed on
    # the fixed-layout/struct fast path vs. fell back to pickle, and how
    # many carried by-reference (unserializable) objects.
    wire_frames: int = 0
    wire_fixed: int = 0
    pickle_fallbacks: int = 0
    wire_byref: int = 0
    # Shared-memory ring transport (repro.gasnet.proc, ring mode): slots
    # published, frames carried, frames that rode an aggregated flush
    # (coalesced with at least one other frame), flushes that used the
    # OOB spill region, full-ring backoff iterations on the sender,
    # doorbells rung at parked receivers, and receiver doorbell wakeups.
    wire_ring_slots: int = 0
    wire_ring_frames: int = 0
    wire_ring_agg_frames: int = 0
    wire_ring_spills: int = 0
    wire_ring_full_backoffs: int = 0
    wire_ring_doorbells: int = 0
    wire_ring_wakeups: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_put(self, nbytes: int) -> None:
        with self._lock:
            self.puts += 1
            self.put_bytes += nbytes
            self.remote_accesses += 1

    def record_get(self, nbytes: int) -> None:
        with self._lock:
            self.gets += 1
            self.get_bytes += nbytes
            self.remote_accesses += 1

    def record_atomic(self) -> None:
        with self._lock:
            self.atomics += 1
            self.remote_accesses += 1

    # Batched ops count once as a conduit operation but per-element as
    # remote accesses, so access-locality metrics (e.g. GUPS
    # remote_fraction) stay comparable across batched and scalar paths.
    def record_put_indexed(self, count: int, nbytes: int) -> None:
        with self._lock:
            self.puts_indexed += 1
            self.put_bytes += nbytes
            self.batched_elements += count
            self.remote_accesses += count

    def record_get_indexed(self, count: int, nbytes: int) -> None:
        with self._lock:
            self.gets_indexed += 1
            self.get_bytes += nbytes
            self.batched_elements += count
            self.remote_accesses += count

    def record_atomic_batch(self, count: int) -> None:
        with self._lock:
            self.atomic_batches += 1
            self.batched_elements += count
            self.remote_accesses += count

    def record_am(self, nbytes: int) -> None:
        with self._lock:
            self.ams_sent += 1
            self.am_bytes += nbytes

    def record_am_handled(self) -> None:
        with self._lock:
            self.ams_handled += 1

    def record_reply(self) -> None:
        with self._lock:
            self.replies_sent += 1

    def record_barrier(self) -> None:
        with self._lock:
            self.barriers += 1

    def record_collective(self) -> None:
        with self._lock:
            self.collectives += 1

    def record_coll_msg(self) -> None:
        with self._lock:
            self.coll_msgs += 1

    def record_local(self, count: int = 1) -> None:
        with self._lock:
            self.local_accesses += count

    # -- reliability layer ------------------------------------------------
    def record_am_retransmit(self) -> None:
        with self._lock:
            self.am_retransmits += 1

    def record_dup_am(self) -> None:
        with self._lock:
            self.dup_ams += 1

    def record_ack(self) -> None:
        with self._lock:
            self.acks_sent += 1

    def record_rma_retry(self) -> None:
        with self._lock:
            self.rma_retries += 1

    def record_op_timeout(self) -> None:
        with self._lock:
            self.op_timeouts += 1

    def record_stale_reply(self) -> None:
        with self._lock:
            self.stale_replies += 1

    def record_heartbeat(self) -> None:
        with self._lock:
            self.heartbeats_sent += 1

    # -- chaos conduit ----------------------------------------------------
    def record_chaos_drop(self, count: int = 1) -> None:
        with self._lock:
            self.chaos_drops += count

    def record_chaos_dup(self) -> None:
        with self._lock:
            self.chaos_dups += 1

    def record_chaos_reorder(self) -> None:
        with self._lock:
            self.chaos_reorders += 1

    def record_chaos_fault(self) -> None:
        with self._lock:
            self.chaos_faults += 1

    # -- distributed containers -------------------------------------------
    def record_kv_get(self, count: int = 1) -> None:
        with self._lock:
            self.kv_gets += count

    def record_kv_put(self, count: int = 1) -> None:
        with self._lock:
            self.kv_puts += count

    def record_kv_delete(self, count: int = 1) -> None:
        with self._lock:
            self.kv_deletes += count

    def record_kv_update(self) -> None:
        with self._lock:
            self.kv_updates += 1

    def record_kv_multi(self, ams: int, nkeys: int) -> None:
        """One ``multi_get``/``multi_put`` that coalesced ``nkeys``
        remote keys into ``ams`` owner-targeted active messages."""
        with self._lock:
            self.kv_multi_ops += ams
            self.kv_batched_keys += nkeys

    def record_kv_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.kv_cache_hits += 1
            else:
                self.kv_cache_misses += 1

    # -- replication / failover -------------------------------------------
    def record_kv_repl(self, nrecords: int = 1) -> None:
        with self._lock:
            self.kv_repl_records += nrecords

    def record_kv_failover(self) -> None:
        with self._lock:
            self.kv_failovers += 1

    def record_kv_promotion(self) -> None:
        with self._lock:
            self.kv_promotions += 1

    def record_kv_replica_read(self) -> None:
        with self._lock:
            self.kv_replica_reads += 1

    def record_kv_migration(self) -> None:
        with self._lock:
            self.kv_migrations += 1

    def record_dead_peer_fastfail(self) -> None:
        with self._lock:
            self.dead_peer_fastfails += 1

    # -- wire layer --------------------------------------------------------
    def record_wire(self, used_pickle: bool, by_ref: bool) -> None:
        """One encoded frame; ``used_pickle`` when any part of it fell
        back to pickle, ``by_ref`` when it carried by-reference objects
        (shared-memory semantics, never serialized)."""
        with self._lock:
            self.wire_frames += 1
            if used_pickle:
                self.pickle_fallbacks += 1
            else:
                self.wire_fixed += 1
            if by_ref:
                self.wire_byref += 1

    def record_am_wire(self, nbytes: int, used_pickle: bool,
                       by_ref: bool, is_reply: bool = False) -> None:
        """Fused :meth:`record_am` + :meth:`record_wire` (+
        :meth:`record_reply` when the frame is a reply): one lock
        round-trip on the per-message send path instead of two or
        three."""
        with self._lock:
            self.ams_sent += 1
            self.am_bytes += nbytes
            if is_reply:
                self.replies_sent += 1
            self.wire_frames += 1
            if used_pickle:
                self.pickle_fallbacks += 1
            else:
                self.wire_fixed += 1
            if by_ref:
                self.wire_byref += 1

    # -- shared-memory ring transport --------------------------------------
    def record_ring_flush(self, slots: int, frames: int,
                          spilled: bool) -> None:
        """One published flush: ``slots`` ring slots carrying ``frames``
        wire frames (frames > 1 means aggregation coalesced sends)."""
        with self._lock:
            self.wire_ring_slots += slots
            self.wire_ring_frames += frames
            if frames > 1:
                self.wire_ring_agg_frames += frames
            if spilled:
                self.wire_ring_spills += 1

    def record_ring_backoff(self) -> None:
        with self._lock:
            self.wire_ring_full_backoffs += 1

    def record_ring_doorbell(self) -> None:
        with self._lock:
            self.wire_ring_doorbells += 1

    def record_ring_wakeup(self) -> None:
        with self._lock:
            self.wire_ring_wakeups += 1

    # ------------------------------------------------------------------
    # Derived properties read several counters that a concurrent
    # record_* may be mid-update on, so they all go through snapshot()
    # (one consistent locked copy) instead of reading fields directly.
    @property
    def messages(self) -> int:
        """Total injected network operations (RMA + AMs + replies)."""
        s = self.snapshot()
        return (s["puts"] + s["gets"] + s["atomics"] + s["ams_sent"]
                + s["puts_indexed"] + s["gets_indexed"]
                + s["atomic_batches"])

    @property
    def batched_ops(self) -> int:
        """Indexed bulk conduit operations (each covers many elements)."""
        s = self.snapshot()
        return s["puts_indexed"] + s["gets_indexed"] + s["atomic_batches"]

    @property
    def coalescing_ratio(self) -> float:
        """Average elements carried per batched operation (0.0 when no
        batched ops were issued) — how many scalar accesses each batch
        replaced.  Covers both indexed RMA (elements per conduit op) and
        container multi-ops (remote keys per owner-targeted AM)."""
        s = self.snapshot()
        ops = (s["puts_indexed"] + s["gets_indexed"] + s["atomic_batches"]
               + s["kv_multi_ops"])
        if not ops:
            return 0.0
        return (s["batched_elements"] + s["kv_batched_keys"]) / ops

    @property
    def wire_fixed_rate(self) -> float:
        """Fraction of encoded frames that avoided pickle entirely (0.0
        when no frames were encoded)."""
        s = self.snapshot()
        return s["wire_fixed"] / s["wire_frames"] if s["wire_frames"] else 0.0

    @property
    def kv_cache_hit_rate(self) -> float:
        """Fraction of cacheable container reads served locally (0.0
        when the cache saw no traffic)."""
        s = self.snapshot()
        total = s["kv_cache_hits"] + s["kv_cache_misses"]
        return s["kv_cache_hits"] / total if total else 0.0

    @property
    def bytes_moved(self) -> int:
        s = self.snapshot()
        return s["put_bytes"] + s["get_bytes"] + s["am_bytes"]

    def snapshot(self) -> dict:
        """An immutable copy of the counters (plain dict)."""
        with self._lock:
            return {
                "puts": self.puts,
                "put_bytes": self.put_bytes,
                "gets": self.gets,
                "get_bytes": self.get_bytes,
                "atomics": self.atomics,
                "puts_indexed": self.puts_indexed,
                "gets_indexed": self.gets_indexed,
                "atomic_batches": self.atomic_batches,
                "batched_elements": self.batched_elements,
                "ams_sent": self.ams_sent,
                "am_bytes": self.am_bytes,
                "ams_handled": self.ams_handled,
                "replies_sent": self.replies_sent,
                "barriers": self.barriers,
                "collectives": self.collectives,
                "coll_msgs": self.coll_msgs,
                "local_accesses": self.local_accesses,
                "remote_accesses": self.remote_accesses,
                "am_retransmits": self.am_retransmits,
                "dup_ams": self.dup_ams,
                "acks_sent": self.acks_sent,
                "rma_retries": self.rma_retries,
                "op_timeouts": self.op_timeouts,
                "stale_replies": self.stale_replies,
                "heartbeats_sent": self.heartbeats_sent,
                "chaos_drops": self.chaos_drops,
                "chaos_dups": self.chaos_dups,
                "chaos_reorders": self.chaos_reorders,
                "chaos_faults": self.chaos_faults,
                "kv_gets": self.kv_gets,
                "kv_puts": self.kv_puts,
                "kv_deletes": self.kv_deletes,
                "kv_updates": self.kv_updates,
                "kv_multi_ops": self.kv_multi_ops,
                "kv_batched_keys": self.kv_batched_keys,
                "kv_cache_hits": self.kv_cache_hits,
                "kv_cache_misses": self.kv_cache_misses,
                "kv_repl_records": self.kv_repl_records,
                "kv_failovers": self.kv_failovers,
                "kv_promotions": self.kv_promotions,
                "kv_replica_reads": self.kv_replica_reads,
                "kv_migrations": self.kv_migrations,
                "dead_peer_fastfails": self.dead_peer_fastfails,
                "wire_frames": self.wire_frames,
                "wire_fixed": self.wire_fixed,
                "pickle_fallbacks": self.pickle_fallbacks,
                "wire_byref": self.wire_byref,
                "wire_ring_slots": self.wire_ring_slots,
                "wire_ring_frames": self.wire_ring_frames,
                "wire_ring_agg_frames": self.wire_ring_agg_frames,
                "wire_ring_spills": self.wire_ring_spills,
                "wire_ring_full_backoffs": self.wire_ring_full_backoffs,
                "wire_ring_doorbells": self.wire_ring_doorbells,
                "wire_ring_wakeups": self.wire_ring_wakeups,
            }

    def reset(self) -> None:
        with self._lock:
            self.puts = self.put_bytes = 0
            self.gets = self.get_bytes = 0
            self.atomics = 0
            self.puts_indexed = self.gets_indexed = 0
            self.atomic_batches = self.batched_elements = 0
            self.ams_sent = self.am_bytes = 0
            self.ams_handled = self.replies_sent = 0
            self.barriers = self.collectives = self.coll_msgs = 0
            self.local_accesses = self.remote_accesses = 0
            self.am_retransmits = self.dup_ams = self.acks_sent = 0
            self.rma_retries = self.op_timeouts = self.stale_replies = 0
            self.heartbeats_sent = 0
            self.chaos_drops = self.chaos_dups = 0
            self.chaos_reorders = self.chaos_faults = 0
            self.kv_gets = self.kv_puts = 0
            self.kv_deletes = self.kv_updates = 0
            self.kv_multi_ops = self.kv_batched_keys = 0
            self.kv_cache_hits = self.kv_cache_misses = 0
            self.kv_repl_records = self.kv_failovers = 0
            self.kv_promotions = self.kv_replica_reads = 0
            self.kv_migrations = self.dead_peer_fastfails = 0
            self.wire_frames = self.wire_fixed = 0
            self.pickle_fallbacks = self.wire_byref = 0
            self.wire_ring_slots = self.wire_ring_frames = 0
            self.wire_ring_agg_frames = self.wire_ring_spills = 0
            self.wire_ring_full_backoffs = 0
            self.wire_ring_doorbells = self.wire_ring_wakeups = 0


def aggregate(stats: list[CommStats]) -> dict:
    """Sum a list of per-rank snapshots into one dict."""
    total: dict[str, int] = {}
    for s in stats:
        for k, v in s.snapshot().items():
            total[k] = total.get(k, 0) + v
    return total
