"""A lossy, failing conduit for reliability hardening.

:class:`DelayConduit` scrambles message *timing*; :class:`ChaosConduit`
breaks the transport's *contract*.  Under a seeded RNG it

* **drops** active messages (silently — the classic lost packet),
* **duplicates** them (at-least-once delivery),
* **reorders** adjacent messages of the same (src, dst) pair, violating
  the pairwise-FIFO guarantee GASNet normally provides,
* raises :class:`~repro.errors.TransientCommError` from the one-sided
  RMA primitives (``rma_put``/``rma_get``/``rma_atomic`` and the indexed
  bulk ops) — either *before* the operation applies (nothing happened)
  or *after* it applied (the completion was lost, the dangerous case for
  non-idempotent atomics),
* can sever one rank's connectivity mid-run (:meth:`kill_rank`): all
  traffic to and from that rank is black-holed.

The runtime's constructs assume reliable FIFO delivery and would corrupt
state or deadlock directly on this conduit; the point is to run them
through :class:`~repro.gasnet.reliability.ReliableConduit` wrapped around
this one and prove the stack survives.  Injected events are counted in
:class:`~repro.gasnet.stats.CommStats` (``chaos_drops``/``chaos_dups``/
``chaos_reorders``/``chaos_faults``) and reported to an active
:class:`~repro.gasnet.trace.Trace`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.errors import PgasError, TransientCommError
from repro.gasnet.am import ActiveMessage
from repro.gasnet.conduit import Conduit


class ChaosConduit(Conduit):
    """Conduit wrapper + seeded drop/dup/reorder/fault/partition injection.

    Wraps any in-process backend (default: a fresh
    :class:`~repro.gasnet.smp.SmpConduit`), doing the fault roll once per
    *send decision* and handing the survivors to the inner conduit's
    :meth:`~repro.gasnet.conduit.Conduit.deliver_encoded`.  Requires
    ``inner.caps.in_process_hooks``: chaos injection needs one process-
    wide view of the wire (a cross-process backend would let each rank
    roll its own divergent fault schedule).

    Parameters
    ----------
    inner:
        The transport to break; ``None`` builds an SMP conduit.
    seed:
        RNG seed; a fixed seed gives a reproducible fault *mix* (exact
        interleaving still depends on thread scheduling).
    am_drop_rate, am_dup_rate, am_reorder_rate:
        Per-message probabilities of dropping, duplicating, or holding a
        message back past its successor (pairwise-FIFO violation).
    rma_fault_rate:
        Per-operation probability that an RMA primitive raises
        :class:`TransientCommError`; half the faults fire *after* the
        operation applied at the target.
    """

    def __init__(self, inner: Conduit | None = None, seed: int = 0,
                 am_drop_rate: float = 0.0,
                 am_dup_rate: float = 0.0, am_reorder_rate: float = 0.0,
                 rma_fault_rate: float = 0.0):
        if inner is None:
            from repro.gasnet.smp import SmpConduit

            inner = SmpConduit()
        if not inner.caps.in_process_hooks:
            raise PgasError(
                f"ChaosConduit needs an in-process backend "
                f"(inner {type(inner).__name__} has "
                f"in_process_hooks=False)"
            )
        self._inner = inner
        self.world = None
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None
        self.am_drop_rate = float(am_drop_rate)
        self.am_dup_rate = float(am_dup_rate)
        self.am_reorder_rate = float(am_reorder_rate)
        self.rma_fault_rate = float(rma_fault_rate)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._chaos_lock = threading.Lock()
        #: Bounded trace of every injected fault, ``(t_rel, kind, src,
        #: dst, detail)`` with ``t_rel`` seconds since construction —
        #: together with :attr:`seed` this is the run's *fault schedule*
        #: (what was injected, when, to whom), exportable via
        #: :meth:`fault_schedule` for post-mortem replay/diagnosis.
        self.fault_log: deque[tuple[float, str, int, int, str]] = (
            deque(maxlen=4096)
        )
        self._t0 = time.monotonic()
        # perf_counter epoch taken at the same instant as _t0, so the
        # monotonic-relative fault log can be rebased onto the flight
        # recorder's perf_counter timeline (see fault_events()).
        self._t0_perf = time.perf_counter()
        #: One held-back message per (src, dst) pair, delivered *after*
        #: the next message to the pair — a pairwise-FIFO violation.
        self._held: dict[tuple[int, int], ActiveMessage] = {}
        self._killed: set[int] = set()

    # -- lifecycle / capability forwarding ---------------------------------
    @property
    def caps(self):
        return self._inner.caps

    def attach(self, world) -> None:
        self.world = world
        self._inner.attach(world)

    def close(self) -> None:
        self._inner.close()

    # -- failure control ---------------------------------------------------
    def kill_rank(self, rank: int) -> None:
        """Sever ``rank``'s connectivity: every AM and RMA to or from it
        is dropped/raises from now on (the rank's thread keeps running —
        it is partitioned, not stopped)."""
        with self._chaos_lock:
            self._killed.add(rank)
            self._held = {
                k: v for k, v in self._held.items()
                if rank not in k
            }
        self._log_fault("chaos_kill", rank, rank, "partitioned")
        self._trace_control("chaos_kill", rank, rank, detail="partitioned")

    def is_killed(self, rank: int) -> bool:
        with self._chaos_lock:
            return rank in self._killed

    # -- helpers -----------------------------------------------------------
    def _log_fault(self, kind: str, src: int, dst: int,
                   detail: str = "") -> None:
        self.fault_log.append(
            (time.monotonic() - self._t0, kind, src, dst, detail)
        )

    def fault_schedule(self) -> dict:
        """The run's injected-fault trace: ``{"seed", "faults"}`` where
        ``faults`` is a list of ``(t_rel, kind, src, dst, detail)``
        records (bounded to the most recent 4096)."""
        return {"seed": self.seed, "faults": list(self.fault_log)}

    def fault_events(self) -> list:
        """The fault schedule as flight-recorder events (``chaos_*``
        instants on the perf_counter timeline), ready to splice into a
        merged flight dump — injected faults then appear inline between
        the runtime events they caused."""
        from repro.telemetry.flight import FlightEvent

        return [
            FlightEvent(t=self._t0_perf + t_rel,
                        rank=src if src >= 0 else dst,
                        kind=kind, src=src, dst=dst, detail=detail)
            for (t_rel, kind, src, dst, detail) in self.fault_log
        ]

    def _trace_control(self, kind: str, src: int, dst: int,
                       nbytes: int = 0, detail: str = "") -> None:
        hook = None
        if self.world is not None:
            hook = getattr(self.world.conduit, "trace_control", None)
        if hook is not None:
            try:
                hook(kind, src, dst, nbytes, detail)
            except Exception:  # tracing must never break the transport
                pass

    def _fault_point(self, kind: str, src: int, dst: int) -> str | None:
        """Roll the RMA fault dice; returns None | "pre" | "post".

        Raises immediately when either endpoint is partitioned.
        """
        with self._chaos_lock:
            if src in self._killed or dst in self._killed:
                bad = dst if dst in self._killed else src
                raise TransientCommError(
                    f"chaos: rank {bad} unreachable ({kind} {src}->{dst})"
                )
            if float(self._rng.random()) >= self.rma_fault_rate:
                return None
            when = "pre" if float(self._rng.random()) < 0.5 else "post"
        self._rank(src).stats.record_chaos_fault()
        self._log_fault("chaos_fault", src, dst, f"{kind}:{when}")
        self._trace_control("chaos_fault", src, dst, detail=f"{kind}:{when}")
        return when

    def _raise_fault(self, kind: str, src: int, dst: int, when: str):
        raise TransientCommError(
            f"chaos: transient {kind} fault {src}->{dst} ({when}-completion)"
        )

    # -- active messages ---------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        self._encode_and_record(src, am)
        if src == dst:  # loopback is reliable on any real transport
            self._inner.deliver_encoded(src, dst, am)
            return
        to_deliver: list[ActiveMessage] = []
        dropped = duplicated = held_now = False
        with self._chaos_lock:
            held_prev = self._held.pop((src, dst), None)
            if src in self._killed or dst in self._killed:
                dropped = True
                held_prev = None  # partitioned: the held message dies too
            else:
                r_drop, r_dup, r_hold = (
                    float(self._rng.random()) for _ in range(3)
                )
                if r_drop < self.am_drop_rate:
                    dropped = True
                elif held_prev is None and r_hold < self.am_reorder_rate:
                    self._held[(src, dst)] = am
                    held_now = True
                else:
                    to_deliver.append(am)
                    if r_dup < self.am_dup_rate:
                        to_deliver.append(am)
                        duplicated = True
            if held_prev is not None:
                to_deliver.append(held_prev)  # after its successor: reorder
        if dropped:
            self._rank(src).stats.record_chaos_drop()
            self._log_fault("chaos_drop", src, dst, am.handler)
            self._trace_control("chaos_drop", src, dst, am.wire_bytes,
                                detail=am.handler)
        if duplicated:
            self._rank(src).stats.record_chaos_dup()
            self._log_fault("chaos_dup", src, dst, am.handler)
            self._trace_control("chaos_dup", src, dst, am.wire_bytes,
                                detail=am.handler)
        if held_now:
            self._rank(src).stats.record_chaos_reorder()
            self._log_fault("chaos_reorder", src, dst, am.handler)
            self._trace_control("chaos_reorder", src, dst, am.wire_bytes,
                                detail=am.handler)
        for m in to_deliver:
            self._inner.deliver_encoded(src, dst, m)

    # -- one-sided RMA -----------------------------------------------------
    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        when = self._fault_point("put", src, dst)
        if when == "pre":
            self._raise_fault("put", src, dst, when)
        self._inner.rma_put(src, dst, offset, data)
        if when == "post":
            self._raise_fault("put", src, dst, when)

    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        when = self._fault_point("get", src, dst)
        if when == "pre":
            self._raise_fault("get", src, dst, when)
        out = self._inner.rma_get(src, dst, offset, dtype, count)
        if when == "post":
            self._raise_fault("get", src, dst, when)
        return out

    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        when = self._fault_point("atomic", src, dst)
        if when == "pre":
            self._raise_fault("atomic", src, dst, when)
        old = self._inner.rma_atomic(src, dst, offset, dtype, op, operand)
        if when == "post":
            # The update applied; the "completion" is lost.  A naive
            # retry would double-apply — exactly what the reliability
            # layer's op-id guard must prevent.
            self._raise_fault("atomic", src, dst, when)
        return old

    # -- indexed bulk RMA --------------------------------------------------
    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets: np.ndarray, data: np.ndarray) -> None:
        when = self._fault_point("put_indexed", src, dst)
        if when == "pre":
            self._raise_fault("put_indexed", src, dst, when)
        self._inner.rma_put_indexed(src, dst, base, elem_offsets, data)
        if when == "post":
            self._raise_fault("put_indexed", src, dst, when)

    def rma_get_indexed(self, src: int, dst: int, base: int,
                        dtype: np.dtype, elem_offsets: np.ndarray
                        ) -> np.ndarray:
        when = self._fault_point("get_indexed", src, dst)
        if when == "pre":
            self._raise_fault("get_indexed", src, dst, when)
        out = self._inner.rma_get_indexed(src, dst, base, dtype, elem_offsets)
        if when == "post":
            self._raise_fault("get_indexed", src, dst, when)
        return out

    def rma_atomic_batch(self, src: int, dst: int, base: int,
                         dtype: np.dtype, elem_offsets: np.ndarray,
                         op, operands, return_old: bool = False):
        when = self._fault_point("atomic_batch", src, dst)
        if when == "pre":
            self._raise_fault("atomic_batch", src, dst, when)
        old = self._inner.rma_atomic_batch(
            src, dst, base, dtype, elem_offsets, op, operands, return_old
        )
        if when == "post":
            self._raise_fault("atomic_batch", src, dst, when)
        return old
