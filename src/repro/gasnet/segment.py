"""Per-rank registered memory segments.

A :class:`Segment` is the PGAS "shared heap" of one rank: a contiguous
NumPy byte buffer plus a first-fit free-list allocator.  Global pointers
(:class:`repro.core.global_ptr.GlobalPtr`) are (rank, byte-offset) pairs
into these segments, exactly like GASNet segment-fast addressing.

The segment is thread-safe: the owner thread and any peer performing
one-sided RMA take :attr:`Segment.lock` around raw accesses.  Locking per
access models the atomicity unit of real RDMA NICs (aligned word access);
we make the whole put/get atomic, which is strictly stronger and therefore
safe for the relaxed memory model in paper §III-F.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from repro.errors import BadPointer, SegmentOutOfMemory
from repro.gasnet.atomics import ATOMIC_UFUNCS, resolve_scalar

_ALIGN_DEFAULT = 8


def _align_up(x: int, align: int) -> int:
    return (x + align - 1) & ~(align - 1)


class Segment:
    """A byte-addressable shared-memory segment with its own allocator.

    Parameters
    ----------
    size:
        Segment capacity in bytes.
    rank:
        Owning rank (used only for error messages).
    buf:
        Optional externally owned storage (a writable ``uint8`` array of
        exactly ``size`` bytes).  The process conduit passes a NumPy view
        over a ``multiprocessing.shared_memory`` block here, so every
        process maps the *same* physical segment and RMA stays zero-copy
        across processes.  The caller guarantees initial contents
        (shared-memory blocks are zero-filled, matching the private
        ``np.zeros`` default).
    lock:
        Optional externally owned lock guarding raw access.  Must support
        the context-manager protocol and reentrancy; the process conduit
        passes a ``multiprocessing.RLock`` so atomics serialize across
        processes, not just across threads.
    """

    def __init__(self, size: int, rank: int = -1, buf: np.ndarray | None = None,
                 lock=None):
        if size <= 0:
            raise ValueError("segment size must be positive")
        self.size = int(size)
        self.rank = rank
        if buf is None:
            buf = np.zeros(self.size, dtype=np.uint8)
        else:
            buf = buf.view(np.uint8).reshape(-1)
            if buf.nbytes != self.size:
                raise ValueError(
                    f"external segment buffer is {buf.nbytes} bytes, "
                    f"expected {self.size}"
                )
        self.buf = buf
        self.lock = lock if lock is not None else threading.RLock()
        # Free list: sorted list of (offset, length) of free holes.
        self._free: list[tuple[int, int]] = [(0, self.size)]
        # Live allocations: offset -> length (as returned to caller).
        self._live: dict[int, int] = {}
        self._bytes_in_use = 0
        self._peak_in_use = 0

    # ------------------------------------------------------------------
    # allocator
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, align: int = _ALIGN_DEFAULT) -> int:
        """Allocate ``nbytes`` (first fit), returning the byte offset.

        Raises :class:`SegmentOutOfMemory` when no hole is large enough.
        Zero-byte allocations are legal and return a unique aligned offset
        backed by a 1-byte reservation (so ``free`` stays symmetrical).
        """
        if nbytes < 0:
            raise ValueError("negative allocation")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        request = max(int(nbytes), 1)
        with self.lock:
            for i, (off, length) in enumerate(self._free):
                start = _align_up(off, align)
                pad = start - off
                if pad + request > length:
                    continue
                # Split the hole: [off, off+pad) stays free (if non-empty),
                # [start, start+request) is allocated, remainder stays free.
                tail_off = start + request
                tail_len = length - pad - request
                repl: list[tuple[int, int]] = []
                if pad:
                    repl.append((off, pad))
                if tail_len:
                    repl.append((tail_off, tail_len))
                self._free[i : i + 1] = repl
                self._live[start] = request
                self._bytes_in_use += request
                self._peak_in_use = max(self._peak_in_use, self._bytes_in_use)
                return start
        raise SegmentOutOfMemory(
            f"rank {self.rank}: cannot allocate {nbytes} bytes "
            f"({self._bytes_in_use}/{self.size} in use)"
        )

    def free(self, offset: int) -> None:
        """Release an allocation previously returned by :meth:`alloc`."""
        with self.lock:
            length = self._live.pop(offset, None)
            if length is None:
                raise BadPointer(
                    f"rank {self.rank}: free of unallocated offset {offset}"
                )
            self._bytes_in_use -= length
            self._insert_hole(offset, length)

    def _insert_hole(self, offset: int, length: int) -> None:
        """Insert a hole into the sorted free list, coalescing neighbours."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (offset, length))
        # Coalesce with successor then predecessor.
        if lo + 1 < len(self._free):
            noff, nlen = self._free[lo + 1]
            if offset + length == noff:
                self._free[lo : lo + 2] = [(offset, length + nlen)]
        if lo > 0:
            poff, plen = self._free[lo - 1]
            off, ln = self._free[lo]
            if poff + plen == off:
                self._free[lo - 1 : lo + 1] = [(poff, plen + ln)]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    @property
    def peak_bytes_in_use(self) -> int:
        return self._peak_in_use

    @property
    def n_live_allocations(self) -> int:
        return len(self._live)

    def holes(self) -> Iterator[tuple[int, int]]:
        """Yield the current free holes (for allocator tests)."""
        with self.lock:
            yield from list(self._free)

    def allocation_size(self, offset: int) -> int:
        with self.lock:
            if offset not in self._live:
                raise BadPointer(f"offset {offset} is not a live allocation")
            return self._live[offset]

    # ------------------------------------------------------------------
    # raw access (used by the conduit / RMA layer)
    # ------------------------------------------------------------------
    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.size:
            raise BadPointer(
                f"rank {self.rank}: access [{offset}, {offset + nbytes}) "
                f"outside segment of {self.size} bytes"
            )

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` out of the segment (uint8 array)."""
        self._check_range(offset, nbytes)
        with self.lock:
            return self.buf[offset : offset + nbytes].copy()

    def write(self, offset: int, data: np.ndarray) -> None:
        """Copy a byte array into the segment."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        self._check_range(offset, raw.nbytes)
        with self.lock:
            self.buf[offset : offset + raw.size] = raw

    def typed_read(self, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
        """Copy ``count`` elements of ``dtype`` out of the segment."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self._check_range(offset, nbytes)
        with self.lock:
            raw = self.buf[offset : offset + nbytes].copy()
        return raw.view(dtype)

    def typed_write(self, offset: int, data: np.ndarray) -> None:
        """Copy a typed contiguous array into the segment."""
        arr = np.ascontiguousarray(data)
        self.write(offset, arr.view(np.uint8).reshape(-1))

    def view(self, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
        """A zero-copy typed view — owner-side access only.

        The caller must be the owning rank (PGAS semantics: casting a
        global pointer to a local pointer is only valid on the owner).
        Alignment of ``offset`` to ``dtype.itemsize`` is required because
        NumPy views cannot be misaligned.
        """
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self._check_range(offset, nbytes)
        if dtype.itemsize and offset % dtype.itemsize:
            raise BadPointer(
                f"offset {offset} misaligned for dtype {dtype} view"
            )
        return self.buf[offset : offset + nbytes].view(dtype)

    # ------------------------------------------------------------------
    # indexed (batched) access — the substrate of the batched RMA engine
    # ------------------------------------------------------------------
    def _indexed_view(self, base: int, dtype: np.dtype,
                      elem_offsets) -> tuple[np.ndarray, np.ndarray]:
        """A typed view covering all elements named by ``elem_offsets``
        (element indices relative to byte offset ``base``), plus the
        normalized index array.  Caller must hold :attr:`lock` while the
        view is alive."""
        dtype = np.dtype(dtype)
        idx = np.asarray(elem_offsets, dtype=np.int64).reshape(-1)
        if idx.size == 0:
            return np.empty(0, dtype=dtype), idx
        lo = int(idx.min())
        if lo < 0:
            raise BadPointer(
                f"rank {self.rank}: negative element offset {lo} in batch"
            )
        extent = (int(idx.max()) + 1) * dtype.itemsize
        self._check_range(base, extent)
        if dtype.itemsize and base % dtype.itemsize:
            raise BadPointer(
                f"offset {base} misaligned for dtype {dtype} batch access"
            )
        return self.buf[base : base + extent].view(dtype), idx

    def typed_read_indexed(self, base: int, dtype: np.dtype,
                           elem_offsets) -> np.ndarray:
        """Gather the elements at ``base + elem_offsets[k] * itemsize``
        with one lock acquisition (returns an owned copy)."""
        with self.lock:
            view, idx = self._indexed_view(base, dtype, elem_offsets)
            return view[idx]  # fancy indexing copies

    def typed_write_indexed(self, base: int, elem_offsets,
                            data: np.ndarray) -> None:
        """Scatter ``data`` to ``base + elem_offsets[k] * itemsize`` with
        one lock acquisition.  With duplicate offsets the surviving value
        is unspecified (as for NumPy fancy assignment)."""
        data = np.asarray(data)
        with self.lock:
            view, idx = self._indexed_view(base, data.dtype, elem_offsets)
            view[idx] = data.reshape(-1)

    def atomic_batch_update(self, base: int, dtype: np.dtype, elem_offsets,
                            op, operands, return_old: bool = False):
        """Apply one read-modify-write per element of ``elem_offsets``
        under a *single* segment-lock acquisition.

        ``op`` is an op name (see :mod:`repro.gasnet.atomics`) or a scalar
        callable.  Named commutative ops are applied vectorized with
        ``ufunc.at`` (duplicate-index safe); callables, ``"swap"`` with
        duplicates, and old-value requests over duplicates fall back to a
        sequential in-lock loop, preserving issue-order semantics.
        Returns the array of old values when ``return_old`` is true.
        """
        dtype = np.dtype(dtype)
        with self.lock:
            view, idx = self._indexed_view(base, dtype, elem_offsets)
            if idx.size == 0:
                return np.empty(0, dtype=dtype) if return_old else None
            ops = np.broadcast_to(
                np.asarray(operands, dtype=dtype), idx.shape
            )
            ufunc = ATOMIC_UFUNCS.get(op) if isinstance(op, str) else None
            with np.errstate(over="ignore"):
                if ufunc is not None and not return_old:
                    ufunc.at(view, idx, ops)
                    return None
                unique = np.unique(idx).size == idx.size
                if unique and (ufunc is not None or op == "swap"):
                    old = view[idx]  # copy
                    view[idx] = ufunc(old, ops) if ufunc is not None else ops
                    return old if return_old else None
                fn = resolve_scalar(op)
                old = np.empty(idx.shape, dtype=dtype)
                for k in range(idx.size):
                    cur = view[idx[k]].copy()
                    old[k] = cur
                    view[idx[k]] = fn(cur, ops[k])
                return old if return_old else None

    def atomic_update(self, offset: int, dtype: np.dtype, op, operand):
        """Read-modify-write one element under the segment lock.

        ``op`` is a callable ``(old, operand) -> new``.  Returns the old
        value.  This is the substrate for remote atomics (GUPS xor).
        """
        dtype = np.dtype(dtype)
        self._check_range(offset, dtype.itemsize)
        with self.lock:
            cell = self.buf[offset : offset + dtype.itemsize].view(dtype)
            old = cell[0].copy()
            with np.errstate(over="ignore"):  # wraparound, as in batches
                cell[0] = op(old, operand)
        return old
