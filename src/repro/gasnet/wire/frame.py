"""Struct-packed active-message frames.

Every AM that crosses the conduit is encoded into a :class:`Frame`:

* a 42-byte struct header (``HEADER``) — version, flags, payload codec
  id, interned handler id, source rank, token, the reliability layer's
  ``aux`` word (seq/ack numbers), total out-of-band bytes, and the
  lengths of the two control-stream regions that follow;
* the *args region*: the positional args tuple, stream-encoded;
* the *meta region*: the payload, encoded by the codec the header
  names — ``CODEC_OBJ`` (generic stream encode), ``CODEC_NESTED_AM``
  (the reliability envelope: a whole inner frame spliced in),
  ``CODEC_ENCODED`` (a pre-encoded fan-out payload) or a registered
  fixed-layout message codec;
* out-of-band buffer and by-reference tables, carried alongside the
  control bytes rather than copied into them.

The envelope never touches pickle: handler names are interned to small
ints and everything else in the header is fixed-width.  Control
bytearrays come from a bounded :class:`FramePool` and return to it when
the receiver thaws the frame, so a steady-state AM stream allocates no
fresh control buffers.
"""

from __future__ import annotations

import struct
import threading
import time

from repro.gasnet.am import ActiveMessage
from repro.gasnet.wire import codecs as _c

# ver, flags, codec, pad, handler_id, src_rank, token, aux,
# oob_nbytes, args_len, meta_len
HEADER = struct.Struct("<BBBxHiqqqII")
WIRE_VERSION = 1

F_IS_REPLY = 1
F_HAS_TOKEN = 2
F_USED_PICKLE = 4
F_HAS_REFS = 8
F_HAS_TRACE = 16

# Trace-context trailer: (trace_id, span_id), appended after the meta
# region only when the AM carries a non-zero trace id.  Untraced
# messages (telemetry off) pay zero wire bytes for it, and the header
# layout is unchanged — receivers locate the trailer at
# ``HEADER.size + args_len + meta_len`` when ``F_HAS_TRACE`` is set.
TRACE_TRAILER = struct.Struct("<QQ")

CODEC_NONE = 0
CODEC_OBJ = 1
CODEC_NESTED_AM = 2
CODEC_ENCODED = 3

_HDR_ZEROS = bytes(HEADER.size)


# -- handler-name interning --------------------------------------------------
_handler_ids: dict[str, int] = {}
_handler_names: list[str] = []
_intern_lock = threading.Lock()


def handler_code(name: str) -> int:
    """Intern a handler name to a small stable int (process-wide)."""
    hid = _handler_ids.get(name)
    if hid is None:
        with _intern_lock:
            hid = _handler_ids.get(name)
            if hid is None:
                hid = len(_handler_names)
                if hid > 0xFFFF:
                    raise OverflowError("handler id space exhausted")
                _handler_names.append(name)
                _handler_ids[name] = hid
    return hid


def handler_name(hid: int) -> str:
    return _handler_names[hid]


# -- control-buffer pool -----------------------------------------------------
class FramePool:
    """Bounded stack of reusable control bytearrays."""

    __slots__ = ("_bufs", "_lock", "capacity")

    def __init__(self, capacity: int = 64):
        self._bufs: list[bytearray] = []
        self._lock = threading.Lock()
        self.capacity = capacity

    def get(self) -> bytearray:
        with self._lock:
            if self._bufs:
                return self._bufs.pop()
        return bytearray()

    def put(self, buf: bytearray) -> None:
        with self._lock:
            if len(self._bufs) >= self.capacity:
                return
            for b in self._bufs:
                if b is buf:  # double release: keep the pool coherent
                    return
            try:
                buf.clear()
            except BufferError:  # a live memoryview still pins it
                return
            self._bufs.append(buf)

    def __len__(self) -> int:
        with self._lock:
            return len(self._bufs)


_pool = FramePool()


# -- frames ------------------------------------------------------------------
class Frame:
    """One encoded AM: control bytes + buffer/ref tables."""

    __slots__ = ("ctrl", "buffers", "refs", "nbytes", "used_pickle",
                 "has_refs", "pooled", "_decoded")

    def __init__(self, ctrl, buffers, refs, nbytes, used_pickle,
                 has_refs, pooled):
        self.ctrl = ctrl
        self.buffers = buffers
        self.refs = refs
        self.nbytes = nbytes
        self.used_pickle = used_pickle
        self.has_refs = has_refs
        self.pooled = pooled
        self._decoded = None

    def thaw(self) -> ActiveMessage:
        """Decode into a fresh :class:`ActiveMessage` (memoized, so a
        duplicated delivery of the same frame decodes once)."""
        am = self._decoded
        if am is not None:
            return am
        ctrl = self.ctrl
        (_ver, flags, codec_id, hid, src, tok, aux, _nbuf, args_len,
         meta_len) = HEADER.unpack_from(ctrl, 0)
        if not args_len and codec_id == CODEC_NONE \
                and not flags & F_HAS_TRACE:
            # Trivial frame (bare signal / ack / ping): nothing to
            # decode — skip the memoryview and decoder setup.
            am = ActiveMessage(
                handler=handler_name(hid), src_rank=src, args=(),
                payload=None,
                token=tok if flags & F_HAS_TOKEN else None,
                is_reply=bool(flags & F_IS_REPLY), aux=aux)
            am._wire_bytes = self.nbytes
            self._decoded = am
            if self.pooled:
                self.pooled = False
                _pool.put(ctrl)
            return am
        mv = memoryview(ctrl)
        try:
            pos = HEADER.size
            args = ()
            if args_len:
                args = _c.Decoder(mv, pos, self.buffers,
                                  self.refs).decode()
                pos += args_len
            payload = None
            if codec_id != CODEC_NONE:
                dec = _c.Decoder(mv, pos, self.buffers, self.refs)
                if codec_id == CODEC_OBJ:
                    payload = dec.decode()
                elif codec_id == CODEC_NESTED_AM:
                    payload = _dec_nested_am(dec)
                elif codec_id == CODEC_ENCODED:
                    payload = _c._dec_encoded(dec)
                else:
                    payload = _c.codec_by_code(codec_id).decode(dec)
        finally:
            mv.release()
        trace_id = span_id = 0
        if flags & F_HAS_TRACE:
            trace_id, span_id = TRACE_TRAILER.unpack_from(
                ctrl, HEADER.size + args_len + meta_len)
        am = ActiveMessage(
            handler=handler_name(hid), src_rank=src, args=args,
            payload=payload,
            token=tok if flags & F_HAS_TOKEN else None,
            is_reply=bool(flags & F_IS_REPLY), aux=aux,
            trace_id=trace_id, span_id=span_id)
        am._wire_bytes = self.nbytes
        self._decoded = am
        if self.pooled:
            self.pooled = False
            _pool.put(ctrl)
        return am


def _enc_nested_am(enc, inner_am) -> None:
    """Splice a whole inner frame (the reliability data envelope) —
    the inner encode is memoized, so retransmitted envelopes reuse it."""
    inner = encode_am(inner_am)
    enc.out += _c._5I.pack(len(inner.ctrl), len(enc.buffers),
                           len(inner.buffers), len(enc.refs),
                           len(inner.refs))
    enc.out += inner.ctrl
    enc.buffers += inner.buffers
    enc.refs += inner.refs
    if inner.used_pickle:
        enc.used_pickle = True


def _dec_nested_am(dec) -> ActiveMessage:
    clen, bstart, bcount, rstart, rcount = _c._5I.unpack_from(
        dec.mv, dec.pos)
    dec.pos += 20
    # the inner control bytes are copied out: the outer frame's pooled
    # buffer is recycled the moment the envelope is thawed
    ctrl = bytes(dec.mv[dec.pos:dec.pos + clen])
    dec.pos += clen
    buffers = dec.buffers[bstart:bstart + bcount]
    refs = dec.refs[rstart:rstart + rcount]
    nbuf = 0
    for b in buffers:
        nbuf += _c.buf_nbytes(b)
    inner = Frame(ctrl, buffers, refs, clen + nbuf, False, False,
                  pooled=False)
    return inner.thaw()


def encode_am(am: ActiveMessage, tel=None) -> Frame:
    """Encode an AM into its wire frame (memoized on the message)."""
    frame = am._frame
    if frame is not None:
        return frame
    if not am.args and am.payload is None and not am.trace_id:
        # Trivial AM (bare signal / ack / ping): the frame is exactly
        # one fixed header — skip the encoder, codec dispatch, and
        # control-buffer pool entirely.  This is the hot shape for
        # request/reply latency paths.
        tok = am.token
        if tok is None:
            tok = 0
            flags = F_IS_REPLY if am.is_reply else 0
        else:
            flags = (F_HAS_TOKEN | F_IS_REPLY if am.is_reply
                     else F_HAS_TOKEN)
        ctrl = bytearray(HEADER.size)
        HEADER.pack_into(ctrl, 0, WIRE_VERSION, flags, CODEC_NONE,
                         handler_code(am.handler), am.src_rank, tok,
                         am.aux, 0, 0, 0)
        frame = Frame(ctrl, [], [], HEADER.size, False, False,
                      pooled=False)
        am._frame = frame
        am._wire_bytes = HEADER.size
        return frame
    t0 = time.perf_counter() if tel is not None and tel.full else None
    enc = _c.Encoder(out=_pool.get())
    out = enc.out
    out += _HDR_ZEROS
    args = am.args
    if args:
        enc.encode(args)
    args_len = len(out) - HEADER.size
    payload = am.payload
    codec_id = CODEC_NONE
    if payload is not None:
        tp = type(payload)
        if tp is ActiveMessage:
            codec_id = CODEC_NESTED_AM
            _enc_nested_am(enc, payload)
        elif tp is _c.EncodedPayload:
            codec_id = CODEC_ENCODED
            _c.splice_encoded(enc, payload)
        elif enc.force_pickle:
            codec_id = CODEC_OBJ
            enc.encode(payload.obj if tp is _c.Tagged else payload)
        elif tp is _c.Tagged:
            codec_id = payload.codec.code
            payload.codec.encode(enc, payload.obj)
        else:
            mc = _c.handler_codec(am.handler)
            if mc is not None:
                codec_id = mc.code
                mark = (len(out), len(enc.buffers), len(enc.refs))
                try:
                    mc.encode(enc, payload)
                except Exception:
                    # unexpected payload shape: fall back to the
                    # generic stream encoding
                    del out[mark[0]:]
                    del enc.buffers[mark[1]:]
                    del enc.refs[mark[2]:]
                    codec_id = CODEC_OBJ
                    enc.encode(payload)
            else:
                codec_id = CODEC_OBJ
                enc.encode(payload)
    meta_len = len(out) - HEADER.size - args_len
    flags = 0
    if am.trace_id:
        # trailer sits after the meta region; args_len/meta_len are
        # unaffected so untraced decode paths never see it
        flags |= F_HAS_TRACE
        out += TRACE_TRAILER.pack(am.trace_id, am.span_id)
    if am.is_reply:
        flags |= F_IS_REPLY
    tok = am.token
    if tok is None:
        tok = 0
    else:
        flags |= F_HAS_TOKEN
    if enc.used_pickle:
        flags |= F_USED_PICKLE
    if enc.refs:
        flags |= F_HAS_REFS
    nbuf = 0
    for b in enc.buffers:
        nbuf += _c.buf_nbytes(b)
    HEADER.pack_into(out, 0, WIRE_VERSION, flags, codec_id,
                     handler_code(am.handler), am.src_rank, tok,
                     am.aux, nbuf, args_len, meta_len)
    frame = Frame(out, enc.buffers, enc.refs, len(out) + nbuf,
                  enc.used_pickle, bool(enc.refs), pooled=True)
    am._frame = frame
    am._wire_bytes = frame.nbytes
    if t0 is not None:
        tel.histogram("ser").record_seconds(time.perf_counter() - t0)
    return frame
