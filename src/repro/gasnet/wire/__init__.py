"""``repro.gasnet.wire`` — the serialization subsystem.

Every active message crosses the conduit as a struct-packed
:class:`~repro.gasnet.wire.frame.Frame`: a fixed binary header (no
pickle for the envelope), tag-based stream encoding for args and
payloads, out-of-band buffers for bulk data, a registry of fixed-layout
message codecs for the hot message families, and pickle protocol 5
(with out-of-band buffer callbacks) only as the fallback for genuinely
dynamic values.  See docs/API.md, "Wire format and serialization".
"""

from repro.gasnet.wire.codecs import (  # noqa: F401
    EncodedPayload,
    Tagged,
    UnencodableError,
    bind_handler,
    preencode,
    register_message_codec,
    set_force_pickle,
    tagged,
)
from repro.gasnet.wire.frame import (  # noqa: F401
    CODEC_ENCODED,
    CODEC_NESTED_AM,
    CODEC_NONE,
    CODEC_OBJ,
    HEADER,
    WIRE_VERSION,
    Frame,
    FramePool,
    encode_am,
    handler_code,
    handler_name,
)

__all__ = [
    "EncodedPayload", "Tagged", "UnencodableError", "bind_handler",
    "preencode", "register_message_codec", "set_force_pickle", "tagged",
    "CODEC_ENCODED", "CODEC_NESTED_AM", "CODEC_NONE", "CODEC_OBJ",
    "HEADER", "WIRE_VERSION", "Frame", "FramePool", "encode_am",
    "handler_code", "handler_name",
]
