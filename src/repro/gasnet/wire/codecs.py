"""Tag-based stream codec: the byte-level vocabulary of the wire layer.

Every value that crosses a rank boundary is encoded into a *control
stream* (one bytearray of tag-prefixed fields) plus a list of
*out-of-band buffers* (bulk bytes that are referenced by index from the
control stream and never copied into it).  Scalars, strings, small
byte strings and homogeneous int/float/str sequences get fixed struct
layouts; ``ndarray`` payloads ship as one dtype/shape record plus one
out-of-band buffer; everything genuinely dynamic (dicts, sets, custom
classes, heterogeneous bulk sequences) falls back to pickle protocol 5
with ``buffer_callback`` so arrays nested inside containers still
travel out-of-band.

Snapshot-at-send rule: mutable buffers (``bytearray``, writable
``ndarray``, writable pickle-5 buffers) are copied **once** at encode
time, so the sender may mutate its objects immediately after ``send``
returns and delayed/retransmitted deliveries still see the original
value.  ``bytes`` and read-only memoryviews ship zero-copy.

Objects that cannot be pickled at all (lambdas, live handles) ship *by
reference* — a ``T_REF`` index into the frame's ``refs`` list, which in
the shared-memory conduit means the receiver sees the sender's object.
``strict=True`` encodes refuse this and raise :class:`UnencodableError`
instead, which is how eager serialization checks are implemented.
"""

from __future__ import annotations

import pickle
import struct
import threading

import numpy as np

from repro.errors import SerializationError


class UnencodableError(SerializationError):
    """A strict encode hit a value that would have to ship by reference."""


# -- wire scalars ------------------------------------------------------------
_I = struct.Struct("<I")
_q = struct.Struct("<q")
_d = struct.Struct("<d")
_dd = struct.Struct("<dd")
_3I = struct.Struct("<3I")
_5I = struct.Struct("<5I")

# Inline-vs-out-of-band threshold for byte strings.  Below this the
# bytes are memcpy'd into the control stream (cheaper than carrying a
# buffer-table entry); above it they ride out-of-band.
_INLINE_BYTES = 64
# Heterogeneous sequences longer than this are handed to pickle whole
# (C-speed) instead of per-item tagging (Python-speed).
_SEQ_PICKLE_MIN = 16

# -- stream tags -------------------------------------------------------------
T_NONE = 0
T_TRUE = 1
T_FALSE = 2
T_INT8 = 3
T_INT64 = 4
T_BIGINT = 5
T_FLOAT = 6
T_COMPLEX = 7
T_STR8 = 8
T_STR32 = 9
T_BYTES8 = 10        # small bytes, inline
T_BARR8 = 11         # small bytearray, inline
T_BUF_BYTES = 12     # bytes, out-of-band (zero-copy both ends)
T_BUF_BARR = 13      # bytearray, out-of-band (snapshot; decode copies)
T_BUF_MVIEW = 14     # read-only memoryview, out-of-band (decodes as bytes)
T_TUPLE = 15
T_LIST = 16
T_INTTUPLE = 17      # homogeneous int64 fast path: one struct.pack
T_INTLIST = 18
T_FLOATTUPLE = 19
T_FLOATLIST = 20
T_STRTUPLE = 21      # homogeneous str: packed lengths + utf-8 blob
T_STRLIST = 22
T_NDARRAY = 23       # dtype/shape header + out-of-band data buffer
T_NPSCALAR = 24      # dtype header + raw item bytes
T_PICKLE = 25        # pickle-5 stream + out-of-band buffer span
T_REF = 26           # by-reference: index into the frame's refs list
T_ENCODED = 27       # spliced pre-encoded payload (fan-out reuse)


# -- A/B switch --------------------------------------------------------------
_force_pickle = False


def set_force_pickle(enabled: bool) -> None:
    """Route *new* encodes through whole-object pickle (no fixed
    layouts, no out-of-band buffers) — the pre-wire-layer baseline the
    serde benchmark measures against."""
    global _force_pickle
    _force_pickle = bool(enabled)


def force_pickle_enabled() -> bool:
    return _force_pickle


# -- encoder -----------------------------------------------------------------
class Encoder:
    """Accumulates one control stream + buffer/ref tables."""

    __slots__ = ("out", "buffers", "refs", "used_pickle", "strict",
                 "force_pickle")

    def __init__(self, out: bytearray | None = None, strict: bool = False):
        self.out = bytearray() if out is None else out
        self.buffers: list = []
        self.refs: list = []
        self.used_pickle = False
        self.strict = strict
        self.force_pickle = _force_pickle

    def encode(self, obj) -> None:
        if self.force_pickle:
            _enc_pickle(self, obj, oob=False)
        else:
            _encode(self, obj)


def buf_nbytes(b) -> int:
    t = type(b)
    if t is bytes or t is bytearray:
        return len(b)
    mv = memoryview(b)
    n = mv.nbytes
    mv.release()
    return n


def _enc_none(enc, obj):
    enc.out.append(T_NONE)


def _enc_bool(enc, obj):
    enc.out.append(T_TRUE if obj else T_FALSE)


def _enc_int(enc, obj):
    out = enc.out
    if -128 <= obj <= 127:
        out.append(T_INT8)
        out.append(obj & 0xFF)
        return
    try:
        packed = _q.pack(obj)
    except (OverflowError, struct.error):
        raw = obj.to_bytes((obj.bit_length() + 8) // 8, "little",
                           signed=True)
        out.append(T_BIGINT)
        out += _I.pack(len(raw))
        out += raw
        return
    out.append(T_INT64)
    out += packed


def _enc_float(enc, obj):
    enc.out.append(T_FLOAT)
    enc.out += _d.pack(obj)


def _enc_complex(enc, obj):
    enc.out.append(T_COMPLEX)
    enc.out += _dd.pack(obj.real, obj.imag)


def _enc_str(enc, obj):
    raw = obj.encode("utf-8")
    out = enc.out
    n = len(raw)
    if n < 256:
        out.append(T_STR8)
        out.append(n)
    else:
        out.append(T_STR32)
        out += _I.pack(n)
    out += raw


def _enc_bytes(enc, obj):
    out = enc.out
    n = len(obj)
    if n <= _INLINE_BYTES:
        out.append(T_BYTES8)
        out.append(n)
        out += obj
    else:
        out.append(T_BUF_BYTES)
        out += _I.pack(len(enc.buffers))
        enc.buffers.append(obj)


def _enc_bytearray(enc, obj):
    out = enc.out
    n = len(obj)
    if n <= _INLINE_BYTES:
        out.append(T_BARR8)
        out.append(n)
        out += obj
    else:
        out.append(T_BUF_BARR)
        out += _I.pack(len(enc.buffers))
        enc.buffers.append(bytes(obj))  # snapshot: sender may mutate


def _enc_memoryview(enc, obj):
    if obj.readonly and obj.contiguous and obj.nbytes > _INLINE_BYTES:
        enc.out.append(T_BUF_MVIEW)
        enc.out += _I.pack(len(enc.buffers))
        enc.buffers.append(obj)
    else:
        _enc_bytes(enc, obj.tobytes())


def _enc_seq(enc, obj, t_generic, t_int, t_float, t_str):
    out = enc.out
    n = len(obj)
    if n == 0:
        out.append(t_generic)
        out += _I.pack(0)
        return
    kinds = set(map(type, obj))
    if kinds == _ONLY_INT:
        try:
            packed = struct.pack(f"<{n}q", *obj)
        except (OverflowError, struct.error):
            packed = None
        if packed is not None:
            out.append(t_int)
            out += _I.pack(n)
            out += packed
            return
    elif kinds == _ONLY_FLOAT:
        out.append(t_float)
        out += _I.pack(n)
        out += struct.pack(f"<{n}d", *obj)
        return
    elif kinds == _ONLY_STR:
        parts = [s.encode("utf-8") for s in obj]
        out.append(t_str)
        out += _I.pack(n)
        out += struct.pack(f"<{n}I", *map(len, parts))
        out += b"".join(parts)
        return
    if n > _SEQ_PICKLE_MIN and not kinds <= _FRIENDLY:
        # bulk heterogeneous data: C pickle beats a Python tag loop
        _enc_pickle(enc, obj)
        return
    out.append(t_generic)
    out += _I.pack(n)
    for x in obj:
        _encode(enc, x)


def _enc_tuple(enc, obj):
    _enc_seq(enc, obj, T_TUPLE, T_INTTUPLE, T_FLOATTUPLE, T_STRTUPLE)


def _enc_list(enc, obj):
    _enc_seq(enc, obj, T_LIST, T_INTLIST, T_FLOATLIST, T_STRLIST)


def _enc_ndarray(enc, arr):
    dt = arr.dtype
    if dt.hasobject or dt.names is not None:
        _enc_pickle(enc, arr)
        return
    # one snapshot into a fresh writable buffer; the receiver decodes a
    # writable array over it without a second copy
    buf = bytearray(arr.nbytes)
    if arr.nbytes:
        np.frombuffer(buf, dtype=dt).reshape(arr.shape)[...] = arr
    ds = dt.str.encode("ascii")
    out = enc.out
    out.append(T_NDARRAY)
    out.append(len(ds))
    out += ds
    out.append(arr.ndim)
    out += struct.pack(f"<{arr.ndim}q", *arr.shape)
    out += _I.pack(len(enc.buffers))
    enc.buffers.append(buf)


def _enc_npscalar(enc, v):
    dt = v.dtype
    if dt.hasobject:
        _enc_pickle(enc, v)
        return
    ds = dt.str.encode("ascii")
    out = enc.out
    out.append(T_NPSCALAR)
    out.append(len(ds))
    out += ds
    out += v.tobytes()


def _enc_pickle(enc, obj, oob: bool = True):
    bufs = enc.buffers
    mark = len(bufs)
    try:
        if oob:
            data = pickle.dumps(obj, protocol=5,
                                buffer_callback=bufs.append)
        else:
            data = pickle.dumps(obj, protocol=5)
    except Exception:
        del bufs[mark:]
        _enc_ref(enc, obj)
        return
    for i in range(mark, len(bufs)):
        mv = memoryview(bufs[i])
        if not mv.readonly:  # snapshot writable out-of-band views
            try:
                bufs[i] = bytearray(mv)
            except (BufferError, TypeError, ValueError):
                bufs[i] = bytearray(mv.tobytes())
        mv.release()
    enc.used_pickle = True
    out = enc.out
    out.append(T_PICKLE)
    out += _3I.pack(len(data), mark, len(bufs) - mark)
    out += data


def _enc_ref(enc, obj):
    if enc.strict:
        raise UnencodableError(
            f"cannot serialize {type(obj).__name__} by value: "
            f"{obj!r:.80}")
    enc.out.append(T_REF)
    enc.out += _I.pack(len(enc.refs))
    enc.refs.append(obj)


def _enc_encoded(enc, ep):
    enc.out.append(T_ENCODED)
    splice_encoded(enc, ep)


def splice_encoded(enc, ep) -> None:
    """Append a pre-encoded payload's control stream and adopt its
    buffer/ref tables (written indices are relative to the splice)."""
    out = enc.out
    out += _5I.pack(len(ep.ctrl), len(enc.buffers), len(ep.buffers),
                    len(enc.refs), len(ep.refs))
    out += ep.ctrl
    enc.buffers += ep.buffers
    enc.refs += ep.refs
    if ep.used_pickle:
        enc.used_pickle = True


# -- pre-encoded payloads ----------------------------------------------------
class EncodedPayload:
    """An encode-once, decode-per-target payload.

    Fan-out paths (collective data frames, directory blobs, team
    asyncs) pay serialization once and splice the result into each
    outgoing frame; every receiver decodes a fresh copy.
    """

    __slots__ = ("ctrl", "buffers", "refs", "nbytes", "used_pickle")

    def __init__(self, ctrl, buffers, refs, nbytes, used_pickle):
        self.ctrl = ctrl
        self.buffers = buffers
        self.refs = refs
        self.nbytes = nbytes
        self.used_pickle = used_pickle

    def decode(self):
        """Materialize a fresh copy of the encoded value."""
        mv = memoryview(self.ctrl)
        try:
            return _decode(Decoder(mv, 0, self.buffers, self.refs,
                                   copy=True))
        finally:
            mv.release()

    def __repr__(self):  # pragma: no cover - diagnostics
        return (f"EncodedPayload(nbytes={self.nbytes}, "
                f"buffers={len(self.buffers)}, refs={len(self.refs)})")


def preencode(obj, strict: bool = False) -> EncodedPayload:
    """Encode ``obj`` once for reuse across many frames.

    With ``strict=True`` raise :class:`UnencodableError` instead of
    falling back to by-reference shipping.
    """
    enc = Encoder(strict=strict)
    enc.encode(obj)
    nbuf = 0
    for b in enc.buffers:
        nbuf += buf_nbytes(b)
    return EncodedPayload(bytes(enc.out), enc.buffers, enc.refs,
                          len(enc.out) + nbuf, enc.used_pickle)


_ONLY_INT = {int}
_ONLY_FLOAT = {float}
_ONLY_STR = {str}
_FRIENDLY = {type(None), bool, int, float, str, bytes, bytearray,
             memoryview, np.ndarray}

_EXACT = {
    type(None): _enc_none,
    bool: _enc_bool,
    int: _enc_int,
    float: _enc_float,
    complex: _enc_complex,
    str: _enc_str,
    bytes: _enc_bytes,
    bytearray: _enc_bytearray,
    memoryview: _enc_memoryview,
    tuple: _enc_tuple,
    list: _enc_list,
    dict: _enc_pickle,
    set: _enc_pickle,
    frozenset: _enc_pickle,
    np.ndarray: _enc_ndarray,
    EncodedPayload: _enc_encoded,
}


def _encode(enc, obj):
    f = _EXACT.get(type(obj))
    if f is not None:
        f(enc, obj)
    elif isinstance(obj, np.generic):
        _enc_npscalar(enc, obj)
    elif isinstance(obj, BaseException):
        # exceptions always ship by reference: reconstructing arbitrary
        # exception classes from pickle is not reliable (custom
        # __init__ signatures), and error replies were always
        # by-reference in the shared-memory conduit
        _enc_ref(enc, obj)
    else:
        _enc_pickle(enc, obj)


# -- decoder -----------------------------------------------------------------
class Decoder:
    """Cursor over one control stream + its buffer/ref tables.

    ``copy=True`` forces mutable decodes (arrays, pickle-5 buffers) to
    copy, so several receivers decoding the *same* spliced payload never
    alias one buffer.
    """

    __slots__ = ("mv", "pos", "buffers", "refs", "copy")

    def __init__(self, mv, pos, buffers, refs, copy: bool = False):
        self.mv = mv
        self.pos = pos
        self.buffers = buffers
        self.refs = refs
        self.copy = copy

    def decode(self):
        return _decode(self)


def _decode(dec):
    tag = dec.mv[dec.pos]
    dec.pos += 1
    return _DECODERS[tag](dec)


def _read_I(dec) -> int:
    v = _I.unpack_from(dec.mv, dec.pos)[0]
    dec.pos += 4
    return v


def _dec_none(dec):
    return None


def _dec_true(dec):
    return True


def _dec_false(dec):
    return False


def _dec_int8(dec):
    b = dec.mv[dec.pos]
    dec.pos += 1
    return b - 256 if b >= 128 else b


def _dec_int64(dec):
    v = _q.unpack_from(dec.mv, dec.pos)[0]
    dec.pos += 8
    return v


def _dec_bigint(dec):
    n = _read_I(dec)
    raw = bytes(dec.mv[dec.pos:dec.pos + n])
    dec.pos += n
    return int.from_bytes(raw, "little", signed=True)


def _dec_float(dec):
    v = _d.unpack_from(dec.mv, dec.pos)[0]
    dec.pos += 8
    return v


def _dec_complex(dec):
    re, im = _dd.unpack_from(dec.mv, dec.pos)
    dec.pos += 16
    return complex(re, im)


def _dec_str8(dec):
    n = dec.mv[dec.pos]
    dec.pos += 1
    s = str(dec.mv[dec.pos:dec.pos + n], "utf-8")
    dec.pos += n
    return s


def _dec_str32(dec):
    n = _read_I(dec)
    s = str(dec.mv[dec.pos:dec.pos + n], "utf-8")
    dec.pos += n
    return s


def _dec_bytes8(dec):
    n = dec.mv[dec.pos]
    dec.pos += 1
    b = bytes(dec.mv[dec.pos:dec.pos + n])
    dec.pos += n
    return b


def _dec_barr8(dec):
    n = dec.mv[dec.pos]
    dec.pos += 1
    b = bytearray(dec.mv[dec.pos:dec.pos + n])
    dec.pos += n
    return b


def _dec_buf_bytes(dec):
    b = dec.buffers[_read_I(dec)]
    return b if type(b) is bytes else bytes(b)


def _dec_buf_barr(dec):
    return bytearray(dec.buffers[_read_I(dec)])


def _dec_buf_mview(dec):
    return bytes(dec.buffers[_read_I(dec)])


def _dec_tuple(dec):
    n = _read_I(dec)
    return tuple(_decode(dec) for _ in range(n))


def _dec_list(dec):
    n = _read_I(dec)
    return [_decode(dec) for _ in range(n)]


def _dec_inttuple(dec):
    n = _read_I(dec)
    v = struct.unpack_from(f"<{n}q", dec.mv, dec.pos)
    dec.pos += 8 * n
    return v


def _dec_intlist(dec):
    return list(_dec_inttuple(dec))


def _dec_floattuple(dec):
    n = _read_I(dec)
    v = struct.unpack_from(f"<{n}d", dec.mv, dec.pos)
    dec.pos += 8 * n
    return v


def _dec_floatlist(dec):
    return list(_dec_floattuple(dec))


def _dec_strs(dec):
    n = _read_I(dec)
    mv = dec.mv
    pos = dec.pos
    lens = struct.unpack_from(f"<{n}I", mv, pos)
    pos += 4 * n
    out = []
    for ln in lens:
        out.append(str(mv[pos:pos + ln], "utf-8"))
        pos += ln
    dec.pos = pos
    return out


def _dec_strtuple(dec):
    return tuple(_dec_strs(dec))


def _dec_ndarray(dec):
    mv = dec.mv
    pos = dec.pos
    dn = mv[pos]
    pos += 1
    dt = np.dtype(str(mv[pos:pos + dn], "ascii"))
    pos += dn
    ndim = mv[pos]
    pos += 1
    shape = struct.unpack_from(f"<{ndim}q", mv, pos)
    pos += 8 * ndim
    idx = _I.unpack_from(mv, pos)[0]
    dec.pos = pos + 4
    arr = np.frombuffer(dec.buffers[idx], dtype=dt).reshape(shape)
    if dec.copy:
        arr = arr.copy()
    return arr


def _dec_npscalar(dec):
    mv = dec.mv
    pos = dec.pos
    dn = mv[pos]
    pos += 1
    dt = np.dtype(str(mv[pos:pos + dn], "ascii"))
    pos += dn
    raw = bytes(mv[pos:pos + dt.itemsize])
    dec.pos = pos + dt.itemsize
    return np.frombuffer(raw, dtype=dt)[0]


def _dec_pickle(dec):
    plen, bstart, bcount = _3I.unpack_from(dec.mv, dec.pos)
    dec.pos += 12
    pbufs = dec.buffers[bstart:bstart + bcount]
    if dec.copy:
        pbufs = [bytearray(b) if type(b) is bytearray else b
                 for b in pbufs]
    obj = pickle.loads(dec.mv[dec.pos:dec.pos + plen], buffers=pbufs)
    dec.pos += plen
    return obj


def _dec_ref(dec):
    return dec.refs[_read_I(dec)]


def _dec_encoded(dec):
    clen, bstart, bcount, rstart, rcount = _5I.unpack_from(dec.mv,
                                                           dec.pos)
    dec.pos += 20
    sub = Decoder(dec.mv, dec.pos,
                  dec.buffers[bstart:bstart + bcount],
                  dec.refs[rstart:rstart + rcount], copy=True)
    obj = _decode(sub)
    dec.pos += clen
    return obj


_DECODERS = [None] * 32
_DECODERS[T_NONE] = _dec_none
_DECODERS[T_TRUE] = _dec_true
_DECODERS[T_FALSE] = _dec_false
_DECODERS[T_INT8] = _dec_int8
_DECODERS[T_INT64] = _dec_int64
_DECODERS[T_BIGINT] = _dec_bigint
_DECODERS[T_FLOAT] = _dec_float
_DECODERS[T_COMPLEX] = _dec_complex
_DECODERS[T_STR8] = _dec_str8
_DECODERS[T_STR32] = _dec_str32
_DECODERS[T_BYTES8] = _dec_bytes8
_DECODERS[T_BARR8] = _dec_barr8
_DECODERS[T_BUF_BYTES] = _dec_buf_bytes
_DECODERS[T_BUF_BARR] = _dec_buf_barr
_DECODERS[T_BUF_MVIEW] = _dec_buf_mview
_DECODERS[T_TUPLE] = _dec_tuple
_DECODERS[T_LIST] = _dec_list
_DECODERS[T_INTTUPLE] = _dec_inttuple
_DECODERS[T_INTLIST] = _dec_intlist
_DECODERS[T_FLOATTUPLE] = _dec_floattuple
_DECODERS[T_FLOATLIST] = _dec_floatlist
_DECODERS[T_STRTUPLE] = _dec_strtuple
_DECODERS[T_STRLIST] = _dec_strs
_DECODERS[T_NDARRAY] = _dec_ndarray
_DECODERS[T_NPSCALAR] = _dec_npscalar
_DECODERS[T_PICKLE] = _dec_pickle
_DECODERS[T_REF] = _dec_ref
_DECODERS[T_ENCODED] = _dec_encoded


# -- fixed-layout message codec registry -------------------------------------
class MessageCodec:
    """A named fixed-layout codec for one message family."""

    __slots__ = ("name", "code", "encode", "decode")

    def __init__(self, name, code, encode, decode):
        self.name = name
        self.code = code
        self.encode = encode
        self.decode = decode


_reg_lock = threading.Lock()
_codecs_by_name: dict[str, MessageCodec] = {}
_codecs_by_code: dict[int, MessageCodec] = {}
_handler_codecs: dict[str, MessageCodec] = {}
_FIRST_CODE = 16  # frame codec ids below this are reserved built-ins


def register_message_codec(name: str, encode, decode) -> MessageCodec:
    """Register a fixed-layout message type.

    ``encode(enc, obj)`` writes ``obj`` into the encoder's control
    stream / buffer tables; ``decode(dec)`` reads it back.  The
    returned codec's ``code`` is the frame-header codec id.
    """
    with _reg_lock:
        if name in _codecs_by_name:
            raise ValueError(f"message codec {name!r} already registered")
        code = _FIRST_CODE + len(_codecs_by_code)
        if code > 255:
            raise ValueError("message codec id space exhausted")
        c = MessageCodec(name, code, encode, decode)
        _codecs_by_name[name] = c
        _codecs_by_code[code] = c
    return c


def codec_by_code(code: int) -> MessageCodec:
    return _codecs_by_code[code]


def bind_handler(handler: str, codec_name: str) -> None:
    """Route every payload sent to ``handler`` through a named codec."""
    _handler_codecs[handler] = _codecs_by_name[codec_name]


def handler_codec(handler: str):
    return _handler_codecs.get(handler)


class Tagged:
    """Wrap a payload so it encodes via a named codec regardless of the
    destination handler (used by replies, which all share the
    ``__reply__`` handler)."""

    __slots__ = ("codec", "obj")

    def __init__(self, codec_name: str, obj):
        self.codec = _codecs_by_name[codec_name]
        self.obj = obj


def tagged(codec_name: str, obj) -> Tagged:
    return Tagged(codec_name, obj)


# -- built-in message codecs -------------------------------------------------
def _enc_kv_items(enc, items):
    """kv put batches: {key: value}."""
    enc.out += _I.pack(len(items))
    for k, v in items.items():
        _encode(enc, k)
        _encode(enc, v)


def _dec_kv_items(dec):
    n = _read_I(dec)
    out = {}
    for _ in range(n):
        k = _decode(dec)
        out[k] = _decode(dec)
    return out


def _enc_obj_list(enc, obj):
    """Generic sequence body (gets the int/str/float fast paths)."""
    _encode(enc, obj if type(obj) is list else list(obj))


def _dec_obj_list(dec):
    return _decode(dec)


def _enc_kv_found(enc, found):
    """kv get replies: [(hit, value), ...] — one flag byte per key plus
    a values sequence."""
    n = len(found)
    enc.out += _I.pack(n)
    enc.out += bytes([1 if f else 0 for f, _ in found])
    _encode(enc, [v for _, v in found])


def _dec_kv_found(dec):
    n = _read_I(dec)
    mask = bytes(dec.mv[dec.pos:dec.pos + n])
    dec.pos += n
    vals = _decode(dec)
    return [(flag == 1, v) for flag, v in zip(mask, vals)]


# kv replication log records (primary -> backup).  Three record kinds,
# each carrying the primary's post-apply shard epoch so the backup's
# store replays to the exact primary state:
#   ("put", {key: value}, epoch)
#   ("del", [key, ...], epoch)
#   ("upd", key, new_value, src, op_id, epoch)   # + exactly-once record
_3q = struct.Struct("<3q")
_4q = struct.Struct("<4q")
_REPL_PUT = 0
_REPL_DEL = 1
_REPL_UPD = 2


def _enc_kv_repl(enc, records):
    enc.out += _I.pack(len(records))
    for rec in records:
        kind = rec[0]
        if kind == "put":
            enc.out.append(_REPL_PUT)
            enc.out += _q.pack(rec[2])
            _enc_kv_items(enc, rec[1])
        elif kind == "del":
            enc.out.append(_REPL_DEL)
            enc.out += _q.pack(rec[2])
            _enc_obj_list(enc, rec[1])
        else:
            _, key, value, src, op_id, epoch = rec
            enc.out.append(_REPL_UPD)
            enc.out += _3q.pack(src, op_id, epoch)
            _encode(enc, key)
            _encode(enc, value)


def _dec_kv_repl(dec):
    n = _read_I(dec)
    out = []
    for _ in range(n):
        kind = dec.mv[dec.pos]
        dec.pos += 1
        if kind == _REPL_UPD:
            src, op_id, epoch = _3q.unpack_from(dec.mv, dec.pos)
            dec.pos += 24
            key = _decode(dec)
            value = _decode(dec)
            out.append(("upd", key, value, src, op_id, epoch))
            continue
        epoch = _q.unpack_from(dec.mv, dec.pos)[0]
        dec.pos += 8
        if kind == _REPL_PUT:
            out.append(("put", _dec_kv_items(dec), epoch))
        else:
            out.append(("del", _dec_obj_list(dec), epoch))
    return out


def _enc_kv_state(enc, st):
    """Full shard snapshot for kv_install: epochs/topology header, the
    store, and the exactly-once update dedup records (so a retried
    update() still dedups at the shard's new home)."""
    backup = st.get("backup")
    enc.out += _4q.pack(st["epoch"], st["repl_epoch"], st["primary"],
                        -1 if backup is None else backup)
    enc.out.append(1 if st.get("as_primary") else 0)
    _enc_kv_items(enc, st["store"])
    applied = st["applied"]  # [(src, op_id, epoch, value), ...]
    enc.out += _I.pack(len(applied))
    for src, op_id, epoch, value in applied:
        enc.out += _3q.pack(src, op_id, epoch)
        _encode(enc, value)


def _dec_kv_state(dec):
    epoch, repl_epoch, primary, backup = _4q.unpack_from(dec.mv, dec.pos)
    dec.pos += 32
    as_primary = dec.mv[dec.pos] == 1
    dec.pos += 1
    store = _dec_kv_items(dec)
    n = _read_I(dec)
    applied = []
    for _ in range(n):
        src, op_id, aep = _3q.unpack_from(dec.mv, dec.pos)
        dec.pos += 24
        applied.append((src, op_id, aep, _decode(dec)))
    return {"epoch": epoch, "repl_epoch": repl_epoch, "primary": primary,
            "backup": None if backup < 0 else backup,
            "as_primary": as_primary, "store": store, "applied": applied}


register_message_codec("kv_items", _enc_kv_items, _dec_kv_items)
register_message_codec("kv_keys", _enc_obj_list, _dec_obj_list)
register_message_codec("kv_found", _enc_kv_found, _dec_kv_found)
register_message_codec("wq_loot", _enc_obj_list, _dec_obj_list)
register_message_codec("dq_items", _enc_obj_list, _dec_obj_list)
register_message_codec("kv_repl", _enc_kv_repl, _dec_kv_repl)
register_message_codec("kv_state", _enc_kv_state, _dec_kv_state)

bind_handler("kv_put", "kv_items")
bind_handler("kv_get", "kv_keys")
bind_handler("kv_del", "kv_keys")
bind_handler("dq_push", "dq_items")
bind_handler("kv_repl", "kv_repl")
bind_handler("kv_install", "kv_state")
