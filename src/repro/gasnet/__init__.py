"""A from-scratch simulated GASNet communication substrate.

The paper implements UPC++ on top of GASNet (Fig. 2).  This package
provides the same three primitives GASNet gives the UPC++ runtime:

* **segments** — a registered, byte-addressable memory region per rank,
  out of which all shared objects are allocated
  (:class:`repro.gasnet.segment.Segment`);
* **one-sided RMA** — puts/gets/atomics against a remote rank's segment
  with no involvement of the target CPU (:mod:`repro.gasnet.rma`);
* **active messages** — small requests executed by a handler on the
  target, optionally carrying a payload and optionally generating a reply
  (:mod:`repro.gasnet.am`).

The only conduit implemented here is the *SMP conduit*
(:mod:`repro.gasnet.smp`): SPMD ranks are OS threads of one process and
RMA is a direct, locked access to the peer segment — which models RDMA
faithfully (the target CPU never runs code for a put/get).
"""

from repro.gasnet.segment import Segment
from repro.gasnet.am import ActiveMessage, am_handler, handler_registry
from repro.gasnet.conduit import Conduit
from repro.gasnet.smp import SmpConduit
from repro.gasnet.delay import DelayConduit
from repro.gasnet.chaos import ChaosConduit
from repro.gasnet.reliability import ReliabilityConfig, ReliableConduit
from repro.gasnet.stats import CommStats
from repro.gasnet.trace import Trace, TraceEvent

__all__ = [
    "Segment",
    "ActiveMessage",
    "am_handler",
    "handler_registry",
    "Conduit",
    "SmpConduit",
    "DelayConduit",
    "ChaosConduit",
    "ReliableConduit",
    "ReliabilityConfig",
    "CommStats",
    "Trace",
    "TraceEvent",
]
