"""A from-scratch simulated GASNet communication substrate.

The paper implements UPC++ on top of GASNet (Fig. 2).  This package
provides the same three primitives GASNet gives the UPC++ runtime:

* **segments** — a registered, byte-addressable memory region per rank,
  out of which all shared objects are allocated
  (:class:`repro.gasnet.segment.Segment`);
* **one-sided RMA** — puts/gets/atomics against a remote rank's segment
  with no involvement of the target CPU (:mod:`repro.gasnet.rma`);
* **active messages** — small requests executed by a handler on the
  target, optionally carrying a payload and optionally generating a reply
  (:mod:`repro.gasnet.am`).

Two real conduits are implemented, selected via
:mod:`repro.gasnet.backends` (``spmd(..., conduit="smp"|"proc")``):

* the *SMP conduit* (:mod:`repro.gasnet.smp`): SPMD ranks are OS threads
  of one process and RMA is a direct, locked access to the peer segment
  — which models RDMA faithfully (the target CPU never runs code for a
  put/get);
* the *proc conduit* (:mod:`repro.gasnet.proc`): ranks are OS processes,
  segments live in ``multiprocessing.shared_memory`` (RMA stays
  zero-copy across processes) and active messages cross Unix-domain
  socket pairs as the struct-packed wire frames.
"""

from repro.gasnet.segment import Segment
from repro.gasnet.am import ActiveMessage, am_handler, handler_registry
from repro.gasnet.conduit import Conduit, ConduitCaps
from repro.gasnet.smp import SmpConduit
from repro.gasnet.delay import DelayConduit
from repro.gasnet.chaos import ChaosConduit
from repro.gasnet.proc import ProcConduit, ProcFabric
from repro.gasnet.reliability import ReliabilityConfig, ReliableConduit
from repro.gasnet.stats import CommStats
from repro.gasnet.trace import Trace, TraceEvent
from repro.gasnet import backends

__all__ = [
    "Segment",
    "ActiveMessage",
    "am_handler",
    "handler_registry",
    "Conduit",
    "ConduitCaps",
    "SmpConduit",
    "DelayConduit",
    "ChaosConduit",
    "ProcConduit",
    "ProcFabric",
    "ReliableConduit",
    "ReliabilityConfig",
    "CommStats",
    "Trace",
    "TraceEvent",
    "backends",
]
