"""Conduit backend selection — ``spmd(..., conduit="smp"|"proc")``.

GASNet builds one binary per *conduit* (smp, ibv, aries, ...); here the
equivalent choice is a runtime registry.  :func:`resolve` turns the
``conduit=`` argument of :func:`repro.spmd` into either a ready conduit
instance (in-process backends, or an instance the caller built) or a
:class:`Backend` descriptor whose capabilities say the world must go
through the process launcher (:mod:`repro.core.proclaunch`).

Selection precedence:

1. a :class:`~repro.gasnet.conduit.Conduit` instance — used as-is;
2. a backend name string (``"smp"``, ``"proc"``, ``"proc+ring"``,
   ``"proc+socket"``);
3. ``None`` — the ``REPRO_CONDUIT`` environment variable if set,
   otherwise ``"smp"``.

Every backend carries :class:`~repro.gasnet.conduit.ConduitCaps`; the
fault wrappers and tests consult the flags instead of type checks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import PgasError
from repro.gasnet.conduit import Conduit, ConduitCaps

#: Environment variable overriding the default backend when ``spmd`` is
#: called without an explicit ``conduit=``.
ENV_VAR = "REPRO_CONDUIT"


@dataclass(frozen=True)
class Backend:
    """One registered conduit backend."""

    name: str
    #: Zero-arg conduit constructor; ``None`` for launcher-managed
    #: backends, whose conduits only exist inside the rank processes.
    factory: Optional[Callable[[], Conduit]]
    caps: ConduitCaps
    #: Backend-specific knobs forwarded to the launcher (e.g. the proc
    #: conduit's AM ``transport`` selection).
    options: Optional[dict] = None


_REGISTRY: dict[str, Backend] = {}


def register_backend(name: str, factory: Optional[Callable[[], Conduit]],
                     caps: ConduitCaps,
                     options: Optional[dict] = None) -> Backend:
    """Register (or replace) a named backend."""
    backend = Backend(name=name, factory=factory, caps=caps,
                      options=options)
    _REGISTRY[name] = backend
    return backend


def backend(name: str) -> Backend:
    """Look up a backend by name; raises with the known names listed."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PgasError(
            f"unknown conduit backend {name!r}; known backends: "
            f"{sorted(_REGISTRY)}"
        ) from None


def backend_names() -> list[str]:
    return sorted(_REGISTRY)


def resolve(spec) -> tuple[Optional[Conduit], Optional[Backend]]:
    """Resolve ``spmd``'s ``conduit=`` argument.

    Returns ``(conduit, backend)``: exactly one of the two is non-None.
    A conduit instance means "run in-process over this"; a backend with
    ``caps.needs_launcher`` means "hand the world to the process
    launcher, which builds the per-rank conduits itself".
    """
    if isinstance(spec, Conduit):
        return spec, None
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "smp"
    if not isinstance(spec, str):
        raise PgasError(
            f"conduit= must be a Conduit instance or a backend name "
            f"string, got {type(spec).__name__}"
        )
    b = backend(spec)
    if b.factory is not None:
        return b.factory(), None
    return None, b


def _register_builtins() -> None:
    from repro.gasnet.smp import SmpConduit

    register_backend("smp", SmpConduit, SmpConduit.caps)
    # The proc backend has no standalone factory: ProcConduit needs the
    # launcher-built fabric (shared-memory blocks + AM transport).
    # "proc" picks the default transport (shared-memory rings, unless
    # REPRO_PROC_TRANSPORT overrides); the +ring/+socket variants pin it.
    from repro.gasnet.proc import PROC_CAPS, PROC_SOCKET_CAPS

    register_backend("proc", None, PROC_CAPS)
    register_backend("proc+ring", None, PROC_CAPS,
                     options={"transport": "ring"})
    register_backend("proc+socket", None, PROC_SOCKET_CAPS,
                     options={"transport": "socket"})


_register_builtins()
