"""Typed one-sided RMA entry points with the local/remote branch.

This is the runtime half of the paper's Fig. 3: every shared-object
access first checks whether the target memory is local; local accesses
become direct segment views, remote accesses go through the conduit.
"""

from __future__ import annotations

import numpy as np


def put(ctx, dst_rank: int, offset: int, data: np.ndarray) -> None:
    """Write ``data`` to (``dst_rank``, ``offset``)."""
    if dst_rank == ctx.rank:
        ctx.stats.record_local()
        ctx.segment.typed_write(offset, data)
    else:
        ctx.world.conduit.rma_put(ctx.rank, dst_rank, offset, data)


def get(ctx, dst_rank: int, offset: int,
        dtype: np.dtype, count: int) -> np.ndarray:
    """Read ``count`` elements of ``dtype`` from (``dst_rank``, ``offset``).

    Always returns an owned copy (even locally) so callers can mutate the
    result without aliasing the segment; use :func:`local_view` for
    zero-copy owner-side access.
    """
    if dst_rank == ctx.rank:
        ctx.stats.record_local()
        return ctx.segment.typed_read(offset, dtype, count)
    return ctx.world.conduit.rma_get(ctx.rank, dst_rank, offset, dtype, count)


def atomic(ctx, dst_rank: int, offset: int, dtype: np.dtype, op, operand):
    """Atomic read-modify-write of one remote element; returns old value.

    ``op`` is ``(old, operand) -> new``; executed under the target's
    segment lock (models NIC-side atomics).
    """
    if dst_rank == ctx.rank:
        ctx.stats.record_local()
        return ctx.segment.atomic_update(offset, dtype, op, operand)
    return ctx.world.conduit.rma_atomic(
        ctx.rank, dst_rank, offset, dtype, op, operand
    )


def local_view(ctx, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
    """Zero-copy typed view of the caller's own segment."""
    return ctx.segment.view(offset, dtype, count)


# ---------------------------------------------------------------------------
# indexed bulk RMA — the batched engine's entry points
# ---------------------------------------------------------------------------

def put_indexed(ctx, dst_rank: int, base: int, elem_offsets: np.ndarray,
                data: np.ndarray) -> None:
    """Scatter ``data[k]`` to element offset ``elem_offsets[k]`` (relative
    to byte offset ``base``) in ``dst_rank``'s segment, as one operation."""
    if dst_rank == ctx.rank:
        ctx.stats.record_local(np.asarray(elem_offsets).size)
        ctx.segment.typed_write_indexed(base, elem_offsets, data)
    else:
        ctx.world.conduit.rma_put_indexed(
            ctx.rank, dst_rank, base, elem_offsets, data
        )


def get_indexed(ctx, dst_rank: int, base: int, dtype: np.dtype,
                elem_offsets: np.ndarray) -> np.ndarray:
    """Gather the elements at ``elem_offsets`` from ``dst_rank``'s segment
    with one operation; returns an owned copy."""
    if dst_rank == ctx.rank:
        ctx.stats.record_local(np.asarray(elem_offsets).size)
        return ctx.segment.typed_read_indexed(base, dtype, elem_offsets)
    return ctx.world.conduit.rma_get_indexed(
        ctx.rank, dst_rank, base, dtype, elem_offsets
    )


def atomic_batch(ctx, dst_rank: int, base: int, dtype: np.dtype,
                 elem_offsets: np.ndarray, op, operands,
                 return_old: bool = False):
    """Batched read-modify-write: every element updated atomically, the
    whole batch under a single target-lock acquisition on capable
    conduits.  Returns old values when ``return_old`` is true."""
    if dst_rank == ctx.rank:
        ctx.stats.record_local(np.asarray(elem_offsets).size)
        return ctx.segment.atomic_batch_update(
            base, dtype, elem_offsets, op, operands, return_old
        )
    return ctx.world.conduit.rma_atomic_batch(
        ctx.rank, dst_rank, base, dtype, elem_offsets, op, operands,
        return_old,
    )
