"""Typed one-sided RMA entry points with the local/remote branch.

This is the runtime half of the paper's Fig. 3: every shared-object
access first checks whether the target memory is local; local accesses
become direct segment views, remote accesses go through the conduit.
"""

from __future__ import annotations

import numpy as np


def put(ctx, dst_rank: int, offset: int, data: np.ndarray) -> None:
    """Write ``data`` to (``dst_rank``, ``offset``)."""
    if dst_rank == ctx.rank:
        ctx.stats.record_local()
        ctx.segment.typed_write(offset, data)
    else:
        ctx.world.conduit.rma_put(ctx.rank, dst_rank, offset, data)


def get(ctx, dst_rank: int, offset: int,
        dtype: np.dtype, count: int) -> np.ndarray:
    """Read ``count`` elements of ``dtype`` from (``dst_rank``, ``offset``).

    Always returns an owned copy (even locally) so callers can mutate the
    result without aliasing the segment; use :func:`local_view` for
    zero-copy owner-side access.
    """
    if dst_rank == ctx.rank:
        ctx.stats.record_local()
        return ctx.segment.typed_read(offset, dtype, count)
    return ctx.world.conduit.rma_get(ctx.rank, dst_rank, offset, dtype, count)


def atomic(ctx, dst_rank: int, offset: int, dtype: np.dtype, op, operand):
    """Atomic read-modify-write of one remote element; returns old value.

    ``op`` is ``(old, operand) -> new``; executed under the target's
    segment lock (models NIC-side atomics).
    """
    if dst_rank == ctx.rank:
        ctx.stats.record_local()
        return ctx.segment.atomic_update(offset, dtype, op, operand)
    return ctx.world.conduit.rma_atomic(
        ctx.rank, dst_rank, offset, dtype, op, operand
    )


def local_view(ctx, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
    """Zero-copy typed view of the caller's own segment."""
    return ctx.segment.view(offset, dtype, count)
