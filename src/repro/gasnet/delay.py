"""A latency/reordering conduit for concurrency hardening.

The SMP conduit delivers active messages instantly, which hides whole
classes of distributed-runtime bugs (replies racing requests, events
firing while dependents register, collectives overlapping asyncs).
:class:`DelayConduit` injects a randomized delivery delay per message —
messages from *different* sources interleave arbitrarily — while
preserving exactly the ordering guarantee GASNet gives and the runtime
is allowed to rely on: **FIFO between a fixed (source, destination)
pair**.

One-sided RMA stays immediate (RDMA semantics: it completes from the
initiator's perspective; the relaxed memory model already permits any
interleaving that synchronization doesn't forbid).

Tests run the full construct stack (asyncs, finish, events, locks,
collectives, sample sort) over this conduit; anything that silently
depended on instant delivery fails loudly here.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import warnings

import numpy as np

from repro.gasnet.am import ActiveMessage
from repro.gasnet.conduit import Conduit


class DelayConduit(Conduit):
    """Conduit wrapper + randomized, FIFO-preserving delivery delay.

    Wraps any conduit (default: a fresh
    :class:`~repro.gasnet.smp.SmpConduit`): the delay is applied on the
    *sender* side, so per-(src, dst) FIFO is preserved regardless of the
    inner transport; expiry hands the already-encoded message to the
    inner conduit's :meth:`~repro.gasnet.conduit.Conduit.deliver_encoded`.
    RMA passes straight through (RDMA semantics: immediate completion).
    """

    def __init__(self, inner: Conduit | None = None,
                 base_delay: float = 0.0005,
                 jitter: float = 0.002, seed: int = 0):
        if inner is None:
            from repro.gasnet.smp import SmpConduit

            inner = SmpConduit()
        self._inner = inner
        self.world = None
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None
        self.base_delay = base_delay
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._heap: list = []
        self._seq = itertools.count()
        self._last_due: dict[tuple[int, int], float] = {}
        self._cv = threading.Condition(self._lock)
        self._stop = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_main, name="pgas-delay-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- lifecycle / capability forwarding ---------------------------------
    @property
    def caps(self):
        return self._inner.caps

    def attach(self, world) -> None:
        self.world = world
        self._inner.attach(world)

    # -- one-sided RMA (pass-through) --------------------------------------
    def rma_put(self, src, dst, offset, data):
        return self._inner.rma_put(src, dst, offset, data)

    def rma_get(self, src, dst, offset, dtype, count):
        return self._inner.rma_get(src, dst, offset, dtype, count)

    def rma_atomic(self, src, dst, offset, dtype, op, operand):
        return self._inner.rma_atomic(src, dst, offset, dtype, op, operand)

    def rma_put_indexed(self, src, dst, base, elem_offsets, data):
        return self._inner.rma_put_indexed(src, dst, base, elem_offsets,
                                           data)

    def rma_get_indexed(self, src, dst, base, dtype, elem_offsets):
        return self._inner.rma_get_indexed(src, dst, base, dtype,
                                           elem_offsets)

    def rma_atomic_batch(self, src, dst, base, dtype, elem_offsets,
                         op, operands, return_old=False):
        return self._inner.rma_atomic_batch(
            src, dst, base, dtype, elem_offsets, op, operands, return_old
        )

    # -- conduit surface ---------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        self._encode_and_record(src, am)
        delay = self.base_delay + float(self._rng.random()) * self.jitter
        with self._lock:
            due = time.monotonic() + delay
            # per-(src,dst) FIFO: never due before a prior message
            key = (src, dst)
            due = max(due, self._last_due.get(key, 0.0))
            self._last_due[key] = due
            heapq.heappush(self._heap, (due, next(self._seq), dst, am))
            self._cv.notify()

    # -- dispatcher ---------------------------------------------------------
    def _dispatch_main(self) -> None:
        while True:
            with self._lock:
                while not self._stop and (
                    not self._heap
                    or self._heap[0][0] > time.monotonic()
                ):
                    if self._stop:
                        break
                    timeout = None
                    if self._heap:
                        timeout = max(
                            0.0, self._heap[0][0] - time.monotonic()
                        )
                    self._cv.wait(timeout=timeout if timeout is not None
                                  else 0.05)
                if self._stop:
                    return
                due, _seq, dst, am = heapq.heappop(self._heap)
            try:
                self._inner.deliver_encoded(am.src_rank, dst, am)
            except Exception:  # world torn down mid-flight
                return

    def close(self) -> None:
        """Stop the dispatcher and drain undelivered messages.

        The dispatcher thread is joined and **must** die; if it does not
        within the grace period we warn loudly instead of silently
        leaking a live thread.  Messages still queued (their delay had
        not elapsed) are not dropped: they are delivered immediately, in
        due order, so no send is silently lost at shutdown.
        """
        with self._lock:
            self._stop = True
            self._cv.notify_all()
        self._dispatcher.join(timeout=5.0)
        if self._dispatcher.is_alive():  # pragma: no cover - pathological
            warnings.warn(
                "DelayConduit dispatcher thread did not stop within 5s; "
                "a live dispatcher may still deliver into a dead world",
                RuntimeWarning,
                stacklevel=2,
            )
            self._dispatcher.join(timeout=5.0)
        with self._lock:
            stragglers = sorted(self._heap)
            self._heap.clear()
        for _due, _seq, dst, am in stragglers:
            try:
                self._inner.deliver_encoded(am.src_rank, dst, am)
            except Exception:  # world already torn down
                break
        self._inner.close()

    @property
    def pending_messages(self) -> int:
        """Messages queued but not yet delivered (test/diagnostic hook)."""
        with self._lock:
            return len(self._heap)
