"""The SMP conduit: ranks are threads, the "wire" is shared memory.

One-sided RMA is implemented as a direct, locked access to the peer's
segment buffer — a faithful model of RDMA (the target CPU executes
nothing).  Active messages are appended to the target's inbox deque and
its condition variable is signalled so blocked waiters wake up.

Optional fault injection (:attr:`SmpConduit.fail_next_am`) lets tests
exercise the failure-propagation paths without contriving real crashes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PgasError
from repro.gasnet.am import ActiveMessage
from repro.gasnet.conduit import Conduit
from repro.gasnet.wire import encode_am


class SmpConduit(Conduit):
    """Threads-as-ranks conduit (the default real executor)."""

    def __init__(self) -> None:
        self.world = None
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None

    # ------------------------------------------------------------------
    def _rank(self, r: int):
        if self.world is None:
            raise PgasError("conduit not attached to a world")
        if not 0 <= r < self.world.n_ranks:
            raise PgasError(
                f"rank {r} out of range [0, {self.world.n_ranks})"
            )
        return self.world.ranks[r]

    # -- active messages ------------------------------------------------
    def _encode_and_record(self, src: int, am: ActiveMessage):
        """Encode ``am`` into its wire frame and charge the sender's
        stats.  Every conduit send path (smp, chaos, delay) funnels
        through here so the frame exists before delivery and the
        fixed-layout hit rate is observable."""
        rank = self._rank(src)
        frame = encode_am(am, rank.telemetry)
        rank.stats.record_am(frame.nbytes)
        rank.stats.record_wire(frame.used_pickle, frame.has_refs)
        return frame

    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        target = self._rank(dst)
        self._encode_and_record(src, am)
        target.deliver(am)

    # -- one-sided RMA ---------------------------------------------------
    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        target = self._rank(dst)
        raw = np.ascontiguousarray(data)
        self._rank(src).stats.record_put(raw.nbytes)
        target.segment.typed_write(offset, raw)

    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        target = self._rank(dst)
        out = target.segment.typed_read(offset, dtype, count)
        self._rank(src).stats.record_get(out.nbytes)
        return out

    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        target = self._rank(dst)
        self._rank(src).stats.record_atomic()
        return target.segment.atomic_update(offset, dtype, op, operand)

    # -- indexed bulk RMA -------------------------------------------------
    # One conduit call + one target-lock acquisition per batch: the
    # "wire" carries a whole index vector, modelling NIC gather/scatter.

    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets: np.ndarray, data: np.ndarray) -> None:
        target = self._rank(dst)
        raw = np.ascontiguousarray(data)
        self._rank(src).stats.record_put_indexed(
            np.asarray(elem_offsets).size, raw.nbytes
        )
        target.segment.typed_write_indexed(base, elem_offsets, raw)

    def rma_get_indexed(self, src: int, dst: int, base: int,
                        dtype: np.dtype, elem_offsets: np.ndarray
                        ) -> np.ndarray:
        target = self._rank(dst)
        out = target.segment.typed_read_indexed(base, dtype, elem_offsets)
        self._rank(src).stats.record_get_indexed(out.size, out.nbytes)
        return out

    def rma_atomic_batch(self, src: int, dst: int, base: int,
                         dtype: np.dtype, elem_offsets: np.ndarray,
                         op, operands, return_old: bool = False):
        target = self._rank(dst)
        self._rank(src).stats.record_atomic_batch(
            np.asarray(elem_offsets).size
        )
        return target.segment.atomic_batch_update(
            base, dtype, elem_offsets, op, operands, return_old
        )
