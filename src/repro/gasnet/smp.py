"""The SMP conduit: ranks are threads, the "wire" is shared memory.

One-sided RMA is implemented as a direct, locked access to the peer's
segment buffer — a faithful model of RDMA (the target CPU executes
nothing).  Active messages are appended to the target's inbox deque and
its condition variable is signalled so blocked waiters wake up.

Optional fault injection (:attr:`SmpConduit.fail_next_am`) lets tests
exercise the failure-propagation paths without contriving real crashes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PgasError
from repro.gasnet.am import ActiveMessage
from repro.gasnet.conduit import Conduit


class SmpConduit(Conduit):
    """Threads-as-ranks conduit (the default real executor)."""

    def __init__(self) -> None:
        self.world = None
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None

    # ------------------------------------------------------------------
    def _rank(self, r: int):
        if self.world is None:
            raise PgasError("conduit not attached to a world")
        if not 0 <= r < self.world.n_ranks:
            raise PgasError(
                f"rank {r} out of range [0, {self.world.n_ranks})"
            )
        return self.world.ranks[r]

    # -- active messages ------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        target = self._rank(dst)
        self._rank(src).stats.record_am(am.wire_bytes)
        target.deliver(am)

    # -- one-sided RMA ---------------------------------------------------
    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        target = self._rank(dst)
        raw = np.ascontiguousarray(data)
        self._rank(src).stats.record_put(raw.nbytes)
        target.segment.typed_write(offset, raw)

    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        target = self._rank(dst)
        out = target.segment.typed_read(offset, dtype, count)
        self._rank(src).stats.record_get(out.nbytes)
        return out

    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        target = self._rank(dst)
        self._rank(src).stats.record_atomic()
        return target.segment.atomic_update(offset, dtype, op, operand)
