"""The SMP conduit: ranks are threads, the "wire" is shared memory.

One-sided RMA is implemented as a direct, locked access to the peer's
segment buffer — a faithful model of RDMA (the target CPU executes
nothing).  Active messages are appended to the target's inbox deque and
its condition variable is signalled so blocked waiters wake up.

:class:`SegmentRma` factors the direct-segment RMA implementation out of
the conduit itself: any backend whose world maps *every* rank's segment
into the calling process (threads over one heap, or processes over
``multiprocessing.shared_memory``) reuses it unchanged — which is what
keeps the process conduit's RMA zero-copy.

Optional fault injection (:attr:`SmpConduit.fail_next_am`) lets tests
exercise the failure-propagation paths without contriving real crashes.
"""

from __future__ import annotations

import numpy as np

from repro.gasnet.am import ActiveMessage
from repro.gasnet.conduit import Conduit


class SegmentRma:
    """Direct-segment one-sided RMA, shared by conduits whose process
    has every rank's segment mapped locally.

    One conduit call + one target-lock acquisition per (batched) op: the
    "wire" carries a whole index vector, modelling NIC gather/scatter.
    Requires the :class:`~repro.gasnet.conduit.Conduit` ``_rank`` helper.
    """

    def rma_put(self, src: int, dst: int, offset: int,
                data: np.ndarray) -> None:
        target = self._rank(dst)
        raw = np.ascontiguousarray(data)
        self._rank(src).stats.record_put(raw.nbytes)
        target.segment.typed_write(offset, raw)

    def rma_get(self, src: int, dst: int, offset: int,
                dtype: np.dtype, count: int) -> np.ndarray:
        target = self._rank(dst)
        out = target.segment.typed_read(offset, dtype, count)
        self._rank(src).stats.record_get(out.nbytes)
        return out

    def rma_atomic(self, src: int, dst: int, offset: int,
                   dtype: np.dtype, op, operand):
        target = self._rank(dst)
        self._rank(src).stats.record_atomic()
        return target.segment.atomic_update(offset, dtype, op, operand)

    def rma_put_indexed(self, src: int, dst: int, base: int,
                        elem_offsets: np.ndarray, data: np.ndarray) -> None:
        target = self._rank(dst)
        raw = np.ascontiguousarray(data)
        self._rank(src).stats.record_put_indexed(
            np.asarray(elem_offsets).size, raw.nbytes
        )
        target.segment.typed_write_indexed(base, elem_offsets, raw)

    def rma_get_indexed(self, src: int, dst: int, base: int,
                        dtype: np.dtype, elem_offsets: np.ndarray
                        ) -> np.ndarray:
        target = self._rank(dst)
        out = target.segment.typed_read_indexed(base, dtype, elem_offsets)
        self._rank(src).stats.record_get_indexed(out.size, out.nbytes)
        return out

    def rma_atomic_batch(self, src: int, dst: int, base: int,
                         dtype: np.dtype, elem_offsets: np.ndarray,
                         op, operands, return_old: bool = False):
        target = self._rank(dst)
        self._rank(src).stats.record_atomic_batch(
            np.asarray(elem_offsets).size
        )
        return target.segment.atomic_batch_update(
            base, dtype, elem_offsets, op, operands, return_old
        )


class SmpConduit(SegmentRma, Conduit):
    """Threads-as-ranks conduit (the default real executor)."""

    def __init__(self) -> None:
        self.world = None
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None

    # -- active messages ------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        target = self._rank(dst)
        self._encode_and_record(src, am)
        target.deliver(am)

    def deliver_encoded(self, src: int, dst: int,
                        am: ActiveMessage) -> None:
        self._rank(dst).deliver(am)
