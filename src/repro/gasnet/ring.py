"""SPSC shared-memory message rings for the proc conduit.

One :class:`Ring` region per *directed* rank pair carries the byte
stream of AM wire messages (the exact bytes the socketpair fallback
would write) through shared memory instead of the kernel: GASNet's smp
conduit move, applied to the PR-6 frame format.

Layout of one region (all offsets relative to the region base)::

    +0    tail         u64, producer-owned   slots published
    +64   head         u64, consumer-owned   slots consumed
    +128  spill_alloc  u64, producer-owned   spill bytes allocated
    +192  spill_free   u64, consumer-owned   spill bytes released
    +256  slots        nslots * slot_bytes
    +...  spill        spill_bytes           OOB overflow region

Each fixed-size slot is ``<u32 inline_len, u32 spill_len, u64
spill_off>`` followed by ``inline_len`` payload bytes; when a slot's
logical chunk is larger than the inline capacity the remainder lives at
``spill_off`` in the spill region.  The consumer reassembles the per-pair
byte stream as ``inline bytes + spill bytes`` per slot, in slot order,
so a message larger than one slot simply spans several slots — no size
limit, and FIFO is structural.

The cursors are monotonically increasing 64-bit counters written with
``struct.pack_into`` at 64-byte strides (their own cache lines).  Each
counter has exactly one writer (SPSC), so an aligned 8-byte store is
"atomic enough": the reader may observe a stale value, never a torn
in-between one on the platforms CPython runs ranks on.  The spill region
is a bump allocator over the same discipline: the producer only ever
allocates contiguous tail room (a chunk shrinks rather than wraps), and
the consumer releases bytes in allocation order because slot consumption
is FIFO.

The classes operate on any writable buffer (a ``memoryview`` of a
``multiprocessing.shared_memory`` block in production, a plain
``bytearray`` in unit tests).
"""

from __future__ import annotations

import struct

_U64 = struct.Struct("<Q")
SLOT_HDR = struct.Struct("<IIQ")  # inline_len, spill_len, spill_off

#: Control-cursor offsets within a region (64-byte strides: one cache
#: line per single-writer counter).
_TAIL_OFF = 0
_HEAD_OFF = 64
_ALLOC_OFF = 128
_FREE_OFF = 192
CTRL_BYTES = 256


class RingSpec:
    """Geometry of one ring region (shared by producer and consumer)."""

    __slots__ = ("slots", "slot_bytes", "spill_bytes", "inline_cap",
                 "region_bytes")

    def __init__(self, slots: int = 64, slot_bytes: int = 4096,
                 spill_bytes: int = 1 << 20):
        if slots < 2:
            raise ValueError("ring needs at least 2 slots")
        if slot_bytes <= SLOT_HDR.size:
            raise ValueError(
                f"slot_bytes must exceed the {SLOT_HDR.size}-byte slot "
                f"header"
            )
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.spill_bytes = spill_bytes
        self.inline_cap = slot_bytes - SLOT_HDR.size
        self.region_bytes = CTRL_BYTES + slots * slot_bytes + spill_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RingSpec(slots={self.slots}, slot_bytes={self.slot_bytes},"
                f" spill_bytes={self.spill_bytes})")


class RingProducer:
    """The sending side of one directed ring (single producer).

    The conduit serializes callers with its per-peer send lock; within
    that discipline the producer owns ``tail`` and ``spill_alloc`` and
    only *reads* the consumer's cursors.
    """

    __slots__ = ("_mv", "_spec", "_base", "_slot0", "_spill0",
                 "_tail", "_alloc", "last_spill")

    def __init__(self, buf, spec: RingSpec, base: int = 0):
        self._mv = memoryview(buf)
        self._spec = spec
        self._base = base
        self._slot0 = base + CTRL_BYTES
        self._spill0 = base + CTRL_BYTES + spec.slots * spec.slot_bytes
        # The region is zero-initialized at creation; cache our own
        # cursors locally (we are their only writer).
        self._tail = _U64.unpack_from(self._mv, base + _TAIL_OFF)[0]
        self._alloc = _U64.unpack_from(self._mv, base + _ALLOC_OFF)[0]
        #: Spill bytes placed by the most recent successful try_emit
        #: (telemetry reads this; 0 for a purely inline slot).
        self.last_spill = 0

    # -- introspection (tests, backpressure probes) ----------------------
    def free_slots(self) -> int:
        head = _U64.unpack_from(self._mv, self._base + _HEAD_OFF)[0]
        return self._spec.slots - (self._tail - head)

    def spill_in_use(self) -> int:
        freed = _U64.unpack_from(self._mv, self._base + _FREE_OFF)[0]
        return self._alloc - freed

    def try_emit(self, data, off: int) -> int:
        """Publish one slot carrying bytes of ``data`` starting at
        ``off``; returns how many bytes were consumed (0 when the ring
        is full — the caller backs off and retries).

        As much of the chunk as fits goes inline; the remainder takes
        whatever contiguous spill tail room is currently free.  A
        non-full ring always makes progress (at least the inline bytes),
        so a stream of any length drains through a bounded region.
        """
        spec = self._spec
        mv = self._mv
        head = _U64.unpack_from(mv, self._base + _HEAD_OFF)[0]
        if self._tail - head >= spec.slots:
            return 0
        remaining = len(data) - off
        inline = remaining if remaining < spec.inline_cap else spec.inline_cap
        spill_need = remaining - inline
        spill_len = 0
        spill_off = 0
        if spill_need > 0 and spec.spill_bytes:
            freed = _U64.unpack_from(mv, self._base + _FREE_OFF)[0]
            free = spec.spill_bytes - (self._alloc - freed)
            pos = self._alloc % spec.spill_bytes
            contig = spec.spill_bytes - pos
            spill_len = min(spill_need, free, contig)
            if spill_len > 0:
                spill_off = pos
                dst0 = self._spill0 + pos
                src0 = off + inline
                mv[dst0:dst0 + spill_len] = data[src0:src0 + spill_len]
                self._alloc += spill_len
                _U64.pack_into(mv, self._base + _ALLOC_OFF, self._alloc)
        slot = self._slot0 + (self._tail % spec.slots) * spec.slot_bytes
        SLOT_HDR.pack_into(mv, slot, inline, spill_len, spill_off)
        body = slot + SLOT_HDR.size
        mv[body:body + inline] = data[off:off + inline]
        self._tail += 1
        _U64.pack_into(mv, self._base + _TAIL_OFF, self._tail)
        self.last_spill = spill_len
        return inline + spill_len


class RingConsumer:
    """The receiving side of one directed ring (single consumer)."""

    __slots__ = ("_mv", "_spec", "_base", "_slot0", "_spill0",
                 "_head", "_freed")

    def __init__(self, buf, spec: RingSpec, base: int = 0):
        self._mv = memoryview(buf)
        self._spec = spec
        self._base = base
        self._slot0 = base + CTRL_BYTES
        self._spill0 = base + CTRL_BYTES + spec.slots * spec.slot_bytes
        self._head = _U64.unpack_from(self._mv, base + _HEAD_OFF)[0]
        self._freed = _U64.unpack_from(self._mv, base + _FREE_OFF)[0]

    def pending(self) -> bool:
        """Whether at least one unconsumed slot is published."""
        tail = _U64.unpack_from(self._mv, self._base + _TAIL_OFF)[0]
        return tail != self._head

    def try_recv(self):
        """Consume one slot; returns its chunk as a ``bytearray`` (the
        next piece of the pair's byte stream) or ``None`` when empty."""
        spec = self._spec
        mv = self._mv
        tail = _U64.unpack_from(mv, self._base + _TAIL_OFF)[0]
        if tail == self._head:
            return None
        slot = self._slot0 + (self._head % spec.slots) * spec.slot_bytes
        inline, spill_len, spill_off = SLOT_HDR.unpack_from(mv, slot)
        out = bytearray(inline + spill_len)
        body = slot + SLOT_HDR.size
        out[:inline] = mv[body:body + inline]
        if spill_len:
            s0 = self._spill0 + spill_off
            out[inline:] = mv[s0:s0 + spill_len]
        # Copy-out complete: release the slot, then the spill bytes
        # (allocation order == consumption order, so a running total is
        # an exact free cursor).
        self._head += 1
        _U64.pack_into(mv, self._base + _HEAD_OFF, self._head)
        if spill_len:
            self._freed += spill_len
            _U64.pack_into(mv, self._base + _FREE_OFF, self._freed)
        return out
