"""Active messages (von Eicken et al., ISCA'92) — the substrate for
UPC++ remote function invocation and one-sided array copies.

An :class:`ActiveMessage` names a *handler* registered in the global
:data:`handler_registry`, carries a small argument tuple plus an optional
bulk payload, and is delivered to the target rank's inbox.  The target
executes the handler during its next progress call (``advance()``), which
is exactly the paper's execution model (§IV: "enqueued async tasks are
processed when the advance() function ... is called").

Handlers may send a *reply* correlated by token; the initiator parks a
future on the token and completes it when the reply arrives.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import PgasError

#: Global registry mapping handler names to callables ``fn(ctx, am)``.
#: ``ctx`` is the target rank's state (duck-typed; see repro.core.world).
handler_registry: dict[str, Callable] = {}


def am_handler(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering an active-message handler under ``name``.

    Handler names must be globally unique; the function entry points are
    assumed identical on all ranks (paper §IV's loader assumption, which
    holds trivially in one process).
    """

    def register(fn: Callable) -> Callable:
        if name in handler_registry and handler_registry[name] is not fn:
            raise PgasError(f"duplicate AM handler name: {name!r}")
        handler_registry[name] = fn
        return fn

    return register


@dataclass
class ActiveMessage:
    """One active message.

    Attributes
    ----------
    handler:
        Name in :data:`handler_registry` (ignored for replies).
    src_rank:
        Issuing rank.
    args:
        Small positional arguments (must be picklable; their pickled size
        is charged to the communication stats, mirroring the paper's
        "pack the task function pointer and its arguments into a
        contiguous buffer").
    payload:
        Optional bulk payload (NumPy array or raw ``bytes``); transferred
        by reference in the SMP conduit but charged by size.
    token:
        Correlation token for request/reply pairs; ``None`` when no reply
        is expected.
    is_reply:
        True when this message completes the initiator's future for
        ``token`` instead of running a named handler.
    """

    handler: str
    src_rank: int
    args: tuple = ()
    payload: Optional[Any] = None
    token: Optional[int] = None
    is_reply: bool = False
    # Filled in lazily: estimated wire size in bytes.
    _wire_bytes: int = field(default=-1, repr=False)

    @property
    def wire_bytes(self) -> int:
        """Estimated serialized size (header + args + payload).

        Sized with a **single** ``pickle.dumps`` per message: NumPy and
        bytes-like payloads are measured without serializing at all, and
        a generic payload is pickled *together with* the args tuple
        instead of once each (the old path serialized twice per send
        just to take two lengths).
        """
        if self._wire_bytes < 0:
            size = 32  # fixed header: handler id, ranks, token
            payload = self.payload
            if payload is None or isinstance(
                payload, (np.ndarray, bytes, bytearray, memoryview)
            ):
                size += payload_nbytes(payload)
                payload = None  # already measured; size only the args
            if self.args or payload is not None:
                try:
                    size += len(pickle.dumps(
                        (self.args, payload), protocol=-1
                    )) - _EMPTY_COMBINED_LEN
                except Exception:
                    size += 64  # unpicklable in-process references
            self._wire_bytes = size
        return self._wire_bytes


#: Overhead of pickling the (args, payload) 2-tuple wrapper itself;
#: subtracted so arg sizing matches the old per-part estimate closely.
_EMPTY_COMBINED_LEN = len(pickle.dumps(((), None), protocol=-1))


def payload_nbytes(payload: Any) -> int:
    """Size in bytes of an AM payload (0 for None)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    try:
        return len(pickle.dumps(payload, protocol=-1))
    except Exception:
        return 64


def make_reply(request: ActiveMessage, src_rank: int,
               args: tuple = (), payload: Any = None) -> ActiveMessage:
    """Build the reply message for ``request`` (must carry a token)."""
    if request.token is None:
        raise PgasError(
            f"AM {request.handler!r} does not expect a reply (no token)"
        )
    return ActiveMessage(
        handler="__reply__",
        src_rank=src_rank,
        args=args,
        payload=payload,
        token=request.token,
        is_reply=True,
    )
