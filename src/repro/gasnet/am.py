"""Active messages (von Eicken et al., ISCA'92) — the substrate for
UPC++ remote function invocation and one-sided array copies.

An :class:`ActiveMessage` names a *handler* registered in the global
:data:`handler_registry`, carries a small argument tuple plus an optional
bulk payload, and is delivered to the target rank's inbox.  The target
executes the handler during its next progress call (``advance()``), which
is exactly the paper's execution model (§IV: "enqueued async tasks are
processed when the advance() function ... is called").

Handlers may send a *reply* correlated by token; the initiator parks a
future on the token and completes it when the reply arrives.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import PgasError

#: Global registry mapping handler names to callables ``fn(ctx, am)``.
#: ``ctx`` is the target rank's state (duck-typed; see repro.core.world).
handler_registry: dict[str, Callable] = {}


def am_handler(name: str) -> Callable[[Callable], Callable]:
    """Decorator registering an active-message handler under ``name``.

    Handler names must be globally unique; the function entry points are
    assumed identical on all ranks (paper §IV's loader assumption, which
    holds trivially in one process).
    """

    def register(fn: Callable) -> Callable:
        if name in handler_registry and handler_registry[name] is not fn:
            raise PgasError(f"duplicate AM handler name: {name!r}")
        handler_registry[name] = fn
        return fn

    return register


@dataclass(slots=True)
class ActiveMessage:
    """One active message.

    Attributes
    ----------
    handler:
        Name in :data:`handler_registry` (ignored for replies).
    src_rank:
        Issuing rank.
    args:
        Small positional arguments, stream-encoded into the wire frame
        (mirroring the paper's "pack the task function pointer and its
        arguments into a contiguous buffer").
    payload:
        Optional bulk payload (NumPy array, ``bytes``, or any value a
        registered message codec or the generic encoding can carry);
        bulk bytes travel as out-of-band buffers, not pickled streams.
    token:
        Correlation token for request/reply pairs; ``None`` when no reply
        is expected.
    is_reply:
        True when this message completes the initiator's future for
        ``token`` instead of running a named handler.
    aux:
        One fixed-width header word for transport-layer bookkeeping —
        the reliability conduit's sequence/ack numbers ride here instead
        of in the args tuple, keeping control traffic pickle-free.
    trace_id / span_id:
        Causal trace context (repro.telemetry.tracing).  When non-zero
        the pair rides the wire frame as a 16-byte trailer so handler
        work on the target rank is linked to the originating client op;
        zero means untraced and costs no wire bytes.
    """

    handler: str
    src_rank: int
    args: tuple = ()
    payload: Optional[Any] = None
    token: Optional[int] = None
    is_reply: bool = False
    aux: int = 0
    trace_id: int = 0
    span_id: int = 0
    # Filled in at encode time: the message's wire frame and its exact
    # encoded size (header + control stream + out-of-band buffers).
    _wire_bytes: int = field(default=-1, repr=False)
    _frame: Optional[Any] = field(default=None, repr=False)

    @property
    def wire_bytes(self) -> int:
        """Exact serialized size: the length of the encoded wire frame.

        Encoding is memoized on the message — the conduit's send path
        reuses the same frame, so sizing a message never costs a second
        serialization pass.
        """
        if self._wire_bytes < 0:
            from repro.gasnet.wire import encode_am

            encode_am(self)
        return self._wire_bytes


def payload_nbytes(payload: Any) -> int:
    """Size in bytes of an AM payload (0 for None)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    try:
        return len(pickle.dumps(payload, protocol=-1))
    except Exception:
        return 64


def make_reply(request: ActiveMessage, src_rank: int,
               args: tuple = (), payload: Any = None) -> ActiveMessage:
    """Build the reply message for ``request`` (must carry a token)."""
    if request.token is None:
        raise PgasError(
            f"AM {request.handler!r} does not expect a reply (no token)"
        )
    return ActiveMessage(
        handler="__reply__",
        src_rank=src_rank,
        args=args,
        payload=payload,
        token=request.token,
        is_reply=True,
        trace_id=request.trace_id,
        span_id=request.span_id,
    )
