"""Named atomic operations, shared by the scalar and batched RMA paths.

``ATOMIC_OPS`` maps the public op names (``"xor"``, ``"add"``, ...) to
scalar ``(old, operand) -> new`` callables — the form the per-element
conduit contract (:meth:`Conduit.rma_atomic`) executes under the target's
segment lock.

``ATOMIC_UFUNCS`` maps the commutative subset to NumPy ufuncs so the
batched path (:meth:`Segment.atomic_batch_update`) can apply a whole
index vector with one ``ufunc.at`` call — which also handles duplicate
indices correctly, unlike plain fancy-indexed assignment.  ``"swap"`` is
deliberately absent: it is not commutative, so duplicate indices make
the result order-dependent and the batch falls back to a sequential
loop (still under a single lock acquisition).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PgasError

#: name -> scalar (old, operand) -> new
ATOMIC_OPS = {
    "xor": lambda old, v: old ^ v,
    "add": lambda old, v: old + v,
    "and": lambda old, v: old & v,
    "or": lambda old, v: old | v,
    "swap": lambda old, v: v,
    "min": lambda old, v: old if old <= v else v,
    "max": lambda old, v: old if old >= v else v,
}

#: name -> commutative ufunc usable with ``ufunc.at`` (duplicate-safe)
ATOMIC_UFUNCS = {
    "xor": np.bitwise_xor,
    "add": np.add,
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "min": np.minimum,
    "max": np.maximum,
}


def resolve_scalar(op):
    """Resolve an op name or callable to a scalar update callable."""
    fn = ATOMIC_OPS.get(op, op)
    if not callable(fn):
        raise PgasError(f"unknown atomic op {op!r}")
    return fn
