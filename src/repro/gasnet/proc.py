"""The process conduit: ranks are OS processes, segments live in
``multiprocessing.shared_memory``, AMs cross shared-memory rings (or
Unix-domain socket pairs as a fallback).

This is the GASNet-style "different conduit, same runtime" split: the
whole UPC++-layer stack (collectives, reliability, telemetry, tracing,
distributed containers) runs unmodified because :class:`ProcConduit`
implements the full abstract :class:`~repro.gasnet.conduit.Conduit`
contract.

Design
------
* **RMA is zero-copy.**  Every rank's segment is one shared-memory
  block, created by the launcher before the fork and mapped in every
  rank process.  A rank's :class:`~repro.gasnet.segment.Segment` is
  built over a NumPy view of the mapping with a cross-process
  ``multiprocessing.RLock``, so the exact
  :class:`~repro.gasnet.smp.SegmentRma` code the SMP conduit uses —
  including the indexed gather/scatter and batched-atomic fast paths —
  works across processes with no serialization and no intermediate
  copy.

* **AMs ship as the PR-6 wire frames, not pickles.**  A send writes the
  frame's struct-packed control bytes followed by its pickle-5
  out-of-band buffers as length-prefixed raw byte spans; nothing is
  re-encoded at the boundary.  Only the (rare) by-reference table is
  pickled — and a by-reference payload that cannot be pickled raises a
  clear :class:`~repro.errors.SerializationError` at the sender instead
  of delivering a dangling reference.

* **The default AM transport is shared-memory rings** (the same move
  GASNet's smp conduit makes): one :mod:`repro.gasnet.ring` SPSC region
  per directed rank pair, carved out of a single
  ``multiprocessing.shared_memory`` block the launcher creates before
  the fork.  A send serializes the message into a per-peer pending
  buffer; small frames to the same peer coalesce there until a flush
  (inline on the next ``advance()``/blocking wait via the world's flush
  hook, by size/frame-count threshold, or by the receive loop's flush
  window) publishes them as ring slots — one slot, one doorbell, many
  frames.  The receiver runs an adaptive progress loop: bounded spin →
  ``sched_yield``-style backoff (``time.sleep(0)``) → park on a
  per-rank pipe doorbell, so an idle rank costs nothing and a busy pair
  exchanges messages with **zero syscalls**.  Set
  ``REPRO_PROC_TRANSPORT=socket`` (or use the ``proc+socket`` backend)
  to select the socketpair path instead — it stays wire-compatible
  (same message stream, one ``sendmsg`` per frame, chunked buffered
  reads) and is the conformance/chaos fallback.

* **Handler-id translation.**  Handler names are interned to 16-bit ids
  per process in call order, so ids can diverge after the fork.  The
  launcher interns every handler registered before the fork and records
  that *agreed* prefix; ids above it are advertised to each peer with a
  one-off ``DEF`` record before first use (the record rides the same
  FIFO stream as the frames, on either transport), and the receiver
  rewrites the id field (outer header and any nested reliability
  envelope) in-place to its local id before the frame is thawed.

The conduit only ever *sends from* its own rank; peer
:class:`~repro.core.world.RankState` objects in a rank process are
directory stubs whose shared-memory segments are real but whose inboxes
are never used (remote delivery happens in the remote process).
"""

from __future__ import annotations

import errno
import itertools
import os
import pickle
import select
import selectors
import socket
import struct
import threading
import time

import numpy as np
from multiprocessing import get_context, shared_memory

from repro.errors import PgasError, SerializationError, TransientCommError
from repro.gasnet.am import ActiveMessage, am_handler, handler_registry
from repro.gasnet.conduit import Conduit, ConduitCaps
from repro.gasnet.ring import RingConsumer, RingProducer, RingSpec
from repro.gasnet.segment import Segment
from repro.gasnet.smp import SegmentRma
from repro.gasnet.wire.frame import (
    CODEC_NESTED_AM,
    F_HAS_REFS,
    F_USED_PICKLE,
    HEADER,
    Frame,
    _handler_names,
    handler_code,
    handler_name,
)

PROC_CAPS = ConduitCaps(
    cross_process=True,
    supports_kill_rank=True,
    in_process_hooks=False,
    zero_copy_rma=True,
    needs_launcher=True,
    shm_rings=True,
)

#: The ``proc+socket`` variant: same conduit, AMs over socketpairs.
PROC_SOCKET_CAPS = ConduitCaps(
    cross_process=True,
    supports_kill_rank=True,
    in_process_hooks=False,
    zero_copy_rma=True,
    needs_launcher=True,
    shm_rings=False,
)

#: Environment override for the AM transport when the backend name does
#: not pin one (``"proc"``): ``ring`` (default) or ``socket``.
TRANSPORT_ENV = "REPRO_PROC_TRANSPORT"

# -- message framing ---------------------------------------------------------
#
# Both transports carry one per-directed-pair byte stream of messages.
# Every message starts with one type byte.  FRAME carries one wire
# frame: <III> (ctrl_len, nbufs, refs_len) + nbufs u64 buffer lengths,
# then the raw control bytes, the raw buffer spans, and the pickled
# by-reference table.  DEF advertises one interned handler id:
# <HH> (hid, name_len) + the UTF-8 name.

MSG_FRAME = 0
MSG_DEF = 1

_FRAME_HDR = struct.Struct("<III")
# Type byte + frame header fused into one pack for buffer-less frames.
_FRAME_HDR1 = struct.Struct("<BIII")
_DEF_HDR = struct.Struct("<HH")
_U16 = struct.Struct("<H")
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_NESTED_META = 20  # _5I splice prefix before a nested frame's ctrl

_RECV_CHUNK = 1 << 18     # socket-path buffered read size
_IOV_BATCH = 128          # spans per sendmsg (stay far under IOV_MAX)
_PARKED_STRIDE = 64       # one cache line per receiver parked flag

_fabric_ids = itertools.count(1)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _handler_sites(ctrl) -> list[int]:
    """Byte offsets of every interned handler-id field in a control
    stream: the outer header's, plus — when the payload is a nested
    reliability envelope — each spliced inner frame's, recursively."""
    sites = []
    start = 0
    while True:
        (_ver, _flags, codec_id, _hid, _src, _tok, _aux, _nbuf,
         args_len, _meta_len) = HEADER.unpack_from(ctrl, start)
        sites.append(start + 4)  # handler id at header offset 4
        if codec_id != CODEC_NESTED_AM:
            return sites
        start = start + HEADER.size + args_len + _NESTED_META


def _buf_span(b):
    """A sendable view of an out-of-band buffer table entry."""
    if isinstance(b, (bytes, bytearray, memoryview)):
        return b
    return memoryview(b)  # e.g. pickle.PickleBuffer


def _span_len(mv) -> int:
    return mv.nbytes if isinstance(mv, memoryview) else len(mv)


def _sendmsg_all(sock: socket.socket, parts) -> None:
    """Write all of ``parts`` with scatter-gather ``sendmsg`` — one
    syscall for header + control + buffers + refs on the common path
    (vs. one ``sendall`` per piece), looping only on partial writes."""
    spans = []
    for p in parts:
        m = p if isinstance(p, memoryview) else memoryview(p)
        if m.nbytes:
            spans.append(m)
    i = 0
    while i < len(spans):
        batch = spans[i:i + _IOV_BATCH]
        sent = sock.sendmsg(batch)
        for m in batch:
            n = m.nbytes
            if sent >= n:
                sent -= n
                i += 1
            else:
                spans[i] = m[sent:]
                break


class _StreamParser:
    """Incremental parser for one peer's message stream.

    Fed arbitrary chunks (a ring slot's bytes, a buffered socket read),
    yields complete messages; partial messages wait for the next chunk.
    This replaces the old ``recv(1)``-per-message framing: the socket
    path now costs ~one ``recv`` per *chunk of messages* instead of
    ~six syscalls per message.
    """

    __slots__ = ("_buf", "_off")

    def __init__(self):
        self._buf = bytearray()
        self._off = 0

    def feed(self, chunk) -> None:
        if self._off == len(self._buf):
            self._buf = bytearray(chunk) if self._off else self._buf
            if self._off:
                self._off = 0
                return
        self._buf += chunk

    @property
    def buffered(self) -> int:
        return len(self._buf) - self._off

    def next_msg(self):
        """One complete message as a tuple, or ``None`` if more bytes
        are needed: ``(MSG_DEF, hid, name)`` or ``(MSG_FRAME, ctrl,
        buffers, refs_blob)`` — ctrl/buffers are writable bytearrays."""
        buf = self._buf
        off = self._off
        avail = len(buf) - off
        if avail < 1:
            return None
        kind = buf[off]
        if kind == MSG_DEF:
            if avail < 1 + _DEF_HDR.size:
                return None
            hid, nlen = _DEF_HDR.unpack_from(buf, off + 1)
            end = off + 1 + _DEF_HDR.size + nlen
            if len(buf) < end:
                return None
            name = bytes(buf[off + 1 + _DEF_HDR.size:end]).decode("utf-8")
            self._off = end
            self._compact()
            return (MSG_DEF, hid, name)
        if kind != MSG_FRAME:
            raise PgasError(f"proc conduit: bad message type {kind}")
        if avail < 1 + _FRAME_HDR.size:
            return None
        ctrl_len, nbufs, refs_len = _FRAME_HDR.unpack_from(buf, off + 1)
        p = off + 1 + _FRAME_HDR.size
        if avail < 1 + _FRAME_HDR.size + 8 * nbufs:
            return None
        lens = struct.unpack_from(f"<{nbufs}Q", buf, p) if nbufs else ()
        p += 8 * nbufs
        if len(buf) - p < ctrl_len + sum(lens) + refs_len:
            return None
        # Writable bytearrays: the ndarray codec's zero-copy decode
        # (np.frombuffer) yields writable arrays over them, matching
        # the SMP conduit's by-value delivery semantics.
        ctrl = buf[p:p + ctrl_len]
        p += ctrl_len
        buffers = []
        for n in lens:
            buffers.append(buf[p:p + n])
            p += n
        refs_blob = bytes(buf[p:p + refs_len]) if refs_len else b""
        self._off = p + refs_len
        self._compact()
        return (MSG_FRAME, ctrl, buffers, refs_blob)

    def _compact(self) -> None:
        off = self._off
        if off == len(self._buf):
            self._buf = bytearray()
            self._off = 0
        elif off > (1 << 16):
            del self._buf[:off]
            self._off = 0


class _Pending:
    """One peer's unflushed (aggregating) outbound message bytes."""

    __slots__ = ("buf", "frames", "first_t", "last_send")

    def __init__(self):
        self.buf = bytearray()
        self.frames = 0
        self.first_t = 0.0
        self.last_send = 0.0


class ProcFabric:
    """Everything the launcher builds *before* forking the ranks.

    Shared-memory segment blocks, cross-process segment locks, the AM
    ring block + per-rank doorbell pipes (ring transport), the
    full-mesh AM socket pairs, and one bootstrap socket pair per rank.
    File descriptors, mappings, and lock handles reach the rank
    processes by fork inheritance; :meth:`child_setup` closes the ends
    a rank does not own so peer-exit EOFs propagate and no fd leaks
    outlive the world.
    """

    def __init__(self, n_ranks: int, segment_size: int,
                 transport: str | None = None):
        self.n_ranks = n_ranks
        self.segment_size = segment_size
        self.uid = f"{os.getpid()}_{next(_fabric_ids)}"
        self.ctx = get_context("fork")
        self.locks = [self.ctx.RLock() for _ in range(n_ranks)]
        self.shms: list[shared_memory.SharedMemory] = []
        self.transport = (transport or os.environ.get(TRANSPORT_ENV)
                          or "ring")
        if self.transport not in ("ring", "socket"):
            raise PgasError(
                f"proc fabric: unknown AM transport {self.transport!r} "
                f"(expected 'ring' or 'socket')"
            )
        self.ring_spec: RingSpec | None = None
        self.ring_shm: shared_memory.SharedMemory | None = None
        #: doorbells[r] = [read_fd, write_fd] of rank r's park pipe.
        self.doorbells: list[list] = []
        try:
            for r in range(n_ranks):
                self.shms.append(shared_memory.SharedMemory(
                    name=f"repro_{self.uid}_r{r}", create=True,
                    size=segment_size,
                ))
            if self.transport == "ring":
                self.ring_spec = RingSpec(
                    slots=_env_int("REPRO_RING_SLOTS", 64),
                    slot_bytes=_env_int("REPRO_RING_SLOT_BYTES", 4096),
                    spill_bytes=_env_int("REPRO_RING_SPILL_BYTES", 1 << 20),
                )
                pairs = n_ranks * (n_ranks - 1)
                size = (n_ranks * _PARKED_STRIDE
                        + pairs * self.ring_spec.region_bytes)
                self.ring_shm = shared_memory.SharedMemory(
                    name=f"repro_{self.uid}_ring", create=True,
                    size=max(size, 1),
                )
                for _ in range(n_ranks):
                    rfd, wfd = os.pipe()
                    os.set_blocking(rfd, False)
                    os.set_blocking(wfd, False)
                    self.doorbells.append([rfd, wfd])
        except BaseException:
            self.destroy()
            raise
        #: mesh[(i, j)] for i < j: (rank i's end, rank j's end).
        self.mesh: dict[tuple[int, int],
                        tuple[socket.socket, socket.socket]] = {}
        for i in range(n_ranks):
            for j in range(i + 1, n_ranks):
                self.mesh[(i, j)] = socket.socketpair()
        #: boot[r]: (parent end, rank r's end) — ready/go handshake,
        #: death/failure broadcasts, and the rank's final result.
        self.boot = [socket.socketpair() for _ in range(n_ranks)]
        # Intern every handler registered so far, so the forked
        # processes share one agreed id prefix; ids past this point
        # are per-process and need DEF advertisement on the wire.
        for name in sorted(handler_registry):
            handler_code(name)
        handler_code("__reply__")
        self.agreed_handlers = len(_handler_names)

    # -- ring layout -----------------------------------------------------
    def parked_off(self, rank: int) -> int:
        """Offset of ``rank``'s receiver parked flag in the ring block."""
        return rank * _PARKED_STRIDE

    def ring_region(self, src: int, dst: int) -> int:
        """Base offset of the directed ``src -> dst`` ring region."""
        idx = src * (self.n_ranks - 1) + (dst if dst < src else dst - 1)
        return (self.n_ranks * _PARKED_STRIDE
                + idx * self.ring_spec.region_bytes)

    # -- fd hygiene ------------------------------------------------------
    def child_setup(self, rank: int) -> None:
        """Called first thing in a rank process: keep only this rank's
        socket ends, its own doorbell read end, and the peers' doorbell
        write ends."""
        for (i, j), (a, b) in self.mesh.items():
            if i == rank:
                b.close()
            elif j == rank:
                a.close()
            else:
                a.close()
                b.close()
        for r, (parent_end, child_end) in enumerate(self.boot):
            parent_end.close()
            if r != rank:
                child_end.close()
        for r, db in enumerate(self.doorbells):
            if r != rank and db[0] is not None:
                try:
                    os.close(db[0])
                except OSError:
                    pass
                db[0] = None

    def _close_doorbells(self) -> None:
        for db in self.doorbells:
            for k in (0, 1):
                if db[k] is not None:
                    try:
                        os.close(db[k])
                    except OSError:
                        pass
                    db[k] = None
        self.doorbells = []

    def parent_setup(self) -> None:
        """Called in the launcher after the forks: close the rank ends."""
        for a, b in self.mesh.values():
            a.close()
            b.close()
        for _parent_end, child_end in self.boot:
            child_end.close()
        self._close_doorbells()

    def mesh_for(self, rank: int) -> dict[int, socket.socket]:
        socks = {}
        for (i, j), (a, b) in self.mesh.items():
            if i == rank:
                socks[j] = a
            elif j == rank:
                socks[i] = b
        return socks

    def boot_child(self, rank: int) -> socket.socket:
        return self.boot[rank][1]

    def boot_parent(self, rank: int) -> socket.socket:
        return self.boot[rank][0]

    # -- segments --------------------------------------------------------
    def make_segment(self, rank: int, size: int) -> Segment:
        """Segment factory handed to :class:`~repro.core.world.World`:
        every rank's segment is a view of its shared-memory block, so
        RMA against *any* rank is a direct mapped access."""
        if size != self.segment_size:
            raise PgasError(
                f"proc fabric built for segment_size={self.segment_size}, "
                f"world asked for {size}"
            )
        buf = np.frombuffer(self.shms[rank].buf, dtype=np.uint8)
        return Segment(size, rank=rank, buf=buf, lock=self.locks[rank])

    def destroy(self) -> None:
        """Launcher-side teardown: close every fd, unlink the blocks."""
        for pair in list(getattr(self, "mesh", {}).values()):
            for s in pair:
                try:
                    s.close()
                except OSError:
                    pass
        for pair in getattr(self, "boot", []):
            for s in pair:
                try:
                    s.close()
                except OSError:
                    pass
        self._close_doorbells()
        for shm in self.shms:
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        self.shms = []
        if self.ring_shm is not None:
            try:
                self.ring_shm.close()
            except (OSError, BufferError):
                pass
            try:
                self.ring_shm.unlink()
            except (OSError, FileNotFoundError):
                pass
            self.ring_shm = None


class ProcConduit(SegmentRma, Conduit):
    """Processes-as-ranks conduit over a pre-forked :class:`ProcFabric`.

    Exists only inside a rank process (``caps.needs_launcher``); the
    launcher (:mod:`repro.core.proclaunch`) builds one per rank.
    """

    caps = PROC_CAPS

    def __init__(self, fabric: ProcFabric, rank: int):
        self.world = None
        self.fabric = fabric
        self.local_rank = rank
        self.transport = fabric.transport
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None
        peers = [r for r in range(fabric.n_ranks) if r != rank]
        self._socks = fabric.mesh_for(rank)
        self._send_locks = {p: threading.Lock() for p in peers}
        self._advertised: dict[int, set[int]] = {p: set() for p in peers}
        self._peer_names: dict[int, dict[int, str]] = {p: {} for p in peers}
        self._parsers = {p: _StreamParser() for p in peers}
        self._agreed = fabric.agreed_handlers
        self._closing = False
        self._recv_thread: threading.Thread | None = None
        # Self-pipe so close() can wake the receiver out of select().
        self._wake_r, self._wake_w = socket.socketpair()
        #: Wire-level counters (the conformance suite's no-pickle /
        #: no-frame assertions read these).
        self.frames_sent = 0
        self.frames_received = 0
        self._stats = None
        self._tel = None
        self._ring_on = (fabric.transport == "ring"
                         and fabric.ring_shm is not None)
        if self._ring_on:
            spec = fabric.ring_spec
            mv = fabric.ring_shm.buf
            self._ring_mv = mv
            self._prod = {p: RingProducer(mv, spec,
                                          fabric.ring_region(rank, p))
                          for p in peers}
            self._cons = {p: RingConsumer(mv, spec,
                                          fabric.ring_region(p, rank))
                          for p in peers}
            self._pending = {p: _Pending() for p in peers}
            self._dirty = False
            # The rings are SPSC: exactly one thread may consume at a
            # time.  Both the receive thread and the rank-thread fast
            # path (poll_inbound) drain under this lock.
            self._cons_lock = threading.Lock()
            self._poll_misses = 0
            # Doorbell arbitration (both flags are in-process): the
            # shared parked flag is raised — "publishers, ring my
            # doorbell" — only when the receive thread is parked AND no
            # rank thread is actively polling; an active poller sees
            # publishes through shared memory with no syscall at all.
            self._poller_active = False
            self._recv_parked = False
            self._parked_off = fabric.parked_off(rank)
            self._door_r = fabric.doorbells[rank][0]
            self._door_w = {p: fabric.doorbells[p][1] for p in peers}
            # Adaptive-progress knobs.  On a single core a spinning
            # receive thread only steals the GIL from the rank thread,
            # so the spin budget collapses and the loop yields/parks
            # almost immediately.
            cpus = os.cpu_count() or 1
            self._spin = _env_int("REPRO_RING_SPIN",
                                  200 if cpus > 1 else 0)
            self._yields = _env_int("REPRO_RING_YIELDS",
                                    64 if cpus > 1 else 0)
            self._park_s = _env_float("REPRO_RING_PARK_MS", 20.0) / 1e3
            self._flush_window = _env_float("REPRO_RING_FLUSH_US",
                                            200.0) / 1e6
            self._agg_frames = _env_int("REPRO_RING_AGG_FRAMES", 16)
            # Burst detector for adaptive aggregation: a send whose
            # predecessor to the same peer is older than this gap is
            # isolated (latency path, publish now); younger means a
            # back-to-back burst (coalesce into one slot).
            self._eager_gap = _env_float("REPRO_RING_EAGER_US", 25.0) / 1e6
            # Rank-thread poll: yields per burst while traffic is live,
            # and how many empty bursts until the thread stops burning
            # cycles and falls back to its condition-variable nap.
            self._poll_yields = _env_int("REPRO_RING_POLL_YIELDS", 64)
            self._poll_idle_limit = _env_int("REPRO_RING_POLL_IDLE", 4)
            self._flush_bytes = spec.inline_cap
            self._stall_limit = 30.0

    # -- lifecycle -------------------------------------------------------
    def attach(self, world) -> None:
        super().attach(world)
        me = world.ranks[self.local_rank]
        self._stats = me.stats
        self._tel = me.telemetry
        if self._ring_on:
            # The world's progress engine flushes aggregated sends at
            # every advance()/blocking-wait point, so latency-sensitive
            # request/reply ops are never held for the flush window.
            world._am_flush = self.flush_sends
            world._am_poll = self.poll_inbound
            if world.op_timeout:
                self._stall_limit = float(world.op_timeout)
        self._recv_thread = threading.Thread(
            target=(self._recv_main_ring if self._ring_on
                    else self._recv_main_socket),
            name=f"proc-recv-{self.local_rank}", daemon=True,
        )
        self._recv_thread.start()

    def close(self) -> None:
        if self._ring_on and not self._closing:
            # Best-effort final flush (bounded: a gone peer must not
            # hold teardown for the full stall limit).
            self._stall_limit = 0.25
            try:
                self.flush_sends()
            except Exception:
                pass
        self._closing = True
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        t = self._recv_thread
        if t is not None:
            t.join(timeout=5.0)
            self._recv_thread = None
        for s in self._socks.values():
            try:
                s.close()
            except OSError:
                pass
        for s in (self._wake_r, self._wake_w):
            try:
                s.close()
            except OSError:
                pass
        if self._ring_on:
            db = self.fabric.doorbells
            if db:
                for r, pair in enumerate(db):
                    for k in (0, 1):
                        fd = pair[k]
                        keep = (r == self.local_rank and k == 0) or k == 1
                        if fd is not None and keep:
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                            pair[k] = None

    # -- active messages -------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        frame = self._encode_and_record(src, am)
        if dst == self.local_rank:
            self._rank(dst).deliver(am)  # loopback: no wire
            return
        if not 0 <= dst < self.world.n_ranks:
            self._rank(dst)  # raises the canonical range error
        self._send_frame(dst, frame)

    def deliver_encoded(self, src: int, dst: int,
                        am: ActiveMessage) -> None:
        from repro.gasnet.wire import encode_am

        if dst == self.local_rank:
            self._rank(dst).deliver(am)
            return
        self._rank(dst)
        self._send_frame(dst, encode_am(am))

    def _send_frame(self, dst: int, frame: Frame) -> None:
        refs_blob = b""
        if frame.refs:
            try:
                refs_blob = pickle.dumps(frame.refs, protocol=5)
            except Exception as exc:
                raise SerializationError(
                    f"active message carries {len(frame.refs)} "
                    f"by-reference payload(s) that cannot cross a "
                    f"process boundary on the proc conduit "
                    f"(pickling failed: {exc}); pass by-value-"
                    f"encodable data instead"
                ) from None
        bufs = frame.buffers
        spans = [_buf_span(b) for b in bufs] if bufs else bufs
        if self._ring_on:
            self._ring_send(dst, frame.ctrl, spans, refs_blob)
        else:
            self._socket_send(dst, frame.ctrl, spans, refs_blob)

    def _frame_head(self, ctrl, spans, refs_len: int) -> bytes:
        if not spans:
            # Hot shape: header-only frame — one pack, one concat.
            return _FRAME_HDR1.pack(MSG_FRAME, len(ctrl), 0,
                                    refs_len) + ctrl
        head = bytearray()
        head.append(MSG_FRAME)
        head += _FRAME_HDR.pack(len(ctrl), len(spans), refs_len)
        for mv in spans:
            head += _U64.pack(_span_len(mv))
        head += ctrl
        return bytes(head)

    def _def_records(self, dst: int, ctrl) -> bytearray | None:
        """DEF records for any post-fork handler id in ``ctrl`` the
        peer has not seen yet (caller holds the send lock and writes
        them into the stream ahead of the frame, so a DEF always
        precedes the first frame that uses its id)."""
        seen = self._advertised[dst]
        if ctrl[2] != CODEC_NESTED_AM:
            # Common case: a flat frame has exactly one handler-id site
            # (ctrl offset 4) — decide without the generator walk.
            hid = _U16.unpack_from(ctrl, 4)[0]
            if hid < self._agreed or hid in seen:
                return None
        out = None
        for site in _handler_sites(ctrl):
            hid = _U16.unpack_from(ctrl, site)[0]
            if hid < self._agreed or hid in seen:
                continue
            name = handler_name(hid).encode("utf-8")
            if out is None:
                out = bytearray()
            out.append(MSG_DEF)
            out += _DEF_HDR.pack(hid, len(name))
            out += name
            seen.add(hid)
        return out

    # -- socketpair transport (fallback) ---------------------------------
    def _socket_send(self, dst: int, ctrl, spans, refs_blob) -> None:
        sock = self._socks.get(dst)
        if sock is None:
            raise PgasError(
                f"proc conduit: no wire to rank {dst} "
                f"(local rank {self.local_rank})"
            )
        try:
            with self._send_locks[dst]:
                head = self._def_records(dst, ctrl) or bytearray()
                head += self._frame_head(ctrl, spans, len(refs_blob))
                parts = [head, *spans]
                if refs_blob:
                    parts.append(refs_blob)
                _sendmsg_all(sock, parts)
        except OSError as exc:
            self._send_error(dst, exc)
            return
        self.frames_sent += 1

    def _send_error(self, dst: int, exc: OSError) -> None:
        """A send hit a closed socket: benign during shutdown or when
        the peer already finished; a comm error otherwise."""
        if self._closing:
            return
        world = self.world
        if world is not None and 0 <= dst < world.n_ranks:
            rk = world.ranks[dst]
            if rk.done or rk.dead or rk.body_done:
                return  # trailing chatter to a finished/dead peer
        if exc.errno in (errno.EPIPE, errno.ECONNRESET, errno.ESHUTDOWN,
                         errno.ENOTCONN):
            # On a socketpair these mean exactly one thing: the peer
            # process is gone.  Drop the frame and let the launcher's
            # peer_dead broadcast surface the death as RankDead — a
            # racing send must not mask it as a comm error.
            return
        raise TransientCommError(
            f"proc conduit: send {self.local_rank}->{dst} failed: {exc}"
        ) from exc

    # -- ring transport ---------------------------------------------------
    def _ring_send(self, dst: int, ctrl, spans, refs_blob) -> None:
        prod = self._prod.get(dst)
        if prod is None:
            raise PgasError(
                f"proc conduit: no ring to rank {dst} "
                f"(local rank {self.local_rank})"
            )
        with self._send_locks[dst]:
            pend = self._pending[dst]
            buf = pend.buf
            defs = self._def_records(dst, ctrl)
            if defs:
                buf += defs
            buf += self._frame_head(ctrl, spans, len(refs_blob))
            for mv in spans:
                buf += mv
            if refs_blob:
                buf += refs_blob
            pend.frames += 1
            now = time.monotonic()
            in_burst = now - pend.last_send < self._eager_gap
            pend.last_send = now
            if pend.first_t == 0.0:
                pend.first_t = now
            self.frames_sent += 1
            if (not in_burst
                    or pend.frames >= self._agg_frames
                    or len(buf) >= self._flush_bytes):
                # Adaptive aggregation: an isolated send (the previous
                # send to this peer was more than the burst gap ago) is
                # latency-sensitive and publishes immediately; sends
                # arriving back-to-back are a throughput burst and
                # coalesce until the frame/byte cap or the advance()
                # flush hook publishes them.
                self._flush_locked(dst, pend)
            else:
                self._dirty = True

    def flush_sends(self) -> None:
        """Publish every peer's pending aggregated frames, and drain any
        inbound slots while here.  Installed as the world's ``_am_flush``
        hook: every ``advance()`` (and thus every blocking wait and
        every progress-thread pass) flushes, so a request never idles in
        the aggregation buffer while its sender blocks on the reply —
        and inbound traffic is picked up within one progress-thread
        period even when the rank thread is deep in compute."""
        if self._dirty:
            self._dirty = False
            for dst, pend in self._pending.items():
                if pend.frames:
                    with self._send_locks[dst]:
                        if pend.frames:
                            self._flush_locked(dst, pend)
        if self._poller_active:
            # The blocked rank thread is draining the rings itself (the
            # wait_until poll hook) — a second pass per advance() only
            # lengthens the latency path.
            return
        if self._cons_lock.acquire(blocking=False):
            try:
                self._drain_rings()
            finally:
                self._cons_lock.release()

    def _sweep_pending(self, force: bool = False) -> None:
        """Receive-loop flush of *aged* pending sends (fire-and-forget
        traffic whose sender never blocks).  Locks are taken
        non-blocking: the receive loop must never stall behind a rank
        thread mid-flush, or two ranks could deadlock on full rings."""
        if not self._dirty:
            return
        now = time.monotonic()
        window = 0.0 if force else self._flush_window
        for dst, pend in self._pending.items():
            if pend.frames and now - pend.first_t >= window:
                lock = self._send_locks[dst]
                if lock.acquire(blocking=False):
                    try:
                        if pend.frames:
                            self._flush_locked(dst, pend)
                    finally:
                        lock.release()

    def _flush_locked(self, dst: int, pend: _Pending) -> None:
        """Publish one peer's pending bytes as ring slots (caller holds
        the peer's send lock)."""
        data = pend.buf
        frames = pend.frames
        pend.buf = bytearray()
        pend.frames = 0
        pend.first_t = 0.0
        prod = self._prod[dst]
        stats = self._stats
        tel = self._tel
        t0 = time.perf_counter() if (tel is not None and tel.full) else 0.0
        mv = memoryview(data)
        total = len(data)
        off = 0
        slots = 0
        spilled = False
        stall_t = None
        spins = 0
        while off < total:
            n = prod.try_emit(mv, off)
            if n > 0:
                off += n
                slots += 1
                if prod.last_spill:
                    spilled = True
                stall_t = None
                spins = 0
                continue
            # Ring full: the receiver is behind (or gone).  Escalate
            # spin -> yield -> sleep while watching for peer death.
            if stats is not None:
                stats.record_ring_backoff()
            if self._closing:
                return
            world = self.world
            if world is not None:
                rk = world.ranks[dst]
                if rk.dead or rk.done:
                    return  # trailing chatter to a finished/dead peer
            now = time.monotonic()
            if stall_t is None:
                stall_t = now
            elif now - stall_t > self._stall_limit:
                raise TransientCommError(
                    f"proc conduit: ring {self.local_rank}->{dst} "
                    f"full for {self._stall_limit:.1f}s "
                    f"(receiver stalled)"
                )
            spins += 1
            if spins <= 16:
                continue
            if spins <= 256:
                os.sched_yield()  # hand the core to the slow receiver
            else:
                time.sleep(0.0002)
        if slots:
            if self._peer_parked(dst):
                try:
                    os.write(self._door_w[dst], b"\1")
                    if stats is not None:
                        stats.record_ring_doorbell()
                except (OSError, TypeError):
                    pass  # full pipe / torn-down peer: wakeups pending
            if stats is not None:
                stats.record_ring_flush(slots, frames, spilled)
            if tel is not None and tel.full:
                tel.record_latency("ring_flush", time.perf_counter() - t0)
                tel.record_value("ring_slot_frames", frames, "frames")

    def _peer_parked(self, dst: int) -> bool:
        return _U32.unpack_from(self._ring_mv,
                                self.fabric.parked_off(dst))[0] != 0

    # -- receive side ----------------------------------------------------
    def _feed(self, peer: int, chunk) -> None:
        """Advance one peer's stream parser and deliver every complete
        message in it (messages from one chunk are delivered under one
        inbox lock acquisition)."""
        parser = self._parsers[peer]
        parser.feed(chunk)
        shells = None
        while True:
            msg = parser.next_msg()
            if msg is None:
                break
            if msg[0] == MSG_DEF:
                self._peer_names[peer][msg[1]] = msg[2]
                continue
            _kind, ctrl, buffers, refs_blob = msg
            refs: list = []
            if refs_blob:
                refs = pickle.loads(refs_blob)
            self._translate(peer, ctrl)
            flags = ctrl[1]
            frame = Frame(
                ctrl, buffers, refs,
                len(ctrl) + sum(len(b) for b in buffers),
                bool(flags & F_USED_PICKLE), bool(flags & F_HAS_REFS),
                pooled=False,
            )
            shell = ActiveMessage(handler="", src_rank=peer)
            shell._frame = frame
            shell._wire_bytes = frame.nbytes
            self.frames_received += 1
            if shells is None:
                shells = [shell]
            else:
                shells.append(shell)
        if shells and self.world is not None:
            self.world.ranks[self.local_rank].deliver_many(shells)

    def _drain_rings(self) -> bool:
        """Drain every inbound ring once (bounded per peer for
        fairness); returns True when anything was consumed.  Callers
        must hold ``_cons_lock`` — the rings are single-consumer."""
        progressed = False
        for peer, c in self._cons.items():
            budget = 64
            chunk = c.try_recv()
            while chunk is not None:
                progressed = True
                self._feed(peer, chunk)
                budget -= 1
                chunk = c.try_recv() if budget else None
        if progressed:
            # Any inbound progress means traffic is flowing: keep the
            # rank-thread poller hot.  Without this, the advance()-time
            # flush hook (which also drains) steals every hit, the
            # poller sees nothing but misses, de-escalates for good,
            # and each message pays a doorbell write (~50µs) instead of
            # a sched_yield handoff (~2µs).
            self._poll_misses = 0
        return progressed

    def poll_inbound(self) -> bool:
        """Rank-thread inbound fast path (the world's ``_am_poll``
        hook).  A blocked rank thread drains the rings itself — with a
        short ``sched_yield`` handoff loop so two ranks sharing a core
        ping-pong through shared memory at context-switch cost, no
        doorbell, no recv-thread wakeup, no syscalls on the hot path.
        While the poller is active it lowers the shared parked flag so
        publishers skip the doorbell (a wakeup would only put the
        receive thread in a GIL fight with the handler).  After a few
        empty bursts it reports idle, restores the flag, and the caller
        falls back to its condition-variable nap — waiting ranks don't
        spin forever, and the parked receive thread owns wakeups again.
        """
        misses = self._poll_misses
        budget = self._poll_yields if misses <= self._poll_idle_limit else 0
        if budget and not self._poller_active:
            self._poller_active = True
            _U32.pack_into(self._ring_mv, self._parked_off, 0)
        lock = self._cons_lock
        n = 0
        while True:
            got = False
            if lock.acquire(blocking=False):
                try:
                    got = self._drain_rings()
                finally:
                    lock.release()
            if got:
                self._poll_misses = 0
                return True
            if n >= budget:
                break
            # Real sched_yield(2): hands the core to the runnable peer
            # process in ~1µs (time.sleep(0) takes the timer path and
            # costs ~100µs per handoff on a contended core).
            os.sched_yield()
            n += 1
        self._poll_misses = misses + 1
        if self._poller_active and self._poll_misses > self._poll_idle_limit:
            self._poller_active = False
            if self._recv_parked:
                _U32.pack_into(self._ring_mv, self._parked_off, 1)
        return False

    def _recv_main_ring(self) -> None:
        """Adaptive ring progress loop: drain every inbound ring; on
        idle, spin a bounded budget, then yield the GIL
        (``sched_yield``-style), then park on the doorbell pipe."""
        mv = self._ring_mv
        cons = list(self._cons.items())
        spin_budget = self._spin
        yield_budget = self._yields
        park_s = self._park_s
        stats = self._stats
        spin = 0
        try:
            while not self._closing:
                with self._cons_lock:
                    progressed = self._drain_rings()
                self._sweep_pending()
                if progressed:
                    spin = 0
                    continue
                spin += 1
                if spin <= spin_budget:
                    continue
                if spin <= spin_budget + yield_budget:
                    time.sleep(0)
                    continue
                # Park: flush our own stragglers, advertise the parked
                # flag (unless an active rank-thread poller owns the
                # rings), re-check them (a publish that raced the flag
                # is caught here or by the bounded park timeout), then
                # block on the doorbell.
                self._sweep_pending(force=True)
                self._recv_parked = True
                if not self._poller_active:
                    _U32.pack_into(mv, self._parked_off, 1)
                if any(c.pending() for _p, c in cons):
                    self._recv_parked = False
                    _U32.pack_into(mv, self._parked_off, 0)
                    spin = 0
                    continue
                ready, _, _ = select.select(
                    [self._door_r, self._wake_r], [], [], park_s)
                self._recv_parked = False
                _U32.pack_into(mv, self._parked_off, 0)
                spin = 0
                if self._door_r in ready:
                    try:
                        os.read(self._door_r, 4096)
                    except OSError:
                        pass
                    if stats is not None:
                        stats.record_ring_wakeup()
        except BaseException as exc:
            if not self._closing and self.world is not None:
                self.world.fail(self.local_rank, exc)

    def _recv_main_socket(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self._wake_r, selectors.EVENT_READ, None)
        for p, s in self._socks.items():
            sel.register(s, selectors.EVENT_READ, p)
        open_peers = set(self._socks)
        try:
            while not self._closing:
                for key, _ in sel.select(timeout=0.25):
                    peer = key.data
                    if peer is None:
                        return  # woken by close()
                    try:
                        chunk = key.fileobj.recv(_RECV_CHUNK)
                    except OSError:
                        if self._closing:
                            return
                        chunk = b""
                    if not chunk:
                        sel.unregister(key.fileobj)
                        open_peers.discard(peer)
                        continue
                    try:
                        self._feed(peer, chunk)
                    except BaseException as exc:
                        if self._closing:
                            return
                        if self.world is not None:
                            self.world.fail(self.local_rank, exc)
                        return
                if not open_peers:
                    return
        finally:
            sel.close()

    def _translate(self, peer: int, ctrl: bytearray) -> None:
        """Rewrite post-fork handler ids to this process's ids."""
        if ctrl[2] != CODEC_NESTED_AM \
                and _U16.unpack_from(ctrl, 4)[0] < self._agreed:
            return  # flat frame, pre-agreed id: nothing to rewrite
        names = self._peer_names[peer]
        for site in _handler_sites(ctrl):
            hid = _U16.unpack_from(ctrl, site)[0]
            if hid < self._agreed:
                continue
            name = names.get(hid)
            if name is None:
                raise PgasError(
                    f"proc conduit: rank {peer} used handler id {hid} "
                    f"without advertising it"
                )
            lid = handler_code(name)
            if lid != hid:
                _U16.pack_into(ctrl, site, lid)


@am_handler("__proc_done__")
def _proc_done_handler(ctx, am: ActiveMessage) -> None:
    """Survivable-death finalize across processes: a rank whose SPMD
    body returned broadcasts this so peers' directory stubs show it
    done-not-dead (the thread backend reads the flag from shared state;
    here it must cross the wire)."""
    world = ctx.world
    if 0 <= am.src_rank < world.n_ranks:
        peer = world.ranks[am.src_rank]
        peer.body_done = True
        peer.done = True
    world.poke_all()
