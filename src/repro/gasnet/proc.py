"""The process conduit: ranks are OS processes, segments live in
``multiprocessing.shared_memory``, AMs cross Unix-domain socket pairs.

This is the GASNet-style "different conduit, same runtime" split: the
whole UPC++-layer stack (collectives, reliability, telemetry, tracing,
distributed containers) runs unmodified because :class:`ProcConduit`
implements the full abstract :class:`~repro.gasnet.conduit.Conduit`
contract.

Design
------
* **RMA is zero-copy.**  Every rank's segment is one shared-memory
  block, created by the launcher before the fork and mapped in every
  rank process.  A rank's :class:`~repro.gasnet.segment.Segment` is
  built over a NumPy view of the mapping with a cross-process
  ``multiprocessing.RLock``, so the exact
  :class:`~repro.gasnet.smp.SegmentRma` code the SMP conduit uses —
  including the indexed gather/scatter and batched-atomic fast paths —
  works across processes with no serialization and no intermediate
  copy.

* **AMs ship as the PR-6 wire frames, not pickles.**  A send writes the
  frame's struct-packed control bytes followed by its pickle-5
  out-of-band buffers as length-prefixed raw byte spans; nothing is
  re-encoded at the boundary.  Only the (rare) by-reference table is
  pickled — and a by-reference payload that cannot be pickled raises a
  clear :class:`~repro.errors.SerializationError` at the sender instead
  of delivering a dangling reference.

* **Handler-id translation.**  Handler names are interned to 16-bit ids
  per process in call order, so ids can diverge after the fork.  The
  launcher interns every handler registered before the fork and records
  that *agreed* prefix; ids above it are advertised to each peer with a
  one-off ``DEF`` record before first use, and the receiver rewrites
  the id field (outer header and any nested reliability envelope)
  in-place to its local id before the frame is thawed.

The conduit only ever *sends from* its own rank; peer
:class:`~repro.core.world.RankState` objects in a rank process are
directory stubs whose shared-memory segments are real but whose inboxes
are never used (remote delivery happens in the remote process).
"""

from __future__ import annotations

import errno
import itertools
import os
import pickle
import selectors
import socket
import struct
import threading

import numpy as np
from multiprocessing import get_context, shared_memory

from repro.errors import PgasError, SerializationError, TransientCommError
from repro.gasnet.am import ActiveMessage, am_handler, handler_registry
from repro.gasnet.conduit import Conduit, ConduitCaps
from repro.gasnet.segment import Segment
from repro.gasnet.smp import SegmentRma
from repro.gasnet.wire.frame import (
    CODEC_NESTED_AM,
    F_HAS_REFS,
    F_USED_PICKLE,
    HEADER,
    Frame,
    _handler_names,
    handler_code,
    handler_name,
)

PROC_CAPS = ConduitCaps(
    cross_process=True,
    supports_kill_rank=True,
    in_process_hooks=False,
    zero_copy_rma=True,
    needs_launcher=True,
)

# -- socket message framing --------------------------------------------------
#
# Every message starts with one type byte.  FRAME carries one wire
# frame: <III> (ctrl_len, nbufs, refs_len) + nbufs u64 buffer lengths,
# then the raw control bytes, the raw buffer spans, and the pickled
# by-reference table.  DEF advertises one interned handler id:
# <HH> (hid, name_len) + the UTF-8 name.

MSG_FRAME = 0
MSG_DEF = 1

_FRAME_HDR = struct.Struct("<III")
_DEF_HDR = struct.Struct("<HH")
_U16 = struct.Struct("<H")
_NESTED_META = 20  # _5I splice prefix before a nested frame's ctrl

_fabric_ids = itertools.count(1)


def _handler_sites(ctrl) -> list[int]:
    """Byte offsets of every interned handler-id field in a control
    stream: the outer header's, plus — when the payload is a nested
    reliability envelope — each spliced inner frame's, recursively."""
    sites = []
    start = 0
    while True:
        (_ver, _flags, codec_id, _hid, _src, _tok, _aux, _nbuf,
         args_len, _meta_len) = HEADER.unpack_from(ctrl, start)
        sites.append(start + 4)  # handler id at header offset 4
        if codec_id != CODEC_NESTED_AM:
            return sites
        start = start + HEADER.size + args_len + _NESTED_META


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes; raises if the peer closes mid-message."""
    buf = bytearray(n)
    with memoryview(buf) as mv:
        got = 0
        while got < n:
            k = sock.recv_into(mv[got:], n - got)
            if k == 0:
                raise ConnectionResetError(
                    "proc conduit: peer closed mid-message"
                )
            got += k
    return buf


def _buf_span(b):
    """A sendable view of an out-of-band buffer table entry."""
    if isinstance(b, (bytes, bytearray, memoryview)):
        return b
    return memoryview(b)  # e.g. pickle.PickleBuffer


class ProcFabric:
    """Everything the launcher builds *before* forking the ranks.

    Shared-memory segment blocks, cross-process segment locks, the
    full-mesh AM socket pairs, and one bootstrap socket pair per rank.
    File descriptors and lock handles reach the rank processes by fork
    inheritance; :meth:`child_setup` closes the ends a rank does not
    own so peer-exit EOFs propagate and no fd leaks outlive the world.
    """

    def __init__(self, n_ranks: int, segment_size: int):
        self.n_ranks = n_ranks
        self.segment_size = segment_size
        self.uid = f"{os.getpid()}_{next(_fabric_ids)}"
        self.ctx = get_context("fork")
        self.locks = [self.ctx.RLock() for _ in range(n_ranks)]
        self.shms: list[shared_memory.SharedMemory] = []
        try:
            for r in range(n_ranks):
                self.shms.append(shared_memory.SharedMemory(
                    name=f"repro_{self.uid}_r{r}", create=True,
                    size=segment_size,
                ))
        except BaseException:
            self.destroy()
            raise
        #: mesh[(i, j)] for i < j: (rank i's end, rank j's end).
        self.mesh: dict[tuple[int, int],
                        tuple[socket.socket, socket.socket]] = {}
        for i in range(n_ranks):
            for j in range(i + 1, n_ranks):
                self.mesh[(i, j)] = socket.socketpair()
        #: boot[r]: (parent end, rank r's end) — ready/go handshake,
        #: death/failure broadcasts, and the rank's final result.
        self.boot = [socket.socketpair() for _ in range(n_ranks)]
        # Intern every handler registered so far, so the forked
        # processes share one agreed id prefix; ids past this point
        # are per-process and need DEF advertisement on the wire.
        for name in sorted(handler_registry):
            handler_code(name)
        handler_code("__reply__")
        self.agreed_handlers = len(_handler_names)

    # -- fd hygiene ------------------------------------------------------
    def child_setup(self, rank: int) -> None:
        """Called first thing in a rank process: keep only this rank's
        socket ends."""
        for (i, j), (a, b) in self.mesh.items():
            if i == rank:
                b.close()
            elif j == rank:
                a.close()
            else:
                a.close()
                b.close()
        for r, (parent_end, child_end) in enumerate(self.boot):
            parent_end.close()
            if r != rank:
                child_end.close()

    def parent_setup(self) -> None:
        """Called in the launcher after the forks: close the rank ends."""
        for a, b in self.mesh.values():
            a.close()
            b.close()
        for _parent_end, child_end in self.boot:
            child_end.close()

    def mesh_for(self, rank: int) -> dict[int, socket.socket]:
        socks = {}
        for (i, j), (a, b) in self.mesh.items():
            if i == rank:
                socks[j] = a
            elif j == rank:
                socks[i] = b
        return socks

    def boot_child(self, rank: int) -> socket.socket:
        return self.boot[rank][1]

    def boot_parent(self, rank: int) -> socket.socket:
        return self.boot[rank][0]

    # -- segments --------------------------------------------------------
    def make_segment(self, rank: int, size: int) -> Segment:
        """Segment factory handed to :class:`~repro.core.world.World`:
        every rank's segment is a view of its shared-memory block, so
        RMA against *any* rank is a direct mapped access."""
        if size != self.segment_size:
            raise PgasError(
                f"proc fabric built for segment_size={self.segment_size}, "
                f"world asked for {size}"
            )
        buf = np.frombuffer(self.shms[rank].buf, dtype=np.uint8)
        return Segment(size, rank=rank, buf=buf, lock=self.locks[rank])

    def destroy(self) -> None:
        """Launcher-side teardown: close every fd, unlink the blocks."""
        for pair in list(getattr(self, "mesh", {}).values()):
            for s in pair:
                try:
                    s.close()
                except OSError:
                    pass
        for pair in getattr(self, "boot", []):
            for s in pair:
                try:
                    s.close()
                except OSError:
                    pass
        for shm in self.shms:
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        self.shms = []


class ProcConduit(SegmentRma, Conduit):
    """Processes-as-ranks conduit over a pre-forked :class:`ProcFabric`.

    Exists only inside a rank process (``caps.needs_launcher``); the
    launcher (:mod:`repro.core.proclaunch`) builds one per rank.
    """

    caps = PROC_CAPS

    def __init__(self, fabric: ProcFabric, rank: int):
        self.world = None
        self.fabric = fabric
        self.local_rank = rank
        #: Test hook: when set, the next send_am raises (fault injection).
        self.fail_next_am: Exception | None = None
        self._socks = fabric.mesh_for(rank)
        self._send_locks = {p: threading.Lock() for p in self._socks}
        self._advertised: dict[int, set[int]] = {
            p: set() for p in self._socks}
        self._peer_names: dict[int, dict[int, str]] = {
            p: {} for p in self._socks}
        self._agreed = fabric.agreed_handlers
        self._closing = False
        self._recv_thread: threading.Thread | None = None
        # Self-pipe so close() can wake the receiver out of select().
        self._wake_r, self._wake_w = socket.socketpair()
        #: Wire-level counters (the conformance suite's no-pickle /
        #: no-frame assertions read these).
        self.frames_sent = 0
        self.frames_received = 0

    # -- lifecycle -------------------------------------------------------
    def attach(self, world) -> None:
        super().attach(world)
        self._recv_thread = threading.Thread(
            target=self._recv_main,
            name=f"proc-recv-{self.local_rank}", daemon=True,
        )
        self._recv_thread.start()

    def close(self) -> None:
        self._closing = True
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        t = self._recv_thread
        if t is not None:
            t.join(timeout=5.0)
            self._recv_thread = None
        for s in self._socks.values():
            try:
                s.close()
            except OSError:
                pass
        for s in (self._wake_r, self._wake_w):
            try:
                s.close()
            except OSError:
                pass

    # -- active messages -------------------------------------------------
    def send_am(self, src: int, dst: int, am: ActiveMessage) -> None:
        if self.fail_next_am is not None:
            exc, self.fail_next_am = self.fail_next_am, None
            raise exc
        target = self._rank(dst)
        frame = self._encode_and_record(src, am)
        if dst == self.local_rank:
            target.deliver(am)  # loopback: no wire
            return
        self._send_frame(dst, frame)

    def deliver_encoded(self, src: int, dst: int,
                        am: ActiveMessage) -> None:
        from repro.gasnet.wire import encode_am

        if dst == self.local_rank:
            self._rank(dst).deliver(am)
            return
        self._rank(dst)
        self._send_frame(dst, encode_am(am))

    def _send_frame(self, dst: int, frame: Frame) -> None:
        ctrl = frame.ctrl
        bufs = frame.buffers
        refs_blob = b""
        if frame.refs:
            try:
                refs_blob = pickle.dumps(frame.refs, protocol=5)
            except Exception as exc:
                raise SerializationError(
                    f"active message carries {len(frame.refs)} "
                    f"by-reference payload(s) that cannot cross a "
                    f"process boundary on the proc conduit "
                    f"(pickling failed: {exc}); pass by-value-"
                    f"encodable data instead"
                ) from None
        spans = [_buf_span(b) for b in bufs]
        head = bytearray()
        head += bytes((MSG_FRAME,))
        head += _FRAME_HDR.pack(len(ctrl), len(spans), len(refs_blob))
        for mv in spans:
            n = mv.nbytes if isinstance(mv, memoryview) else len(mv)
            head += struct.pack("<Q", n)
        head += ctrl
        sock = self._socks.get(dst)
        if sock is None:
            raise PgasError(
                f"proc conduit: no wire to rank {dst} "
                f"(local rank {self.local_rank})"
            )
        try:
            with self._send_locks[dst]:
                self._advertise_locked(dst, sock, ctrl)
                sock.sendall(head)
                for mv in spans:
                    sock.sendall(mv)
                if refs_blob:
                    sock.sendall(refs_blob)
        except OSError as exc:
            self._send_error(dst, exc)
            return
        self.frames_sent += 1

    def _advertise_locked(self, dst: int, sock: socket.socket,
                          ctrl) -> None:
        """Send DEF records for any post-fork handler id in ``ctrl`` the
        peer has not seen yet (caller holds the send lock, so a DEF
        always precedes the first frame that uses its id)."""
        seen = self._advertised[dst]
        for site in _handler_sites(ctrl):
            hid = _U16.unpack_from(ctrl, site)[0]
            if hid < self._agreed or hid in seen:
                continue
            name = handler_name(hid).encode("utf-8")
            sock.sendall(bytes((MSG_DEF,))
                         + _DEF_HDR.pack(hid, len(name)) + name)
            seen.add(hid)

    def _send_error(self, dst: int, exc: OSError) -> None:
        """A send hit a closed socket: benign during shutdown or when
        the peer already finished; a comm error otherwise."""
        if self._closing:
            return
        world = self.world
        if world is not None and 0 <= dst < world.n_ranks:
            rk = world.ranks[dst]
            if rk.done or rk.dead or rk.body_done:
                return  # trailing chatter to a finished/dead peer
        if exc.errno in (errno.EPIPE, errno.ECONNRESET, errno.ESHUTDOWN,
                         errno.ENOTCONN):
            # On a socketpair these mean exactly one thing: the peer
            # process is gone.  Drop the frame and let the launcher's
            # peer_dead broadcast surface the death as RankDead — a
            # racing send must not mask it as a comm error.
            return
        raise TransientCommError(
            f"proc conduit: send {self.local_rank}->{dst} failed: {exc}"
        ) from exc

    # -- receive side ----------------------------------------------------
    def _recv_main(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self._wake_r, selectors.EVENT_READ, None)
        for p, s in self._socks.items():
            sel.register(s, selectors.EVENT_READ, p)
        open_peers = set(self._socks)
        try:
            while not self._closing:
                for key, _ in sel.select(timeout=0.25):
                    peer = key.data
                    if peer is None:
                        return  # woken by close()
                    try:
                        if not self._recv_one(peer, key.fileobj):
                            sel.unregister(key.fileobj)
                            open_peers.discard(peer)
                    except OSError:
                        if self._closing:
                            return
                        sel.unregister(key.fileobj)
                        open_peers.discard(peer)
                    except BaseException as exc:
                        if self._closing:
                            return
                        if self.world is not None:
                            self.world.fail(self.local_rank, exc)
                        return
                if not open_peers:
                    return
        finally:
            sel.close()

    def _recv_one(self, peer: int, sock: socket.socket) -> bool:
        """Read one message; returns False on a clean peer EOF."""
        first = sock.recv(1)
        if not first:
            return False
        kind = first[0]
        if kind == MSG_DEF:
            hid, nlen = _DEF_HDR.unpack(bytes(
                _recv_exact(sock, _DEF_HDR.size)))
            name = bytes(_recv_exact(sock, nlen)).decode("utf-8")
            self._peer_names[peer][hid] = name
            return True
        if kind != MSG_FRAME:
            raise PgasError(
                f"proc conduit: bad message type {kind} from rank {peer}"
            )
        ctrl_len, nbufs, refs_len = _FRAME_HDR.unpack(bytes(
            _recv_exact(sock, _FRAME_HDR.size)))
        lens = ()
        if nbufs:
            lens = struct.unpack(
                f"<{nbufs}Q", bytes(_recv_exact(sock, 8 * nbufs)))
        ctrl = _recv_exact(sock, ctrl_len)
        # Writable bytearrays: the ndarray codec's zero-copy decode
        # (np.frombuffer) yields writable arrays over them, matching
        # the SMP conduit's by-value delivery semantics.
        buffers = [_recv_exact(sock, n) for n in lens]
        refs: list = []
        if refs_len:
            refs = pickle.loads(bytes(_recv_exact(sock, refs_len)))
        self._translate(peer, ctrl)
        flags = ctrl[1]
        frame = Frame(
            ctrl, buffers, refs, ctrl_len + sum(lens),
            bool(flags & F_USED_PICKLE), bool(flags & F_HAS_REFS),
            pooled=False,
        )
        shell = ActiveMessage(handler="", src_rank=peer)
        shell._frame = frame
        shell._wire_bytes = frame.nbytes
        self.frames_received += 1
        if self.world is not None:
            self.world.ranks[self.local_rank].deliver(shell)
        return True

    def _translate(self, peer: int, ctrl: bytearray) -> None:
        """Rewrite post-fork handler ids to this process's ids."""
        names = self._peer_names[peer]
        for site in _handler_sites(ctrl):
            hid = _U16.unpack_from(ctrl, site)[0]
            if hid < self._agreed:
                continue
            name = names.get(hid)
            if name is None:
                raise PgasError(
                    f"proc conduit: rank {peer} used handler id {hid} "
                    f"without advertising it"
                )
            lid = handler_code(name)
            if lid != hid:
                _U16.pack_into(ctrl, site, lid)


@am_handler("__proc_done__")
def _proc_done_handler(ctx, am: ActiveMessage) -> None:
    """Survivable-death finalize across processes: a rank whose SPMD
    body returned broadcasts this so peers' directory stubs show it
    done-not-dead (the thread backend reads the flag from shared state;
    here it must cross the wire)."""
    world = ctx.world
    if 0 <= am.src_rank < world.n_ranks:
        peer = world.ranks[am.src_rank]
        peer.body_done = True
        peer.done = True
    world.poke_all()
