"""``repro.containers`` — distributed data structures on the PGAS runtime.

The paper's §III-E directory idiom (a ``shared_array`` of per-rank
handles) is the seed of library-level containers in the DASH mold:
structures whose storage is partitioned across ranks and whose methods
compile down to the runtime's one-sided primitives and active messages.

* :class:`DistHashMap` — keys hash-sharded across ranks; owner-side
  storage served by AM handlers; ``put/get/delete/update`` plus batched
  ``multi_get``/``multi_put`` that coalesce into one AM per owning rank;
  optional per-rank read-through cache with epoch-based invalidation.
* :class:`DistQueue` — a FIFO/bag built on the
  :class:`~repro.core.workqueue.DistWorkQueue` steal machinery for
  producer/consumer workloads, with remote push.

Both compose with the rest of the stack: exactly-once mutation under
``ReliableConduit(ChaosConduit)``, ``kv_*`` counters in
:class:`~repro.gasnet.stats.CommStats`, and ``kv_get``/``kv_put``/
``kv_multi`` latency histograms plus flight-recorder events when
telemetry is enabled.
"""

from repro.containers.hashmap import (
    DistHashMap,
    KvOwnerDead,
    KvRedirect,
    KvStalePrimary,
    shard_of,
)
from repro.containers.queue import DistQueue

__all__ = ["DistHashMap", "DistQueue", "shard_of",
           "KvOwnerDead", "KvRedirect", "KvStalePrimary"]
