"""A distributed hash map, sharded across ranks by key hash.

Design
------
* **Sharding** — :func:`shard_of` maps a key to a *shard id* by a
  stable CRC32: str/bytes/int keys hash their raw bytes directly, other
  types fall back to hashing the pickled key.  The shard id space is
  fixed at construction (one shard per rank); which rank *serves* a
  shard is dynamic — a per-client shard table maps shard -> (primary,
  backup), seeded from the construction rendezvous and repaired on
  redirects, failovers, and refreshes.
* **Owner-side storage** — each rank keeps its hosted shard states in
  scratch space, mutated only by AM handlers (or the host's own local
  fast path) under the rank's handler lock, so every mutation is
  serialized at the shard's primary exactly like the paper's
  owner-queued locks.
* **Primary/backup replication** — with ``replicas=1`` every mutation
  is applied at the primary and synchronously logged to the shard's
  backup (fixed-layout ``kv_repl`` records) *before* the client is
  acked, so an acknowledged write survives the death of either rank.
  Per-shard ``repl_epoch`` numbers fence the protocol: a promoted
  backup bumps its repl_epoch, and a deposed (falsely-suspected)
  primary whose log arrives with a stale repl_epoch is rejected with
  :class:`KvStalePrimary` and drops the shard.
* **Failover** — the reliability layer's failure detector feeds
  :meth:`World.mark_dead`; death subscribers and ``dead_ranks`` checks
  let clients fail over to the backup, which self-promotes on the
  first write it receives for a dead primary's shard (bumping
  repl_epoch + epoch, choosing a new backup, re-replicating, and
  republishing its roles through the Directory).
* **Batched ops** — ``multi_get``/``multi_put`` group keys by serving
  rank and issue **one AM per server**, all in flight concurrently —
  the AM-level analogue of the indexed conduit batching contract;
  coalescing lands in the ``kv_multi_ops``/``kv_batched_keys``
  CommStats counters.
* **Read-through cache + read-from-replica** — with ``cache=True``
  each rank memoizes fetched values per shard.  Every shard keeps one
  ``epoch``, bumped on any mutation (and on promotion/migration) and
  piggybacked on every reply; a client observing a newer epoch drops
  that shard's cached entries.  With ``read_replicas=True`` reads
  also round-robin across primary and backup (and are served from a
  locally-hosted backup copy without touching the wire), riding the
  same epoch invalidation.
* **Exactly-once update()** — read-modify-write travels with a
  per-client op-id; the primary records the result of each applied op
  and **replicates the dedup record with the data**, so a client that
  retries after a lost reply — even against a freshly promoted backup
  or a migrated shard — gets the recorded result back instead of a
  second application.
* **Live rebalancing** — :meth:`DistHashMap.rebalance` migrates a
  shard to a chosen rank: the primary freezes the shard (racing ops
  are redirected), ships a full snapshot *including the in-flight
  exactly-once records*, leaves a redirect tombstone, and tells the
  old backup to drop its stale copy.

Consistency model: relaxed.  A ``get`` may return a stale cached (or
replica) value until the client next contacts the shard's primary;
primary-side operations are linearizable per key.  With ``replicas=1``
every *acknowledged* write survives one rank death.
"""

from __future__ import annotations

import functools
import itertools
import pickle
import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Iterable, Mapping

from repro.core import collectives
from repro.core.collectives import _copy_value as _copy
from repro.core.directory import Directory
from repro.core.world import RankState, current, try_current
from repro.telemetry import tracing
from repro.errors import CommTimeout, PeerFailure, PgasError, RankDead
from repro.gasnet.am import am_handler
from repro.gasnet.wire import preencode, tagged

_MISSING = object()

#: Owner-side per-map state lives in the rank's scratch space (the same
#: pattern as the distributed work queues).
_SCRATCH_KEY = "kv_maps"

#: Applied-update results each shard retains: the exactly-once dedup
#: window for client-level retries after a lost reply.
APPLIED_WINDOW = 4096

#: Redirect/failover hops a single client op will chase before giving
#: up (each hop re-resolves the shard table, possibly via the
#: Directory; convergence normally takes one or two).
_MAX_HOPS = 64

#: Named read-modify-write ops resolvable at the owner (no pickling of
#: code objects needed).  ``update()`` also accepts any picklable
#: callable ``fn(old, *args) -> new``.
UPDATE_OPS: dict[str, Callable] = {
    "add": lambda old, arg: old + arg,
    "sub": lambda old, arg: old - arg,
    "mul": lambda old, arg: old * arg,
    "max": lambda old, arg: max(old, arg),
    "min": lambda old, arg: min(old, arg),
    "append": lambda old, arg: old + [arg],
}


def shard_of(key: Any, nshards: int) -> int:
    """Shard id of ``key``: a stable CRC32 of the key's bytes.

    Stable across runs (unlike ``hash()``, which is salted for str),
    so layouts — and therefore benchmarks — are reproducible.  The
    common key types hash their raw bytes directly; anything else keeps
    the original pickled-key fallback, so existing placements of
    exotic keys are unchanged.
    """
    t = type(key)
    if t is str:
        raw = key.encode("utf-8")
    elif t is bytes:
        raw = key
    elif t is int:
        raw = key.to_bytes((key.bit_length() + 8) // 8, "little",
                           signed=True)
    else:
        raw = pickle.dumps(key, protocol=4)
    return zlib.crc32(raw) % nshards


def _resolve_update(op) -> Callable:
    if callable(op):
        return op
    try:
        return UPDATE_OPS[op]
    except (KeyError, TypeError):
        raise PgasError(
            f"unknown update op {op!r}; pass a callable or one of "
            f"{sorted(UPDATE_OPS)}"
        ) from None


def _traced(name: str) -> Callable:
    """Open a causal trace root span around a client kv op.

    Every AM the op sends (the request, a replication hop, retries
    after failover) inherits this span's trace id via the wire-frame
    trailer, so the whole chain — including handler spans on other
    ranks and kv_failover/kv_promote flight events — is one trace.
    No-op (one extra call) when telemetry is inactive.
    """

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            ctx = try_current()
            if ctx is None or not ctx.telemetry.active:
                return fn(self, *args, **kwargs)
            with tracing.span(ctx.telemetry, name):
                return fn(self, *args, **kwargs)

        return wrapper

    return deco


# ---------------------------------------------------------------------------
# protocol exceptions (ship by reference in error replies)
# ---------------------------------------------------------------------------

class KvRedirect(PgasError):
    """The contacted rank does not serve this shard (any more); the
    client should retry at ``hint`` (or refresh its shard table)."""

    def __init__(self, sid: int, hint: int | None = None):
        where = f"; try rank {hint}" if hint is not None else ""
        super().__init__(f"shard {sid} is not served here{where}")
        self.sid = sid
        self.hint = hint


class KvStalePrimary(PgasError):
    """A replication log arrived from a deposed primary: the shard was
    promoted elsewhere under a newer repl_epoch."""

    def __init__(self, sid: int, new_primary: int | None = None):
        where = (f"; new primary is rank {new_primary}"
                 if new_primary is not None else "")
        super().__init__(
            f"stale primary for shard {sid}: a newer replica epoch "
            f"exists{where}")
        self.sid = sid
        self.new_primary = new_primary


class KvOwnerDead(PgasError):
    """A kv op addressed a dead rank and the map has no live replica to
    fail over to — names the op, the dead owner, and the keys hit."""

    def __init__(self, op: str, owner: int, keys, original):
        keys = list(keys)
        shown = ", ".join(repr(k)[:32] for k in keys[:8])
        if len(keys) > 8:
            shown += f", ... ({len(keys)} keys total)"
        super().__init__(
            f"{op}: owner rank {owner} is dead and no live replica is "
            f"available; affected keys: [{shown}] ({original})")
        self.owner = owner
        self.keys = keys
        self.original = original


# ---------------------------------------------------------------------------
# owner side: shard state + replication
# ---------------------------------------------------------------------------

def _new_shard(primary: int, backup: int | None, role: str) -> dict:
    return {
        "store": {},                 # key -> value (this copy's truth)
        "epoch": 0,                  # bumped on every mutation
        "applied": OrderedDict(),    # (src, op_id) -> (epoch, value)
        "repl_epoch": 0,             # bumped on promotion/migration
        "role": role,                # "primary" | "backup"
        "primary": primary,
        "backup": backup,
    }


def _map_state(ctx: RankState, map_id: int) -> dict:
    """This rank's view of map ``map_id`` (create on first touch)."""
    tbl = ctx.scratch.setdefault(_SCRATCH_KEY, {})
    st = tbl.get(map_id)
    if st is None:
        st = tbl[map_id] = {
            "nshards": ctx.world.n_ranks,
            "replicas": 0,
            "dir_id": None,
            "shards": {},            # sid -> shard state
            "moved": {},             # sid -> new primary (tombstones)
        }
    return st


def _snapshot(sh: dict, as_primary: bool) -> dict:
    """A full shard snapshot for ``kv_install`` — store, epochs, and
    the exactly-once dedup records (update() retries must keep deduping
    at the shard's new home)."""
    return {
        "store": dict(sh["store"]),
        "applied": [(src, op_id, ep, val)
                    for (src, op_id), (ep, val) in sh["applied"].items()],
        "epoch": sh["epoch"],
        "repl_epoch": sh["repl_epoch"],
        "primary": sh["primary"],
        "backup": sh["backup"],
        "as_primary": as_primary,
    }


def _pick_backup(ctx: RankState, start: int, exclude) -> int | None:
    """Next live rank after ``start`` (cyclic) outside ``exclude``."""
    n = ctx.world.n_ranks
    dead = ctx.world.dead_ranks
    for i in range(1, n):
        r = (start + i) % n
        if r not in dead and r not in exclude:
            return r
    return None


def _roles_of(st: dict) -> tuple:
    """This rank's shard claims for the Directory: one
    ``(sid, is_primary, repl_epoch, epoch, backup)`` tuple per hosted
    shard."""
    roles = []
    for sid, sh in sorted(st["shards"].items()):
        roles.append((sid, 1 if sh["role"] == "primary" else 0,
                      sh["repl_epoch"], sh["epoch"],
                      -1 if sh["backup"] is None else sh["backup"]))
    return tuple(roles)


def _publish_roles(ctx: RankState, map_id: int, st: dict) -> None:
    """Update this rank's Directory slot in place — handlers can't run
    the collective publish path, but the slot is just a scratch entry."""
    if st["dir_id"] is not None:
        ctx.dir_table[st["dir_id"]] = preencode(
            ("DistHashMap", map_id, _roles_of(st)))


def _promote(ctx: RankState, map_id: int, st: dict, sid: int,
             sh: dict) -> None:
    """Backup -> primary: the old primary is dead.  Bump repl_epoch (to
    fence its stale logs) and epoch (to invalidate client caches), pick
    a new backup, re-replicate, republish roles."""
    old = sh["primary"]
    sh["role"] = "primary"
    sh["primary"] = ctx.rank
    sh["repl_epoch"] += 1
    sh["epoch"] += 1
    nb = (_pick_backup(ctx, ctx.rank, {ctx.rank})
          if st["replicas"] else None)
    sh["backup"] = nb
    ctx.stats.record_kv_promotion()
    tel = ctx.telemetry
    if tel.active:
        tel.flight_event(
            "kv_promote", src=ctx.rank, dst=old,
            detail=f"shard {sid} repl_epoch={sh['repl_epoch']}",
        )
    _publish_roles(ctx, map_id, st)
    if nb is not None:
        # Fire-and-forget full install: per-(src, dst) FIFO puts it
        # ahead of any later incremental kv_repl records we send to the
        # same backup.
        ctx.send_am(nb, "kv_install", args=(map_id, sid),
                    payload=_snapshot(sh, as_primary=False))


def _replicate(ctx: RankState, map_id: int, st: dict, sid: int,
               sh: dict, records: list) -> None:
    """Synchronously log ``records`` to the shard's backup before the
    caller acks the client.  A dead backup is replaced with a blocking
    full install (which already contains the new mutations); a
    KvStalePrimary rejection means *we* were deposed — drop the shard,
    tombstone, and re-raise so the client retries at the new primary."""
    if not st["replicas"]:
        return
    guard = 0
    while True:
        if ctx.rank in ctx.world.dead_ranks:
            # We were declared dead (e.g. partitioned) mid-replication:
            # stop acting as primary — repl_epoch fencing makes any
            # promoted backup reject our stale log anyway.
            raise RankDead(
                f"rank {ctx.rank} declared dead while replicating "
                f"shard {sid}"
            )
        guard += 1
        if guard > 2 * ctx.world.n_ranks + 2:
            sh["backup"] = None  # churn exhausted every candidate
            return
        backup = sh["backup"]
        if backup is None or backup == ctx.rank \
                or backup in ctx.world.dead_ranks:
            nb = _pick_backup(ctx, ctx.rank, {ctx.rank})
            sh["backup"] = nb
            if nb is None:
                return  # sole survivor: nothing to replicate onto
            fut = ctx.send_am(nb, "kv_install", args=(map_id, sid),
                              payload=_snapshot(sh, as_primary=False),
                              expect_reply=True)
            try:
                fut.get()
            except (RankDead, PeerFailure):
                sh["backup"] = None
                continue
            _publish_roles(ctx, map_id, st)
            return  # the install already carries the new records
        fut = ctx.send_am(backup, "kv_repl",
                          args=(map_id, sid, sh["repl_epoch"]),
                          payload=records, expect_reply=True)
        ctx.stats.record_kv_repl(len(records))
        try:
            fut.get()
            return
        except (RankDead, PeerFailure):
            sh["backup"] = None
            continue
        except KvStalePrimary as exc:
            st["shards"].pop(sid, None)
            st["moved"][sid] = (exc.new_primary
                                if exc.new_primary is not None else backup)
            _publish_roles(ctx, map_id, st)
            raise


def _get_state_shard(ctx: RankState, map_id: int, sid: int,
                     write: bool) -> tuple[dict, dict]:
    """Resolve a request to a hosted shard, or raise the protocol
    exception that repairs the client's table.  A write reaching a
    backup whose primary is dead triggers promotion right here — that
    is the automatic-failover moment."""
    st = _map_state(ctx, map_id)
    sh = st["shards"].get(sid)
    if sh is None:
        raise KvRedirect(sid, st["moved"].get(sid))
    if "moving_to" in sh:
        raise KvRedirect(sid, sh["moving_to"])
    if sh["role"] != "primary":
        if write:
            if sh["primary"] in ctx.world.dead_ranks:
                _promote(ctx, map_id, st, sid, sh)
            else:
                raise KvRedirect(sid, sh["primary"])
        else:
            ctx.stats.record_kv_replica_read()
    return st, sh


def _apply_put(sh: dict, items: dict) -> int:
    sh["store"].update(items)
    sh["epoch"] += 1
    return sh["epoch"]


def _apply_delete(sh: dict, keys: list) -> tuple[int, int]:
    store = sh["store"]
    n = 0
    for k in keys:
        if k in store:
            del store[k]
            n += 1
    if n:
        sh["epoch"] += 1
    return sh["epoch"], n


def _record_applied(sh: dict, dedup: tuple, rec: tuple) -> None:
    applied = sh["applied"]
    applied[dedup] = rec
    while len(applied) > APPLIED_WINDOW:
        applied.popitem(last=False)


def _apply_update(sh: dict, src: int, op_id: int, key: Any,
                  fn: Callable, args: tuple, default: Any,
                  has_default: bool) -> tuple[int, Any, bool]:
    """Apply ``fn(old, *args)``, exactly once per (src, op_id): a
    duplicate (client retry after a lost reply — possibly landing on a
    promoted backup) gets the recorded result back without
    re-applying.  Returns (epoch, new, freshly_applied)."""
    dedup = (src, op_id)
    hit = sh["applied"].get(dedup)
    if hit is not None:
        return hit[0], hit[1], False
    store = sh["store"]
    if key in store:
        old = store[key]
    elif has_default:
        old = default
    else:
        raise KeyError(key)
    new = fn(old, *args)
    store[key] = new
    sh["epoch"] += 1
    rec = (sh["epoch"], new)
    _record_applied(sh, dedup, rec)
    return rec[0], rec[1], True


# ---------------------------------------------------------------------------
# AM handlers
# ---------------------------------------------------------------------------
# Request args are ``(map_id, sid, ...)``; ``sid == -1`` marks a
# batched request whose keys the server groups by shard itself.  Reply
# args lead with per-shard epoch pairs — ``(k, sid0, ep0, ..., extra)``
# — so clients invalidate caches at shard granularity.  Payloads travel
# through the fixed-layout codecs (kv_items/kv_keys/kv_found/kv_repl/
# kv_state) bound in the wire registry.

@am_handler("kv_put")
def _kv_put_handler(ctx: RankState, am) -> None:
    map_id, sid = am.args
    items = am.payload
    if sid >= 0:
        groups = {sid: items}
    else:
        nshards = _map_state(ctx, map_id)["nshards"]
        groups = {}
        for k, v in items.items():
            groups.setdefault(shard_of(k, nshards), {})[k] = v
    pairs = []
    for s in sorted(groups):
        chunk = groups[s]
        st, sh = _get_state_shard(ctx, map_id, s, write=True)
        epoch = _apply_put(sh, chunk)
        _replicate(ctx, map_id, st, s, sh, [("put", chunk, epoch)])
        pairs += (s, epoch)
    ctx.reply(am, args=(len(groups), *pairs))


@am_handler("kv_get")
def _kv_get_handler(ctx: RankState, am) -> None:
    map_id, sid = am.args
    keys = am.payload
    found = []
    epochs: dict[int, int] = {}
    if sid >= 0:
        _st, sh = _get_state_shard(ctx, map_id, sid, write=False)
        store = sh["store"]
        found = [(True, store[k]) if k in store else (False, None)
                 for k in keys]
        epochs[sid] = sh["epoch"]
    else:
        nshards = _map_state(ctx, map_id)["nshards"]
        for k in keys:
            s = shard_of(k, nshards)
            _st, sh = _get_state_shard(ctx, map_id, s, write=False)
            store = sh["store"]
            found.append((True, store[k]) if k in store else (False, None))
            epochs[s] = sh["epoch"]
    pairs = []
    for s in sorted(epochs):
        pairs += (s, epochs[s])
    ctx.reply(am, args=(len(epochs), *pairs),
              payload=tagged("kv_found", found))


@am_handler("kv_del")
def _kv_del_handler(ctx: RankState, am) -> None:
    map_id, sid = am.args
    keys = am.payload
    if sid >= 0:
        groups = {sid: keys}
    else:
        nshards = _map_state(ctx, map_id)["nshards"]
        groups = {}
        for k in keys:
            groups.setdefault(shard_of(k, nshards), []).append(k)
    pairs = []
    total = 0
    for s in sorted(groups):
        st, sh = _get_state_shard(ctx, map_id, s, write=True)
        epoch, n = _apply_delete(sh, groups[s])
        total += n
        if n:
            _replicate(ctx, map_id, st, s, sh,
                       [("del", groups[s], epoch)])
        pairs += (s, epoch)
    ctx.reply(am, args=(len(groups), *pairs, total))


@am_handler("kv_update")
def _kv_update_handler(ctx: RankState, am) -> None:
    map_id, sid, op_id = am.args
    key, op, fargs, default, has_default = am.payload
    st, sh = _get_state_shard(ctx, map_id, sid, write=True)
    epoch, new, fresh = _apply_update(
        sh, am.src_rank, op_id, key, _resolve_update(op), fargs,
        default, has_default,
    )
    if fresh:
        # The dedup record rides with the data: a retry that lands on
        # the promoted backup still replays the recorded result.
        _replicate(ctx, map_id, st, sid, sh,
                   [("upd", key, new, am.src_rank, op_id, epoch)])
    ctx.reply(am, args=(1, sid, epoch), payload=new)


@am_handler("kv_repl")
def _kv_repl_handler(ctx: RankState, am) -> None:
    """Backup side of the replication log.  Rejects stale primaries by
    repl_epoch; otherwise replays the records into the local copy."""
    map_id, sid, repl_epoch = am.args
    st = _map_state(ctx, map_id)
    sh = st["shards"].get(sid)
    if sh is None:
        raise KvStalePrimary(sid, st["moved"].get(sid))
    if repl_epoch < sh["repl_epoch"]:
        raise KvStalePrimary(
            sid, ctx.rank if sh["role"] == "primary" else sh["primary"])
    store = sh["store"]
    for rec in am.payload:
        kind = rec[0]
        if kind == "put":
            store.update(rec[1])
            sh["epoch"] = max(sh["epoch"], rec[2])
        elif kind == "del":
            for k in rec[1]:
                store.pop(k, None)
            sh["epoch"] = max(sh["epoch"], rec[2])
        else:  # ("upd", key, value, src, op_id, epoch)
            _, key, value, src, op_id, epoch = rec
            store[key] = value
            _record_applied(sh, (src, op_id), (epoch, value))
            sh["epoch"] = max(sh["epoch"], epoch)
    ctx.reply(am, args=(sh["repl_epoch"],))


@am_handler("kv_install")
def _kv_install_handler(ctx: RankState, am) -> None:
    """Install a full shard snapshot: re-replication onto a new backup,
    or (``as_primary``) the receiving half of a live migration."""
    map_id, sid = am.args
    state = am.payload
    st = _map_state(ctx, map_id)
    cur = st["shards"].get(sid)
    if cur is not None and cur["repl_epoch"] > state["repl_epoch"]:
        # A stale install (an old primary racing a newer promotion).
        if am.token is not None:
            ctx.reply(am, args=(0, sid, cur["epoch"]))
        return
    applied: OrderedDict = OrderedDict()
    for src, op_id, ep, val in state["applied"]:
        applied[(src, op_id)] = (ep, val)
    as_primary = state["as_primary"]
    sh = {
        "store": state["store"],
        "epoch": state["epoch"],
        "applied": applied,
        "repl_epoch": state["repl_epoch"],
        "role": "primary" if as_primary else "backup",
        "primary": ctx.rank if as_primary else state["primary"],
        "backup": state["backup"],
    }
    st["shards"][sid] = sh
    st["moved"].pop(sid, None)
    if as_primary:
        # Migration target: fresh epoch (invalidate caches), new
        # backup, re-replicate, announce.
        sh["epoch"] += 1
        nb = (_pick_backup(ctx, ctx.rank, {ctx.rank})
              if st["replicas"] else None)
        sh["backup"] = nb
        if nb is not None:
            ctx.send_am(nb, "kv_install", args=(map_id, sid),
                        payload=_snapshot(sh, as_primary=False))
    _publish_roles(ctx, map_id, st)
    if am.token is not None:
        ctx.reply(am, args=(1, sid, sh["epoch"]))


@am_handler("kv_migrate")
def _kv_migrate_handler(ctx: RankState, am) -> None:
    """Primary side of rebalance(): freeze, ship, tombstone."""
    map_id, sid, to = am.args
    st, sh = _get_state_shard(ctx, map_id, sid, write=True)
    if to == ctx.rank:
        ctx.reply(am, args=(1, sid, sh["epoch"]))
        return
    if to in ctx.world.dead_ranks:
        raise PgasError(f"rebalance: target rank {to} is dead")
    # Freeze: ops racing the migration are redirected at `to` (the
    # install below precedes their arrival there — tiny retry window
    # covered by the client's redirect chase).
    sh["moving_to"] = to
    try:
        state = _snapshot(sh, as_primary=True)
        state["repl_epoch"] = sh["repl_epoch"] + 1
        fut = ctx.send_am(to, "kv_install", args=(map_id, sid),
                          payload=state, expect_reply=True)
        fut.get()
    except BaseException:
        del sh["moving_to"]  # unfreeze; we still own the shard
        raise
    old_backup = sh["backup"]
    new_re = sh["repl_epoch"] + 1
    st["shards"].pop(sid, None)
    st["moved"][sid] = to
    ctx.stats.record_kv_migration()
    if ctx.telemetry.active:
        ctx.telemetry.flight_event(
            "kv_migrate", src=ctx.rank, dst=to, detail=f"shard {sid}")
    _publish_roles(ctx, map_id, st)
    if old_backup is not None and old_backup != to \
            and old_backup not in ctx.world.dead_ranks:
        ctx.send_am(old_backup, "kv_drop",
                    args=(map_id, sid, new_re, to))
    ctx.reply(am, args=(1, sid, 0))


@am_handler("kv_drop")
def _kv_drop_handler(ctx: RankState, am) -> None:
    """Drop a stale (pre-migration) shard copy, repl_epoch-guarded."""
    map_id, sid, repl_epoch, new_primary = am.args
    st = _map_state(ctx, map_id)
    sh = st["shards"].get(sid)
    if sh is not None and sh["repl_epoch"] < repl_epoch:
        st["shards"].pop(sid, None)
        st["moved"][sid] = new_primary
        _publish_roles(ctx, map_id, st)


@am_handler("kv_epoch")
def _kv_epoch_handler(ctx: RankState, am) -> None:
    map_id, sid = am.args
    st = _map_state(ctx, map_id)
    if sid >= 0:
        sh = st["shards"].get(sid)
        if sh is None:
            raise KvRedirect(sid, st["moved"].get(sid))
        ctx.reply(am, args=(1, sid, sh["epoch"]))
        return
    pairs = []
    n = 0
    for s, sh in sorted(st["shards"].items()):
        if sh["role"] == "primary" and "moving_to" not in sh:
            pairs += (s, sh["epoch"])
            n += 1
    ctx.reply(am, args=(n, *pairs))


@am_handler("kv_size")
def _kv_size_handler(ctx: RankState, am) -> None:
    (map_id,) = am.args
    st = _map_state(ctx, map_id)
    total = sum(len(sh["store"]) for sh in st["shards"].values()
                if sh["role"] == "primary" and "moving_to" not in sh)
    ctx.reply(am, args=(total,))


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------

class DistHashMap:
    """Hash-sharded distributed map; collective constructor.

    >>> m = DistHashMap(replicas=1)  # on every rank
    >>> m.put("user:1", {"n": 1})    # primary + synchronous backup log
    >>> m.multi_get(keys)            # one AM per serving rank

    Parameters
    ----------
    cache:
        Enable the per-rank read-through cache (epoch-invalidated).
    retry_attempts:
        Client-level retries of an op whose reply timed out (only
        reachable under a reliability layer with per-op deadlines).
        ``update`` stays exactly-once across retries via owner-side
        op-id dedup; put/delete are idempotent.
    replicas:
        0 (default) for the classic single-copy map; 1 to log every
        mutation synchronously to a backup rank before acking, making
        acknowledged writes survive one rank death (ignored at 1 rank).
    read_replicas:
        Round-robin reads across primary and backup (and serve reads
        from a locally-hosted backup copy without an AM) — spreads a
        hot shard's read load over two ranks at the cost of slightly
        staler reads.  Requires ``replicas=1``.
    """

    def __init__(self, cache: bool = True, retry_attempts: int = 4,
                 replicas: int = 0, read_replicas: bool = False):
        if replicas not in (0, 1):
            raise PgasError("only replicas=0 or replicas=1 is supported")
        ctx = current()
        mid = next(ctx.world._dir_ids) if ctx.rank == 0 else None
        self.map_id = collectives.bcast(mid, root=0)
        self.nranks = ctx.world.n_ranks
        self.nshards = self.nranks
        self.replicas = replicas if self.nranks > 1 else 0
        self.read_replicas = bool(read_replicas) and self.replicas > 0
        self.retry_attempts = max(1, int(retry_attempts))
        self._op_seq = itertools.count(1)
        self._rr = 0
        self._cache_enabled = bool(cache)
        self._cache: dict[int, dict] = {s: {} for s in range(self.nshards)}
        self.cache_hits = 0
        self.cache_misses = 0
        self.failovers = 0
        self.failover_latencies: list[float] = []
        self._pending_deaths: list[int] = []
        self._dir = Directory()
        with ctx._handler_lock:
            st = _map_state(ctx, self.map_id)
            st["nshards"] = self.nshards
            st["replicas"] = self.replicas
            st["dir_id"] = self._dir.dir_id
            me = ctx.rank
            if me not in st["shards"]:
                st["shards"][me] = _new_shard(
                    primary=me,
                    backup=((me + 1) % self.nranks)
                    if self.replicas else None,
                    role="primary")
            if self.replicas:
                p = (me - 1) % self.nranks
                if p != me and p not in st["shards"]:
                    st["shards"][p] = _new_shard(
                        primary=p, backup=me, role="backup")
            roles = _roles_of(st)
        # Construction rendezvous: publish (type, id, roles) and fetch
        # every rank's slot with one concurrent lookup_all.  Catches
        # misordered collective construction (rank A built a map where
        # rank B built a queue — the id bcasts would silently cross)
        # and seeds the shard table + per-shard epoch view.
        self._dir.publish(("DistHashMap", self.map_id, roles))
        collectives.barrier()
        infos = self._dir.lookup_all(cached=False)
        for r, info in enumerate(infos):
            kind, mid_r = info[0], info[1]
            if kind != "DistHashMap" or mid_r != self.map_id:
                raise PgasError(
                    f"rank {r} constructed {kind}#{mid_r} where this rank "
                    f"constructed DistHashMap#{self.map_id}; collective "
                    f"constructors must run in the same order on all ranks"
                )
        self._table: dict[int, tuple[int, int | None]] = {}
        self._epochs: dict[int, int] = {}
        self._ingest_roles(infos)
        for sid in range(self.nshards):
            self._table.setdefault(
                sid, (sid % self.nranks,
                      ((sid + 1) % self.nranks) if self.replicas
                      else None))
        # Failure-notification hook: deaths recorded by the runtime /
        # reliability detector flip this client's table at its next op.
        ctx.world.on_rank_death(self._on_rank_death)

    # -- plumbing ----------------------------------------------------------
    def shard_of_key(self, key: Any) -> int:
        return shard_of(key, self.nshards)

    def owner_of(self, key: Any) -> int:
        """The rank currently serving ``key``'s shard as primary (per
        this client's shard table)."""
        sid = shard_of(key, self.nshards)
        return self._table.get(sid, (sid % self.nranks, None))[0]

    def _on_rank_death(self, rank: int, exc: BaseException) -> None:
        # Runs on the failure detector's thread: just enqueue; the
        # table flip happens on the owning rank's own thread at its
        # next map operation.
        self._pending_deaths.append(rank)

    def _drain_deaths(self) -> None:
        while self._pending_deaths:
            r = self._pending_deaths.pop()
            for sid, (p, b) in list(self._table.items()):
                if p == r and b is not None and b != r:
                    self._table[sid] = (b, None)
                elif b == r:
                    self._table[sid] = (p, None)

    def _note_epoch(self, sid: int, epoch: int) -> None:
        """Piggybacked epoch from a reply: a newer value invalidates
        everything cached from that shard."""
        if epoch > self._epochs.get(sid, -1):
            self._epochs[sid] = epoch
            if self._cache_enabled:
                self._cache[sid].clear()

    def _note_reply(self, args: tuple) -> tuple:
        """Parse a ``(k, sid0, ep0, ...)`` reply header; returns the
        trailing extras (e.g. kv_del's deleted-count)."""
        k = args[0]
        for i in range(k):
            self._note_epoch(args[1 + 2 * i], args[2 + 2 * i])
        return args[1 + 2 * k:]

    def _ingest_roles(self, infos) -> None:
        """Fold published role claims into the shard table: per shard,
        the primary claim with the highest repl_epoch wins."""
        best: dict[int, tuple] = {}
        for r, info in enumerate(infos):
            if not info:
                continue
            for sid, is_primary, repl_epoch, epoch, backup in info[2]:
                if not is_primary:
                    continue
                cur = best.get(sid)
                if cur is None or repl_epoch > cur[0]:
                    best[sid] = (repl_epoch, r,
                                 None if backup < 0 else backup, epoch)
        for sid, (_re, prim, backup, epoch) in best.items():
            self._table[sid] = (prim, backup if backup != prim else None)
            self._note_epoch(sid, epoch)

    def _refresh_table(self, ctx: RankState) -> None:
        """Re-read live ranks' Directory slots and rebuild the shard
        table (the post-promotion client repair path)."""
        dead = ctx.world.dead_ranks
        futs = {}
        for r in range(self.nranks):
            if r == ctx.rank or r in dead:
                continue
            futs[r] = ctx.send_am(r, "dir_get",
                                  args=(self._dir.dir_id,),
                                  expect_reply=True)
        infos: list = [None] * self.nranks
        infos[ctx.rank] = self._dir.lookup(ctx.rank, cached=False)
        for r, fut in futs.items():
            try:
                _args, obj = fut.get()
            except (RankDead, PeerFailure, CommTimeout):
                continue
            infos[r] = obj
        self._ingest_roles(infos)

    def _failover(self, ctx: RankState, sid: int, dead_rank: int,
                  what: str, t_fail: float | None) -> float:
        """Repoint ``sid`` away from ``dead_rank``; starts the failover
        clock and counters on the first call of an op."""
        if t_fail is None:
            t_fail = time.perf_counter()
            ctx.stats.record_kv_failover()
            self.failovers += 1
            if ctx.telemetry.active:
                ctx.telemetry.flight_event(
                    "kv_failover_start", src=ctx.rank, dst=dead_rank,
                    detail=f"{what} shard {sid}",
                )
        primary, backup = self._table.get(
            sid, (sid % self.nranks, None))
        dead = ctx.world.dead_ranks
        if primary == dead_rank and backup is not None \
                and backup not in dead:
            self._table[sid] = (backup, None)
        elif backup == dead_rank:
            self._table[sid] = (primary, None)
        else:
            ctx.advance()
            self._refresh_table(ctx)
        return t_fail

    def _end_failover(self, ctx: RankState, t_fail: float | None,
                      what: str) -> None:
        if t_fail is None:
            return
        dt = time.perf_counter() - t_fail
        self.failover_latencies.append(dt)
        tel = ctx.telemetry
        if tel.full:
            tel.record_latency("kv_failover", dt)
        if tel.active:
            tel.flight_event(
                "kv_failover", src=ctx.rank, dst=-1,
                detail=f"{what} recovered in {dt * 1e6:.0f}us",
            )

    def _follow_redirect(self, ctx: RankState, exc) -> None:
        hint = getattr(exc, "hint", None)
        if hint is None:
            hint = getattr(exc, "new_primary", None)
        sid = exc.sid
        if hint is not None and hint not in ctx.world.dead_ranks:
            _p, b = self._table.get(sid, (None, None))
            self._table[sid] = (hint, b if b != hint else None)
        else:
            ctx.advance()
            self._refresh_table(ctx)

    def _shard_request(self, ctx: RankState, sid: int, handler: str,
                       extra_args: tuple, payload, what: str,
                       keys: list, read: bool = False):
        """One shard-targeted request with bounded retry, redirect
        chasing, and (with replication) client-side failover."""
        tel = ctx.telemetry
        attempt = 0
        hops = 0
        t_fail = None
        while True:
            self._drain_deaths()
            primary, backup = self._table.get(
                sid, (sid % self.nranks, None))
            dead = ctx.world.dead_ranks
            target = primary
            if read and self.read_replicas and backup is not None \
                    and backup not in dead:
                self._rr += 1
                if self._rr & 1:
                    target = backup
            if target in dead:
                if not self.replicas:
                    raise KvOwnerDead(
                        what, target, keys,
                        RankDead(f"rank {target} is dead"))
                t_fail = self._failover(ctx, sid, target, what, t_fail)
                hops += 1
                if hops > _MAX_HOPS:
                    raise KvOwnerDead(
                        what, target, keys,
                        RankDead(f"no live replica found for shard "
                                 f"{sid} after {hops} attempts"))
                continue
            fut = ctx.send_am(target, handler,
                              args=(self.map_id, sid, *extra_args),
                              payload=payload, expect_reply=True)
            try:
                reply_args, reply_payload = fut.get()
            except CommTimeout:
                attempt += 1
                if attempt >= self.retry_attempts:
                    raise
                tel.flight_event(
                    "kv_retry", src=ctx.rank, dst=target, detail=what,
                )
                continue
            except (RankDead, PeerFailure) as exc:
                if not self.replicas:
                    raise KvOwnerDead(what, target, keys, exc) from exc
                t_fail = self._failover(ctx, sid, target, what, t_fail)
                hops += 1
                if hops > _MAX_HOPS:
                    raise KvOwnerDead(what, target, keys, exc) from exc
                continue
            except (KvRedirect, KvStalePrimary) as exc:
                hops += 1
                if hops > _MAX_HOPS:
                    raise
                self._follow_redirect(ctx, exc)
                continue
            self._end_failover(ctx, t_fail, what)
            return reply_args, reply_payload

    def _local_primary(self, ctx: RankState,
                       sid: int) -> tuple[dict, dict] | None:
        """This rank's primary copy of ``sid`` (None if not hosted /
        not primary / mid-migration).  Caller must re-check under the
        handler lock before mutating."""
        st = _map_state(ctx, self.map_id)
        sh = st["shards"].get(sid)
        if sh is not None and sh["role"] == "primary" \
                and "moving_to" not in sh:
            return st, sh
        return None

    # -- point ops ---------------------------------------------------------
    @_traced("kv_put")
    def put(self, key: Any, value: Any) -> None:
        """Store ``key -> value`` at its shard's primary (last writer
        wins); with ``replicas=1`` the write is also logged to the
        backup before this call returns."""
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        sid = shard_of(key, self.nshards)
        self._drain_deaths()
        ctx.stats.record_kv_put()
        if self._local_primary(ctx, sid) is not None:
            try:
                with ctx._handler_lock:
                    hit = self._local_primary(ctx, sid)
                    if hit is not None:
                        st, sh = hit
                        epoch = _apply_put(sh, {key: _copy(value)})
                        _replicate(ctx, self.map_id, st, sid, sh,
                                   [("put", {key: value}, epoch)])
                        ctx.stats.record_local()
                        self._note_epoch(sid, epoch)
                        if tel.full:
                            tel.record_latency(
                                "kv_put", time.perf_counter() - t0)
                        return
            except KvStalePrimary:
                pass  # deposed under us: fall through to the wire path
        if tel.active:
            tel.flight_event("kv_put", src=ctx.rank,
                             dst=self._table.get(sid, (sid, None))[0],
                             detail=repr(key)[:48])
        args, _pl = self._shard_request(
            ctx, sid, "kv_put", (), {key: value},
            what=f"kv_put({key!r})", keys=[key],
        )
        self._note_reply(args)
        if self._cache_enabled:
            self._cache[sid][key] = _copy(value)  # write-through
        if tel.full:
            tel.record_latency("kv_put", time.perf_counter() - t0)

    @_traced("kv_get")
    def get(self, key: Any, default: Any = _MISSING) -> Any:
        """Fetch ``key`` (cache first); KeyError unless ``default``."""
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        sid = shard_of(key, self.nshards)
        ctx.stats.record_kv_get()
        self._drain_deaths()
        # Local fast path: a hosted primary — or, with read_replicas, a
        # hosted backup copy — serves the read without touching the
        # wire.
        st = _map_state(ctx, self.map_id)
        sh = st["shards"].get(sid)
        if sh is not None and "moving_to" not in sh \
                and (sh["role"] == "primary" or self.read_replicas):
            with ctx._handler_lock:
                sh = st["shards"].get(sid)
                if sh is not None and "moving_to" not in sh \
                        and (sh["role"] == "primary"
                             or self.read_replicas):
                    present = key in sh["store"]
                    val = _copy(sh["store"][key]) if present else None
                    if sh["role"] != "primary":
                        ctx.stats.record_kv_replica_read()
                    ctx.stats.record_local()
                    if tel.full:
                        tel.record_latency(
                            "kv_get", time.perf_counter() - t0)
                    if present:
                        return val
                    if default is not _MISSING:
                        return default
                    raise KeyError(key)
        if self._cache_enabled:
            cached = self._cache[sid]
            if key in cached:
                self.cache_hits += 1
                ctx.stats.record_kv_cache(True)
                if tel.full:
                    tel.record_latency("kv_get",
                                       time.perf_counter() - t0)
                # Copy on the way out: gets hand back private values
                # everywhere, so a caller mutating its result can never
                # corrupt the cache (or, via the SMP by-reference
                # conduit, the owner's store).
                return _copy(cached[key])
            self.cache_misses += 1
            ctx.stats.record_kv_cache(False)
        if tel.active:
            tel.flight_event("kv_get", src=ctx.rank,
                             dst=self._table.get(sid, (sid, None))[0],
                             detail=repr(key)[:48])
        args, payload = self._shard_request(
            ctx, sid, "kv_get", (), [key],
            what=f"kv_get({key!r})", keys=[key], read=True,
        )
        [(found, val)] = payload
        self._note_reply(args)
        if found and self._cache_enabled:
            self._cache[sid][key] = val
            val = _copy(val)  # the cached object stays private
        if tel.full:
            tel.record_latency("kv_get", time.perf_counter() - t0)
        if found:
            return val
        if default is not _MISSING:
            return default
        raise KeyError(key)

    @_traced("kv_del")
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns whether it was present."""
        ctx = current()
        sid = shard_of(key, self.nshards)
        self._drain_deaths()
        ctx.stats.record_kv_delete()
        if self._local_primary(ctx, sid) is not None:
            try:
                with ctx._handler_lock:
                    hit = self._local_primary(ctx, sid)
                    if hit is not None:
                        st, sh = hit
                        epoch, n = _apply_delete(sh, [key])
                        if n:
                            _replicate(ctx, self.map_id, st, sid, sh,
                                       [("del", [key], epoch)])
                        ctx.stats.record_local()
                        self._note_epoch(sid, epoch)
                        return n > 0
            except KvStalePrimary:
                pass
        if ctx.telemetry.active:
            ctx.telemetry.flight_event(
                "kv_del", src=ctx.rank,
                dst=self._table.get(sid, (sid, None))[0],
                detail=repr(key)[:48],
            )
        args, _pl = self._shard_request(
            ctx, sid, "kv_del", (), [key],
            what=f"kv_del({key!r})", keys=[key],
        )
        (n,) = self._note_reply(args)
        return n > 0

    @_traced("kv_update")
    def update(self, key: Any, op, *args, default: Any = _MISSING) -> Any:
        """Atomic read-modify-write at the primary; returns the new
        value.

        ``op`` is a name from :data:`UPDATE_OPS` or a picklable callable
        ``fn(old, *args) -> new``.  ``default`` seeds a missing key.
        Exactly-once even when the reply is lost and the call retries —
        including a retry that lands on a freshly promoted backup: the
        dedup record replicates with the data, so the new primary
        replays the recorded result instead of re-applying.
        """
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        sid = shard_of(key, self.nshards)
        op_id = next(self._op_seq)
        has_default = default is not _MISSING
        self._drain_deaths()
        ctx.stats.record_kv_update()
        if self._local_primary(ctx, sid) is not None:
            try:
                with ctx._handler_lock:
                    hit = self._local_primary(ctx, sid)
                    if hit is not None:
                        st, sh = hit
                        epoch, new, fresh = _apply_update(
                            sh, ctx.rank, op_id, key,
                            _resolve_update(op),
                            tuple(_copy(a) for a in args),
                            _copy(default) if has_default else None,
                            has_default,
                        )
                        if fresh:
                            _replicate(
                                ctx, self.map_id, st, sid, sh,
                                [("upd", key, new, ctx.rank, op_id,
                                  epoch)])
                        new = _copy(new)
                        ctx.stats.record_local()
                        self._note_epoch(sid, epoch)
                        if tel.full:
                            tel.record_latency(
                                "kv_put", time.perf_counter() - t0)
                        return new
            except KvStalePrimary:
                pass
        _resolve_update(op)  # fail fast on a bogus name
        if tel.active:
            tel.flight_event("kv_update", src=ctx.rank,
                             dst=self._table.get(sid, (sid, None))[0],
                             detail=repr(key)[:48])
        payload = (key, op, args, default if has_default else None,
                   has_default)
        rargs, new = self._shard_request(
            ctx, sid, "kv_update", (op_id,), payload,
            what=f"kv_update({key!r})#op{op_id}", keys=[key],
        )
        self._note_reply(rargs)
        if self._cache_enabled:
            self._cache[sid][key] = _copy(new)
        if tel.full:
            tel.record_latency("kv_put", time.perf_counter() - t0)
        return new

    # -- batched ops -------------------------------------------------------
    def _group_by_target(self, ctx: RankState, keys) -> dict[int, list]:
        """Group keys by the rank currently serving their shard (the
        failover-aware replacement for group-by-owner)."""
        dead = ctx.world.dead_ranks
        groups: dict[int, list] = {}
        for k in keys:
            sid = shard_of(k, self.nshards)
            primary, backup = self._table.get(
                sid, (sid % self.nranks, None))
            target = primary
            if target in dead and self.replicas and backup is not None \
                    and backup not in dead:
                target = backup
            groups.setdefault(target, []).append(k)
        return groups

    def _multi_fail(self, ctx: RankState, op: str, target: int,
                    ks: list, exc, t_fail, hops: int):
        """Shared RankDead/PeerFailure handling for the batched ops:
        fail fast (with the kv diagnostic) when unreplicated, otherwise
        repoint every affected shard and signal a retry."""
        if not self.replicas:
            raise KvOwnerDead(op, target, ks, exc) from exc
        if hops > _MAX_HOPS:
            raise KvOwnerDead(op, target, ks, exc) from exc
        for sid in {shard_of(k, self.nshards) for k in ks}:
            t_fail = self._failover(ctx, sid, target, op, t_fail)
        return t_fail

    @_traced("kv_multi_get")
    def multi_get(self, keys: Iterable[Any],
                  default: Any = _MISSING) -> list:
        """Fetch many keys with **one AM per serving rank**, issued
        concurrently; returns values aligned with ``keys``.

        Cache hits and locally-hosted keys never touch the wire; only
        the remaining misses are coalesced.  KeyError on any missing
        key unless ``default`` is given.  If a serving rank dies
        mid-op: with replication the affected keys retry against the
        promoted backup; without it the op fails fast with a
        diagnostic naming the dead owner and the keys it held.
        """
        keys = list(keys)
        if not keys:
            return []
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        self._drain_deaths()
        out: list = [_MISSING] * len(keys)
        missing: list = []
        key_pos: dict[Any, list[int]] = {}
        st = _map_state(ctx, self.map_id)
        for pos, k in enumerate(keys):
            sid = shard_of(k, self.nshards)
            sh = st["shards"].get(sid)
            if sh is not None and "moving_to" not in sh \
                    and (sh["role"] == "primary" or self.read_replicas):
                with ctx._handler_lock:
                    present = k in sh["store"]
                    val = _copy(sh["store"][k]) if present else None
                if sh["role"] != "primary":
                    ctx.stats.record_kv_replica_read()
                ctx.stats.record_local()
                if present:
                    out[pos] = val
                else:
                    missing.append(k)
                    out[pos] = None if default is _MISSING else default
                continue
            if self._cache_enabled and k in self._cache[sid]:
                self.cache_hits += 1
                ctx.stats.record_kv_cache(True)
                out[pos] = _copy(self._cache[sid][k])
                continue
            if self._cache_enabled:
                self.cache_misses += 1
                ctx.stats.record_kv_cache(False)
            key_pos.setdefault(k, []).append(pos)
        ctx.stats.record_kv_get(len(keys))
        pending = list(key_pos)
        first_round = True
        attempt = 0
        hops = 0
        t_fail = None
        while pending:
            groups = self._group_by_target(ctx, pending)
            if first_round:
                first_round = False
                ctx.stats.record_kv_multi(len(groups), len(pending))
                if tel.active:
                    tel.flight_event(
                        "kv_multi_get", src=ctx.rank, dst=-1,
                        detail=(f"{len(pending)} keys -> "
                                f"{len(groups)} servers"),
                    )
            dead = ctx.world.dead_ranks
            # Issue every server's AM before gathering any reply — the
            # round trips overlap instead of serializing.
            futs = {
                t: ctx.send_am(t, "kv_get", args=(self.map_id, -1),
                               payload=ks, expect_reply=True)
                for t, ks in groups.items() if t not in dead
            }
            next_pending: list = []
            for t, ks in groups.items():
                fut = futs.get(t)
                if fut is None:  # dead before send, no live fallback
                    hops += 1
                    t_fail = self._multi_fail(
                        ctx, "multi_get", t, ks,
                        RankDead(f"rank {t} is dead"), t_fail, hops)
                    next_pending += ks
                    continue
                try:
                    rargs, payload = fut.get()
                except CommTimeout:
                    attempt += 1
                    if attempt >= self.retry_attempts:
                        raise CommTimeout(
                            f"multi_get: rank {t} unreachable after "
                            f"{attempt} attempts ({len(ks)} keys)")
                    next_pending += ks
                    continue
                except (RankDead, PeerFailure) as exc:
                    hops += 1
                    t_fail = self._multi_fail(
                        ctx, "multi_get", t, ks, exc, t_fail, hops)
                    next_pending += ks
                    continue
                except (KvRedirect, KvStalePrimary) as exc:
                    hops += 1
                    if hops > _MAX_HOPS:
                        raise
                    self._follow_redirect(ctx, exc)
                    next_pending += ks
                    continue
                self._note_reply(rargs)
                for k, (ok, val) in zip(ks, payload):
                    sid = shard_of(k, self.nshards)
                    if ok and self._cache_enabled:
                        self._cache[sid][k] = val
                        # keep the cached object private to the cache
                        val = _copy(val)
                    for pos in key_pos[k]:
                        if ok:
                            out[pos] = val
                        else:
                            out[pos] = (None if default is _MISSING
                                        else default)
                    if not ok:
                        missing.append(k)
            pending = next_pending
        self._end_failover(ctx, t_fail, "multi_get")
        if tel.full:
            tel.record_latency("kv_multi", time.perf_counter() - t0)
        if missing and default is _MISSING:
            raise KeyError(missing[0])
        return out

    @_traced("kv_multi_put")
    def multi_put(self, items) -> None:
        """Store many pairs with one AM per serving rank (concurrent).

        ``items`` is a mapping or an iterable of ``(key, value)``.
        Observes no write-through (a bulk load would evict the working
        set); the epoch bumps invalidate affected shards' caches.
        Under rank death: replicated maps retry the affected chunk
        against the promoted backup (server-side grouping by shard
        keeps the retry idempotent); unreplicated maps fail fast
        naming the dead owner and its keys.
        """
        pairs = list(items.items()) if isinstance(items, Mapping) \
            else list(items)
        if not pairs:
            return
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        self._drain_deaths()
        data: dict = {}
        for k, v in pairs:
            data[k] = v  # within one batch the last write wins
        ctx.stats.record_kv_put(len(pairs))
        st = _map_state(ctx, self.map_id)
        by_sid: dict[int, dict] = {}
        for k, v in data.items():
            by_sid.setdefault(shard_of(k, self.nshards), {})[k] = v
        remote: dict = {}
        for sid, chunk in by_sid.items():
            if self._local_primary(ctx, sid) is None:
                remote.update(chunk)
                continue
            applied = False
            try:
                with ctx._handler_lock:
                    hit = self._local_primary(ctx, sid)
                    if hit is not None:
                        stt, sh = hit
                        epoch = _apply_put(
                            sh, {k: _copy(v) for k, v in chunk.items()})
                        applied = True
                        _replicate(ctx, self.map_id, stt, sid, sh,
                                   [("put", chunk, epoch)])
                        ctx.stats.record_local(len(chunk))
                        self._note_epoch(sid, epoch)
            except KvStalePrimary:
                applied = False  # deposed: re-send through the wire path
            if not applied:
                remote.update(chunk)
        pending = list(remote)
        first_round = True
        attempt = 0
        hops = 0
        t_fail = None
        while pending:
            groups = self._group_by_target(ctx, pending)
            if first_round:
                first_round = False
                ctx.stats.record_kv_multi(len(groups), len(pending))
                if tel.active:
                    tel.flight_event(
                        "kv_multi_put", src=ctx.rank, dst=-1,
                        detail=(f"{len(pending)} keys -> "
                                f"{len(groups)} servers"),
                    )
            dead = ctx.world.dead_ranks
            futs = {
                t: ctx.send_am(t, "kv_put", args=(self.map_id, -1),
                               payload={k: remote[k] for k in ks},
                               expect_reply=True)
                for t, ks in groups.items() if t not in dead
            }
            next_pending: list = []
            for t, ks in groups.items():
                fut = futs.get(t)
                if fut is None:
                    hops += 1
                    t_fail = self._multi_fail(
                        ctx, "multi_put", t, ks,
                        RankDead(f"rank {t} is dead"), t_fail, hops)
                    next_pending += ks
                    continue
                try:
                    rargs, _pl = fut.get()
                except CommTimeout:
                    attempt += 1
                    if attempt >= self.retry_attempts:
                        raise CommTimeout(
                            f"multi_put: rank {t} unreachable after "
                            f"{attempt} attempts ({len(ks)} keys)")
                    next_pending += ks
                    continue
                except (RankDead, PeerFailure) as exc:
                    hops += 1
                    t_fail = self._multi_fail(
                        ctx, "multi_put", t, ks, exc, t_fail, hops)
                    next_pending += ks
                    continue
                except (KvRedirect, KvStalePrimary) as exc:
                    hops += 1
                    if hops > _MAX_HOPS:
                        raise
                    self._follow_redirect(ctx, exc)
                    next_pending += ks
                    continue
                self._note_reply(rargs)
            pending = next_pending
        self._end_failover(ctx, t_fail, "multi_put")
        if tel.full:
            tel.record_latency("kv_multi", time.perf_counter() - t0)

    # -- rebalancing -------------------------------------------------------
    def rebalance(self, shard: int, to: int) -> None:
        """Migrate ``shard`` to rank ``to`` (live): the current primary
        freezes the shard, ships a snapshot **including the in-flight
        exactly-once update records**, leaves a redirect tombstone, and
        the target re-replicates onto a fresh backup.  Racing ops chase
        the redirect; acknowledged writes are never lost."""
        ctx = current()
        sid = int(shard)
        to = int(to)
        if not 0 <= sid < self.nshards:
            raise PgasError(f"rebalance: no such shard {sid}")
        if not 0 <= to < self.nranks:
            raise PgasError(f"rebalance: no such rank {to}")
        if to in ctx.world.dead_ranks:
            raise PgasError(f"rebalance: target rank {to} is dead")
        if ctx.telemetry.active:
            ctx.telemetry.flight_event(
                "kv_rebalance", src=ctx.rank, dst=to,
                detail=f"shard {sid}")
        self._shard_request(
            ctx, sid, "kv_migrate", (to,), None,
            what=f"kv_migrate(shard {sid} -> rank {to})", keys=[],
        )
        self._table[sid] = (to, None)
        if self._cache_enabled:
            self._cache[sid].clear()

    # -- cache control -----------------------------------------------------
    def refresh(self) -> None:
        """Revalidate this client's view: with replication, re-read the
        shard table from the Directory (post-promotion repair); with
        caching, fetch every live rank's shard epochs with concurrently
        issued AMs and drop stale entries (the explicit fence of the
        relaxed consistency model).  After refresh() returns, reads see
        every write acknowledged before the failover."""
        ctx = current()
        self._drain_deaths()
        if self.replicas:
            self._refresh_table(ctx)
        if not self._cache_enabled:
            return
        dead = ctx.world.dead_ranks
        futs = {
            r: ctx.send_am(r, "kv_epoch", args=(self.map_id, -1),
                           expect_reply=True)
            for r in range(self.nranks)
            if r != ctx.rank and r not in dead
        }
        for r, fut in futs.items():
            try:
                args, _pl = fut.get()
            except (RankDead, PeerFailure, CommTimeout):
                continue
            self._note_reply(args)
        st = _map_state(ctx, self.map_id)
        with ctx._handler_lock:
            for sid, sh in st["shards"].items():
                if sh["role"] == "primary":
                    self._note_epoch(sid, sh["epoch"])

    def invalidate_cache(self) -> None:
        """Drop every cached entry unconditionally."""
        for d in self._cache.values():
            d.clear()

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # -- introspection -----------------------------------------------------
    def __contains__(self, key: Any) -> bool:
        return self.get(key, default=_MISSING2) is not _MISSING2

    def local_size(self) -> int:
        """Entries in the primary shards hosted by the calling rank."""
        ctx = current()
        st = _map_state(ctx, self.map_id)
        with ctx._handler_lock:
            return sum(
                len(sh["store"]) for sh in st["shards"].values()
                if sh["role"] == "primary" and "moving_to" not in sh)

    def local_keys(self) -> list:
        ctx = current()
        st = _map_state(ctx, self.map_id)
        out: list = []
        with ctx._handler_lock:
            for sh in st["shards"].values():
                if sh["role"] == "primary" and "moving_to" not in sh:
                    out.extend(sh["store"])
        return out

    def local_shards(self) -> dict[int, str]:
        """Shard ids hosted by the calling rank -> role."""
        ctx = current()
        st = _map_state(ctx, self.map_id)
        with ctx._handler_lock:
            return {sid: sh["role"]
                    for sid, sh in sorted(st["shards"].items())}

    def size(self) -> int:
        """Global entry count over primary shards (non-collective:
        servers answer AMs concurrently; callers racing with writers
        or failovers see a fuzzy count).  Dead ranks are skipped."""
        ctx = current()
        dead = ctx.world.dead_ranks
        futs = [
            ctx.send_am(r, "kv_size", args=(self.map_id,),
                        expect_reply=True)
            for r in range(self.nranks)
            if r != ctx.rank and r not in dead
        ]
        total = self.local_size()
        for fut in futs:
            try:
                (count, *_), _pl = fut.get()
            except (RankDead, PeerFailure):
                continue
            total += count
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DistHashMap(id={self.map_id}, shards={self.nshards}, "
                f"replicas={self.replicas}, "
                f"cache={'on' if self._cache_enabled else 'off'})")


_MISSING2 = object()
