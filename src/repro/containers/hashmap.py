"""A distributed hash map, sharded across ranks by key hash.

Design
------
* **Sharding** — :func:`shard_of` maps a key to its owning rank by a
  stable CRC32: str/bytes/int keys hash their raw bytes directly, other
  types fall back to hashing the pickled key.  All storage for a key
  lives on its owner; there is no replication.
* **Owner-side storage** — each rank keeps a plain dict per map in its
  scratch space, mutated only by AM handlers (or the owner's own local
  fast path) under the rank's handler lock, so every mutation is
  serialized at the owner exactly like the paper's owner-queued locks.
* **Batched ops** — ``multi_get``/``multi_put`` group keys by owning
  rank and issue **one AM per owner**, all in flight concurrently
  (futures gathered at the end) — the AM-level analogue of the indexed
  conduit batching contract; coalescing lands in the ``kv_multi_ops``/
  ``kv_batched_keys`` CommStats counters.
* **Read-through cache** — with ``cache=True`` each rank memoizes
  values it fetched, keyed by owning rank.  Every owner keeps one
  ``cache_epoch`` per map, bumped on any mutation and piggybacked on
  every reply; a client that observes a newer epoch drops its cached
  entries for that owner.  Invalidation is therefore *best-effort
  between contacts*: a rank that never talks to an owner learns nothing
  — call :meth:`DistHashMap.refresh` (or take any miss) to revalidate.
* **Exactly-once update()** — read-modify-write travels with a
  per-client op-id; the owner records the result of each applied op
  (the AM-level form of the reliable conduit's old-value-recording
  atomics), so a client that retries after a lost reply gets the
  recorded result back instead of a second application.

Consistency model: relaxed.  A ``get`` may return a stale cached value
until the client next contacts the owner; owner-side operations are
linearizable per key (the owner applies them one at a time).
"""

from __future__ import annotations

import itertools
import pickle
import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Iterable, Mapping

from repro.core import collectives
from repro.core.collectives import _copy_value as _copy
from repro.core.directory import Directory
from repro.core.world import RankState, current
from repro.errors import CommTimeout, PgasError
from repro.gasnet.am import am_handler
from repro.gasnet.wire import tagged

_MISSING = object()

#: Owner-side per-map state lives in the rank's scratch space (the same
#: pattern as the distributed work queues).
_SCRATCH_KEY = "kv_maps"

#: Applied-update results each owner retains per map: the exactly-once
#: dedup window for client-level retries after a lost reply.
APPLIED_WINDOW = 4096

#: Named read-modify-write ops resolvable at the owner (no pickling of
#: code objects needed).  ``update()`` also accepts any picklable
#: callable ``fn(old, *args) -> new``.
UPDATE_OPS: dict[str, Callable] = {
    "add": lambda old, arg: old + arg,
    "sub": lambda old, arg: old - arg,
    "mul": lambda old, arg: old * arg,
    "max": lambda old, arg: max(old, arg),
    "min": lambda old, arg: min(old, arg),
    "append": lambda old, arg: old + [arg],
}


def shard_of(key: Any, nranks: int) -> int:
    """Owning rank of ``key``: a stable CRC32 of the key's bytes.

    Stable across runs (unlike ``hash()``, which is salted for str),
    so layouts — and therefore benchmarks — are reproducible.  The
    common key types hash their raw bytes directly; anything else keeps
    the original pickled-key fallback, so existing placements of
    exotic keys are unchanged.
    """
    t = type(key)
    if t is str:
        raw = key.encode("utf-8")
    elif t is bytes:
        raw = key
    elif t is int:
        raw = key.to_bytes((key.bit_length() + 8) // 8, "little",
                           signed=True)
    else:
        raw = pickle.dumps(key, protocol=4)
    return zlib.crc32(raw) % nranks


def _resolve_update(op) -> Callable:
    if callable(op):
        return op
    try:
        return UPDATE_OPS[op]
    except (KeyError, TypeError):
        raise PgasError(
            f"unknown update op {op!r}; pass a callable or one of "
            f"{sorted(UPDATE_OPS)}"
        ) from None


# ---------------------------------------------------------------------------
# owner side: storage + AM handlers
# ---------------------------------------------------------------------------

def _shard(ctx: RankState, map_id: int) -> dict:
    """This rank's shard of map ``map_id`` (create on first touch)."""
    tbl = ctx.scratch.setdefault(_SCRATCH_KEY, {})
    sh = tbl.get(map_id)
    if sh is None:
        sh = tbl[map_id] = {
            "store": {},                 # key -> value (owner's truth)
            "epoch": 0,                  # bumped on every mutation
            "applied": OrderedDict(),    # (src, op_id) -> (epoch, value)
        }
    return sh


def _owner_put(ctx: RankState, map_id: int, items: dict) -> int:
    sh = _shard(ctx, map_id)
    sh["store"].update(items)
    sh["epoch"] += 1
    return sh["epoch"]


def _owner_get(ctx: RankState, map_id: int, keys: list) -> tuple:
    sh = _shard(ctx, map_id)
    store = sh["store"]
    return sh["epoch"], [
        (True, store[k]) if k in store else (False, None) for k in keys
    ]


def _owner_delete(ctx: RankState, map_id: int, keys: list) -> tuple:
    sh = _shard(ctx, map_id)
    store = sh["store"]
    n = 0
    for k in keys:
        if k in store:
            del store[k]
            n += 1
    if n:
        sh["epoch"] += 1
    return sh["epoch"], n


def _owner_update(ctx: RankState, map_id: int, src: int, op_id: int,
                  key: Any, fn: Callable, args: tuple,
                  default: Any, has_default: bool) -> tuple:
    """Apply ``fn(old, *args)`` at the owner, exactly once per
    (src, op_id): a duplicate (client retry after a lost reply) gets the
    recorded result back without re-applying."""
    sh = _shard(ctx, map_id)
    dedup = (src, op_id)
    hit = sh["applied"].get(dedup)
    if hit is not None:
        return hit
    store = sh["store"]
    if key in store:
        old = store[key]
    elif has_default:
        old = default
    else:
        raise KeyError(key)
    new = fn(old, *args)
    store[key] = new
    sh["epoch"] += 1
    rec = (sh["epoch"], new)
    applied = sh["applied"]
    applied[dedup] = rec
    while len(applied) > APPLIED_WINDOW:
        applied.popitem(last=False)
    return rec


# Request payloads arrive pre-decoded by the wire layer (the kv_put /
# kv_get / kv_del handlers are bound to fixed-layout codecs); replies
# carry values back through the same codecs via ``tagged``.

@am_handler("kv_put")
def _kv_put_handler(ctx: RankState, am) -> None:
    (map_id,) = am.args
    epoch = _owner_put(ctx, map_id, am.payload)
    ctx.reply(am, args=(epoch,))


@am_handler("kv_get")
def _kv_get_handler(ctx: RankState, am) -> None:
    (map_id,) = am.args
    epoch, found = _owner_get(ctx, map_id, am.payload)
    ctx.reply(am, args=(epoch,), payload=tagged("kv_found", found))


@am_handler("kv_del")
def _kv_del_handler(ctx: RankState, am) -> None:
    (map_id,) = am.args
    epoch, n = _owner_delete(ctx, map_id, am.payload)
    ctx.reply(am, args=(epoch, n))


@am_handler("kv_update")
def _kv_update_handler(ctx: RankState, am) -> None:
    map_id, op_id = am.args
    key, op, fargs, default, has_default = am.payload
    epoch, new = _owner_update(
        ctx, map_id, am.src_rank, op_id, key, _resolve_update(op),
        fargs, default, has_default,
    )
    ctx.reply(am, args=(epoch,), payload=new)


@am_handler("kv_epoch")
def _kv_epoch_handler(ctx: RankState, am) -> None:
    (map_id,) = am.args
    ctx.reply(am, args=(_shard(ctx, map_id)["epoch"],))


@am_handler("kv_size")
def _kv_size_handler(ctx: RankState, am) -> None:
    (map_id,) = am.args
    sh = _shard(ctx, map_id)
    ctx.reply(am, args=(sh["epoch"], len(sh["store"])))


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------

class DistHashMap:
    """Hash-sharded distributed map; collective constructor.

    >>> m = DistHashMap()            # on every rank
    >>> m.put("user:1", {"n": 1})    # lands on shard_of("user:1")
    >>> m.multi_get(keys)            # one AM per owning rank

    Parameters
    ----------
    cache:
        Enable the per-rank read-through cache (epoch-invalidated).
    retry_attempts:
        Client-level retries of an op whose reply timed out (only
        reachable under a reliability layer with per-op deadlines).
        ``update`` stays exactly-once across retries via owner-side
        op-id dedup; put/delete are idempotent.
    """

    def __init__(self, cache: bool = True, retry_attempts: int = 4):
        ctx = current()
        mid = next(ctx.world._dir_ids) if ctx.rank == 0 else None
        self.map_id = collectives.bcast(mid, root=0)
        self.nranks = ctx.world.n_ranks
        self.retry_attempts = max(1, int(retry_attempts))
        self._op_seq = itertools.count(1)
        self._cache_enabled = bool(cache)
        self._cache: dict[int, dict] = {r: {} for r in range(self.nranks)}
        self.cache_hits = 0
        self.cache_misses = 0
        with ctx._handler_lock:
            sh = _shard(ctx, self.map_id)  # exists before any traffic
        # Construction rendezvous: publish (type, id, epoch) and fetch
        # every rank's slot with one concurrent lookup_all.  Catches
        # misordered collective construction (rank A built a map where
        # rank B built a queue — the id bcasts would silently cross) and
        # seeds the per-owner epoch table for cache validation.
        self._dir = Directory()
        self._dir.publish(("DistHashMap", self.map_id, sh["epoch"]))
        collectives.barrier()
        infos = self._dir.lookup_all()
        for r, info in enumerate(infos):
            kind, mid_r = info[0], info[1]
            if kind != "DistHashMap" or mid_r != self.map_id:
                raise PgasError(
                    f"rank {r} constructed {kind}#{mid_r} where this rank "
                    f"constructed DistHashMap#{self.map_id}; collective "
                    f"constructors must run in the same order on all ranks"
                )
        self._epochs = {r: infos[r][2] for r in range(self.nranks)}

    # -- plumbing ----------------------------------------------------------
    def owner_of(self, key: Any) -> int:
        """The rank whose shard stores ``key``."""
        return shard_of(key, self.nranks)

    def _note_epoch(self, owner: int, epoch: int) -> None:
        """Piggybacked epoch from a reply: a newer value invalidates
        everything cached from that owner."""
        if epoch > self._epochs.get(owner, -1):
            self._epochs[owner] = epoch
            if self._cache_enabled:
                self._cache[owner].clear()

    def _request(self, ctx: RankState, owner: int, handler: str,
                 args: tuple, payload, what: str):
        """One request AM with bounded retry on a timed-out reply."""
        attempt = 0
        while True:
            fut = ctx.send_am(owner, handler, args=args, payload=payload,
                              expect_reply=True)
            try:
                return fut.get()
            except CommTimeout:
                attempt += 1
                if attempt >= self.retry_attempts:
                    raise
                ctx.telemetry.flight_event(
                    "kv_retry", src=ctx.rank, dst=owner, detail=what,
                )

    # -- point ops ---------------------------------------------------------
    def put(self, key: Any, value: Any) -> None:
        """Store ``key -> value`` at its owner (last writer wins)."""
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        owner = self.owner_of(key)
        if owner == ctx.rank:
            with ctx._handler_lock:
                epoch = _owner_put(ctx, self.map_id, {key: _copy(value)})
            ctx.stats.record_local()
        else:
            if tel.active:
                tel.flight_event("kv_put", src=ctx.rank, dst=owner,
                                 detail=repr(key)[:48])
            (epoch, *_), _pl = self._request(
                ctx, owner, "kv_put", (self.map_id,), {key: value},
                what=f"kv_put({key!r})",
            )
        ctx.stats.record_kv_put()
        self._note_epoch(owner, epoch)
        if self._cache_enabled and owner != ctx.rank:
            self._cache[owner][key] = _copy(value)  # write-through
        if tel.full:
            tel.record_latency("kv_put", time.perf_counter() - t0)

    def get(self, key: Any, default: Any = _MISSING) -> Any:
        """Fetch ``key`` (cache first); KeyError unless ``default``."""
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        owner = self.owner_of(key)
        ctx.stats.record_kv_get()
        if owner == ctx.rank:
            sh = _shard(ctx, self.map_id)
            with ctx._handler_lock:
                present = key in sh["store"]
                val = _copy(sh["store"][key]) if present else None
            ctx.stats.record_local()
            if tel.full:
                tel.record_latency("kv_get", time.perf_counter() - t0)
            if present:
                return val
            if default is not _MISSING:
                return default
            raise KeyError(key)
        if self._cache_enabled:
            cached = self._cache[owner]
            if key in cached:
                self.cache_hits += 1
                ctx.stats.record_kv_cache(True)
                if tel.full:
                    tel.record_latency("kv_get", time.perf_counter() - t0)
                # Copy on the way out: gets hand back private values
                # everywhere, so a caller mutating its result can never
                # corrupt the cache (or, via the SMP by-reference
                # conduit, the owner's store).
                return _copy(cached[key])
            self.cache_misses += 1
            ctx.stats.record_kv_cache(False)
        if tel.active:
            tel.flight_event("kv_get", src=ctx.rank, dst=owner,
                             detail=repr(key)[:48])
        (epoch, *_), payload = self._request(
            ctx, owner, "kv_get", (self.map_id,), [key],
            what=f"kv_get({key!r})",
        )
        [(found, val)] = payload
        self._note_epoch(owner, epoch)
        if found and self._cache_enabled:
            self._cache[owner][key] = val
            val = _copy(val)  # the cached object stays private
        if tel.full:
            tel.record_latency("kv_get", time.perf_counter() - t0)
        if found:
            return val
        if default is not _MISSING:
            return default
        raise KeyError(key)

    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns whether it was present."""
        ctx = current()
        owner = self.owner_of(key)
        if owner == ctx.rank:
            with ctx._handler_lock:
                epoch, n = _owner_delete(ctx, self.map_id, [key])
            ctx.stats.record_local()
        else:
            if ctx.telemetry.active:
                ctx.telemetry.flight_event(
                    "kv_del", src=ctx.rank, dst=owner,
                    detail=repr(key)[:48],
                )
            (epoch, n), _pl = self._request(
                ctx, owner, "kv_del", (self.map_id,), [key],
                what=f"kv_del({key!r})",
            )
        ctx.stats.record_kv_delete()
        self._note_epoch(owner, epoch)
        return n > 0

    def update(self, key: Any, op, *args, default: Any = _MISSING) -> Any:
        """Atomic read-modify-write at the owner; returns the new value.

        ``op`` is a name from :data:`UPDATE_OPS` or a picklable callable
        ``fn(old, *args) -> new``.  ``default`` seeds a missing key.
        Exactly-once even when the reply is lost and the call retries:
        the owner dedups on (rank, op-id) and replays the recorded
        result — the AM-level twin of the reliable conduit's
        old-value-recording atomics.
        """
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        owner = self.owner_of(key)
        op_id = next(self._op_seq)
        has_default = default is not _MISSING
        ctx.stats.record_kv_update()
        if owner == ctx.rank:
            with ctx._handler_lock:
                epoch, new = _owner_update(
                    ctx, self.map_id, ctx.rank, op_id, key,
                    _resolve_update(op), tuple(_copy(a) for a in args),
                    _copy(default) if has_default else None, has_default,
                )
                new = _copy(new)
            ctx.stats.record_local()
        else:
            _resolve_update(op)  # fail fast on a bogus name
            if tel.active:
                tel.flight_event("kv_update", src=ctx.rank, dst=owner,
                                 detail=repr(key)[:48])
            payload = (key, op, args, default if has_default else None,
                       has_default)
            (epoch, *_), new = self._request(
                ctx, owner, "kv_update", (self.map_id, op_id), payload,
                what=f"kv_update({key!r})#op{op_id}",
            )
        self._note_epoch(owner, epoch)
        if self._cache_enabled and owner != ctx.rank:
            self._cache[owner][key] = _copy(new)
        if tel.full:
            tel.record_latency("kv_put", time.perf_counter() - t0)
        return new

    # -- batched ops -------------------------------------------------------
    def multi_get(self, keys: Iterable[Any],
                  default: Any = _MISSING) -> list:
        """Fetch many keys with **one AM per owning rank**, issued
        concurrently; returns values aligned with ``keys``.

        Cache hits and locally-owned keys never touch the wire; only
        the remaining misses are coalesced.  KeyError on any missing
        key unless ``default`` is given.
        """
        keys = list(keys)
        if not keys:
            return []
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        out: list = [_MISSING] * len(keys)
        missing: list = []
        by_owner: dict[int, dict[Any, list[int]]] = {}
        sh = _shard(ctx, self.map_id)
        for pos, k in enumerate(keys):
            owner = self.owner_of(k)
            if owner == ctx.rank:
                with ctx._handler_lock:
                    present = k in sh["store"]
                    val = _copy(sh["store"][k]) if present else None
                ctx.stats.record_local()
                if present:
                    out[pos] = val
                else:
                    missing.append(k)
                    out[pos] = None if default is _MISSING else default
                continue
            if self._cache_enabled and k in self._cache[owner]:
                self.cache_hits += 1
                ctx.stats.record_kv_cache(True)
                out[pos] = _copy(self._cache[owner][k])
                continue
            if self._cache_enabled:
                self.cache_misses += 1
                ctx.stats.record_kv_cache(False)
            by_owner.setdefault(owner, {}).setdefault(k, []).append(pos)
        n_remote = sum(len(kmap) for kmap in by_owner.values())
        ctx.stats.record_kv_get(len(keys))
        if by_owner:
            ctx.stats.record_kv_multi(len(by_owner), n_remote)
            if tel.active:
                tel.flight_event(
                    "kv_multi_get", src=ctx.rank, dst=-1,
                    detail=f"{n_remote} keys -> {len(by_owner)} owners",
                )
        # Issue every owner's AM before gathering any reply — the
        # round trips overlap instead of serializing.
        pending = {
            owner: (list(kmap), ctx.send_am(
                owner, "kv_get", args=(self.map_id,),
                payload=list(kmap), expect_reply=True,
            ))
            for owner, kmap in by_owner.items()
        }
        attempt = 0
        while pending:
            failed: dict = {}
            for owner, (klist, fut) in pending.items():
                try:
                    (epoch, *_), payload = fut.get()
                except CommTimeout:
                    failed[owner] = klist
                    continue
                found = payload
                self._note_epoch(owner, epoch)
                for k, (ok, val) in zip(klist, found):
                    if ok and self._cache_enabled:
                        self._cache[owner][k] = val
                        # keep the cached object private to the cache
                        val = _copy(val)
                    for pos in by_owner[owner][k]:
                        if ok:
                            out[pos] = val
                        else:
                            missing.append(k)
                            out[pos] = (None if default is _MISSING
                                        else default)
            pending = {}
            if failed:
                attempt += 1
                if attempt >= self.retry_attempts:
                    raise CommTimeout(
                        f"multi_get: owners {sorted(failed)} unreachable "
                        f"after {attempt} attempts"
                    )
                pending = {
                    owner: (klist, ctx.send_am(
                        owner, "kv_get", args=(self.map_id,),
                        payload=klist, expect_reply=True,
                    ))
                    for owner, klist in failed.items()
                }
        if tel.full:
            tel.record_latency("kv_multi", time.perf_counter() - t0)
        if missing and default is _MISSING:
            raise KeyError(missing[0])
        return out

    def multi_put(self, items) -> None:
        """Store many pairs with one AM per owning rank (concurrent).

        ``items`` is a mapping or an iterable of ``(key, value)``.
        Observes no write-through (a bulk load would evict the working
        set); the epoch bump invalidates affected owners' caches.
        """
        pairs = list(items.items()) if isinstance(items, Mapping) \
            else list(items)
        if not pairs:
            return
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        by_owner: dict[int, dict] = {}
        for k, v in pairs:
            by_owner.setdefault(self.owner_of(k), {})[k] = v
        ctx.stats.record_kv_put(len(pairs))
        local = by_owner.pop(ctx.rank, None)
        if local is not None:
            with ctx._handler_lock:
                epoch = _owner_put(
                    ctx, self.map_id,
                    {k: _copy(v) for k, v in local.items()},
                )
            ctx.stats.record_local(len(local))
            self._note_epoch(ctx.rank, epoch)
        if by_owner:
            n_remote = sum(len(d) for d in by_owner.values())
            ctx.stats.record_kv_multi(len(by_owner), n_remote)
            if tel.active:
                tel.flight_event(
                    "kv_multi_put", src=ctx.rank, dst=-1,
                    detail=f"{n_remote} keys -> {len(by_owner)} owners",
                )
        pending = {
            owner: ctx.send_am(
                owner, "kv_put", args=(self.map_id,),
                payload=chunk, expect_reply=True,
            )
            for owner, chunk in by_owner.items()
        }
        attempt = 0
        while pending:
            failed: list = []
            for owner, fut in pending.items():
                try:
                    (epoch, *_), _pl = fut.get()
                except CommTimeout:
                    failed.append(owner)
                    continue
                self._note_epoch(owner, epoch)
            pending = {}
            if failed:
                attempt += 1
                if attempt >= self.retry_attempts:
                    raise CommTimeout(
                        f"multi_put: owners {sorted(failed)} unreachable "
                        f"after {attempt} attempts"
                    )
                pending = {
                    owner: ctx.send_am(
                        owner, "kv_put", args=(self.map_id,),
                        payload=by_owner[owner], expect_reply=True,
                    )
                    for owner in failed
                }
        if tel.full:
            tel.record_latency("kv_multi", time.perf_counter() - t0)

    # -- cache control -----------------------------------------------------
    def refresh(self) -> None:
        """Revalidate the cache: fetch every owner's current epoch with
        concurrently issued AMs and drop entries from shards that moved
        (the explicit fence of the relaxed consistency model)."""
        ctx = current()
        if not self._cache_enabled:
            return
        futs = {
            r: ctx.send_am(r, "kv_epoch", args=(self.map_id,),
                           expect_reply=True)
            for r in range(self.nranks) if r != ctx.rank
        }
        for r, fut in futs.items():
            (epoch, *_), _pl = fut.get()
            self._note_epoch(r, epoch)

    def invalidate_cache(self) -> None:
        """Drop every cached entry unconditionally."""
        for d in self._cache.values():
            d.clear()

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # -- introspection -----------------------------------------------------
    def __contains__(self, key: Any) -> bool:
        return self.get(key, default=_MISSING2) is not _MISSING2

    def local_size(self) -> int:
        """Entries stored in the calling rank's shard."""
        ctx = current()
        return len(_shard(ctx, self.map_id)["store"])

    def local_keys(self) -> list:
        ctx = current()
        with ctx._handler_lock:
            return list(_shard(ctx, self.map_id)["store"])

    def size(self) -> int:
        """Global entry count (non-collective: owners answer AMs
        concurrently; callers racing with writers see a fuzzy count)."""
        ctx = current()
        futs = [
            ctx.send_am(r, "kv_size", args=(self.map_id,),
                        expect_reply=True)
            for r in range(self.nranks) if r != ctx.rank
        ]
        total = self.local_size()
        for fut in futs:
            (_epoch, count), _pl = fut.get()
            total += count
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DistHashMap(id={self.map_id}, shards={self.nranks}, "
                f"cache={'on' if self._cache_enabled else 'off'})")


_MISSING2 = object()
