"""A distributed FIFO/bag built on the work-stealing machinery.

:class:`DistQueue` layers producer/consumer semantics over
:class:`~repro.core.workqueue.DistWorkQueue`: items pushed locally land
in the caller's deque, items pushed to another rank travel by active
message, and consumers drain via the steal-half policy — so a queue fed
on one rank still keeps every rank busy.  Ordering is FIFO per
(producer, target) pair and unordered globally (it is a *bag* with FIFO
bias, which is what load-balanced consumption requires).

Remote push is exactly-once under ``ReliableConduit(ChaosConduit)``:
the push AM is sequenced/deduped by the reliability layer, and the
outstanding-items counter is bumped by the *producer* (an exactly-once
retried atomic) before the item is shipped, so the quiesce count can
never read zero while a pushed item is in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Optional

from repro.core.workqueue import DistWorkQueue, _table
from repro.core.world import RankState, current
from repro.gasnet.am import am_handler


@am_handler("dq_push")
def _dq_push_handler(ctx: RankState, am) -> None:
    """Target side of a remote push: append the shipped items."""
    (qid,) = am.args
    items = am.payload  # decoded by the wire layer (dq_items codec)
    _table(ctx).setdefault(qid, deque()).extend(items)
    ctx.reply(am, args=(len(items),))


class DistQueue:
    """Distributed multi-producer/multi-consumer queue.  Collective ctor.

    >>> q = DistQueue()                    # on every rank
    >>> q.put(job)                         # local enqueue
    >>> q.put(job, to=2)                   # enqueue on rank 2
    >>> while (item := q.get()) is not None:
    ...     handle(item)                   # auto_ack marks it done

    ``auto_ack=True`` (default) counts an item as completed the moment
    ``get`` returns it.  Pass ``auto_ack=False`` to ack explicitly with
    :meth:`task_done` — then ``get`` returns ``None`` only once every
    claimed item was acked, the at-least-processed contract inherited
    from the work queue's quiesce counter.
    """

    def __init__(self, auto_ack: bool = True, seed: int = 0):
        self._wq = DistWorkQueue(seed=seed)
        self.qid = self._wq.qid
        self.auto_ack = bool(auto_ack)
        self.pushed_remote = 0

    # -- producing ---------------------------------------------------------
    def put(self, item: Any, to: Optional[int] = None) -> None:
        """Enqueue one item, locally or on rank ``to``."""
        self.put_many([item], to=to)

    def put_many(self, items: Iterable[Any], to: Optional[int] = None) -> int:
        """Enqueue many items on one rank; returns the count."""
        ctx = current()
        items = list(items)
        if not items:
            return 0
        if to is None or to == ctx.rank:
            return self._wq.add_local(items)
        # Producer bumps the quiesce counter *before* shipping: the
        # counter is an exactly-once retried atomic, so a reordered or
        # retried push can never let outstanding() touch zero while the
        # items are in flight.
        self._wq._outstanding.atomic("add", len(items))
        fut = ctx.send_am(
            to, "dq_push", args=(self.qid,),
            payload=items, expect_reply=True,
        )
        (n, *_), _pl = fut.get()
        self.pushed_remote += n
        if ctx.telemetry.active:
            ctx.telemetry.flight_event(
                "dq_push", src=ctx.rank, dst=to, detail=f"{n} items"
            )
        return n

    # -- consuming ---------------------------------------------------------
    def get(self, max_steal_rounds: int = 0) -> Optional[Any]:
        """Dequeue an item (stealing when local work runs out); ``None``
        once the queue has globally quiesced."""
        item = self._wq.get(max_steal_rounds=max_steal_rounds)
        if item is not None and self.auto_ack:
            self._wq.task_done()
        return item

    def task_done(self, n: int = 1) -> None:
        """Ack ``n`` claimed items (only with ``auto_ack=False``)."""
        self._wq.task_done(n)

    # -- introspection -----------------------------------------------------
    def local_size(self) -> int:
        return self._wq.local_size()

    def outstanding(self) -> int:
        """Globally enqueued-but-unacked items."""
        return self._wq.outstanding()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DistQueue(id={self.qid}, "
                f"auto_ack={'on' if self.auto_ack else 'off'})")
