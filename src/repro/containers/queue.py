"""A distributed FIFO/bag built on the work-stealing machinery.

:class:`DistQueue` layers producer/consumer semantics over
:class:`~repro.core.workqueue.DistWorkQueue`: items pushed locally land
in the caller's deque, items pushed to another rank travel by active
message, and consumers drain via the steal-half policy — so a queue fed
on one rank still keeps every rank busy.  Ordering is FIFO per
(producer, target) pair and unordered globally (it is a *bag* with FIFO
bias, which is what load-balanced consumption requires).

Remote push is exactly-once under ``ReliableConduit(ChaosConduit)``:
the push AM is sequenced/deduped by the reliability layer, and the
outstanding-items counter is bumped by the *producer* (an exactly-once
retried atomic) only **after** the target acks the push.  Bumping
before the send looks safer (the count can never dip while an item is
in flight) but silently over-counts when the target rank dies before
delivery — the items never land, yet quiesce waits for acks that can
never come.  Bump-after-ack keeps the counter equal to items that
*actually* landed; the push future is blocking, so the producer itself
cannot observe a window where its items exist without being counted,
and a dead target surfaces as :class:`~repro.errors.RankDead` naming
the queue and item count instead of a hung quiesce.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Optional

from repro.core.workqueue import DistWorkQueue, _table
from repro.core.world import RankState, current
from repro.errors import PeerFailure, RankDead
from repro.gasnet.am import am_handler
from repro.telemetry import tracing


@am_handler("dq_push")
def _dq_push_handler(ctx: RankState, am) -> None:
    """Target side of a remote push: append the shipped items."""
    (qid,) = am.args
    items = am.payload  # decoded by the wire layer (dq_items codec)
    _table(ctx).setdefault(qid, deque()).extend(items)
    ctx.reply(am, args=(len(items),))


class DistQueue:
    """Distributed multi-producer/multi-consumer queue.  Collective ctor.

    >>> q = DistQueue()                    # on every rank
    >>> q.put(job)                         # local enqueue
    >>> q.put(job, to=2)                   # enqueue on rank 2
    >>> while (item := q.get()) is not None:
    ...     handle(item)                   # auto_ack marks it done

    ``auto_ack=True`` (default) counts an item as completed the moment
    ``get`` returns it.  Pass ``auto_ack=False`` to ack explicitly with
    :meth:`task_done` — then ``get`` returns ``None`` only once every
    claimed item was acked, the at-least-processed contract inherited
    from the work queue's quiesce counter.
    """

    def __init__(self, auto_ack: bool = True, seed: int = 0):
        self._wq = DistWorkQueue(seed=seed)
        self.qid = self._wq.qid
        self.auto_ack = bool(auto_ack)
        self.pushed_remote = 0

    # -- producing ---------------------------------------------------------
    def put(self, item: Any, to: Optional[int] = None) -> None:
        """Enqueue one item, locally or on rank ``to``."""
        self.put_many([item], to=to)

    def put_many(self, items: Iterable[Any], to: Optional[int] = None) -> int:
        """Enqueue many items on one rank; returns the count."""
        ctx = current()
        items = list(items)
        if not items:
            return 0
        if to is None or to == ctx.rank:
            return self._wq.add_local(items)
        with tracing.span(ctx.telemetry, "dq_push"):
            return self._put_remote(ctx, items, to)

    def _put_remote(self, ctx, items: list, to: int) -> int:
        fut = ctx.send_am(
            to, "dq_push", args=(self.qid,),
            payload=items, expect_reply=True,
        )
        try:
            (n, *_), _pl = fut.get()
        except (RankDead, PeerFailure) as exc:
            # The items never landed and were never counted, so quiesce
            # cannot undercount — surface a diagnostic naming the queue
            # and what was lost.
            raise RankDead(
                f"dq_push: target rank {to} died before acking "
                f"{len(items)} item(s) pushed to queue {self.qid}; "
                f"items were not enqueued ({exc})"
            ) from exc
        # Producer bumps the quiesce counter only after the target
        # acked: the counter (an exactly-once retried atomic) then
        # counts items that actually landed, so a push to a dead rank
        # can never leave quiesce waiting on phantom items.  The push
        # future blocks, so the producer observes count-then-consume
        # ordering just as before.
        self._wq._outstanding.atomic("add", n)
        self.pushed_remote += n
        if ctx.telemetry.active:
            ctx.telemetry.flight_event(
                "dq_push", src=ctx.rank, dst=to, detail=f"{n} items"
            )
        return n

    # -- consuming ---------------------------------------------------------
    def get(self, max_steal_rounds: int = 0) -> Optional[Any]:
        """Dequeue an item (stealing when local work runs out); ``None``
        once the queue has globally quiesced."""
        item = self._wq.get(max_steal_rounds=max_steal_rounds)
        if item is not None and self.auto_ack:
            self._wq.task_done()
        return item

    def task_done(self, n: int = 1) -> None:
        """Ack ``n`` claimed items (only with ``auto_ack=False``)."""
        self._wq.task_done(n)

    # -- introspection -----------------------------------------------------
    def local_size(self) -> int:
        return self._wq.local_size()

    def outstanding(self) -> int:
        """Globally enqueued-but-unacked items."""
        return self._wq.outstanding()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"DistQueue(id={self.qid}, "
                f"auto_ack={'on' if self.auto_ack else 'off'})")
