"""Per-rank object directories.

The paper composes ``shared_array< ndarray<int,3> > dir(THREADS)`` to
build a directory of per-rank multidimensional arrays (§III-E).  Our
segments hold raw bytes, not Python objects, so the idiom is provided
directly: a :class:`Directory` gives every rank one published slot whose
contents any rank can fetch.  Values are wire-encoded on publish (they
cross a rank boundary) — which is exactly what makes lightweight
*handles* (global pointers, ndarray descriptors) the natural thing to
publish.
"""

from __future__ import annotations

from typing import Any

from repro.core import collectives
from repro.core.world import RankState, current
from repro.errors import PgasError
from repro.gasnet.am import am_handler
from repro.gasnet.wire import EncodedPayload, preencode


@am_handler("dir_get")
def _dir_get_handler(ctx: RankState, am) -> None:
    (dir_id,) = am.args
    try:
        blob = ctx.dir_table[dir_id]
    except KeyError:
        raise PgasError(
            f"rank {ctx.rank} has not published into directory {dir_id}"
        ) from None
    ctx.reply(am, payload=blob)


class Directory:
    """One published slot per rank; collective constructor."""

    def __init__(self):
        ctx = current()
        dir_id = None
        if ctx.rank == 0:
            dir_id = next(ctx.world._dir_ids)
        self.dir_id = collectives.bcast(dir_id, root=0)
        self._cache: dict[int, Any] = {}

    def publish(self, obj: Any) -> None:
        """Store ``obj`` in the calling rank's slot (overwrites).

        The value is encoded once at publish time; every fetch (local
        or remote) decodes its own fresh copy, so by-value semantics
        hold even for the publishing rank's own lookups."""
        ctx = current()
        ctx.dir_table[self.dir_id] = preencode(obj)

    def lookup(self, rank: int, cached: bool = True) -> Any:
        """Fetch the object published by ``rank``.

        ``cached=True`` (default) memoizes — appropriate for immutable
        handles, which is the intended use.
        """
        ctx = current()
        if cached and rank in self._cache:
            return self._cache[rank]
        if rank == ctx.rank:
            try:
                blob = ctx.dir_table[self.dir_id]
            except KeyError:
                raise PgasError(
                    f"rank {rank} has not published into directory "
                    f"{self.dir_id}"
                ) from None
        else:
            fut = ctx.send_am(
                rank, "dir_get", args=(self.dir_id,), expect_reply=True
            )
            _args, blob = fut.get()
        # Local hits hold the stored EncodedPayload; remote replies
        # arrive already decoded by the wire layer.
        obj = blob.decode() if isinstance(blob, EncodedPayload) else blob
        if cached:
            self._cache[rank] = obj
        return obj

    def lookup_all(self, cached: bool = True,
                   skip_dead: bool = False) -> list:
        """Fetch every rank's slot, indexed by rank.

        All remote request AMs are issued up front and the reply futures
        gathered afterwards, so the round trips overlap — one
        longest-RTT wait instead of N sequential ones.  This is the
        constructor-rendezvous path for the distributed containers.

        ``skip_dead=True`` returns ``None`` in the slots of ranks the
        world has marked dead instead of timing out against them — the
        refresh idiom for survivable-failure containers re-reading role
        tables after a peer died.
        """
        ctx = current()
        dead = ctx.world.dead_ranks if skip_dead else ()
        futs = {}
        for rank in range(ctx.world.n_ranks):
            if (rank == ctx.rank or rank in dead
                    or (cached and rank in self._cache)):
                continue
            futs[rank] = ctx.send_am(
                rank, "dir_get", args=(self.dir_id,), expect_reply=True
            )
        out = []
        for rank in range(ctx.world.n_ranks):
            if rank in futs:
                _args, obj = futs[rank].get()
                if cached:
                    self._cache[rank] = obj
                out.append(obj)
            elif rank in dead:
                out.append(None)
            else:
                out.append(self.lookup(rank, cached=cached))
        return out

    def publish_and_sync(self, obj: Any) -> None:
        """Publish, then barrier — the common collective setup idiom."""
        self.publish(obj)
        collectives.barrier()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Directory(id={self.dir_id})"
