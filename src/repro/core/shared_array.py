"""``shared_array<T, BS>`` — block-cyclically distributed 1-D arrays
(paper §III-A).

The layout matches UPC's: element ``i`` belongs to block ``i // BS``;
blocks are dealt to ranks round-robin; within a rank, a rank's blocks
are stored contiguously in arrival order.  ``BS = 1`` (the default, as
in UPC) gives a pure cyclic layout.

Construction is collective: every rank allocates its local slab and the
base addresses are allgathered into a directory, so any rank can compute
the global pointer of any element without communication — which is what
lets ``sa[i]`` be a single one-sided get/put (runtime Fig. 3).
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from repro.core import collectives
from repro.core.global_ptr import GlobalPtr
from repro.core.world import current
from repro.errors import PgasError
from repro.gasnet import rma


# ---------------------------------------------------------------------------
# pure layout math (unit-testable without a world)
#
# All three functions are expressed in ufunc arithmetic, so they accept
# either Python ints or NumPy index arrays and translate a whole index
# vector in one vectorized pass — the address-translation half of the
# batched RMA engine.
# ---------------------------------------------------------------------------

def owner_of(i, block: int, nranks: int):
    """Rank owning element ``i`` (scalar or ndarray) of a (block)-cyclic
    array."""
    return (i // block) % nranks


def local_offset_of(i, block: int, nranks: int):
    """Element offset of global index ``i`` (scalar or ndarray) within
    its owner's slab."""
    b = i // block
    return (b // nranks) * block + (i % block)


def global_index_of(rank, local_off, block: int, nranks: int):
    """Inverse of (owner_of, local_offset_of); scalar or ndarray."""
    lb, r = divmod(local_off, block)
    return (lb * nranks + rank) * block + r


def slab_elements(size: int, block: int, nranks: int) -> int:
    """Per-rank slab length: every rank reserves the same (maximal) number
    of blocks, exactly like UPC's static block-cyclic layout."""
    nblocks = -(-size // block)  # ceil
    blocks_per_rank = -(-nblocks // nranks)
    return blocks_per_rank * block


class SharedArray:
    """A 1-D array distributed block-cyclically over all ranks."""

    def __init__(self, dtype=np.int64, size: int | None = None,
                 block: int = 1):
        if block < 1:
            raise PgasError("block size must be >= 1")
        self.dtype = np.dtype(dtype)
        self.block = int(block)
        self.size = 0
        self._slab_len = 0
        self._bases: list[int] = []
        self._my_base = -1
        self._local = None
        self._ctx = None
        self._rebind_lock = threading.Lock()
        if size is not None:
            self.init(size)

    # -- collective allocation ------------------------------------------
    def init(self, size: int) -> "SharedArray":
        """Collectively allocate storage for ``size`` elements (the
        paper's ``sa.init(THREADS)`` dynamic form)."""
        if self.size:
            raise PgasError("shared_array is already initialized")
        if size <= 0:
            raise PgasError("shared_array size must be positive")
        ctx = current()
        nranks = ctx.world.n_ranks
        self.size = int(size)
        self._slab_len = slab_elements(self.size, self.block, nranks)
        nbytes = self._slab_len * self.dtype.itemsize
        align = max(8, self.dtype.itemsize)
        self._my_base = ctx.segment.alloc(nbytes, align=align)
        self._bases = collectives.allgather(self._my_base)
        # Owner-side fast path (runtime Fig. 3's "local access" branch):
        # a cached zero-copy view over this rank's slab, so local element
        # access skips pointer construction and conduit dispatch.
        self._local = ctx.segment.view(
            self._my_base, self.dtype, self._slab_len
        )
        self._ctx = ctx
        return self

    def _require_init(self) -> None:
        if not self.size:
            raise PgasError("shared_array used before init(size)")

    # -- addressing --------------------------------------------------------
    def _normalize(self, i: int) -> int:
        i = int(i)
        if i < 0:
            i += self.size
        if not 0 <= i < self.size:
            raise IndexError(
                f"index {i} out of range for shared_array of {self.size}"
            )
        return i

    def gptr(self, i: int) -> GlobalPtr:
        """Global pointer to element ``i`` (no communication)."""
        self._require_init()
        i = self._normalize(i)
        nranks = len(self._bases)
        r = owner_of(i, self.block, nranks)
        off = local_offset_of(i, self.block, nranks)
        return GlobalPtr(
            rank=r,
            offset=self._bases[r] + off * self.dtype.itemsize,
            dtype=self.dtype,
        )

    def where(self, i: int) -> int:
        """Affinity of element ``i``."""
        self._require_init()
        return owner_of(self._normalize(i), self.block, len(self._bases))

    # -- element access (the overloaded [] of the paper) ----------------
    def _local_slab(self, ctx):
        """The owner-side cached view, or None when unavailable.

        After unpickle the view is rebuilt lazily here on the first
        owner-side access (handles travel without views).  The cache is
        write-once per instance: when it is already bound to a *different*
        rank context (one object shared by several rank threads via the
        in-process payload fallback), we return None and the caller takes
        the conduit path — rebinding back and forth would race.
        """
        if self._ctx is ctx:
            return self._local
        with self._rebind_lock:
            if self._ctx is None and self.size:
                self._my_base = self._bases[ctx.rank]
                self._local = ctx.segment.view(
                    self._my_base, self.dtype, self._slab_len
                )
                self._ctx = ctx
            return self._local if self._ctx is ctx else None

    def __getitem__(self, i: int):
        self._require_init()
        i = self._normalize(i)
        nranks = len(self._bases)
        ctx = current()
        if owner_of(i, self.block, nranks) == ctx.rank:
            slab = self._local_slab(ctx)
            if slab is not None:
                ctx.stats.record_local()
                return slab[local_offset_of(i, self.block, nranks)]
        return self.gptr(i)[0]

    def __setitem__(self, i: int, value) -> None:
        self._require_init()
        i = self._normalize(i)
        nranks = len(self._bases)
        ctx = current()
        if owner_of(i, self.block, nranks) == ctx.rank:
            slab = self._local_slab(ctx)
            if slab is not None:
                ctx.stats.record_local()
                slab[local_offset_of(i, self.block, nranks)] = value
                return
        self.gptr(i)[0] = value

    def __getstate__(self):
        """Shared arrays travel as handles: the cached owner-side view
        and rank binding are rebuilt lazily by the receiving rank."""
        state = self.__dict__.copy()
        state["_local"] = None
        state["_ctx"] = None
        del state["_rebind_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rebind_lock = threading.Lock()

    def atomic(self, i: int, op, operand):
        """Atomic read-modify-write of element ``i`` (GUPS xor path)."""
        return self.gptr(i).atomic(op, operand)

    def __len__(self) -> int:
        return self.size

    # -- batched access (one conduit op per owning rank) -----------------
    def _normalize_indices(self, indices) -> np.ndarray:
        """Vectorized index normalization: flatten, resolve negatives,
        bounds-check."""
        raw = np.asarray(indices)
        if raw.size and not np.issubdtype(raw.dtype, np.integer):
            raise IndexError(
                f"batch indices must be integers, got dtype {raw.dtype}"
            )
        idx = raw.astype(np.int64, copy=False).reshape(-1)
        if idx.size:
            idx = np.where(idx < 0, idx + self.size, idx)
            bad = (idx < 0) | (idx >= self.size)
            if bad.any():
                first = np.asarray(indices, dtype=np.int64).reshape(-1)[
                    int(np.argmax(bad))
                ]
                raise IndexError(
                    f"index {int(first)} out of range for shared_array "
                    f"of {self.size}"
                )
        return idx

    def _partition_by_owner(self, idx: np.ndarray):
        """Vectorized Fig. 3 address translation for a whole index
        vector: (owners, local element offsets)."""
        nranks = len(self._bases)
        return (owner_of(idx, self.block, nranks),
                local_offset_of(idx, self.block, nranks))

    def gather(self, indices) -> np.ndarray:
        """Read ``a[indices]`` with **one** indexed get per owning rank
        (instead of one conduit op per element)."""
        self._require_init()
        idx = self._normalize_indices(indices)
        out = np.empty(idx.size, dtype=self.dtype)
        if not idx.size:
            return out
        ctx = current()
        owners, offs = self._partition_by_owner(idx)
        for r in np.unique(owners):
            sel = owners == r
            out[sel] = rma.get_indexed(
                ctx, int(r), self._bases[r], self.dtype, offs[sel]
            )
        return out

    def scatter(self, indices, values) -> None:
        """Write ``a[indices] = values`` with one indexed put per owning
        rank.  ``values`` broadcasts against ``indices``; with duplicate
        indices the surviving value is unspecified (use
        :meth:`atomic_batch` for accumulation)."""
        self._require_init()
        idx = self._normalize_indices(indices)
        if not idx.size:
            return
        vals = np.asarray(values, dtype=self.dtype)
        vals = np.ascontiguousarray(np.broadcast_to(vals.reshape(-1)
                                    if vals.ndim else vals, idx.shape))
        ctx = current()
        owners, offs = self._partition_by_owner(idx)
        for r in np.unique(owners):
            sel = owners == r
            rma.put_indexed(
                ctx, int(r), self._bases[r], offs[sel], vals[sel]
            )

    def atomic_batch(self, indices, op, operands,
                     return_old: bool = False):
        """Batched atomic read-modify-write: one conduit op (and one
        target-lock acquisition) per owning rank.

        ``op`` is an op name (``"xor" | "add" | "and" | "or" | "swap" |
        "min" | "max"``) or a scalar callable; ``operands`` broadcasts
        against ``indices``.  Each element updates atomically (duplicate
        indices included); the batch as a whole is not one atomic unit.
        Returns the per-element old values when ``return_old`` is true.
        """
        self._require_init()
        idx = self._normalize_indices(indices)
        out = np.empty(idx.size, dtype=self.dtype) if return_old else None
        if not idx.size:
            return out
        ops = np.asarray(operands, dtype=self.dtype)
        ops = np.ascontiguousarray(np.broadcast_to(ops.reshape(-1)
                                   if ops.ndim else ops, idx.shape))
        ctx = current()
        owners, offs = self._partition_by_owner(idx)
        for r in np.unique(owners):
            sel = owners == r
            old = rma.atomic_batch(
                ctx, int(r), self._bases[r], self.dtype, offs[sel],
                op, ops[sel], return_old,
            )
            if return_old:
                out[sel] = old
        return out

    # -- owner-side bulk access ---------------------------------------------
    def local_view(self) -> np.ndarray:
        """Zero-copy view of the calling rank's slab (local blocks in
        storage order).  Includes layout padding past ``size``."""
        self._require_init()
        ctx = current()
        slab = self._local_slab(ctx)
        if slab is not None:
            return slab
        return rma.local_view(
            ctx, self._bases[ctx.rank], self.dtype, self._slab_len
        )

    def local_indices(self) -> np.ndarray:
        """Global indices owned by the caller, in slab storage order,
        clipped to the array size."""
        self._require_init()
        ctx = current()
        nranks = len(self._bases)
        locals_ = np.arange(self._slab_len, dtype=np.int64)
        lb, r = np.divmod(locals_, self.block)
        gidx = (lb * nranks + ctx.rank) * self.block + r
        return gidx[gidx < self.size]

    def fill_local(self, value) -> None:
        """Owner-side fill of the local slab (no communication)."""
        self.local_view()[:] = value

    def _range_by_owner(self, start: int, stop: int):
        """Per-owner (offsets, selection) pairs for [start, stop): at most
        ``nranks`` entries, offsets ascending within each owner."""
        idx = np.arange(start, stop, dtype=np.int64)
        owners, offs = self._partition_by_owner(idx)
        for r in np.unique(owners):
            sel = owners == r
            yield int(r), offs[sel], sel

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Bulk read [start, stop) with **one** RMA per owning rank —
        contiguous when the owner's elements form a single run (always
        true for ``block >= stop - start`` and for ``block == 1``),
        indexed otherwise.  At most ``nranks`` conduit ops either way."""
        self._require_init()
        if not 0 <= start <= stop <= self.size:
            raise IndexError("range out of bounds")
        out = np.empty(stop - start, dtype=self.dtype)
        if start == stop:
            return out
        ctx = current()
        itemsize = self.dtype.itemsize
        for r, offs, sel in self._range_by_owner(start, stop):
            if int(offs[-1]) - int(offs[0]) + 1 == offs.size:
                out[sel] = rma.get(
                    ctx, r, self._bases[r] + int(offs[0]) * itemsize,
                    self.dtype, offs.size,
                )
            else:
                out[sel] = rma.get_indexed(
                    ctx, r, self._bases[r], self.dtype, offs
                )
        return out

    def write_range(self, start: int, values: np.ndarray) -> None:
        """Bulk write starting at ``start`` with one RMA per owning rank
        (the converse of :meth:`read_range`)."""
        self._require_init()
        values = np.asarray(values, dtype=self.dtype).reshape(-1)
        stop = start + values.size
        if not 0 <= start <= stop <= self.size:
            raise IndexError("range out of bounds")
        if start == stop:
            return
        ctx = current()
        itemsize = self.dtype.itemsize
        for r, offs, sel in self._range_by_owner(start, stop):
            chunk = np.ascontiguousarray(values[sel])
            if int(offs[-1]) - int(offs[0]) + 1 == offs.size:
                rma.put(
                    ctx, r, self._bases[r] + int(offs[0]) * itemsize, chunk
                )
            else:
                rma.put_indexed(ctx, r, self._bases[r], offs, chunk)

    #: Elements fetched per chunk while iterating.
    _ITER_CHUNK = 1024

    def __iter__(self) -> Iterator:
        """Element iteration, streamed via chunked :meth:`read_range`
        (at most ``nranks`` conduit ops per chunk instead of one get per
        element)."""
        self._require_init()
        for lo in range(0, self.size, self._ITER_CHUNK):
            hi = min(lo + self._ITER_CHUNK, self.size)
            yield from self.read_range(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SharedArray(dtype={self.dtype}, size={self.size}, "
            f"block={self.block})"
        )
