"""``shared_array<T, BS>`` — block-cyclically distributed 1-D arrays
(paper §III-A).

The layout matches UPC's: element ``i`` belongs to block ``i // BS``;
blocks are dealt to ranks round-robin; within a rank, a rank's blocks
are stored contiguously in arrival order.  ``BS = 1`` (the default, as
in UPC) gives a pure cyclic layout.

Construction is collective: every rank allocates its local slab and the
base addresses are allgathered into a directory, so any rank can compute
the global pointer of any element without communication — which is what
lets ``sa[i]`` be a single one-sided get/put (runtime Fig. 3).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core import collectives
from repro.core.global_ptr import GlobalPtr
from repro.core.world import current
from repro.errors import PgasError
from repro.gasnet import rma


# ---------------------------------------------------------------------------
# pure layout math (unit-testable without a world)
# ---------------------------------------------------------------------------

def owner_of(i: int, block: int, nranks: int) -> int:
    """Rank owning element ``i`` of a (block)-cyclic array."""
    return (i // block) % nranks


def local_offset_of(i: int, block: int, nranks: int) -> int:
    """Element offset of global index ``i`` within its owner's slab."""
    b = i // block
    return (b // nranks) * block + (i % block)


def global_index_of(rank: int, local_off: int, block: int,
                    nranks: int) -> int:
    """Inverse of (owner_of, local_offset_of)."""
    lb, r = divmod(local_off, block)
    return (lb * nranks + rank) * block + r


def slab_elements(size: int, block: int, nranks: int) -> int:
    """Per-rank slab length: every rank reserves the same (maximal) number
    of blocks, exactly like UPC's static block-cyclic layout."""
    nblocks = -(-size // block)  # ceil
    blocks_per_rank = -(-nblocks // nranks)
    return blocks_per_rank * block


class SharedArray:
    """A 1-D array distributed block-cyclically over all ranks."""

    def __init__(self, dtype=np.int64, size: int | None = None,
                 block: int = 1):
        if block < 1:
            raise PgasError("block size must be >= 1")
        self.dtype = np.dtype(dtype)
        self.block = int(block)
        self.size = 0
        self._slab_len = 0
        self._bases: list[int] = []
        self._my_base = -1
        self._local = None
        self._ctx = None
        if size is not None:
            self.init(size)

    # -- collective allocation ------------------------------------------
    def init(self, size: int) -> "SharedArray":
        """Collectively allocate storage for ``size`` elements (the
        paper's ``sa.init(THREADS)`` dynamic form)."""
        if self.size:
            raise PgasError("shared_array is already initialized")
        if size <= 0:
            raise PgasError("shared_array size must be positive")
        ctx = current()
        nranks = ctx.world.n_ranks
        self.size = int(size)
        self._slab_len = slab_elements(self.size, self.block, nranks)
        nbytes = self._slab_len * self.dtype.itemsize
        align = max(8, self.dtype.itemsize)
        self._my_base = ctx.segment.alloc(nbytes, align=align)
        self._bases = collectives.allgather(self._my_base)
        # Owner-side fast path (runtime Fig. 3's "local access" branch):
        # a cached zero-copy view over this rank's slab, so local element
        # access skips pointer construction and conduit dispatch.
        self._local = ctx.segment.view(
            self._my_base, self.dtype, self._slab_len
        )
        self._ctx = ctx
        return self

    def _require_init(self) -> None:
        if not self.size:
            raise PgasError("shared_array used before init(size)")

    # -- addressing --------------------------------------------------------
    def _normalize(self, i: int) -> int:
        i = int(i)
        if i < 0:
            i += self.size
        if not 0 <= i < self.size:
            raise IndexError(
                f"index {i} out of range for shared_array of {self.size}"
            )
        return i

    def gptr(self, i: int) -> GlobalPtr:
        """Global pointer to element ``i`` (no communication)."""
        self._require_init()
        i = self._normalize(i)
        nranks = len(self._bases)
        r = owner_of(i, self.block, nranks)
        off = local_offset_of(i, self.block, nranks)
        return GlobalPtr(
            rank=r,
            offset=self._bases[r] + off * self.dtype.itemsize,
            dtype=self.dtype,
        )

    def where(self, i: int) -> int:
        """Affinity of element ``i``."""
        self._require_init()
        return owner_of(self._normalize(i), self.block, len(self._bases))

    # -- element access (the overloaded [] of the paper) ----------------
    def __getitem__(self, i: int):
        self._require_init()
        i = self._normalize(i)
        nranks = len(self._bases)
        ctx = current()
        if (owner_of(i, self.block, nranks) == ctx.rank
                and self._ctx is ctx):
            ctx.stats.record_local()
            return self._local[local_offset_of(i, self.block, nranks)]
        return self.gptr(i)[0]

    def __setitem__(self, i: int, value) -> None:
        self._require_init()
        i = self._normalize(i)
        nranks = len(self._bases)
        ctx = current()
        if (owner_of(i, self.block, nranks) == ctx.rank
                and self._ctx is ctx):
            ctx.stats.record_local()
            self._local[local_offset_of(i, self.block, nranks)] = value
            return
        self.gptr(i)[0] = value

    def __getstate__(self):
        """Shared arrays travel as handles: the cached owner-side view
        and rank binding are rebuilt lazily by the receiving rank."""
        state = self.__dict__.copy()
        state["_local"] = None
        state["_ctx"] = None
        return state

    def atomic(self, i: int, op, operand):
        """Atomic read-modify-write of element ``i`` (GUPS xor path)."""
        return self.gptr(i).atomic(op, operand)

    def __len__(self) -> int:
        return self.size

    # -- owner-side bulk access ---------------------------------------------
    def local_view(self) -> np.ndarray:
        """Zero-copy view of the calling rank's slab (local blocks in
        storage order).  Includes layout padding past ``size``."""
        self._require_init()
        ctx = current()
        return rma.local_view(ctx, self._my_base, self.dtype, self._slab_len)

    def local_indices(self) -> np.ndarray:
        """Global indices owned by the caller, in slab storage order,
        clipped to the array size."""
        self._require_init()
        ctx = current()
        nranks = len(self._bases)
        locals_ = np.arange(self._slab_len, dtype=np.int64)
        lb, r = np.divmod(locals_, self.block)
        gidx = (lb * nranks + ctx.rank) * self.block + r
        return gidx[gidx < self.size]

    def fill_local(self, value) -> None:
        """Owner-side fill of the local slab (no communication)."""
        self.local_view()[:] = value

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Bulk read [start, stop) with one get per owner-contiguous run.

        Provided for verification and small tools; scalable codes should
        restructure around locality instead (the paper's advice)."""
        self._require_init()
        if not 0 <= start <= stop <= self.size:
            raise IndexError("range out of bounds")
        out = np.empty(stop - start, dtype=self.dtype)
        i = start
        while i < stop:
            run = min(self.block - (i % self.block), stop - i)
            ptr = self.gptr(i)
            out[i - start : i - start + run] = ptr.get(run)
            i += run
        return out

    def write_range(self, start: int, values: np.ndarray) -> None:
        """Bulk write starting at ``start`` with one put per
        owner-contiguous run (the converse of :meth:`read_range`)."""
        self._require_init()
        values = np.asarray(values, dtype=self.dtype)
        stop = start + values.size
        if not 0 <= start <= stop <= self.size:
            raise IndexError("range out of bounds")
        i = start
        while i < stop:
            run = min(self.block - (i % self.block), stop - i)
            self.gptr(i).put(values[i - start: i - start + run])
            i += run

    def __iter__(self) -> Iterator:
        """Element iteration — one get per element; convenience only."""
        for i in range(self.size):
            yield self[i]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SharedArray(dtype={self.dtype}, size={self.size}, "
            f"block={self.block})"
        )
