"""Process launcher for the proc conduit: fork ranks, run, reap.

:func:`spmd_proc` is the process-backend twin of the thread launcher in
:mod:`repro.core.world`: it builds a :class:`~repro.gasnet.proc.ProcFabric`
(shared-memory segment blocks + socket mesh), forks one OS process per
rank, and supervises them over per-rank bootstrap sockets:

* **ready/go handshake** — no rank enters the SPMD body until every
  process mapped the fabric (the directory exchange);
* **failure broadcast** — a rank that reports a primary error or dies
  is announced to the survivors, which convert the announcement into
  the same ``world.fail``/``world.mark_dead`` calls the thread backend
  makes, so PeerFailure/RankDead semantics are identical;
* **final collection** — each rank ships its return value (or its
  exception) plus its flight-recorder ring back to the launcher, which
  merges the rings into one cross-process crash dump on failure;
* **orphan reaping** — children are daemonic, self-destruct when the
  launcher's bootstrap socket goes away, and are terminate()/kill()ed
  on timeout; the fabric's shared-memory blocks are always unlinked.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import sys
import threading
import time

from repro.errors import (
    CommTimeout,
    PeerFailure,
    PgasError,
    RankDead,
    SerializationError,
)
from repro.gasnet.proc import ProcConduit, ProcFabric
from repro.telemetry import resolve_config as _resolve_telemetry
from repro.telemetry.flight import merge_dump

#: The launcher's most recent merged flight-recorder dump (the
#: cross-process analogue of the stderr dump; tests read it back).
LAST_DUMP: str | None = None

_LEN = struct.Struct("<I")


# -- bootstrap-socket protocol (length-prefixed pickles) ---------------------
def _read_n(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray(n)
    got = 0
    with memoryview(buf) as mv:
        while got < n:
            try:
                k = sock.recv_into(mv[got:], n - got)
            except OSError:
                return None
            if k == 0:
                return None
            got += k
    return bytes(buf)


def _recv_msg(sock: socket.socket):
    hdr = _read_n(sock, _LEN.size)
    if hdr is None:
        return None
    blob = _read_n(sock, _LEN.unpack(hdr)[0])
    if blob is None:
        return None
    return pickle.loads(blob)


def _send_msg(sock: socket.socket, msg) -> None:
    blob = pickle.dumps(msg, protocol=5)  # dumps first: a pickling
    sock.sendall(_LEN.pack(len(blob)))    # error leaves the wire clean
    sock.sendall(blob)


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, a stand-in otherwise."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return PgasError(f"{type(exc).__name__}: {exc}")


class _Job:
    """Everything a rank process needs, inherited through the fork."""

    def __init__(self, **kw):
        self.__dict__.update(kw)


# -- rank-process side -------------------------------------------------------
def _gather_events(world, rank: int):
    if not world.telemetry.enabled:
        return [], 0
    rec = world.telemetry.rank(rank).flight
    return rec.snapshot(), rec.dropped


def _control_main(boot: socket.socket, world) -> None:
    """Consume launcher broadcasts for the life of the rank.  EOF means
    the launcher is gone: self-destruct rather than linger orphaned."""
    while True:
        try:
            msg = _recv_msg(boot)
        except Exception:
            msg = None
        if msg is None:
            os._exit(3)
        kind = msg[0]
        if kind == "peer_dead":
            _, r, reason = msg
            try:
                world.mark_dead(r, RankDead(reason))
            except Exception:
                pass
        elif kind == "peer_failed":
            _, r, exc = msg
            try:
                world.fail(r, exc)
            except Exception:
                pass


def _child_main(job: _Job, rank: int) -> None:
    from repro.core import world as worldmod

    fabric: ProcFabric = job.fabric
    fabric.child_setup(rank)
    boot = fabric.boot_child(rank)
    try:
        conduit = ProcConduit(fabric, rank)
        world = worldmod.World(
            job.ranks, segment_size=job.segment_size, conduit=conduit,
            thread_mode=job.thread_mode, op_timeout=job.timeout,
            reliability=job.reliability,
            heartbeat_timeout=job.heartbeat_timeout,
            heartbeat_period=job.heartbeat_period, telemetry=job.telemetry,
            survive_rank_death=job.survive_rank_death,
            local_ranks=(rank,), segment_factory=fabric.make_segment,
        )
    except BaseException as exc:
        try:
            _send_msg(boot, ("fatal", rank, _picklable(exc), [], 0))
        except Exception:
            pass
        os._exit(1)

    try:
        _send_msg(boot, ("ready", rank))
        go = _recv_msg(boot)
    except Exception:
        go = None
    if not go or go[0] != "go":
        os._exit(1)
    threading.Thread(target=_control_main, args=(boot, world),
                     name="proc-control", daemon=True).start()

    ctx = world.ranks[rank]
    worldmod._tls.ctx = ctx
    if job.thread_mode == "concurrent":
        world.start_progress_thread()
    result = None
    exc_out: BaseException | None = None
    secondary = False
    try:
        result = job.fn(*job.args, **job.kwargs)
        # Implicit finalize, exactly as the thread backend: a rank keeps
        # servicing AMs until every peer is done issuing work.
        ctx.body_done = True
        world.poke_all()
        if world.survive_rank_death:
            # done-or-dead finalize needs the done flags of *remote*
            # ranks, which only travel by message here.
            for d in range(world.n_ranks):
                if d != rank and not world.ranks[d].dead:
                    try:
                        ctx.send_am(d, "__proc_done__")
                    except Exception:
                        pass
            ctx.wait_until(
                lambda: all(p.body_done or p.dead for p in world.ranks),
                what="finalize (done-or-dead)",
            )
        else:
            from repro.core.collectives import barrier as _finalize

            _finalize()
    except worldmod._RankKilled:
        # Simulated crash: report the death, then vanish without any
        # orderly teardown (peers see the socket EOF + the broadcast).
        ctx.done = False
        events, dropped = _gather_events(world, rank)
        try:
            _send_msg(boot, ("died", rank, events, dropped))
        except Exception:
            pass
        os._exit(1)
    except BaseException as exc:
        if isinstance(exc, PeerFailure):
            secondary = True
        exc_out = exc
    finally:
        ctx.done = not ctx.dead
        worldmod._tls.ctx = None

    world.stop_progress_thread()
    world.stop_failure_detector()
    world.stop_sampler()
    try:
        world.conduit.close()
    except Exception:
        pass
    events, dropped = _gather_events(world, rank)
    try:
        if exc_out is not None:
            _send_msg(boot, ("error", rank, _picklable(exc_out),
                             secondary, events, dropped))
        else:
            try:
                _send_msg(boot, ("result", rank, result, events, dropped))
            except Exception as e:  # pickling errors are not one type
                _send_msg(boot, ("error", rank, SerializationError(
                    f"rank {rank}: SPMD return value of type "
                    f"{type(result).__name__} is not picklable across "
                    f"the proc backend: {e}"), False, events, dropped))
    except Exception:
        pass


# -- launcher side -----------------------------------------------------------
class _ShippedRing:
    """merge_dump adapter for a flight ring shipped from a rank process."""

    def __init__(self, rank: int, events, dropped: int = 0):
        self.rank = rank
        self.dropped = dropped
        self._events = list(events)

    def snapshot(self):
        return self._events


def _dump_failure(tel_cfg, header: str, events_by_rank: dict,
                  n_ranks: int) -> None:
    global LAST_DUMP
    if tel_cfg.mode == "off":
        return
    try:
        recs = [_ShippedRing(r, *events_by_rank.get(r, ([], 0)))
                for r in range(n_ranks)]
        text = merge_dump(recs, header=header)
        LAST_DUMP = text
        sys.stderr.write(text)
    except Exception:
        pass  # a broken dump must never mask the real failure


def _broadcast(boots, open_ranks, origin: int, msg) -> None:
    for r in sorted(open_ranks):
        if r == origin:
            continue
        try:
            _send_msg(boots[r], msg)
        except Exception:
            pass


def spmd_proc(
    fn,
    ranks: int,
    *,
    args: tuple = (),
    kwargs: dict | None = None,
    segment_size: int,
    thread_mode: str = "serialized",
    timeout: float | None = 60.0,
    reliability=None,
    heartbeat_timeout: float | None = None,
    heartbeat_period: float = 0.02,
    telemetry=None,
    survive_rank_death: bool = False,
    transport: str | None = None,
) -> list:
    """Run ``fn`` on ``ranks`` OS processes over the proc conduit."""
    kwargs = kwargs or {}
    tel_cfg = _resolve_telemetry(telemetry)
    fabric = ProcFabric(ranks, segment_size, transport=transport)
    job = _Job(
        fabric=fabric, fn=fn, args=args, kwargs=kwargs, ranks=ranks,
        segment_size=segment_size, thread_mode=thread_mode,
        timeout=timeout, reliability=reliability,
        heartbeat_timeout=heartbeat_timeout,
        heartbeat_period=heartbeat_period, telemetry=telemetry,
        survive_rank_death=survive_rank_death,
    )
    procs = []
    results: list = [None] * ranks
    finals: dict[int, BaseException] = {}       # primary errors, by rank
    secondaries: dict[int, BaseException] = {}
    died: dict[int, str] = {}
    events_by_rank: dict[int, tuple] = {}
    first_primary: tuple[int, BaseException] | None = None
    timed_out: set[int] = set()
    try:
        procs = [
            fabric.ctx.Process(
                target=_child_main, args=(job, r),
                name=f"pgas-proc-rank-{r}", daemon=True,
            )
            for r in range(ranks)
        ]
        for p in procs:
            p.start()
        fabric.parent_setup()
        boots = [fabric.boot_parent(r) for r in range(ranks)]

        # Phase 1: every rank maps the fabric and reports ready.
        boot_deadline = time.monotonic() + 60.0
        for r in range(ranks):
            boots[r].settimeout(max(0.1, boot_deadline - time.monotonic()))
            try:
                msg = _recv_msg(boots[r])
            except socket.timeout:
                msg = None
            boots[r].settimeout(None)
            if msg is not None and msg[0] == "fatal":
                raise msg[2]
            if msg is None or msg[0] != "ready":
                raise PgasError(
                    f"proc launcher: rank {r} failed to initialize "
                    f"(got {msg!r})"
                )
        for r in range(ranks):
            _send_msg(boots[r], ("go",))

        # Phase 2: collect finals, relaying death/failure broadcasts.
        open_ranks = set(range(ranks))
        deadline = (None if timeout is None
                    else time.monotonic() + timeout + 10.0)
        sel = selectors.DefaultSelector()
        for r in range(ranks):
            sel.register(boots[r], selectors.EVENT_READ, r)
        try:
            while open_ranks:
                wait = 0.25
                if deadline is not None:
                    wait = deadline - time.monotonic()
                    if wait <= 0:
                        timed_out = set(open_ranks)
                        break
                for key, _ in sel.select(timeout=min(wait, 0.25)):
                    r = key.data
                    try:
                        msg = _recv_msg(key.fileobj)
                    except Exception:
                        msg = None
                    if msg is None:
                        # Hard crash: exited without a final report.
                        sel.unregister(key.fileobj)
                        open_ranks.discard(r)
                        died[r] = (f"rank {r} process exited without "
                                   f"reporting (crash)")
                        _broadcast(boots, open_ranks, r,
                                   ("peer_dead", r, died[r]))
                        continue
                    kind = msg[0]
                    if kind == "died":
                        _, _r, events, dropped = msg
                        events_by_rank[r] = (events, dropped)
                        died[r] = f"rank {r} died (simulated crash)"
                        sel.unregister(key.fileobj)
                        open_ranks.discard(r)
                        _broadcast(boots, open_ranks, r,
                                   ("peer_dead", r, died[r]))
                    elif kind in ("error", "fatal"):
                        _, _r, exc, *rest = msg
                        sec = rest[0] if kind == "error" else False
                        events_by_rank[r] = (rest[-2], rest[-1])
                        sel.unregister(key.fileobj)
                        open_ranks.discard(r)
                        if sec:
                            secondaries[r] = exc
                        else:
                            finals[r] = exc
                            if first_primary is None:
                                first_primary = (r, exc)
                                _broadcast(boots, open_ranks, r,
                                           ("peer_failed", r, exc))
                    elif kind == "result":
                        _, _r, value, events, dropped = msg
                        events_by_rank[r] = (events, dropped)
                        results[r] = value
                        sel.unregister(key.fileobj)
                        open_ranks.discard(r)
        finally:
            sel.close()

        # Phase 3: reap.
        join_deadline = time.monotonic() + (2.0 if timed_out else 15.0)
        for p in procs:
            p.join(timeout=max(0.1, join_deadline - time.monotonic()))
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.is_alive():
                p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():
                p.kill()
                p.join(timeout=5.0)
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        fabric.destroy()

    if timed_out:
        exc = CommTimeout(
            f"spmd[proc]: {len(timed_out)} of {ranks} ranks did not "
            f"terminate (ranks {sorted(timed_out)})"
        )
        _dump_failure(tel_cfg, f"CommTimeout: {exc}", events_by_rank, ranks)
        raise exc
    if first_primary is not None:
        _r, exc = first_primary
        if isinstance(exc, (CommTimeout, PeerFailure, RankDead)):
            _dump_failure(tel_cfg, f"{type(exc).__name__}: {exc}",
                          events_by_rank, ranks)
        raise exc
    if died and not survive_rank_death:
        r = min(died)
        exc = RankDead(died[r])
        _dump_failure(tel_cfg, f"RankDead: {exc}", events_by_rank, ranks)
        raise exc
    return results
