"""Dynamic global memory management (paper §III-C).

``allocate(rank, count, dtype)`` reserves ``count`` elements in the
segment of ``rank`` — including *remote* ranks, the feature the paper
highlights as "not available in either UPC or MPI" (it is what makes
distributed linked structures convenient).  Remote allocation is an
active-message round trip to the owner, because allocator metadata is
software state only the owner may touch; local allocation is a direct
segment call.

As in the paper, ``allocate`` does **not** run constructors; it returns
raw, zero-initialized storage wrapped in a typed global pointer.
"""

from __future__ import annotations

import numpy as np

from repro.core.global_ptr import GlobalPtr
from repro.core.world import RankState, current
from repro.gasnet.am import am_handler


@am_handler("seg_alloc")
def _seg_alloc_handler(ctx: RankState, am) -> None:
    nbytes, align = am.args
    offset = ctx.segment.alloc(nbytes, align=align)
    ctx.reply(am, args=(offset,))


@am_handler("seg_free")
def _seg_free_handler(ctx: RankState, am) -> None:
    (offset,) = am.args
    ctx.segment.free(offset)
    ctx.reply(am, args=("ok",))


def allocate(rank: int, count: int, dtype=np.uint8,
             align: int = 8) -> GlobalPtr:
    """Allocate ``count`` elements of ``dtype`` on ``rank``.

    >>> sp = allocate(2, 64, np.int64)   # 64 ints on rank 2 (paper example)
    """
    ctx = current()
    dtype = np.dtype(dtype)
    nbytes = int(count) * dtype.itemsize
    align = max(align, dtype.itemsize if dtype.itemsize else 1)
    if rank == ctx.rank:
        offset = ctx.segment.alloc(nbytes, align=align)
    else:
        fut = ctx.send_am(
            rank, "seg_alloc", args=(nbytes, align), expect_reply=True
        )
        (offset,), _payload = fut.get()
    return GlobalPtr(rank=rank, offset=offset, dtype=dtype)


def escalate(local_array: np.ndarray) -> tuple[GlobalPtr, np.ndarray]:
    """Escalate a private array into a shared object (paper §III-C).

    UPC++ allows "construct[ing] a global_ptr from a regular C++ pointer
    to a local heap or stack object, which semantically escalates a
    private object into a shared object" — noting that this needs a
    runtime with network access to *all* memory ("segment everything").
    Our conduit, like GASNet's segment-fast configuration, only reaches
    registered segments; so escalation here moves the data into the
    caller's segment and returns

    * a :class:`GlobalPtr` any rank may use, and
    * a zero-copy NumPy view the owner should use **instead of** the
      original array (which is left untouched and now stale).

    Free with :func:`deallocate` when done.
    """
    from repro.errors import BadPointer

    arr = np.ascontiguousarray(local_array)
    if arr.dtype.hasobject:
        raise BadPointer(
            f"cannot escalate object-dtype array ({arr.dtype}); shared "
            "memory holds raw elements only"
        )
    ptr = allocate(current().rank, arr.size, arr.dtype)
    ptr.put(arr.reshape(-1))
    view = ptr.local(arr.size).reshape(arr.shape)
    return ptr, view


def deallocate(ptr: GlobalPtr) -> None:
    """Free memory returned by :func:`allocate` — callable from any rank
    (paper: "can be freed by calling deallocate from any UPC++ thread").

    Blocking: errors on the owner (e.g. double free) propagate to the
    caller as exceptions.
    """
    ctx = current()
    if ptr.is_null:
        return
    if ptr.rank == ctx.rank:
        ctx.segment.free(ptr.offset)
    else:
        fut = ctx.send_am(
            ptr.rank, "seg_free", args=(ptr.offset,), expect_reply=True
        )
        fut.get()
