"""Events — Phalanx-style completion objects (paper §III-G).

An event counts outstanding operations registered against it.  Async
invocations and async copies may *signal* an event on completion; other
asyncs may be launched *after* an event fires (``async_after``), which is
how the paper builds task-dependency graphs (Listing 1 / Fig. 1).

Events are rank-local objects: registration, signaling and dependent
firing all happen on the issuing rank (completion replies arrive there).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.core.world import current
from repro.errors import PgasError


class Event:
    """A countdown event with dependent-task firing."""

    def __init__(self) -> None:
        self._ctx = current()
        self._lock = threading.Lock()
        self._count = 0
        self._registered = 0
        self._dependents: list[Callable[[], None]] = []

    # -- runtime side -----------------------------------------------------
    def incref(self, n: int = 1) -> None:
        """Register ``n`` more operations that will signal this event."""
        if n < 0:
            raise ValueError("incref amount must be non-negative")
        with self._lock:
            self._count += n
            self._registered += n

    def decref(self) -> None:
        """One registered operation completed (the *signal*)."""
        fire: list[Callable[[], None]] = []
        with self._lock:
            if self._count <= 0:
                raise PgasError("event signaled more times than registered")
            self._count -= 1
            if self._count == 0:
                fire, self._dependents = self._dependents, []
        for dep in fire:
            dep()
        if fire or self._count == 0:
            self._ctx.world.poke_all()

    signal = decref

    # -- user side ----------------------------------------------------------
    def pending(self) -> int:
        return self._count

    def test(self) -> bool:
        """True when no registered operation is still outstanding."""
        return self._count == 0

    def wait(self, timeout: float | None = None) -> None:
        """Block (making progress) until all registered ops completed."""
        ctx = current()
        ctx.wait_until(lambda: self._count == 0, what="event", timeout=timeout)

    def add_dependent(self, launch: Callable[[], None]) -> None:
        """Run ``launch()`` once the event fires (immediately if it has).

        Used by :func:`repro.async_after`; the callable runs on the rank
        that owns the event, in its progress context.
        """
        run_now = False
        with self._lock:
            if self._count == 0:
                run_now = True
            else:
                self._dependents.append(launch)
        if run_now:
            launch()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Event pending={self._count} registered={self._registered}>"
