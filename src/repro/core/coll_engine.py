"""Tree-based collectives engine over conduit active messages.

The rendezvous-slot exchange this replaces funnelled every rank through
one dict under the world lock — O(N) deep copies at a single point of
serialization, invisible to the conduit stack.  Here every collective is
a small per-rank state machine advanced purely by active messages, so
the traffic is ordinary point-to-point AMs that the chaos conduit, the
reliability layer, the flight recorder and the latency histograms all
see for free, and per-rank work is O(log N) rounds:

===========  ==================================  =======================
collective   algorithm                           per-rank sends
===========  ==================================  =======================
barrier      dissemination (Hensgen et al.)      ceil(log2 P)
bcast        binomial tree from the root         <= ceil(log2 P)
reduce       binomial tree to the root           1 (non-root)
allreduce    binomial reduce + binomial bcast    <= 1 + ceil(log2 P)
gather(v)    binomial tree, coalesced subtrees   1 (non-root)
scatter      binomial tree, coalesced subtrees   <= ceil(log2 P)
allgather    Bruck (works for any P)             ceil(log2 P)
alltoall(v)  pairwise, one coalesced AM/peer     P - 1
===========  ==================================  =======================

Every message carries ``(team_key, seq, kind, tag, src_index)`` in the
AM header: ``team_key`` is the member tuple (``()`` for the world team),
``seq`` the per-team collective sequence number, and ``kind`` the
operation name — so collectives issued out of order across ranks are
detected as a :class:`~repro.errors.PgasError` (kind mismatch on the
same key) instead of deadlocking, exactly like the old rendezvous path.

State transitions happen either at initiation (on the calling thread,
under the rank's handler lock) or inside the AM handler (already under
the handler lock); completion resolves a :class:`~repro.core.future.
Future`, which is what the non-blocking ``*_async`` API hands out.
Handlers are idempotent — a duplicated message (bare chaos conduit, no
reliability layer) re-applies a keyed update and changes nothing — and
messages that arrive before the local rank has initiated the matching
collective are buffered and replayed.  Values cross rank boundaries
through the wire codec (pre-encoded once per fan-out, spliced into each
frame), which supplies the by-value contract of a real network.
"""

from __future__ import annotations

import pickle
import time
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.errors import PgasError
from repro.gasnet.am import am_handler
from repro.gasnet.wire import preencode
from repro.telemetry import tracing

#: AM handler name for all collective traffic.
COLL_AM = "coll"

#: Completed-collective keys remembered for stray-message filtering
#: (duplicates from the chaos conduit, retransmits racing completion).
_COMPLETED_LRU = 256


def copy_value(value: Any) -> Any:
    """By-value semantics for contributions crossing rank boundaries.

    Immutable builtins (and frozenset, whose elements must themselves
    be hashable-immutable) are returned as-is — a full pickle round
    trip on an int or frozenset buys nothing."""
    if value is None or isinstance(
        value, (int, float, bool, complex, str, bytes, frozenset)
    ):
        return value
    if isinstance(value, np.generic):
        return value  # NumPy scalars are immutable; no copy needed
    if isinstance(value, np.ndarray):
        return value.copy()
    return pickle.loads(pickle.dumps(value, protocol=-1))


def ceil_log2(p: int) -> int:
    """Number of dissemination/Bruck rounds for ``p`` participants."""
    return max(p - 1, 0).bit_length()


def binomial_tree(rel: int, p: int) -> tuple[int | None, list[int]]:
    """Parent and children of relative rank ``rel`` in a binomial tree
    over ``p`` nodes rooted at 0.  Children are returned in increasing
    order (smallest subtree first), which is the fold order reductions
    use."""
    children = []
    step = 1
    while step < p:
        if rel & step:
            return rel - step, children
        if rel + step < p:
            children.append(rel + step)
        step <<= 1
    return None, children


class _Collective:
    """Base class: one in-flight collective on one rank."""

    kind = "?"

    __slots__ = ("eng", "key", "members", "P", "my_index", "future", "done")

    def __init__(self, eng: "CollEngine", key: tuple, members: tuple):
        from repro.core.future import Future

        self.eng = eng
        self.key = key
        self.members = members
        self.P = len(members)
        self.my_index = members.index(eng.ctx.rank)
        self.future = Future(eng.ctx)
        self.done = False

    # -- outgoing traffic ---------------------------------------------------
    def send(self, dst_index: int, tag, data: Any = None) -> None:
        self.send_wire(dst_index, tag, self.pack(data))

    @staticmethod
    def pack(data: Any):
        """Encode once; the resulting :class:`EncodedPayload` is spliced
        into every fan-out frame without re-serializing."""
        return None if data is None else preencode(data)

    def send_wire(self, dst_index: int, tag, payload) -> None:
        ctx = self.eng.ctx
        ctx.stats.record_coll_msg()
        ctx.send_am(
            self.members[dst_index], COLL_AM,
            args=(self.key[0], self.key[1], self.kind, tag, self.my_index),
            payload=payload,
        )

    # -- completion ---------------------------------------------------------
    def complete(self, result: Any = None) -> None:
        if self.done:
            return
        self.done = True
        self.eng.retire(self.key, self.kind)
        self.future.set_result(result)

    # -- subclass protocol --------------------------------------------------
    def start(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def on_msg(self, tag, src_index: int, data: Any) -> None:
        raise NotImplementedError  # pragma: no cover - interface


class _Barrier(_Collective):
    """Dissemination barrier: round k tells (i + 2^k) mod P; completion
    after ceil(log2 P) rounds transitively covers every rank."""

    kind = "barrier"

    __slots__ = ("rounds", "got", "sent")

    def __init__(self, eng, key, members, value=None):
        super().__init__(eng, key, members)
        self.rounds = ceil_log2(self.P)
        self.got: set[int] = set()
        self.sent = 0

    def start(self) -> None:
        if self.P == 1:
            self.complete(None)
            return
        self.send((self.my_index + 1) % self.P, 0)
        self.sent = 1

    def on_msg(self, tag, src_index, data) -> None:
        self.got.add(tag)
        # Enter round k only after finishing round k-1 (the token for
        # round k-1 has arrived) — the dissemination invariant.
        while self.sent < self.rounds and (self.sent - 1) in self.got:
            self.send((self.my_index + (1 << self.sent)) % self.P, self.sent)
            self.sent += 1
        if self.sent == self.rounds and len(self.got) == self.rounds:
            self.complete(None)


class _Bcast(_Collective):
    """Binomial-tree broadcast rooted at team index ``root``."""

    kind = "bcast"

    __slots__ = ("root", "rel", "children", "value")

    def __init__(self, eng, key, members, value=None, root=0):
        super().__init__(eng, key, members)
        self.root = root
        self.rel = (self.my_index - root) % self.P
        _parent, self.children = binomial_tree(self.rel, self.P)
        self.value = value

    def _abs(self, rel: int) -> int:
        return (rel + self.root) % self.P

    def _fan_out(self, data: Any) -> None:
        if self.children:
            wire = self.pack(data)
            for c in reversed(self.children):  # largest subtree first
                self.send_wire(self._abs(c), "v", wire)

    def start(self) -> None:
        if self.rel == 0:
            self._fan_out(self.value)
            self.complete(copy_value(self.value))

    def on_msg(self, tag, src_index, data) -> None:
        self._fan_out(data)
        self.complete(data)


class _Reduce(_Collective):
    """Binomial-tree reduction to team index ``root``.

    Children fold in increasing relative order, so the result is a
    bracketing of the in-order fold — identical to the old sequential
    left fold for associative operators (which all built-in reducers
    are; custom callables must be associative too).
    """

    kind = "reduce"

    __slots__ = ("root", "op", "rel", "parent", "children", "value",
                 "partials", "folded")

    def __init__(self, eng, key, members, value=None, root=0, op=None):
        super().__init__(eng, key, members)
        self.root = root
        self.op = op
        self.rel = (self.my_index - root) % self.P
        self.parent, self.children = binomial_tree(self.rel, self.P)
        self.value = copy_value(value)  # own contribution, snapshotted
        self.partials: dict[int, Any] = {}
        self.folded = False

    def _abs(self, rel: int) -> int:
        return (rel + self.root) % self.P

    def start(self) -> None:
        if self.P == 1:
            self.complete(self.value)
            return
        if not self.children:  # leaf: contribute immediately
            self.send(self._abs(self.parent), "p", self.value)
            self._sent_up()

    def _sent_up(self) -> None:
        self.complete(None)  # non-roots receive None

    def _finish(self, acc: Any) -> None:
        self.complete(acc)

    def on_msg(self, tag, src_index, data) -> None:
        src_rel = (src_index - self.root) % self.P
        self.partials[src_rel] = data
        if self.folded or len(self.partials) < len(self.children):
            return
        self.folded = True
        acc = self.value
        for c in self.children:  # increasing order == fold order
            acc = self.op(acc, self.partials[c])
        if self.rel == 0:
            self._finish(acc)
        else:
            self.send(self._abs(self.parent), "p", acc)
            self._sent_up()


class _Allreduce(_Reduce):
    """Binomial reduce to relative 0 followed by a binomial broadcast
    back down the same tree, in one state machine ("p" up, "d" down)."""

    kind = "allreduce"

    __slots__ = ()

    def __init__(self, eng, key, members, value=None, op=None):
        super().__init__(eng, key, members, value=value, root=0, op=op)

    def _sent_up(self) -> None:
        pass  # stay armed for the "d" broadcast

    def _finish(self, acc: Any) -> None:
        wire = self.pack(acc)
        for c in reversed(self.children):
            self.send_wire(self._abs(c), "d", wire)
        self.complete(acc)

    def on_msg(self, tag, src_index, data) -> None:
        if tag == "d":
            wire = self.pack(data) if self.children else None
            for c in reversed(self.children):
                self.send_wire(self._abs(c), "d", wire)
            self.complete(data)
        else:
            super().on_msg(tag, src_index, data)


class _Gather(_Collective):
    """Binomial-tree gather: each subtree coalesces into one AM."""

    kind = "gather"

    __slots__ = ("root", "rel", "parent", "children", "parts", "arrived")

    def __init__(self, eng, key, members, value=None, root=0):
        super().__init__(eng, key, members)
        self.root = root
        self.rel = (self.my_index - root) % self.P
        self.parent, self.children = binomial_tree(self.rel, self.P)
        #: team index -> contribution, for my whole subtree so far.
        self.parts = {self.my_index: copy_value(value)}
        self.arrived: set[int] = set()

    def _abs(self, rel: int) -> int:
        return (rel + self.root) % self.P

    def start(self) -> None:
        if self.P == 1:
            self._deliver()
            return
        if not self.children:
            self.send(self._abs(self.parent), "g", self.parts)
            self.complete(None)

    def _deliver(self) -> None:
        self.complete([self.parts[i] for i in range(self.P)])

    def on_msg(self, tag, src_index, data) -> None:
        src_rel = (src_index - self.root) % self.P
        if src_rel not in self.arrived:
            self.arrived.add(src_rel)
            self.parts.update(data)
        if self.arrived != set(self.children):
            return
        if self.rel == 0:
            self._deliver()
        else:
            self.send(self._abs(self.parent), "g", self.parts)
            self.complete(None)


class _Scatter(_Collective):
    """Binomial-tree scatter: the root carves its value list into
    subtree slices; each hop forwards one coalesced slice per child."""

    kind = "scatter"

    __slots__ = ("root", "rel", "children", "values")

    def __init__(self, eng, key, members, value=None, root=0):
        super().__init__(eng, key, members)
        self.root = root
        self.rel = (self.my_index - root) % self.P
        _parent, self.children = binomial_tree(self.rel, self.P)
        self.values = value  # root only: one value per team index

    def _abs(self, rel: int) -> int:
        return (rel + self.root) % self.P

    def _fan_out(self, by_rel: dict[int, Any]) -> None:
        # Child c joined the tree at step (c & -c) and owns relative
        # ranks [c, c + (c & -c)) — its coalesced slice.
        for c in reversed(self.children):
            span = c & -c
            self.send(self._abs(c), "s", {
                r: by_rel[r] for r in range(c, min(c + span, self.P))
            })

    def start(self) -> None:
        if self.rel == 0:
            by_rel = {
                (i - self.root) % self.P: v
                for i, v in enumerate(self.values)
            }
            self._fan_out(by_rel)
            self.complete(copy_value(self.values[self.my_index]))

    def on_msg(self, tag, src_index, data) -> None:
        self._fan_out(data)
        self.complete(data[self.rel])


class _Allgather(_Collective):
    """Bruck allgather: works for any P (the test fixture runs 7 ranks),
    round k ships min(2^k, P - 2^k) coalesced blocks to (i - 2^k)."""

    kind = "allgather"

    __slots__ = ("rounds", "held", "stash", "merged")

    def __init__(self, eng, key, members, value=None):
        super().__init__(eng, key, members)
        self.rounds = ceil_log2(self.P)
        #: team index -> block; grows by doubling each merged round.
        self.held = {self.my_index: copy_value(value)}
        self.stash: dict[int, dict] = {}  # round -> early-arrived blocks
        self.merged = 0

    def _send_round(self, k: int) -> None:
        count = min(1 << k, self.P - (1 << k))
        self.send((self.my_index - (1 << k)) % self.P, k, {
            (self.my_index + j) % self.P: self.held[(self.my_index + j) % self.P]
            for j in range(count)
        })

    def start(self) -> None:
        if self.P == 1:
            self._deliver()
            return
        self._send_round(0)

    def _deliver(self) -> None:
        self.complete([self.held[i] for i in range(self.P)])

    def on_msg(self, tag, src_index, data) -> None:
        self.stash[tag] = data
        # Rounds merge in order: round k's outgoing blocks are only
        # complete once rounds < k have merged.
        while self.merged in self.stash:
            self.held.update(self.stash.pop(self.merged))
            self.merged += 1
            if self.merged < self.rounds:
                self._send_round(self.merged)
        if self.merged == self.rounds:
            self._deliver()


class _Scan(_Allgather):
    """Allgather with a distinct kind; the caller folds the prefix
    locally (sequential in-order fold — exact old semantics)."""

    kind = "scan"
    __slots__ = ()


class _Exscan(_Allgather):
    kind = "exscan"
    __slots__ = ()


class _Gatherv(_Gather):
    kind = "gatherv"
    __slots__ = ()


class _Alltoall(_Collective):
    """Pairwise exchange: P-1 coalesced AMs, one per peer, all issued at
    initiation (every peer needs a distinct value, so there is nothing a
    tree could combine)."""

    kind = "alltoall"

    __slots__ = ("inbound", "_outgoing")

    def __init__(self, eng, key, members, value=None):
        super().__init__(eng, key, members)
        #: source team index -> the value it sent me.
        self.inbound = {self.my_index: copy_value(value[self.my_index])}
        self._outgoing = value

    def start(self) -> None:
        values = self._outgoing
        self._outgoing = None
        for shift in range(1, self.P):
            dst = (self.my_index + shift) % self.P
            self.send(dst, "a", values[dst])
        if len(self.inbound) == self.P:
            self.complete([self.inbound[i] for i in range(self.P)])

    def on_msg(self, tag, src_index, data) -> None:
        self.inbound[src_index] = data
        if len(self.inbound) == self.P:
            self.complete([self.inbound[i] for i in range(self.P)])


class _Alltoallv(_Alltoall):
    kind = "alltoallv"
    __slots__ = ()


class CollEngine:
    """Per-rank collectives engine: owns the in-flight state machines,
    buffers early messages, and filters strays for finished keys."""

    __slots__ = ("ctx", "states", "pending", "completed")

    def __init__(self, ctx):
        self.ctx = ctx
        #: (team_key, seq) -> in-flight _Collective.
        self.states: dict[tuple, _Collective] = {}
        #: (team_key, seq) -> buffered (kind, tag, src_index, payload)
        #: that arrived before this rank initiated the collective.
        self.pending: dict[tuple, list] = {}
        #: (team_key, seq) -> kind, for completed collectives (LRU).
        self.completed: OrderedDict[tuple, str] = OrderedDict()

    # -- observability ------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Live bookkeeping entries (leak guard for tests)."""
        return len(self.states) + len(self.pending)

    # -- sequence numbers ---------------------------------------------------
    def next_seq(self, team_key: tuple) -> int:
        ctx = self.ctx
        if team_key:
            seq = ctx.team_seq.get(team_key, 0)
            ctx.team_seq[team_key] = seq + 1
        else:
            seq = ctx.coll_seq
            ctx.coll_seq += 1
        return seq

    # -- initiation ---------------------------------------------------------
    def initiate(self, coll_cls, team_key: tuple, members: tuple,
                 **params):
        """Start a collective; returns its completion future.

        Runs under the rank's handler lock so initiation is atomic with
        respect to concurrently delivered collective AMs (progress
        thread / nested advance).
        """
        ctx = self.ctx
        with ctx._handler_lock:
            seq = self.next_seq(team_key)
            key = (team_key, seq)
            st = coll_cls(self, key, members, **params)
            ctx.stats.record_collective()
            tel = ctx.telemetry
            if tel.active:
                tel.flight_event(
                    "coll", src=ctx.rank, dst=-1,
                    detail=f"{st.kind}#{seq}" + (
                        f" team{team_key}" if team_key else ""
                    ),
                )
                if tel.full:
                    t0 = time.perf_counter()
                    st.future.add_callback(
                        lambda _f, _k=st.kind, _t=t0: tel.record_latency(
                            f"coll_{_k}", time.perf_counter() - _t
                        )
                    )
            self.states[key] = st
            # Trace the fan-out: AMs the state machine sends from
            # start() carry this span (or the caller's, when the
            # collective runs inside an already-traced client op), so
            # tree hops on other ranks join one causal trace.
            with tracing.span(tel, f"coll:{st.kind}"):
                st.start()
            for kind, tag, src_index, payload in self.pending.pop(key, ()):
                self._dispatch(st, key, kind, tag, src_index, payload)
            return st.future

    # -- completion bookkeeping ---------------------------------------------
    def retire(self, key: tuple, kind: str) -> None:
        self.states.pop(key, None)
        self.completed[key] = kind
        if len(self.completed) > _COMPLETED_LRU:
            self.completed.popitem(last=False)

    # -- incoming traffic ---------------------------------------------------
    def handle(self, am) -> None:
        team_key, seq, kind, tag, src_index = am.args
        key = (team_key, seq)
        st = self.states.get(key)
        if st is not None:
            self._dispatch(st, key, kind, tag, src_index, am.payload)
            return
        done_kind = self.completed.get(key)
        if done_kind is not None:
            if done_kind != kind:
                self._mismatch(key, done_kind, kind, src_index)
            return  # stray duplicate for a finished collective: drop
        # Arrived before this rank initiated (team_key, seq): buffer.
        self.pending.setdefault(key, []).append(
            (kind, tag, src_index, am.payload)
        )

    def _dispatch(self, st, key, kind, tag, src_index, payload) -> None:
        if kind != st.kind:
            self._mismatch(key, st.kind, kind, src_index)
        if st.done:
            return  # duplicate delivery racing completion
        # The wire layer already decoded the payload to a fresh value.
        st.on_msg(tag, src_index, payload)

    def _mismatch(self, key, my_kind, their_kind, src_index) -> None:
        raise PgasError(
            f"collective mismatch at sequence {key[1]}: rank "
            f"{self.ctx.rank} called {my_kind!r} but another rank "
            f"(team index {src_index}) called {their_kind!r}"
        )


@am_handler(COLL_AM)
def _coll_handler(ctx, am) -> None:
    ctx.coll.handle(am)
