"""Top-level SPMD API — the UPC++ names from the paper's Table I.

========================  =============================
UPC / UPC++ (paper)       PyPGAS
========================  =============================
``THREADS / ranks()``     :func:`ranks` (alias :func:`THREADS`)
``MYTHREAD / myrank()``   :func:`myrank` (alias :func:`MYTHREAD`)
``upc_barrier/barrier()`` :func:`barrier`
``upc_fence/fence()``     :func:`fence`
``advance()``             :func:`advance`
========================  =============================
"""

from __future__ import annotations

from repro.core import collectives
from repro.core.world import World, current


def myrank() -> int:
    """The calling rank's id (paper: ``myrank()`` / UPC ``MYTHREAD``)."""
    return current().rank


def ranks() -> int:
    """Total number of ranks (paper: ``ranks()`` / UPC ``THREADS``)."""
    return current().world.n_ranks


def MYTHREAD() -> int:
    """UPC-style alias for :func:`myrank`."""
    return myrank()


def THREADS() -> int:
    """UPC-style alias for :func:`ranks`."""
    return ranks()


def current_world() -> World:
    """The world of the calling rank."""
    return current().world


def live_ranks() -> list[int]:
    """Ranks not marked dead by the failure detector.

    Equal to ``range(ranks())`` unless the world runs with
    ``survive_rank_death=True`` and a peer has died; survivable-failure
    code (replicated containers, failover benchmarks) iterates this
    instead of ``range(ranks())`` to avoid addressing dead peers.
    """
    return current().world.live_ranks()


def dead_ranks() -> frozenset[int]:
    """Ranks the failure detector has declared dead (empty set unless
    running with ``survive_rank_death=True`` and a peer died)."""
    return frozenset(current().world.dead_ranks)


def barrier() -> None:
    """Global barrier (also drives progress while waiting)."""
    collectives.barrier()


def fence() -> None:
    """Memory fence (paper §III-F).

    Orders the calling rank's outstanding remote operations: on return,
    all previously issued puts/gets and async copies by this rank are
    globally complete.  Blocking RMA in the SMP conduit completes
    eagerly, so the fence reduces to draining the non-blocking copy set
    plus one progress pass — but code written against the documented
    relaxed model stays correct on any conduit.
    """
    from repro.core.copy import async_copy_fence

    async_copy_fence()
    current().advance()


def advance(max_items: int | None = None) -> bool:
    """Explicitly poll the progress engine (paper §IV ``advance()``).

    Executes pending active messages and queued async tasks on the
    calling rank.  Returns True if anything was processed.
    """
    return current().advance(max_items=max_items)
