"""Global locks (paper §III-F: "barriers, fences, and locks").

A :class:`GlobalLock` lives on an *owner* rank, which queues acquire
requests FIFO and grants them one at a time via reply messages — the
classic AM-based lock server.  Construction is collective so that all
ranks agree on the lock identity.

The owner services requests inside its ``advance()``; a rank blocked in
``acquire()`` is itself advancing, so self-acquisition works and lock
traffic makes progress as long as the owner reaches any blocking
runtime call (the usual polling-runtime contract).
"""

from __future__ import annotations

import time
from collections import deque

from repro.core import collectives
from repro.core.world import RankState, current
from repro.errors import CommTimeout, PgasError
from repro.gasnet.am import am_handler


def _table(ctx: RankState, lock_id: int) -> dict:
    return ctx.lock_table.setdefault(
        lock_id, {"held_by": None, "queue": deque()}
    )


@am_handler("lock_acquire")
def _lock_acquire_handler(ctx: RankState, am) -> None:
    (lock_id,) = am.args
    t = _table(ctx, lock_id)
    if t["held_by"] is None:
        t["held_by"] = am.src_rank
        ctx.reply(am, args=("granted",))
    else:
        t["queue"].append((am.src_rank, am.token))


@am_handler("lock_try")
def _lock_try_handler(ctx: RankState, am) -> None:
    (lock_id,) = am.args
    t = _table(ctx, lock_id)
    if t["held_by"] is None:
        t["held_by"] = am.src_rank
        ctx.reply(am, args=("granted",))
    else:
        ctx.reply(am, args=("busy",))


@am_handler("lock_release")
def _lock_release_handler(ctx: RankState, am) -> None:
    (lock_id,) = am.args
    t = _table(ctx, lock_id)
    if t["held_by"] != am.src_rank:
        raise PgasError(
            f"rank {am.src_rank} released lock {lock_id} held by "
            f"{t['held_by']}"
        )
    if t["queue"]:
        nxt_rank, nxt_token = t["queue"].popleft()
        t["held_by"] = nxt_rank
        ctx.send_reply_to(nxt_rank, nxt_token, args=("granted",))
    else:
        t["held_by"] = None
    ctx.reply(am, args=("ok",))


class GlobalLock:
    """A mutual-exclusion lock in the global address space."""

    def __init__(self, owner: int = 0):
        ctx = current()
        if not 0 <= owner < ctx.world.n_ranks:
            raise PgasError(f"lock owner {owner} out of range")
        self.owner = owner
        # Collective id agreement: owner names the lock, everyone learns it.
        lock_id = None
        if ctx.rank == owner:
            lock_id = next(ctx.world._lock_ids)
        self.lock_id = collectives.bcast(lock_id, root=owner)

    def acquire(self, block: bool = True,
                timeout: float | None = None) -> bool:
        """Acquire the lock; with ``block=False`` behaves like
        ``upc_lock_attempt`` (returns False when busy).

        A blocking acquire waits at most ``timeout`` seconds (default:
        the world's ``op_timeout``) and then raises
        :class:`~repro.errors.CommTimeout` naming the lock — the holder
        may be wedged.  If the holder (or the owner rank) *dies* while we
        queue, the failure detector fails the world and the pending
        acquire raises :class:`~repro.errors.PeerFailure` instead of
        blocking forever.
        """
        ctx = current()
        tel = ctx.telemetry
        handler = "lock_acquire" if block else "lock_try"
        t0 = time.perf_counter()
        fut = ctx.send_am(
            self.owner, handler, args=(self.lock_id,), expect_reply=True
        )
        try:
            (status, *_rest), _payload = fut.get(timeout=timeout)
        except CommTimeout as exc:
            tel.flight_event(
                "lock_timeout", src=ctx.rank, dst=self.owner,
                detail=f"lock {self.lock_id}",
            )
            raise CommTimeout(
                f"rank {ctx.rank}: acquire of lock {self.lock_id} "
                f"(owner rank {self.owner}) timed out — holder wedged "
                f"or grant lost ({exc})"
            ) from exc
        if tel.full and block:
            # Lock-wait latency: request -> grant (queue time included).
            tel.histogram("lock_wait").record_seconds(
                time.perf_counter() - t0
            )
        return status == "granted"

    def release(self) -> None:
        ctx = current()
        fut = ctx.send_am(
            self.owner, "lock_release", args=(self.lock_id,),
            expect_reply=True,
        )
        fut.get()

    # -- pythonic sugar ----------------------------------------------------
    def __enter__(self) -> "GlobalLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover
        return f"GlobalLock(id={self.lock_id}, owner={self.owner})"
