"""``shared_var<T>`` — a single shared scalar (paper §III-A).

"A shared scalar is a single memory location, generally stored on thread
0 but accessible by all threads."  Construction is collective (all ranks
construct the same variables in the same order); the owner allocates the
cell and broadcasts its address.

Python cannot overload assignment to a bare name, so instead of
``s = 1`` / ``int a = s`` the accessors are the ``value`` property or
``get()``/``put()``:

.. code-block:: python

    s = SharedVar(np.int64, init=0)
    s.value = 1          # one-sided put to the owner
    a = s.value          # one-sided get from the owner
"""

from __future__ import annotations

import numpy as np

from repro.core import collectives
from repro.core.allocator import allocate
from repro.core.global_ptr import GlobalPtr
from repro.core.world import current


class SharedVar:
    """A scalar in the global address space.  Collective constructor."""

    def __init__(self, dtype=np.int64, init=None, owner: int = 0):
        ctx = current()
        self.dtype = np.dtype(dtype)
        self.owner = owner
        if ctx.rank == owner:
            ptr = allocate(owner, 1, self.dtype)
            if init is not None:
                ptr.put(np.asarray(init, dtype=self.dtype))
            offset = ptr.offset
        else:
            offset = None
        offset = collectives.bcast(offset, root=owner)
        self.ptr = GlobalPtr(rank=owner, offset=offset, dtype=self.dtype)

    # -- access ---------------------------------------------------------
    def get(self):
        """Read the shared value (rvalue use)."""
        return self.ptr.get(1)[0]

    def put(self, value) -> None:
        """Write the shared value (lvalue use)."""
        self.ptr.put(value)

    @property
    def value(self):
        return self.get()

    @value.setter
    def value(self, v) -> None:
        self.put(v)

    def atomic(self, op, operand):
        """Atomic read-modify-write (e.g. ``s.atomic("add", 1)``)."""
        return self.ptr.atomic(op, operand)

    def where(self) -> int:
        return self.owner

    def __repr__(self) -> str:  # pragma: no cover
        return f"SharedVar(dtype={self.dtype}, owner={self.owner})"
