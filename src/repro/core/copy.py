"""Bulk data transfer (paper §III-D).

``copy(src, dst, count)`` moves ``count`` contiguous elements between
global pointers; ``async_copy`` is its non-blocking form, completed by
``async_copy_fence()`` (wait for *all* outstanding copies — the paper's
"handle-less" model the LULESH port praises) or by an event registered
per operation.

In the SMP conduit the data movement itself is immediate (shared
memory), but the completion bookkeeping — handles, events, the fence —
is identical to the real runtime, so programs written against the
non-blocking API have the same structure and the same stats profile the
performance model consumes.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.event import Event
from repro.core.global_ptr import GlobalPtr
from repro.core.world import current
from repro.errors import BadPointer
from repro.gasnet import rma


class CopyHandle:
    """Completion handle for one non-blocking copy (MPI_Request-like)."""

    __slots__ = ("_done", "_event", "nbytes")

    def __init__(self, nbytes: int, event: Optional[Event]):
        self._done = False
        self._event = event
        self.nbytes = nbytes

    def _complete(self) -> None:
        if not self._done:
            self._done = True
            if self._event is not None:
                self._event.decref()

    def done(self) -> bool:
        return self._done

    def wait(self, timeout: float | None = None) -> None:
        """Block until this specific copy completed.

        ``timeout`` defaults to the world's ``op_timeout``; on expiry a
        :class:`~repro.errors.CommTimeout` is raised (and a peer failure
        while waiting raises :class:`~repro.errors.PeerFailure`), like
        every other blocking runtime call.
        """
        ctx = current()
        tel = ctx.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        ctx.wait_until(
            lambda: self._done, what="async_copy", timeout=timeout
        )
        if tel.full:
            # Completion-wait latency: issue-to-done for this handle.
            tel.histogram("copy_wait").record_seconds(
                time.perf_counter() - t0
            )


def _transfer(src: GlobalPtr, dst: GlobalPtr, count: int) -> int:
    """Move ``count`` elements; returns bytes moved."""
    if src.is_null or dst.is_null:
        raise BadPointer("copy involving a null pointer")
    if src.dtype.itemsize != dst.dtype.itemsize:
        raise BadPointer(
            f"copy between dtypes of different sizes "
            f"({src.dtype} -> {dst.dtype})"
        )
    count = int(count)
    if count < 0:
        raise ValueError("negative copy count")
    if count == 0:
        return 0
    ctx = current()
    data = rma.get(ctx, src.rank, src.offset, src.dtype, count)
    rma.put(ctx, dst.rank, dst.offset, data.view(dst.dtype))
    return data.nbytes


def copy(src: GlobalPtr, dst: GlobalPtr, count: int) -> None:
    """Blocking bulk copy of ``count`` elements, src → dst (paper's
    argument order)."""
    _transfer(src, dst, count)


def async_copy(src: GlobalPtr, dst: GlobalPtr, count: int,
               event: Optional[Event] = None) -> CopyHandle:
    """Non-blocking bulk copy.

    Completion is observed through ``async_copy_fence()``, the returned
    handle, or ``event`` (which is registered before the transfer starts,
    as the paper's event-driven model requires).
    """
    ctx = current()
    if event is not None:
        event.incref()
    handle = CopyHandle(0, event)
    # Prune already-completed handles (completed via .wait() or an
    # event) so programs that never call async_copy_fence() don't
    # accumulate handles without bound.  In-place so a concurrently
    # captured reference to the list (the fence) stays valid.
    pending = ctx.outstanding_copies
    if pending:
        pending[:] = [h for h in pending if not h.done()]
    pending.append(handle)
    handle.nbytes = _transfer(src, dst, count)
    handle._complete()
    return handle


def async_copy_fence() -> None:
    """Wait for completion of *all* previously issued async copies on
    this rank — the "handle-less" synchronization (paper §V-E)."""
    ctx = current()
    pending = ctx.outstanding_copies
    ctx.wait_until(
        lambda: all(h.done() for h in pending), what="async_copy_fence"
    )
    pending.clear()
