"""Futures for asynchronous remote operations (paper §III-G).

A future is created on the *initiating* rank and completed when the
corresponding reply AM is processed — which happens inside that rank's
own ``advance()`` (serialized mode) or on the progress thread
(concurrent mode).  ``get()`` therefore polls progress while waiting,
mirroring ``future.get()`` in the paper.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.errors import PgasError


class Future:
    """Completion handle for one async operation."""

    __slots__ = ("_ctx", "_lock", "_done", "_value", "_exc", "_callbacks",
                 "_dst")

    def __init__(self, ctx):
        self._ctx = ctx
        self._lock = threading.Lock()
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        #: Destination rank of the request this future answers (set by
        #: the AM layer; consulted by the death-time pending sweep).
        self._dst = -1

    # -- completion (runtime side) --------------------------------------
    def set_result(self, value: Any) -> None:
        with self._lock:
            if self._done:
                raise PgasError("future completed twice")
            self._value = value
            self._done = True
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._done:
                raise PgasError("future completed twice")
            self._exc = exc
            self._done = True
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Future"], None]) -> None:
        """Run ``cb(self)`` on completion (immediately if already done)."""
        run_now = False
        with self._lock:
            if self._done:
                run_now = True
            else:
                self._callbacks.append(cb)
        if run_now:
            cb(self)

    # -- consumption (user side) -----------------------------------------
    def done(self) -> bool:
        return self._done

    def wait(self, timeout: float | None = None) -> "Future":
        self._ctx.wait_until(lambda: self._done, what="future", timeout=timeout)
        return self

    def get(self, timeout: float | None = None) -> Any:
        """Block (making progress) until done; return value or raise."""
        self.wait(timeout=timeout)
        if self._exc is not None:
            raise self._exc
        return self._value

    def result_raw(self) -> Any:
        """The raw (args, payload) reply — used by runtime internals."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self._done else "pending"
        return f"<Future {state}>"


class TaskFuture(Future):
    """Future for an async *task*; unwraps the reply's return value
    (delivered by value, already decoded by the wire layer)."""

    __slots__ = ()

    def get(self, timeout: float | None = None) -> Any:
        _args, payload = super().get(timeout=timeout)
        return payload


class MultiFuture:
    """Aggregate future for asyncs targeted at a :class:`~repro.core.team.Team`.

    ``get()`` returns the list of per-member results in team order.
    """

    __slots__ = ("_futures",)

    def __init__(self, futures: list[Future]):
        self._futures = futures

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def wait(self, timeout: float | None = None) -> "MultiFuture":
        for f in self._futures:
            f.wait(timeout=timeout)
        return self

    def get(self, timeout: float | None = None) -> list:
        return [f.get(timeout=timeout) for f in self._futures]

    def __len__(self) -> int:
        return len(self._futures)

    def __iter__(self):
        return iter(self._futures)
