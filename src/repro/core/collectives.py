"""Collective operations.

UPC++ inherits barriers from UPC and adds the collectives its case
studies need (the Embree port uses a gatherv and a sum-reduction; Sample
Sort needs allgather/alltoallv).  All collectives run on the tree-based
engine in :mod:`repro.core.coll_engine`: binomial trees for
bcast/reduce/gather/scatter, a dissemination barrier, a Bruck
allgather, and pairwise exchange for alltoall — O(log N) rounds of
point-to-point active messages per rank instead of the old O(N)
rendezvous under one world lock, and every message is visible to the
conduit stack (chaos, reliability, telemetry).

Each collective has a **non-blocking variant** (``barrier_async``,
``reduce_async``, ...) returning a :class:`~repro.core.future.Future`
that completes via ``advance()`` progress, so communication can overlap
computation (the UPC++ v1.0 direction).  The blocking API is a thin
``initiate + wait`` wrapper.  Every function is **team-aware** via the
``team=`` keyword (``None`` means the world team); for team-scoped
calls ``root`` is a *team index*.

Contributions cross the wire through the frame codec (NumPy ``copy``
for local fast paths) so the exchange has by-value semantics — the
same data-movement contract a real network gives you, and a guard
against aliasing bugs in user code.

All participants must invoke collectives in the same order; a mismatch
(rank 0 calls ``bcast`` while rank 1 calls ``reduce``) is detected via
the per-team sequence number carried in every AM header and raised as a
:class:`~repro.errors.PgasError` instead of deadlocking.  Reductions
fold children in team order but with tree bracketing: operators must be
associative (all named ones are).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core import coll_engine as _eng
from repro.core.coll_engine import copy_value as _copy_value
from repro.core.future import Future
from repro.core.team import Team
from repro.core.world import current
from repro.errors import PgasError

_REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "xor": lambda a, b: a ^ b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
}


def _resolve_op(op) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return _REDUCERS[op]
    except KeyError:
        raise PgasError(
            f"unknown reduction {op!r}; known: {sorted(_REDUCERS)}"
        ) from None


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------

def _participants(ctx, team: Team | None) -> tuple[tuple, tuple, int]:
    """(team_key, members, my_index) for a collective's participants."""
    if team is None:
        return (), tuple(range(ctx.world.n_ranks)), ctx.rank
    return team.members, team.members, team.index_of(ctx.rank)


def _check_root(root: int, nparties: int, what: str) -> None:
    if not 0 <= root < nparties:
        raise PgasError(f"{what} root {root} out of range")


def _wait(fut: Future, what: str) -> Any:
    """Block (making progress) on a collective's future."""
    current().wait_until(fut.done, what=f"collective {what}")
    return fut.get()


def _mapped(ctx, fut: Future, fn: Callable[[Any], Any]) -> Future:
    """A future resolving to ``fn(result)`` of ``fut``."""
    out = Future(ctx)

    def _chain(f: Future) -> None:
        if f._exc is not None:
            out.set_exception(f._exc)
            return
        try:
            out.set_result(fn(f._value))
        except BaseException as exc:
            out.set_exception(exc)

    fut.add_callback(_chain)
    return out


# ---------------------------------------------------------------------------
# collectives — non-blocking variants (initiate; future completes via
# advance() progress) and their blocking thin wrappers
# ---------------------------------------------------------------------------

def barrier_async(team: Team | None = None) -> Future:
    """Start a dissemination barrier; the future completes once every
    participant has entered it."""
    ctx = current()
    key, members, _ = _participants(ctx, team)
    return ctx.coll.initiate(_eng._Barrier, key, members)


def barrier(team: Team | None = None) -> None:
    """Block until every participant has entered (paper's barrier())."""
    ctx = current()
    _wait(barrier_async(team), "barrier")
    ctx.stats.record_barrier()


def bcast_async(value: Any = None, root: int = 0,
                team: Team | None = None) -> Future:
    ctx = current()
    key, members, _ = _participants(ctx, team)
    _check_root(root, len(members), "bcast")
    return ctx.coll.initiate(_eng._Bcast, key, members,
                             value=value, root=root)


def bcast(value: Any = None, root: int = 0,
          team: Team | None = None) -> Any:
    """Broadcast ``value`` from ``root`` to all participants."""
    return _wait(bcast_async(value, root=root, team=team), "bcast")


def reduce_async(value: Any, op="sum", root: int = 0,
                 team: Team | None = None) -> Future:
    ctx = current()
    fn = _resolve_op(op)
    key, members, _ = _participants(ctx, team)
    _check_root(root, len(members), "reduce")
    return ctx.coll.initiate(_eng._Reduce, key, members,
                             value=value, root=root, op=fn)


def reduce(value: Any, op="sum", root: int = 0,
           team: Team | None = None) -> Any:
    """Reduce contributions to ``root``; other ranks receive ``None``."""
    return _wait(reduce_async(value, op=op, root=root, team=team), "reduce")


def allreduce_async(value: Any, op="sum",
                    team: Team | None = None) -> Future:
    ctx = current()
    fn = _resolve_op(op)
    key, members, _ = _participants(ctx, team)
    return ctx.coll.initiate(_eng._Allreduce, key, members,
                             value=value, op=fn)


def allreduce(value: Any, op="sum", team: Team | None = None) -> Any:
    """Reduce contributions; every participant receives the result."""
    return _wait(allreduce_async(value, op=op, team=team), "allreduce")


def gather_async(value: Any, root: int = 0,
                 team: Team | None = None) -> Future:
    ctx = current()
    key, members, _ = _participants(ctx, team)
    _check_root(root, len(members), "gather")
    return ctx.coll.initiate(_eng._Gather, key, members,
                             value=value, root=root)


def gather(value: Any, root: int = 0,
           team: Team | None = None) -> list | None:
    """Gather one value per participant to ``root`` (team order)."""
    return _wait(gather_async(value, root=root, team=team), "gather")


def allgather_async(value: Any, team: Team | None = None) -> Future:
    ctx = current()
    key, members, _ = _participants(ctx, team)
    return ctx.coll.initiate(_eng._Allgather, key, members, value=value)


def allgather(value: Any, team: Team | None = None) -> list:
    """Gather one value per participant to every participant."""
    return _wait(allgather_async(value, team=team), "allgather")


def gatherv_async(array: np.ndarray, root: int = 0,
                  team: Team | None = None) -> Future:
    arr = np.ascontiguousarray(array)
    if arr.ndim != 1:
        raise PgasError("gatherv expects 1-D arrays; ravel first")
    ctx = current()
    key, members, my_index = _participants(ctx, team)
    _check_root(root, len(members), "gatherv")
    fut = ctx.coll.initiate(_eng._Gatherv, key, members,
                            value=arr, root=root)
    if my_index != root:
        return fut  # resolves to None off-root
    return _mapped(ctx, fut, np.concatenate)


def gatherv(array: np.ndarray, root: int = 0,
            team: Team | None = None) -> np.ndarray | None:
    """Gather variable-length 1-D arrays; root gets the concatenation.

    This is the collective the paper's Embree port uses to combine image
    tiles ("a final gather operation combines the tiles").
    """
    return _wait(gatherv_async(array, root=root, team=team), "gatherv")


def scatter_async(values: Sequence | None = None, root: int = 0,
                  team: Team | None = None) -> Future:
    ctx = current()
    key, members, my_index = _participants(ctx, team)
    _check_root(root, len(members), "scatter")
    if my_index == root:
        if values is None or len(values) != len(members):
            raise PgasError(
                f"scatter root must supply {len(members)} values"
            )
        values = list(values)
    else:
        values = None
    return ctx.coll.initiate(_eng._Scatter, key, members,
                             value=values, root=root)


def scatter(values: Sequence | None = None, root: int = 0,
            team: Team | None = None) -> Any:
    """Root provides one value per participant; each receives its own."""
    return _wait(scatter_async(values, root=root, team=team), "scatter")


def alltoall_async(values: Sequence, team: Team | None = None) -> Future:
    ctx = current()
    key, members, _ = _participants(ctx, team)
    n = len(members)
    if len(values) != n:
        raise PgasError(f"alltoall needs exactly {n} values, one per rank")
    return ctx.coll.initiate(_eng._Alltoall, key, members,
                             value=list(values))


def alltoall(values: Sequence, team: Team | None = None) -> list:
    """Each rank provides one value per destination; receives one per
    source (the key redistribution primitive of Sample Sort baselines)."""
    return _wait(alltoall_async(values, team=team), "alltoall")


def alltoallv_async(arrays: Sequence[np.ndarray],
                    team: Team | None = None) -> Future:
    ctx = current()
    key, members, _ = _participants(ctx, team)
    n = len(members)
    if len(arrays) != n:
        raise PgasError(f"alltoall needs exactly {n} values, one per rank")
    return ctx.coll.initiate(
        _eng._Alltoallv, key, members,
        value=[np.ascontiguousarray(a) for a in arrays],
    )


def alltoallv(arrays: Sequence[np.ndarray],
              team: Team | None = None) -> list[np.ndarray]:
    """alltoall for variable-length NumPy arrays."""
    return _wait(alltoallv_async(arrays, team=team), "alltoallv")


def scan_async(value: Any, op="sum", team: Team | None = None) -> Future:
    ctx = current()
    fn = _resolve_op(op)
    key, members, my_index = _participants(ctx, team)
    fut = ctx.coll.initiate(_eng._Scan, key, members, value=value)

    def _prefix(values: list) -> Any:
        acc = values[0]
        for r in range(1, my_index + 1):
            acc = fn(acc, values[r])
        return acc

    return _mapped(ctx, fut, _prefix)


def scan(value: Any, op="sum", team: Team | None = None) -> Any:
    """Inclusive prefix reduction: rank r receives op(v_0 ... v_r).

    The offset-computation primitive of distributed partitioning (e.g.
    where each rank's keys land in a globally sorted order).  The fold
    is performed locally over the allgathered contributions, strictly
    in team order — exact sequential-fold semantics.
    """
    return _wait(scan_async(value, op=op, team=team), "scan")


def exscan_async(value: Any, op="sum", initial: Any = 0,
                 team: Team | None = None) -> Future:
    ctx = current()
    fn = _resolve_op(op)
    key, members, my_index = _participants(ctx, team)
    fut = ctx.coll.initiate(_eng._Exscan, key, members, value=value)

    def _prefix(values: list) -> Any:
        acc = _copy_value(initial)
        for r in range(my_index):
            acc = fn(acc, values[r])
        return acc

    return _mapped(ctx, fut, _prefix)


def exscan(value: Any, op="sum", initial: Any = 0,
           team: Team | None = None) -> Any:
    """Exclusive prefix reduction: rank r receives op(v_0 ... v_{r-1});
    rank 0 receives ``initial``."""
    return _wait(exscan_async(value, op=op, initial=initial, team=team),
                 "exscan")


# ---------------------------------------------------------------------------
# team-scoped aliases (pre-engine API; kept for compatibility)
# ---------------------------------------------------------------------------

def team_barrier(team: Team) -> None:
    barrier(team=team)


def team_bcast(team: Team, value: Any, root: int = 0) -> Any:
    return bcast(value, root=root, team=team)


def _team_exchange(team: Team, value: Any) -> list:
    """Allgather within a team (team order) — used by Team.split."""
    return allgather(value, team=team)
