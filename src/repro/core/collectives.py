"""Collective operations.

UPC++ inherits barriers from UPC and adds the collectives its case
studies need (the Embree port uses a gatherv and a sum-reduction; Sample
Sort needs allgather/alltoallv).  All collectives here are built on one
*rendezvous exchange* primitive: every participant deposits its
contribution, the last arrival publishes the slot, and each participant
extracts its own copy of the result.

Contributions are deep-copied on deposit (NumPy ``copy`` / pickle round
trip) so the exchange has by-value semantics — the same data-movement
contract a real network gives you, and a guard against aliasing bugs in
user code.

All ranks must invoke collectives in the same order; a mismatch (rank 0
calls ``bcast`` while rank 1 calls ``reduce``) is detected and raised as
a :class:`~repro.errors.PgasError` instead of deadlocking.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.team import Team
from repro.core.world import current
from repro.errors import PgasError

_REDUCERS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "xor": lambda a, b: a ^ b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
}


def _copy_value(value: Any) -> Any:
    """By-value semantics for contributions crossing rank boundaries."""
    if value is None or isinstance(value, (int, float, bool, str, bytes)):
        return value
    if isinstance(value, np.ndarray):
        return value.copy()
    return pickle.loads(pickle.dumps(value, protocol=-1))


def _exchange(kind: str, value: Any, *, team: Team | None = None) -> dict:
    """Deposit ``value``; return the {participant_index: value} dict once
    every participant has arrived.  The returned dict must be treated as
    read-only; extract copies via :func:`_take`."""
    ctx = current()
    if team is None:
        parties = ctx.world.n_ranks
        my_index = ctx.rank
        key_extra: tuple = ()
    else:
        parties = len(team)
        my_index = team.index_of(ctx.rank)
        key_extra = team.members
    slot = ctx.world.rendezvous_slot(ctx, kind, parties, key_extra)
    with ctx.world._glock:
        slot.data[my_index] = _copy_value(value)
        slot.arrived += 1
        last = slot.arrived == parties
        if last:
            slot.ready = True
    if last:
        ctx.world.poke_all()
    ctx.wait_until(lambda: slot.ready, what=f"collective {kind}")
    data = slot.data
    ctx.world.retire_slot(slot, parties)
    ctx.stats.record_collective()
    return data


def _take(value: Any) -> Any:
    """Extract a private copy of a slot value for the caller."""
    return _copy_value(value)


def _resolve_op(op) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return _REDUCERS[op]
    except KeyError:
        raise PgasError(
            f"unknown reduction {op!r}; known: {sorted(_REDUCERS)}"
        ) from None


# ---------------------------------------------------------------------------
# world-scoped collectives
# ---------------------------------------------------------------------------

def barrier() -> None:
    """Block until every rank has entered the barrier (paper's barrier())."""
    ctx = current()
    _exchange("barrier", None)
    ctx.stats.record_barrier()


def bcast(value: Any = None, root: int = 0) -> Any:
    """Broadcast ``value`` from ``root`` to all ranks."""
    ctx = current()
    data = _exchange("bcast", value if ctx.rank == root else None)
    if root not in data:
        raise PgasError(f"bcast root {root} out of range")
    return _take(data[root])


def reduce(value: Any, op="sum", root: int = 0) -> Any:
    """Reduce contributions to ``root``; other ranks receive ``None``."""
    ctx = current()
    fn = _resolve_op(op)
    data = _exchange("reduce", value)
    if ctx.rank != root:
        return None
    acc = _take(data[0])
    for r in range(1, ctx.world.n_ranks):
        acc = fn(acc, _take(data[r]))
    return acc


def allreduce(value: Any, op="sum") -> Any:
    """Reduce contributions; every rank receives the result."""
    ctx = current()
    fn = _resolve_op(op)
    data = _exchange("allreduce", value)
    acc = _take(data[0])
    for r in range(1, ctx.world.n_ranks):
        acc = fn(acc, _take(data[r]))
    return acc


def gather(value: Any, root: int = 0) -> list | None:
    """Gather one value per rank to ``root`` (rank order)."""
    ctx = current()
    data = _exchange("gather", value)
    if ctx.rank != root:
        return None
    return [_take(data[r]) for r in range(ctx.world.n_ranks)]


def allgather(value: Any) -> list:
    """Gather one value per rank to every rank (rank order)."""
    ctx = current()
    data = _exchange("allgather", value)
    return [_take(data[r]) for r in range(ctx.world.n_ranks)]


def gatherv(array: np.ndarray, root: int = 0) -> np.ndarray | None:
    """Gather variable-length 1-D arrays; root gets the concatenation.

    This is the collective the paper's Embree port uses to combine image
    tiles ("a final gather operation combines the tiles").
    """
    arr = np.ascontiguousarray(array)
    if arr.ndim != 1:
        raise PgasError("gatherv expects 1-D arrays; ravel first")
    ctx = current()
    data = _exchange("gatherv", arr)
    if ctx.rank != root:
        return None
    return np.concatenate([data[r] for r in range(ctx.world.n_ranks)])


def scatter(values: Sequence | None = None, root: int = 0) -> Any:
    """Root provides one value per rank; each rank receives its own."""
    ctx = current()
    n = ctx.world.n_ranks
    if ctx.rank == root:
        if values is None or len(values) != n:
            raise PgasError(f"scatter root must supply {n} values")
    data = _exchange("scatter", list(values) if ctx.rank == root else None)
    return _take(data[root][ctx.rank])


def alltoall(values: Sequence) -> list:
    """Each rank provides one value per destination; receives one per
    source (the key redistribution primitive of Sample Sort baselines)."""
    ctx = current()
    n = ctx.world.n_ranks
    if len(values) != n:
        raise PgasError(f"alltoall needs exactly {n} values, one per rank")
    data = _exchange("alltoall", list(values))
    return [_take(data[src][ctx.rank]) for src in range(n)]


def alltoallv(arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
    """alltoall for variable-length NumPy arrays."""
    return alltoall([np.ascontiguousarray(a) for a in arrays])


def scan(value: Any, op="sum") -> Any:
    """Inclusive prefix reduction: rank r receives op(v_0 ... v_r).

    The offset-computation primitive of distributed partitioning (e.g.
    where each rank's keys land in a globally sorted order)."""
    ctx = current()
    fn = _resolve_op(op)
    data = _exchange("scan", value)
    acc = _take(data[0])
    for r in range(1, ctx.rank + 1):
        acc = fn(acc, _take(data[r]))
    return acc


def exscan(value: Any, op="sum", initial: Any = 0) -> Any:
    """Exclusive prefix reduction: rank r receives op(v_0 ... v_{r-1});
    rank 0 receives ``initial``."""
    ctx = current()
    fn = _resolve_op(op)
    data = _exchange("exscan", value)
    acc = _copy_value(initial)
    for r in range(ctx.rank):
        acc = fn(acc, _take(data[r]))
    return acc


# ---------------------------------------------------------------------------
# team-scoped collectives
# ---------------------------------------------------------------------------

def team_barrier(team: Team) -> None:
    ctx = current()
    _exchange("team_barrier", None, team=team)
    ctx.stats.record_barrier()


def team_bcast(team: Team, value: Any, root: int = 0) -> Any:
    ctx = current()
    my_index = team.index_of(ctx.rank)
    data = _exchange(
        "team_bcast", value if my_index == root else None, team=team
    )
    return _take(data[root])


def _team_exchange(team: Team, value: Any) -> list:
    """Allgather within a team (team order) — used by Team.split."""
    data = _exchange("team_allgather", value, team=team)
    return [_take(data[i]) for i in range(len(team))]
