"""SPMD world and per-rank runtime state.

The execution model follows the paper §IV:

* each UPC++ *rank* is an independent execution unit (here: one thread of
  the launching process, with a private :class:`~repro.gasnet.segment.Segment`
  as its share of the global address space);
* incoming active messages and spawned async tasks are processed when the
  rank calls ``advance()`` — either explicitly or implicitly inside every
  blocking runtime call;
* in ``concurrent`` thread-support mode, an additional progress thread
  drains inboxes of ranks that are busy computing (the paper's "worker
  Pthread").

:func:`spmd` is the launcher: it runs a function on ``n`` ranks and
returns the per-rank results.  If any rank raises, all blocked peers are
released with :class:`~repro.errors.PeerFailure` and the original
exception is re-raised on the launching thread.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from repro.errors import (
    CommTimeout,
    NotInSpmdRegion,
    PeerFailure,
    PgasError,
    RankDead,
)
from repro.core.coll_engine import CollEngine
from repro.core.future import Future
from repro.gasnet.am import ActiveMessage, handler_registry, make_reply
from repro.gasnet.segment import Segment
from repro.gasnet.smp import SmpConduit
from repro.gasnet.stats import CommStats
from repro.telemetry import (
    MetricsSampler,
    TelemetryConduit,
    WorldTelemetry,
    resolve_config as _resolve_telemetry,
    tracing,
)

_tls = threading.local()

#: Default per-rank segment size (16 MiB) — plenty for the test suite,
#: overridable per spmd() call for the benchmarks.
DEFAULT_SEGMENT_SIZE = 16 * 1024 * 1024

_world_ids = itertools.count(1)


def current() -> "RankState":
    """The calling thread's rank state; raises outside an SPMD region."""
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise NotInSpmdRegion(
            "this operation requires a rank context; run it inside "
            "repro.spmd(fn, ranks=N)"
        )
    return ctx


def try_current() -> Optional["RankState"]:
    """Like :func:`current` but returns None outside SPMD regions."""
    return getattr(_tls, "ctx", None)


class _Task:
    """An async task queued for execution on this rank."""

    __slots__ = ("fn", "args", "kwargs", "reply_rank", "reply_token",
                 "enqueued_at")

    def __init__(self, fn, args, kwargs, reply_rank, reply_token):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.reply_rank = reply_rank
        self.reply_token = reply_token
        #: Stamped at enqueue so telemetry can report spawn->run wait.
        self.enqueued_at = time.perf_counter()


class RankState:
    """Everything one rank owns: segment, inbox, task queue, futures."""

    def __init__(self, world: "World", rank: int, segment_size: int):
        self.world = world
        self.rank = rank
        factory = world._segment_factory
        self.segment = (Segment(segment_size, rank=rank)
                        if factory is None else factory(rank, segment_size))
        self.stats = CommStats()
        #: This rank's telemetry state (histograms, flight recorder);
        #: always present — a no-op object when telemetry is "off".
        self.telemetry = world.telemetry.rank(rank)
        self._cv = threading.Condition()
        self._inbox: deque[ActiveMessage] = deque()
        self.task_queue: deque[_Task] = deque()
        self._pending_lock = threading.Lock()
        # token -> Future; the future's ``_dst`` slot carries the
        # destination rank (one dict on the send hot path, not two).
        self._pending: dict[int, Any] = {}
        # token -> (t0 monotonic, handler, dst, trace_id); only fed when
        # telemetry is active — the straggler watchdog's work list.
        self._pending_meta: dict[int, tuple] = {}
        self._token_counter = itertools.count(1)
        # The handler lock serializes AM-handler/task execution between the
        # rank's own advance() and the shared progress thread (paper's
        # "concurrent" thread-support mode).
        self._handler_lock = threading.RLock()
        # Finish-scope stack for the RAII finish construct (paper §III-G).
        self.finish_stack: list = []
        # Outstanding non-blocking copy handles (async_copy_fence).
        self.outstanding_copies: list = []
        # Per-collective sequence counters so that collective AM keys line
        # up across ranks (all ranks execute collectives in the same
        # order); the engine owns the in-flight tree state machines.
        self.coll_seq = 0
        self.team_seq: dict[tuple, int] = {}
        self.coll = CollEngine(self)
        # Owner-side tables: global locks, directory objects, ...
        self.lock_table: dict[int, dict] = {}
        self.dir_table: dict[int, Any] = {}
        # Free-form per-rank scratch space for applications/benchmarks.
        self.scratch: dict[str, Any] = {}
        self.done = False
        #: Set when the rank's SPMD body returned (survivable-death
        #: finalize waits on this instead of a world barrier).
        self.body_done = False
        #: Set when this rank "crashed" (see :func:`die`); the failure
        #: detector converts it into a PeerFailure on every other rank.
        self.dead = False
        #: Stamped on every progress call — the liveness signal the
        #: world-level heartbeat failure detector watches.
        self.last_heartbeat = time.monotonic()

    # -- messaging ------------------------------------------------------
    def deliver(self, am: ActiveMessage) -> None:
        """Called by the conduit to enqueue an incoming message."""
        with self._cv:
            self._inbox.append(am)
            self._cv.notify_all()

    def deliver_many(self, ams) -> None:
        """Batch :meth:`deliver`: one lock acquisition and one wakeup
        for a whole burst (e.g. every frame in one ring slot)."""
        with self._cv:
            self._inbox.extend(ams)
            self._cv.notify_all()

    def new_token(self) -> int:
        return next(self._token_counter)

    def send_am(
        self,
        dst: int,
        handler: str,
        args: tuple = (),
        payload: Any = None,
        expect_reply: bool = False,
    ):
        """Send an active message; optionally return a reply future."""
        fut = None
        token = None
        trace_id = span_id = 0
        if self.telemetry.active:
            # Stamp the thread's bound trace context into the message:
            # the pair rides the wire frame as a trailer and re-binds in
            # the target's handler dispatch (causal propagation).
            trace_id, span_id = tracing.current_ids()
        if expect_reply:
            token = self.new_token()
            fut = Future(self)
            fut._dst = dst
            with self._pending_lock:
                self._pending[token] = fut
            if self.telemetry.active:
                self._pending_meta[token] = (
                    time.monotonic(), handler, dst, trace_id)
            if self.telemetry.full:
                # AM round-trip latency: request send -> reply handled.
                tel, t0 = self.telemetry, time.perf_counter()
                fut.add_callback(lambda _f: tel.record_latency(
                    "am_rtt", time.perf_counter() - t0
                ))
        am = ActiveMessage(
            handler=handler, src_rank=self.rank, args=args,
            payload=payload, token=token,
            trace_id=trace_id, span_id=span_id,
        )
        self.world.conduit.send_am(self.rank, dst, am)
        return fut

    def fail_pending(self, exc: BaseException,
                     dst: int | None = None) -> None:
        """Fail outstanding reply futures addressed to ``dst`` (all
        destinations when ``dst`` is None) with ``exc``.

        The reliability layer synthesizes error replies only for
        *unacked* requests; a request acked just before its target died
        leaves an orphaned future that nothing would ever complete —
        this is the death-time sweep that rescues those waiters.
        """
        with self._pending_lock:
            doomed = [t for t, f in self._pending.items()
                      if dst is None or f._dst == dst]
            futs = []
            for t in doomed:
                self._pending_meta.pop(t, None)
                f = self._pending.pop(t, None)
                if f is not None:
                    futs.append(f)
        for f in futs:
            f.set_exception(exc)

    def reply(self, am: ActiveMessage, args: tuple = (),
              payload: Any = None) -> None:
        """Send the reply for a request AM (used inside handlers).

        ``replies_sent`` is charged by the conduit layer (every send
        funnels through ``_encode_and_record``, which sees the reply
        flag) — not here — so the hot reply path pays one stats lock,
        not two."""
        reply = make_reply(am, self.rank, args=args, payload=payload)
        self.world.conduit.send_am(self.rank, am.src_rank, reply)

    def send_reply_to(self, dst: int, token: int, args: tuple = (),
                      payload: Any = None) -> None:
        """Reply to a previously stored (rank, token) pair — used by
        owner-queued structures such as global locks."""
        trace_id = span_id = 0
        if self.telemetry.active:
            trace_id, span_id = tracing.current_ids()
        am = ActiveMessage(
            handler="__reply__", src_rank=self.rank, args=args,
            payload=payload, token=token, is_reply=True,
            trace_id=trace_id, span_id=span_id,
        )
        self.world.conduit.send_am(self.rank, dst, am)

    # -- progress ---------------------------------------------------------
    def advance(self, max_items: int | None = None) -> bool:
        """Process pending active messages and queued tasks.

        Returns True when any progress was made.  This is the paper's
        ``advance()``: user code may call it explicitly; every blocking
        runtime operation calls it while waiting.
        """
        self.last_heartbeat = time.monotonic()
        tel = self.telemetry
        t0 = time.perf_counter() if tel.full else 0.0
        progressed = False
        handled = 0
        while max_items is None or handled < max_items:
            with self._cv:
                am = self._inbox.popleft() if self._inbox else None
            if am is None:
                break
            self._handle(am)
            progressed = True
            handled += 1
        while self.task_queue and (max_items is None or handled < max_items):
            task = self.task_queue.popleft()
            self._run_task(task)
            progressed = True
            handled += 1
        if tel.full and handled:
            # The progress engine's poll latency: how long one advance()
            # held the rank (p99 here is the paper's attentiveness
            # metric).  Idle polls are skipped — spin-waits call
            # advance() millions of times and a histogram append per
            # empty poll would dominate the very cost being measured.
            tel.histogram("advance").record_seconds(
                time.perf_counter() - t0
            )
        flush = self.world._am_flush
        if flush is not None:
            # Aggregating conduits (proc rings) publish pending sends at
            # every progress point, so a request whose sender is about
            # to block never idles in the aggregation buffer.
            flush()
        return progressed

    def _handle(self, am: ActiveMessage) -> None:
        frame = am._frame
        if frame is not None:
            # Decode-at-target: the receiver materializes fresh objects
            # from the wire frame (by-value delivery semantics).
            tel = self.telemetry
            if tel.full:
                t0 = time.perf_counter()
                am = frame.thaw()
                tel.histogram("deser").record_seconds(
                    time.perf_counter() - t0
                )
            else:
                am = frame.thaw()
        self.stats.record_am_handled()
        if self.telemetry.active and am.handler not in (
            "__rel_ping__", "__rel_pong__", "__rel_ack__",
        ):  # protocol chatter would drown out the useful history
            self.telemetry.flight_event(
                "am_handled", src=am.src_rank, dst=self.rank,
                detail=am.handler, trace_id=am.trace_id,
            )
        with self._handler_lock:
            if am.is_reply:
                with self._pending_lock:
                    fut = self._pending.pop(am.token, None)
                    if self._pending_meta:
                        self._pending_meta.pop(am.token, None)
                if fut is None:
                    # Under the reliability layer a reply can legally
                    # arrive after the op's deadline already completed
                    # its future with CommTimeout — drop it, counted.
                    if getattr(self.world, "_reliable", None) is not None:
                        self.stats.record_stale_reply()
                        return
                    raise PgasError(
                        f"rank {self.rank}: reply for unknown token {am.token}"
                    )
                if am.args and am.args[0] == "__error__":
                    fut.set_exception(am.args[1])
                else:
                    fut.set_result((am.args, am.payload))
                return
            handler = handler_registry.get(am.handler)
            if handler is None:
                raise PgasError(f"unknown AM handler {am.handler!r}")
            tel = self.telemetry
            if am.trace_id and tel.active:
                # Restore the sender's trace context for the handler's
                # duration: spans recorded and AMs sent inside it
                # (replies, replication hops) join the originating
                # client op's trace.
                span_id = tel.new_span_id()
                t0 = time.perf_counter() if tel.full else 0.0
                with tracing.bound(am.trace_id, span_id):
                    try:
                        handler(self, am)
                    except BaseException as exc:
                        self._handler_error(am, exc)
                    finally:
                        if tel.full:
                            tel.record_span(
                                f"am:{am.handler}", t0,
                                time.perf_counter() - t0,
                                detail=f"from rank {am.src_rank}",
                                trace_id=am.trace_id, span_id=span_id,
                                parent_id=am.span_id)
                return
            try:
                handler(self, am)
            except BaseException as exc:  # surface handler errors
                self._handler_error(am, exc)

    def _handler_error(self, am: ActiveMessage, exc: BaseException) -> None:
        """Surface a handler exception: error reply when the sender
        waits for one, world failure otherwise."""
        if am.token is not None:
            err = make_reply(am, self.rank, args=("__error__", exc))
            self.world.conduit.send_am(self.rank, am.src_rank, err)
        else:
            self.world.fail(self.rank, exc)
            raise exc

    def _run_task(self, task: _Task) -> None:
        """Execute one queued async task and reply with its result."""
        tel = self.telemetry
        name = getattr(task.fn, "__name__", None) or repr(task.fn)
        t_run = time.perf_counter()
        if tel.active:
            tel.flight_event("task_run", src=task.reply_rank,
                             dst=self.rank, detail=name)
            if tel.full:
                # Spawn -> run wait (time spent queued on this rank).
                tel.histogram("task_queue_wait").record_seconds(
                    t_run - task.enqueued_at
                )
        try:
            self._run_task_body(task)
        finally:
            if tel.active:
                dur = time.perf_counter() - t_run
                tel.flight_event("task_done", src=task.reply_rank,
                                 dst=self.rank, detail=name)
                if tel.full:
                    tel.histogram("task_exec").record_seconds(dur)
                    tel.record_span(f"task:{name}", t_run, dur)

    def _run_task_body(self, task: _Task) -> None:
        with self._handler_lock, self._activate():
            try:
                result = task.fn(*task.args, **task.kwargs)
            except BaseException as exc:
                if task.reply_token is not None:
                    self.send_reply_to(
                        task.reply_rank, task.reply_token,
                        args=("__error__", exc),
                    )
                    return
                self.world.fail(self.rank, exc)
                raise
            if task.reply_token is not None:
                # The wire layer serializes the result into the reply
                # frame (by-reference fallback for unencodable values).
                self.send_reply_to(
                    task.reply_rank, task.reply_token,
                    args=("__ok__",), payload=result,
                )

    def _activate(self):
        """Temporarily bind this rank to the executing thread (progress
        thread support)."""
        return _ActivateCtx(self)

    # -- blocking helper ---------------------------------------------------
    def wait_until(self, pred: Callable[[], bool], what: str = "",
                   timeout: float | None = None) -> None:
        """Poll ``pred`` while making progress; the blocking idiom.

        Raises :class:`PeerFailure` if another rank fails while we wait and
        :class:`CommTimeout` after ``timeout`` (default: the world's
        operation timeout) seconds.
        """
        if pred():
            return
        if timeout is None:
            timeout = self.world.op_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            failure = self.world.failure
            if failure is not None and failure[0] != self.rank:
                raise PeerFailure(failure[0], failure[1])
            progressed = self.advance()
            if pred():
                return
            if not progressed:
                # Conduit inbound fast path (proc rings): the blocked
                # rank thread polls shared memory directly — on a busy
                # pair the message is picked up here, with no recv
                # thread wakeup and no syscalls on the critical path.
                poll = self.world._am_poll
                if poll is not None and poll():
                    continue
                with self._cv:
                    if not self._inbox and not pred():
                        self._cv.wait(0.001)
            if deadline is not None and time.monotonic() > deadline:
                self.telemetry.flight_event(
                    "op_timeout", src=self.rank, dst=-1,
                    detail=f"wait_until({what or pred}) expired "
                           f"after {timeout}s",
                )
                raise CommTimeout(
                    f"rank {self.rank}: timed out waiting for {what or pred}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankState rank={self.rank}/{self.world.n_ranks}>"


class _ActivateCtx:
    """Binds/unbinds a rank context on the executing thread."""

    __slots__ = ("ctx", "prev")

    def __init__(self, ctx: RankState):
        self.ctx = ctx
        self.prev = None

    def __enter__(self):
        self.prev = getattr(_tls, "ctx", None)
        _tls.ctx = self.ctx
        return self.ctx

    def __exit__(self, *exc):
        _tls.ctx = self.prev


class World:
    """One SPMD execution: ``n_ranks`` ranks over a conduit.

    Reliability knobs
    -----------------
    ``reliability``:
        ``None`` (default) uses the conduit as-is.  Anything else wraps
        the conduit in :class:`~repro.gasnet.reliability.ReliableConduit`:
        ``True`` for the default config, a dict of
        :class:`~repro.gasnet.reliability.ReliabilityConfig` fields, or a
        ready config/conduit instance.
    ``heartbeat_timeout``:
        When set, a world-level failure detector declares any rank that
        makes no runtime progress for this many seconds (or that called
        :func:`die`) dead, failing the world with
        :class:`~repro.errors.RankDead` so blocked peers raise
        :class:`~repro.errors.PeerFailure` instead of hanging.  Must
        exceed the longest pure-compute (non-communicating) phase of the
        program.  ``heartbeat_period`` is the detector's polling period.
    ``telemetry``:
        ``None``/``"off"`` (default) records nothing and leaves the
        conduit unwrapped; ``"flight"`` runs only the per-rank flight
        recorder (dumped on failure); ``"full"``/``True`` adds per-op
        latency histograms and spans.  Also accepts a dict of
        :class:`~repro.telemetry.TelemetryConfig` fields or a ready
        config.  See :mod:`repro.telemetry`.
    ``survive_rank_death``:
        ``False`` (default) keeps the historical contract: the first
        :class:`~repro.errors.RankDead` fails the whole world and every
        blocked peer raises :class:`~repro.errors.PeerFailure`.  With
        ``True`` a detected death is *survivable*: the dead rank is
        recorded in :attr:`dead_ranks`, subscribers registered via
        :meth:`on_rank_death` are notified (this is what drives
        DistHashMap backup promotion), in-flight AMs to the dead peer
        fail fast with ``RankDead``, and the surviving ranks keep
        running.  The implicit finalize barrier degrades to a
        done-or-dead wait so survivors can exit without the dead rank.
    """

    def __init__(
        self,
        n_ranks: int,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        conduit=None,
        thread_mode: str = "serialized",
        op_timeout: float | None = 60.0,
        reliability=None,
        heartbeat_timeout: float | None = None,
        heartbeat_period: float = 0.02,
        telemetry=None,
        survive_rank_death: bool = False,
        local_ranks=None,
        segment_factory=None,
    ):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if thread_mode not in ("serialized", "concurrent"):
            raise ValueError("thread_mode must be serialized|concurrent")
        self.id = next(_world_ids)
        self.n_ranks = n_ranks
        #: None on in-process backends (every rank is local).  On the
        #: proc backend each rank process holds the full directory of
        #: RankState objects, but only its own rank *executes* here —
        #: the rest are stubs whose segments are shared-memory views.
        #: Liveness machinery (progress thread, failure detector,
        #: metrics sampler, reliability heartbeats) must only drive the
        #: local ranks.
        self.local_ranks = (None if local_ranks is None
                            else frozenset(local_ranks))
        self._segment_factory = segment_factory
        self.thread_mode = thread_mode
        self.op_timeout = op_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_period = heartbeat_period
        self.survive_rank_death = bool(survive_rank_death)
        #: Ranks declared dead by any failure detector (heartbeat
        #: silence or :func:`die`).  Read freely; written via mark_dead.
        self.dead_ranks: set[int] = set()
        self._death_subs: list[Callable[[int, BaseException], None]] = []
        #: Observability state (histograms, flight recorder, spans) —
        #: see :mod:`repro.telemetry`.  Mode "off" records nothing and
        #: installs no conduit wrapper.
        self.telemetry = WorldTelemetry(n_ranks, _resolve_telemetry(telemetry))
        conduit = conduit if conduit is not None else SmpConduit()
        #: Set by ReliableConduit.attach; consulted by the AM layer to
        #: tolerate post-deadline (stale) replies.
        self._reliable = None
        if reliability is not None and reliability is not False:
            conduit = _wrap_reliable(conduit, reliability)
        if self.telemetry.enabled:
            # Outermost layer: latencies include reliability retries, and
            # inner layers' trace_control events reach the flight ring.
            conduit = TelemetryConduit(conduit, self.telemetry)
        self.conduit = conduit
        #: Conduit-installed hook (see ProcConduit.attach): flush any
        #: sender-side AM aggregation; called from every advance().
        self._am_flush: Callable[[], None] | None = None
        #: Conduit-installed hook: poll inbound transport state from a
        #: blocked rank thread (returns True when anything arrived).
        self._am_poll: Callable[[], bool] | None = None
        self.ranks = [RankState(self, r, segment_size) for r in range(n_ranks)]
        self.conduit.attach(self)
        self._glock = threading.Lock()
        self._failure: tuple[int, BaseException] | None = None
        self._lock_ids = itertools.count(1)
        self._dir_ids = itertools.count(1)
        self._progress_stop = threading.Event()
        self._progress_thread: threading.Thread | None = None
        self._detector_stop = threading.Event()
        self._detector_thread: threading.Thread | None = None
        if heartbeat_timeout is not None:
            self._detector_thread = threading.Thread(
                target=self._failure_detector_main,
                name=f"pgas-detector-{self.id}", daemon=True,
            )
            self._detector_thread.start()
        # Background metrics sampler + straggler watchdog (see
        # repro.telemetry.metrics); only started when the telemetry
        # config asks for either.
        self._sampler: MetricsSampler | None = None
        cfg = self.telemetry.config
        if self.telemetry.enabled and (cfg.sample_period
                                       or cfg.watchdog_period):
            self._sampler = MetricsSampler(
                self, cfg.sample_period, cfg.watchdog_period,
                cfg.slow_op_factor, cfg.slow_op_min_s)
            self._sampler.start()

    # -- observability -------------------------------------------------------
    def dump_flight_recorder(self, header: str = "", file=None) -> str:
        """Merge every rank's flight-recorder ring into one time-ordered
        human-readable dump; write it to ``file`` when given (pass
        ``sys.stderr`` for the classic crash dump) and return it.

        When the conduit stack contains a chaos conduit, its injected
        faults (``chaos_drop``/``chaos_dup``/``chaos_kill``/...) are
        spliced into the merged timeline as instants, so the dump shows
        fault injection and runtime reaction side by side.
        """
        extra = None
        fault_events = getattr(self.conduit, "fault_events", None)
        if callable(fault_events):
            try:
                extra = fault_events()
            except Exception:
                extra = None
        text = self.telemetry.dump_flight_recorder(header=header,
                                                   extra_events=extra)
        if file is not None:
            file.write(text)
        return text

    def stop_sampler(self) -> None:
        if self._sampler is not None:
            self._sampler.stop()
            self._sampler.join(timeout=5.0)
            self._sampler = None

    def metrics_reduce(self, team=None, snapshot: dict | None = None) -> dict:
        """Collective cluster-wide metrics aggregation: every rank's
        histogram/counter/gauge snapshot folded over the tree
        collectives engine.  Must be called from rank context by all
        members of ``team``; see :func:`repro.telemetry.metrics_reduce`."""
        from repro.telemetry import metrics as _metrics

        return _metrics.metrics_reduce(team=team, snapshot=snapshot)

    def is_local(self, rank: int) -> bool:
        """Whether ``rank`` executes in this process (always true on
        in-process backends)."""
        return self.local_ranks is None or rank in self.local_ranks

    # -- failure propagation ------------------------------------------------
    @property
    def failure(self) -> tuple[int, BaseException] | None:
        return self._failure

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record the first failure and wake every blocked rank."""
        with self._glock:
            if self._failure is None:
                self._failure = (rank, exc)
        self.poke_all()

    # -- rank-death notification ---------------------------------------------
    def on_rank_death(self, callback: Callable[[int, BaseException], None]
                      ) -> None:
        """Subscribe to rank-death events (RankDead).

        ``callback(rank, exc)`` runs on the detector's thread — it must
        be quick and must not block on communication (record the event,
        consume it from a rank thread).  This is the failover hook: the
        replicated containers subscribe to flip their shard tables and
        promote backups.
        """
        with self._glock:
            self._death_subs.append(callback)

    def mark_dead(self, rank: int, exc: BaseException) -> None:
        """Declare ``rank`` dead (idempotent).

        Always records the death in :attr:`dead_ranks`, marks the rank
        state, tells the reliability layer to fail-fast traffic to the
        peer, and notifies :meth:`on_rank_death` subscribers.  Then:
        without ``survive_rank_death`` the world fails (the historical
        fatal contract); with it the survivors are merely poked so
        blocked waits re-evaluate.
        """
        with self._glock:
            if rank in self.dead_ranks:
                return
            self.dead_ranks.add(rank)
            subs = list(self._death_subs)
        if 0 <= rank < self.n_ranks:
            self.ranks[rank].dead = True
        rc = getattr(self, "_reliable", None)
        if rc is not None:
            try:
                rc._note_peer_dead(rank, exc)
            except Exception:
                pass
        # Sweep orphaned reply futures: waiters on the dead rank get the
        # death as their answer, and the dead rank's own waits unwind so
        # a partitioned primary does not sit out its full op deadline
        # inside a handler.
        for r in range(self.n_ranks):
            try:
                self.ranks[r].fail_pending(
                    exc, dst=None if r == rank else rank)
            except Exception:
                pass
        for cb in subs:
            try:
                cb(rank, exc)
            except Exception:
                pass  # a broken subscriber must not mask the death
        if self.survive_rank_death:
            self.poke_all()
        else:
            self.fail(rank, exc)

    def live_ranks(self) -> list[int]:
        """Ranks not declared dead (sorted)."""
        with self._glock:
            dead = set(self.dead_ranks)
        return [r for r in range(self.n_ranks) if r not in dead]

    def poke_all(self) -> None:
        """Wake all ranks blocked in wait_until (state changed)."""
        for r in self.ranks:
            with r._cv:
                r._cv.notify_all()

    # -- progress thread (concurrent mode) -----------------------------------
    def start_progress_thread(self) -> None:
        if self._progress_thread is not None:
            return
        self._progress_thread = threading.Thread(
            target=self._progress_main, name=f"pgas-progress-{self.id}",
            daemon=True,
        )
        self._progress_thread.start()

    def stop_progress_thread(self) -> None:
        self._progress_stop.set()
        if self._progress_thread is not None:
            self._progress_thread.join(timeout=5.0)
            self._progress_thread = None

    # -- failure detector (heartbeat liveness) -------------------------------
    def stop_failure_detector(self) -> None:
        self._detector_stop.set()
        if self._detector_thread is not None:
            self._detector_thread.join(timeout=5.0)
            self._detector_thread = None

    def _failure_detector_main(self) -> None:
        """Declare ranks that stop making progress dead (converted to
        PeerFailure on every blocked peer) instead of letting the world
        hang until the op timeout."""
        while not self._detector_stop.wait(self.heartbeat_period):
            if self._failure is not None:
                return
            now = time.monotonic()
            for rk in self.ranks:
                if not self.is_local(rk.rank):
                    continue  # remote stubs: their process watches them
                if rk.done or rk.rank in self.dead_ranks:
                    continue
                if rk.dead:
                    self.mark_dead(rk.rank, RankDead(
                        f"rank {rk.rank} died (simulated crash)"
                    ))
                    continue
                silent = now - rk.last_heartbeat
                if silent > self.heartbeat_timeout:
                    self.mark_dead(rk.rank, RankDead(
                        f"rank {rk.rank} made no runtime progress for "
                        f"{silent:.2f}s (heartbeat_timeout="
                        f"{self.heartbeat_timeout}s)"
                    ))

    def _progress_main(self) -> None:
        """Drain inboxes of busy ranks (the paper's worker Pthread)."""
        while not self._progress_stop.is_set():
            progressed = False
            for rank in self.ranks:
                if not self.is_local(rank.rank):
                    continue
                if rank.done or rank.dead:
                    continue
                try:
                    progressed |= rank.advance(max_items=16)
                except PgasError:
                    pass  # failure already recorded via world.fail
            if not progressed:
                time.sleep(0.0005)


def _wrap_reliable(conduit, reliability):
    """Resolve the World ``reliability=`` knob into a ReliableConduit."""
    from repro.gasnet.reliability import ReliabilityConfig, ReliableConduit

    if isinstance(conduit, ReliableConduit):
        return conduit  # already wrapped; the knob is a no-op
    if isinstance(reliability, ReliableConduit):
        raise PgasError(
            "pass a ReliableConduit via conduit=, not reliability="
        )
    if reliability is True:
        return ReliableConduit(conduit)
    if isinstance(reliability, ReliabilityConfig):
        return ReliableConduit(conduit, config=reliability)
    if isinstance(reliability, dict):
        return ReliableConduit(conduit, **reliability)
    raise PgasError(
        f"reliability= must be True, a dict of ReliabilityConfig fields, "
        f"or a ReliabilityConfig (got {reliability!r})"
    )


class _RankKilled(BaseException):
    """Internal control-flow exception: unwinds a rank that called
    :func:`die` without reporting a failure (it simulates a crash)."""


def die() -> None:
    """Simulate the calling rank crashing: it stops executing *without*
    reporting an error, exactly like a killed process.  Detection is the
    failure detector's job (``World(heartbeat_timeout=...)`` or the
    reliable conduit's peer heartbeats); peers then observe
    :class:`~repro.errors.PeerFailure` instead of hanging."""
    ctx = current()
    ctx.dead = True
    ctx.world.poke_all()
    raise _RankKilled()


def spmd(
    fn: Callable,
    ranks: int = 4,
    *,
    args: tuple = (),
    kwargs: dict | None = None,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
    conduit=None,
    thread_mode: str = "serialized",
    timeout: float | None = 60.0,
    reliability=None,
    heartbeat_timeout: float | None = None,
    heartbeat_period: float = 0.02,
    telemetry=None,
    survive_rank_death: bool = False,
) -> list:
    """Run ``fn`` in SPMD style on ``ranks`` ranks; return per-rank results.

    ``fn`` is called with ``*args, **kwargs`` on every rank; inside it the
    usual SPMD API (:func:`repro.myrank`, :func:`repro.barrier`, shared
    objects, asyncs, ...) is available.  The first exception raised by any
    rank unblocks all peers and is re-raised here.

    ``conduit`` selects the communication backend: a ready
    :class:`~repro.gasnet.conduit.Conduit` instance, a backend name
    (``"smp"`` for threads-as-ranks, ``"proc"`` for processes-as-ranks
    over shared memory), or ``None`` to honor the ``REPRO_CONDUIT``
    environment variable (default ``"smp"``).

    >>> import repro
    >>> repro.spmd(lambda: repro.myrank(), ranks=3)
    [0, 1, 2]
    """
    if getattr(_tls, "ctx", None) is not None:
        raise PgasError("nested spmd() regions are not supported")
    kwargs = kwargs or {}
    from repro.gasnet import backends as _backends

    conduit, backend = _backends.resolve(conduit)
    if backend is not None and backend.caps.needs_launcher:
        from repro.core.proclaunch import spmd_proc

        return spmd_proc(
            fn, ranks, args=args, kwargs=kwargs,
            segment_size=segment_size, thread_mode=thread_mode,
            timeout=timeout, reliability=reliability,
            heartbeat_timeout=heartbeat_timeout,
            heartbeat_period=heartbeat_period, telemetry=telemetry,
            survive_rank_death=survive_rank_death,
            transport=(backend.options or {}).get("transport"),
        )
    world = World(
        ranks, segment_size=segment_size, conduit=conduit,
        thread_mode=thread_mode, op_timeout=timeout,
        reliability=reliability, heartbeat_timeout=heartbeat_timeout,
        heartbeat_period=heartbeat_period, telemetry=telemetry,
        survive_rank_death=survive_rank_death,
    )
    results: list = [None] * ranks
    secondary: list[BaseException | None] = [None] * ranks

    def rank_main(r: int) -> None:
        ctx = world.ranks[r]
        _tls.ctx = ctx
        try:
            results[r] = fn(*args, **kwargs)
            # Implicit finalization barrier (cf. upcxx::finalize / UPC's
            # implicit barrier at exit): a rank keeps servicing active
            # messages until every peer is done issuing work, so
            # trailing asyncs/RMA addressed to it are never stranded.
            ctx.body_done = True
            world.poke_all()
            if world.survive_rank_death:
                # A tree barrier would hang on a dead member; in
                # survivable-death mode the finalize degrades to a
                # done-or-dead wait over process-shared rank state (the
                # rank keeps servicing AMs inside wait_until, so the
                # trailing-traffic guarantee is unchanged).
                ctx.wait_until(
                    lambda: all(p.body_done or p.dead for p in world.ranks),
                    what="finalize (done-or-dead)",
                )
            else:
                from repro.core.collectives import barrier as _finalize

                _finalize()
        except _RankKilled:
            pass  # simulated crash: disappear without reporting
        except BaseException as exc:
            if isinstance(exc, PeerFailure):
                secondary[r] = exc
            else:
                world.fail(r, exc)
        finally:
            # A dead rank must not look "finished" — the failure
            # detector distinguishes the two.
            ctx.done = not ctx.dead
            _tls.ctx = None

    if thread_mode == "concurrent":
        world.start_progress_thread()
    threads = [
        threading.Thread(
            target=rank_main, args=(r,), name=f"pgas-rank-{r}", daemon=True
        )
        for r in range(ranks)
    ]
    try:
        for t in threads:
            t.start()
        deadline = None if timeout is None else time.monotonic() + timeout + 5.0
        for t in threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.1, deadline - time.monotonic())
            t.join(timeout=remaining)
        stuck = [t for t in threads if t.is_alive()]
        if stuck:
            world.fail(-1, CommTimeout(f"{len(stuck)} rank(s) hung"))
            for t in stuck:
                t.join(timeout=5.0)
            exc = CommTimeout(
                f"spmd: {len(stuck)} of {ranks} ranks did not terminate"
            )
            _dump_on_failure(world, exc)
            raise exc
    finally:
        world.stop_progress_thread()
        world.stop_failure_detector()
        world.stop_sampler()
        close = getattr(world.conduit, "close", None)
        if callable(close):
            close()
    if world.failure is not None:
        failed_rank, exc = world.failure
        _dump_on_failure(world, exc)
        raise exc
    return results


def _dump_on_failure(world: World, exc: BaseException) -> None:
    """The flight recorder's trigger: a communication failure is about
    to propagate to the caller — dump every rank's recent history to
    stderr first (the exception alone says *what* gave up; the merged
    ring says what every rank was *doing*)."""
    if not world.telemetry.enabled:
        return
    if not isinstance(exc, (CommTimeout, PeerFailure, RankDead)):
        return
    try:
        world.dump_flight_recorder(
            header=f"{type(exc).__name__}: {exc}", file=sys.stderr
        )
    except Exception:  # a broken dump must never mask the real failure
        pass
