"""The X10-style ``finish`` construct (paper §III-G).

In C++ the paper implements ``finish`` with a macro expanding to a
``for`` statement plus RAII; the Python equivalent of RAII is a context
manager:

.. code-block:: python

    with finish():
        async_(p1)(task1)
        async_(p2)(task2)
    # both tasks have completed here

As in the paper, ``finish`` waits only for asyncs spawned in the
*dynamic scope* of the block on this rank — not for tasks transitively
spawned by those tasks (distributed termination detection is expensive;
the paper makes the same trade-off).
"""

from __future__ import annotations

import threading
import time

from repro.core.world import current


class FinishScope:
    """Tracks the number of outstanding asyncs spawned inside the block."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._lock = threading.Lock()
        self.outstanding = 0
        self.errors: list[BaseException] = []
        self._t0 = 0.0
        self._spawned = 0

    def register(self, n: int = 1) -> None:
        with self._lock:
            self.outstanding += n
            self._spawned += n

    def complete(self, exc: BaseException | None = None) -> None:
        with self._lock:
            self.outstanding -= 1
            if exc is not None:
                self.errors.append(exc)
        if self.outstanding == 0:
            self._ctx.world.poke_all()

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "FinishScope":
        self._t0 = time.perf_counter()
        self._ctx.finish_stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = self._ctx.finish_stack.pop()
        assert popped is self, "finish scopes must nest properly"
        try:
            if exc is not None:
                # Still drain our asyncs so peers are not left with
                # dangling reply targets, but let the original
                # exception propagate.
                try:
                    self._drain()
                except Exception:
                    pass
                return
            self._drain()
        finally:
            tel = self._ctx.telemetry
            if tel.full:
                dur = time.perf_counter() - self._t0
                tel.histogram("finish_block").record_seconds(dur)
                tel.record_span("finish", self._t0, dur,
                                detail=f"{self._spawned} asyncs")
        if self.errors:
            raise self.errors[0]

    def _drain(self) -> None:
        self._ctx.wait_until(
            lambda: self.outstanding == 0, what="finish scope"
        )


def finish() -> FinishScope:
    """Open a finish scope: ``with finish(): async_(...)(...)``."""
    return FinishScope(current())
