"""The UPC++ programming model — the paper's primary contribution.

Public names are re-exported at the top level (:mod:`repro`); this
package holds the implementation, organized as in DESIGN.md §3.
"""

from repro.core.world import (
    World, RankState, spmd, current, try_current, die,
)
from repro.core.api import (
    myrank,
    ranks,
    MYTHREAD,
    THREADS,
    barrier,
    fence,
    advance,
    current_world,
    live_ranks,
    dead_ranks,
)
from repro.core.global_ptr import GlobalPtr, null_ptr
from repro.core.allocator import allocate, deallocate, escalate
from repro.core.shared_var import SharedVar
from repro.core.shared_array import SharedArray
from repro.core.copy import copy, async_copy, async_copy_fence, CopyHandle
from repro.core.event import Event
from repro.core.future import Future
from repro.core.async_task import async_, async_after, async_wait
from repro.core.finish import finish
from repro.core.team import Team
from repro.core.lock import GlobalLock
from repro.core import collectives
from repro.core.directory import Directory
from repro.core.workqueue import DistWorkQueue

__all__ = [
    "World", "RankState", "spmd", "current", "try_current", "die",
    "myrank", "ranks", "MYTHREAD", "THREADS",
    "barrier", "fence", "advance", "current_world",
    "live_ranks", "dead_ranks",
    "GlobalPtr", "null_ptr", "allocate", "deallocate", "escalate",
    "SharedVar", "SharedArray",
    "copy", "async_copy", "async_copy_fence", "CopyHandle",
    "Event", "Future", "async_", "async_after", "async_wait",
    "finish", "Team", "GlobalLock", "collectives", "Directory",
    "DistWorkQueue",
]
