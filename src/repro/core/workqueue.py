"""Distributed work queues with work stealing — the paper's §V-D
future work, built as an extension.

    "In the future, we hope to improve performance by implementing
    global load balancing via distributed work queues and work
    stealing.  Others have found PGAS a natural paradigm for
    implementing such schemes [Olivier & Prins]."

A :class:`DistWorkQueue` gives every rank a local deque of *items*
(picklable task descriptors, not closures).  ``get()`` pops locally
when possible and otherwise steals **half** the victim's queue
(steal-half, the standard policy for irregular loads) via an active
message served by the victim's progress engine.

Termination uses a global outstanding-items counter (an atomic cell on
rank 0): items increment it when added, decrement at ``task_done()``.
``get()`` returns ``None`` only once the counter reaches zero — i.e.
all added items have been *completed*, not merely claimed, so work
spawned by a straggler cannot be missed.  A central counter is a hot
spot at thousands of ranks (production designs split it into trees); at
this library's scales it is the honest simple choice and is documented
as such.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Iterable, Optional

import numpy as np

from repro.core import collectives
from repro.core.shared_var import SharedVar
from repro.gasnet.wire import tagged
from repro.core.world import RankState, current
from repro.errors import PeerFailure, PgasError, RankDead

_SCRATCH_KEY = "workqueues"


def _table(ctx: RankState) -> dict:
    return ctx.scratch.setdefault(_SCRATCH_KEY, {})


from repro.gasnet.am import am_handler  # noqa: E402 (grouped with use)


@am_handler("wq_steal")
def _wq_steal_handler(ctx: RankState, am) -> None:
    """Victim side: give the thief half of the local queue (older half,
    preserving this rank's locality on the newer items)."""
    (qid,) = am.args
    q: deque = _table(ctx).get(qid, deque())
    take = len(q) // 2 if len(q) > 1 else len(q)
    loot = [q.popleft() for _ in range(take)]
    stats = _table(ctx).setdefault(("stats", qid), {"stolen_from": 0})
    if loot:
        stats["stolen_from"] += len(loot)
    ctx.reply(am, payload=tagged("wq_loot", loot))


class DistWorkQueue:
    """A globally load-balanced pool of task items.  Collective ctor.

    >>> wq = DistWorkQueue()          # on every rank
    >>> wq.add_local(my_tiles)        # seed (may be arbitrarily skewed)
    >>> while (item := wq.get()) is not None:
    ...     process(item)
    ...     wq.task_done()
    """

    def __init__(self, seed: int = 0):
        ctx = current()
        qid = None
        if ctx.rank == 0:
            qid = next(ctx.world._dir_ids)
        self.qid = collectives.bcast(qid, root=0)
        self._ctx = ctx
        self._outstanding = SharedVar(np.int64, init=0, owner=0)
        _table(ctx).setdefault(self.qid, deque())
        _table(ctx).setdefault(("stats", self.qid),
                               {"stolen_from": 0})
        self.steals_attempted = 0
        self.steals_successful = 0
        self.items_processed = 0
        self._rng = np.random.default_rng(
            (seed << 16) ^ ctx.rank ^ 0x5EED
        )
        collectives.barrier()

    # -- producing ----------------------------------------------------------
    def add_local(self, items: Iterable[Any]) -> int:
        """Append items to this rank's local queue; returns the count."""
        ctx = current()
        q = _table(ctx)[self.qid]
        n = 0
        for it in items:
            q.append(it)
            n += 1
        if n:
            self._outstanding.atomic("add", n)
        return n

    # -- consuming -----------------------------------------------------------
    def _pop_local(self):
        q = _table(current()).get(self.qid)
        if q:
            return q.popleft()
        return None

    def _steal_once(self) -> bool:
        """Try one random victim; True if anything was stolen."""
        ctx = current()
        tel = ctx.telemetry
        n = ctx.world.n_ranks
        if n == 1:
            return False
        dead = ctx.world.dead_ranks
        candidates = [r for r in range(n)
                      if r != ctx.rank and r not in dead]
        if not candidates:
            return False
        victim = candidates[int(self._rng.integers(0, len(candidates)))]
        self.steals_attempted += 1
        if tel.active:
            tel.metrics.counter("wq_steals_attempted").inc()
        t0 = time.perf_counter()
        fut = ctx.send_am(victim, "wq_steal", args=(self.qid,),
                          expect_reply=True)
        try:
            _args, loot = fut.get()
        except (RankDead, PeerFailure):
            return False  # victim died mid-steal; nothing was claimed
        if tel.full:
            # Steal round trip: request -> loot (empty-handed included).
            tel.histogram("wq_steal_rtt").record_seconds(
                time.perf_counter() - t0
            )
        if not loot:
            return False
        _table(ctx)[self.qid].extend(loot)
        self.steals_successful += 1
        if tel.active:
            # the metrics sampler derives steal_rate_per_s from this
            tel.metrics.counter("wq_steals_ok").inc()
        tel.flight_event("wq_steal", src=ctx.rank, dst=victim,
                         detail=f"{len(loot)} items")
        return True

    def get(self, max_steal_rounds: int = 0) -> Optional[Any]:
        """Pop a task item, stealing when local work runs out.

        Returns ``None`` exactly when the whole pool has quiesced
        (every added item completed).  ``max_steal_rounds`` bounds the
        stealing attempts per call for testing; 0 means unbounded.
        """
        ctx = current()
        rounds = 0
        # Serve pending steal requests (and other AMs) before taking the
        # next local item — a loaded rank that never polls would starve
        # every thief (the polling-runtime contract of paper §IV).
        ctx.advance(max_items=8)
        if ctx.telemetry.full:
            # Local queue depth at claim time: the load-balance signal
            # (a heavy tail here means stealing is not keeping up).
            ctx.telemetry.record_value(
                "wq_depth", self.local_size(), unit="items"
            )
        while True:
            item = self._pop_local()
            if item is not None:
                return item
            if int(self._outstanding.value) == 0:
                return None
            if self._steal_once():
                continue
            rounds += 1
            if max_steal_rounds and rounds >= max_steal_rounds:
                return None
            ctx.advance()  # serve thieves/asyncs while we are idle

    def task_done(self, n: int = 1) -> None:
        """Mark ``n`` claimed items as completed."""
        if n < 1:
            raise PgasError("task_done requires a positive count")
        self.items_processed += n
        self._outstanding.atomic("add", -n)

    # -- introspection ----------------------------------------------------------
    def local_size(self) -> int:
        q = _table(current()).get(self.qid)
        return len(q) if q else 0

    def outstanding(self) -> int:
        """Globally outstanding (added, not yet completed) items."""
        return int(self._outstanding.value)

    def stolen_from_me(self) -> int:
        return _table(current())[("stats", self.qid)]["stolen_from"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"DistWorkQueue(id={self.qid})"
