"""Asynchronous remote function invocation (paper §III-G).

The paper's spelling is ``async(place)(function, args...)``; since
``async`` is a Python keyword, the library exports :func:`async_` (and
the paper's companion :func:`async_after`):

.. code-block:: python

    f = async_(2)(lambda n: n * n, 5)     # run on rank 2
    assert f.get() == 25

    e = Event()
    async_(1, signal=e)(work)             # signal e when work completes
    async_after(3, after=e)(next_stage)   # launch once e has fired

Implementation follows paper §IV: the function and its arguments are
packed into a contiguous buffer (the wire codec, pickle-5 fallback for
dynamic objects — measured and charged to the communication stats) and
shipped with an active message; the target unpacks and enqueues the
task; its ``advance()`` executes it and replies with the encoded return
value, which completes the initiator-side future, decrements enclosing
finish scopes, and signals events.

Unlike X10, only the function and explicit arguments travel — never the
enclosing closure (the paper's deliberate design decision).  Functions
that cannot be serialized (lambdas, nested functions) are passed by
in-process reference, which is safe in the SMP conduit and keeps the
API pleasant; their argument tuple is still serialized.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.core.event import Event
from repro.core.future import MultiFuture, TaskFuture
from repro.core.team import Team
from repro.core.world import RankState, _Task, current
from repro.errors import SerializationError
from repro.gasnet.am import am_handler
from repro.gasnet.wire import UnencodableError, preencode

Place = Union[int, Team]


@am_handler("exec_task")
def _exec_task_handler(ctx: RankState, am) -> None:
    """Target side: the wire layer already decoded (fn, args, kwargs)."""
    fn, args, kwargs = am.payload
    ctx.task_queue.append(
        _Task(fn, args, kwargs, reply_rank=am.src_rank, reply_token=am.token)
    )


def _pack_task(fn: Callable, args: tuple, kwargs: dict):
    """Encode (fn, args, kwargs); fall back to by-reference for fn.

    Strict mode first: an unencodable *function* (lambda/closure) is
    tolerated — it ships by in-process reference — but unencodable
    *arguments* must fail eagerly at the call site, honouring the
    paper's serialization contract."""
    try:
        return preencode((fn, args, kwargs), strict=True)
    except UnencodableError:
        try:
            preencode((args, kwargs), strict=True)
        except UnencodableError as exc:
            raise SerializationError(
                f"arguments of async task {fn!r} are not serializable: {exc}"
            ) from exc
        return preencode((fn, args, kwargs))


class _AsyncCall:
    """The object returned by ``async_(place)``; calling it launches."""

    __slots__ = ("_place", "_signal", "_after")

    def __init__(self, place: Place, signal: Optional[Event],
                 after: Optional[Event]):
        self._place = place
        self._signal = signal
        self._after = after

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any):
        ctx = current()
        targets = (
            list(self._place.members)
            if isinstance(self._place, Team)
            else [int(self._place)]
        )
        for t in targets:
            if not 0 <= t < ctx.world.n_ranks:
                raise ValueError(f"async target rank {t} out of range")
        signal = self._signal
        scope = ctx.finish_stack[-1] if ctx.finish_stack else None
        futures = [TaskFuture(ctx) for _ in targets]

        # Register completions *before* anything can run.
        if signal is not None:
            signal.incref(len(targets))
        if scope is not None:
            scope.register(len(targets))
        for fut in futures:
            fut.add_callback(_completion_cb(signal, scope))

        def launch() -> None:
            payload = _pack_task(fn, args, kwargs)
            if ctx.telemetry.active:
                name = getattr(fn, "__name__", None) or repr(fn)
                for target in targets:
                    ctx.telemetry.flight_event(
                        "task_spawn", src=ctx.rank, dst=target, detail=name
                    )
            for target, fut in zip(targets, futures):
                token = ctx.new_token()
                fut._dst = target
                with ctx._pending_lock:
                    ctx._pending[token] = fut
                from repro.gasnet.am import ActiveMessage

                am = ActiveMessage(
                    handler="exec_task", src_rank=ctx.rank,
                    payload=payload, token=token,
                )
                ctx.world.conduit.send_am(ctx.rank, target, am)

        if self._after is not None:
            self._after.add_dependent(launch)
        else:
            launch()
        if isinstance(self._place, Team):
            return MultiFuture(futures)
        return futures[0]


def _completion_cb(signal: Optional[Event], scope):
    def cb(fut) -> None:
        exc = fut._exc
        if scope is not None:
            scope.complete(exc)
        if signal is not None:
            signal.decref()

    return cb


def async_(place: Place, signal: Optional[Event] = None) -> _AsyncCall:
    """``async_(place)(fn, *args)`` — launch ``fn`` on ``place``.

    ``place`` is a rank id or a :class:`~repro.core.team.Team`.  When
    ``signal`` is given, the event is signaled once per completed target
    (the paper's ``async(place, event *ack)`` form).  Returns a future
    (or a :class:`~repro.core.future.MultiFuture` for teams).
    """
    return _AsyncCall(place, signal, after=None)


def async_after(place: Place, after: Event,
                signal: Optional[Event] = None) -> _AsyncCall:
    """Launch once ``after`` has fired (the paper's ``async_after``)."""
    if after is None:
        raise ValueError("async_after requires an event to wait on")
    return _AsyncCall(place, signal, after=after)


def async_wait() -> None:
    """Drain this rank's progress until no queued work remains.

    A convenience for fire-and-forget patterns in tests and examples;
    prefer ``finish`` or events for synchronization.
    """
    ctx = current()
    while ctx.advance():
        pass
