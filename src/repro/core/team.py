"""Teams — groups of ranks usable as async targets and for
team-scoped collectives (the paper's "place can be a single thread ID
or a group of threads").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.world import current
from repro.errors import PgasError


class Team:
    """An ordered, duplicate-free group of ranks."""

    __slots__ = ("members",)

    def __init__(self, members: Iterable[int]):
        ordered = tuple(int(m) for m in members)
        if len(set(ordered)) != len(ordered):
            raise PgasError("team members must be unique")
        if not ordered:
            raise PgasError("team must have at least one member")
        self.members = ordered

    # -- structure ----------------------------------------------------------
    @staticmethod
    def world() -> "Team":
        ctx = current()
        return Team(range(ctx.world.n_ranks))

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, rank: int) -> bool:
        return rank in self.members

    def __iter__(self):
        return iter(self.members)

    def __eq__(self, other) -> bool:
        return isinstance(other, Team) and self.members == other.members

    def __hash__(self) -> int:
        return hash(self.members)

    def index_of(self, rank: int | None = None) -> int:
        """Position of ``rank`` (default: caller) within the team."""
        if rank is None:
            rank = current().rank
        try:
            return self.members.index(rank)
        except ValueError:
            raise PgasError(f"rank {rank} is not a member of {self}") from None

    def split(self, color: int, key: int) -> "Team":
        """MPI-style split: collective over the *team*; every member calls
        with its (color, key); members with equal color form new teams
        ordered by key."""
        ctx = current()
        me = ctx.rank
        if me not in self.members:
            raise PgasError("split called by non-member")
        from repro.core.collectives import _team_exchange

        pairs = _team_exchange(self, (color, key))
        mine = [
            (k, r)
            for r, (c, k) in zip(self.members, pairs)
            if c == color
        ]
        mine.sort()
        return Team(r for _k, r in mine)

    # -- team collectives ------------------------------------------------
    # Every world collective has a team-scoped form (``root`` is a *team
    # index*); the ``*_async`` variants return futures completed by
    # ``advance()`` progress, like their world counterparts.
    def barrier(self) -> None:
        from repro.core import collectives

        collectives.barrier(team=self)

    def barrier_async(self):
        from repro.core import collectives

        return collectives.barrier_async(team=self)

    def bcast(self, value, root: int = 0):
        """Broadcast from the team member with *team index* ``root``."""
        from repro.core import collectives

        return collectives.bcast(value, root=root, team=self)

    def bcast_async(self, value, root: int = 0):
        from repro.core import collectives

        return collectives.bcast_async(value, root=root, team=self)

    def reduce(self, value, op="sum", root: int = 0):
        from repro.core import collectives

        return collectives.reduce(value, op=op, root=root, team=self)

    def allreduce(self, value, op="sum"):
        from repro.core import collectives

        return collectives.allreduce(value, op=op, team=self)

    def allreduce_async(self, value, op="sum"):
        from repro.core import collectives

        return collectives.allreduce_async(value, op=op, team=self)

    def gather(self, value, root: int = 0):
        from repro.core import collectives

        return collectives.gather(value, root=root, team=self)

    def allgather(self, value):
        from repro.core import collectives

        return collectives.allgather(value, team=self)

    def allgather_async(self, value):
        from repro.core import collectives

        return collectives.allgather_async(value, team=self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Team{self.members}"
