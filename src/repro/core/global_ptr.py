"""Global pointers (paper §III-B).

A :class:`GlobalPtr` encapsulates the owning rank and the local address
(byte offset into the owner's segment) of shared data, plus the element
dtype.  Design decisions from the paper are preserved:

* **no phase**: unlike UPC pointers-to-shared, arithmetic steps through
  the owner's *local* memory in element units, exactly like C++ pointer
  arithmetic (``p + 1`` never hops to another rank);
* ``where()`` reports the owner;
* casting to a local pointer (here: a zero-copy NumPy view) is only valid
  on the owning rank;
* a ``void``-pointer equivalent (:func:`GlobalPtr.cast`) reinterprets the
  element type without moving data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.core.world import current
from repro.errors import BadPointer
from repro.gasnet import rma
from repro.gasnet.atomics import ATOMIC_OPS


@dataclass(frozen=True, order=False)
class GlobalPtr:
    """A typed pointer into the partitioned global address space."""

    rank: int
    offset: int  # byte offset into the owner's segment
    dtype: Any = np.uint8  # numpy dtype of the pointee ("void" = uint8)

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    # -- identity / affinity ---------------------------------------------
    def where(self) -> int:
        """The rank with affinity to the pointee (paper's ``where()``)."""
        return self.rank

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def is_null(self) -> bool:
        return self.rank < 0

    def is_local(self) -> bool:
        """True when the calling rank owns the pointee."""
        return current().rank == self.rank

    # -- arithmetic ---------------------------------------------------------
    def _check(self) -> None:
        if self.is_null:
            raise BadPointer("operation on null global pointer")

    def __add__(self, n: int) -> "GlobalPtr":
        self._check()
        return replace(self, offset=self.offset + int(n) * self.itemsize)

    def __radd__(self, n: int) -> "GlobalPtr":
        return self.__add__(n)

    def __sub__(self, other):
        self._check()
        if isinstance(other, GlobalPtr):
            if other.rank != self.rank:
                raise BadPointer(
                    "pointer difference across ranks is undefined"
                )
            if other.dtype != self.dtype:
                raise BadPointer("pointer difference across dtypes")
            diff = self.offset - other.offset
            if diff % self.itemsize:
                raise BadPointer("pointers are not element-aligned")
            return diff // self.itemsize
        return self.__add__(-int(other))

    def __lt__(self, other: "GlobalPtr") -> bool:
        return (self.rank, self.offset) < (other.rank, other.offset)

    def __le__(self, other: "GlobalPtr") -> bool:
        return (self.rank, self.offset) <= (other.rank, other.offset)

    def __bool__(self) -> bool:
        return not self.is_null

    # -- casts ----------------------------------------------------------------
    def cast(self, dtype) -> "GlobalPtr":
        """Reinterpret the pointee type (``global_ptr<void>`` round trip)."""
        self._check()
        return replace(self, dtype=np.dtype(dtype))

    def local(self, count: int = 1) -> np.ndarray:
        """Cast to a local pointer: a zero-copy view of ``count`` elements.

        Only valid on the owning rank — the PGAS contract the paper keeps
        from UPC ("casting a global pointer to a regular C++ pointer
        results in the local address").
        """
        self._check()
        ctx = current()
        if ctx.rank != self.rank:
            raise BadPointer(
                f"rank {ctx.rank} cannot take a local view of memory on "
                f"rank {self.rank}; use get()/put() or copy()"
            )
        return rma.local_view(ctx, self.offset, self.dtype, count)

    # -- element access (runtime Fig. 3 local/remote branch) -----------------
    def get(self, count: int = 1) -> np.ndarray:
        """One-sided read of ``count`` elements starting at the pointee."""
        self._check()
        return rma.get(current(), self.rank, self.offset, self.dtype, count)

    def put(self, values: np.ndarray | int | float) -> None:
        """One-sided write of one or more elements starting at the pointee."""
        self._check()
        arr = np.asarray(values, dtype=self.dtype)
        rma.put(current(), self.rank, self.offset, arr)

    def __getitem__(self, index: int):
        """Scalar element read, ``p[i]`` — sugar over :meth:`get`."""
        elem = (self + int(index)).get(1)
        return elem[0]

    def __setitem__(self, index: int, value) -> None:
        (self + int(index)).put(value)

    def atomic(self, op, operand):
        """Atomic read-modify-write on the pointee; returns the old value.

        ``op`` may be a callable ``(old, operand) -> new`` or one of
        ``"xor" | "add" | "and" | "or" | "swap"``.
        """
        self._check()
        fn = _ATOMIC_OPS.get(op, op)
        if not callable(fn):
            raise BadPointer(f"unknown atomic op {op!r}")
        return rma.atomic(
            current(), self.rank, self.offset, self.dtype, fn, operand
        )

    def compare_swap(self, expected, desired) -> bool:
        """Atomic compare-and-swap on the pointee.

        Writes ``desired`` iff the current value equals ``expected``;
        returns True when the swap happened.  The building block for
        lock-free distributed structures.
        """
        self._check()
        expected = np.asarray(expected, dtype=self.dtype)[()]

        def cas(old, v):
            return v if old == expected else old

        old = rma.atomic(
            current(), self.rank, self.offset, self.dtype, cas, desired
        )
        return bool(old == expected)

    def __repr__(self) -> str:  # pragma: no cover
        if self.is_null:
            return "GlobalPtr(null)"
        return f"GlobalPtr(rank={self.rank}, off={self.offset}, {self.dtype})"


# Shared with the batched RMA path (segment-side vectorized atomics).
_ATOMIC_OPS = ATOMIC_OPS


def null_ptr(dtype=np.uint8) -> GlobalPtr:
    """The null global pointer."""
    return GlobalPtr(rank=-1, offset=0, dtype=dtype)
