"""Property test: arbitrary compositions of NdArray views agree with a
point-by-point reference model.

The reference model is a dict {point: value} plus a pure-Python
transform of the logical domain; after any chain of constrict /
translate / permute / slice operations, every element read through the
view must equal the model's value for the corresponding original point,
and local_view() must lay those values out in row-major domain order.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.arrays import NdArray, Point, RectDomain, ndarray
from tests.conftest import run_spmd


class RefView:
    """A pure-Python mirror of the view algebra: maps logical points of
    the current view back to points of the base array."""

    def __init__(self, dom: RectDomain):
        self.domain = dom
        self.back = lambda pt: pt  # view point -> base point

    def constrict(self, sub: RectDomain) -> "RefView":
        out = RefView(self.domain.intersect(sub))
        prev = self.back
        out.back = prev
        return out

    def translate(self, off: Point) -> "RefView":
        out = RefView(self.domain.translate(off))
        prev = self.back
        out.back = lambda pt: prev(pt - off)
        return out

    def permute(self, perm) -> "RefView":
        out = RefView(self.domain.permute(perm))
        prev = self.back
        inv = [0] * len(perm)
        for i, p in enumerate(perm):
            inv[p] = i
        out.back = lambda pt: prev(pt.permute(inv))
        return out

    def slice(self, axis: int, coord: int) -> "RefView":
        out = RefView(self.domain.slice(axis, coord))
        prev = self.back
        out.back = lambda pt: prev(
            Point(*(list(pt)[:axis] + [coord] + list(pt)[axis:]))
        )
        return out


def op_strategy():
    return st.lists(
        st.one_of(
            st.tuples(st.just("constrict"),
                      st.integers(-2, 2), st.integers(3, 9),
                      st.integers(1, 2)),
            st.tuples(st.just("translate"),
                      st.integers(-4, 4), st.integers(-4, 4)),
            st.tuples(st.just("permute"),
                      st.sampled_from([(0, 1), (1, 0)])),
        ),
        min_size=0, max_size=4,
    )


@settings(max_examples=25, deadline=None)
@given(ops=op_strategy())
def test_view_chain_matches_reference(ops):
    def body():
        base_dom = RectDomain((0, 0), (6, 7))
        A = ndarray(np.int64, base_dom)
        values = {}
        for k, p in enumerate(base_dom):
            A[p] = k * 13 + 1
            values[tuple(p)] = k * 13 + 1

        view: NdArray = A
        ref = RefView(base_dom)
        for op in ops:
            if op[0] == "constrict":
                _name, lo, hi, stridev = op
                sub = RectDomain(
                    Point(lo, lo), Point(hi, hi),
                    Point(stridev, stridev),
                )
                view = view.constrict(sub)
                ref = ref.constrict(sub)
            elif op[0] == "translate":
                off = Point(op[1], op[2])
                view = view.translate(off)
                ref = ref.translate(off)
            elif op[0] == "permute":
                view = view.permute(op[1])
                ref = ref.permute(op[1])
            assert view.domain == ref.domain
            if view.domain.is_empty:
                return True

        # element-level agreement
        for p in view.domain:
            base_pt = ref.back(p)
            assert view[p] == values[tuple(base_pt)], (p, ops)
        # local_view agreement (row-major over the domain)
        lv = view.local_view()
        flat = lv.reshape(-1)
        for i, p in enumerate(view.domain):
            assert flat[i] == values[tuple(ref.back(p))]
        # pack/unpack round trip over the full view domain
        packed = view.to_numpy()
        assert packed.shape == view.domain.shape
        return True

    assert all(run_spmd(body, ranks=1))


@settings(max_examples=10, deadline=None)
@given(
    axis=st.integers(0, 1),
    rowcol=st.integers(1, 4),
    ops=op_strategy(),
)
def test_slice_after_chain_matches_reference(axis, rowcol, ops):
    def body():
        base_dom = RectDomain((0, 0), (6, 6))
        A = ndarray(np.int64, base_dom)
        values = {}
        for k, p in enumerate(base_dom):
            A[p] = k + 100
            values[tuple(p)] = k + 100

        view, ref = A, RefView(base_dom)
        for op in ops:
            if op[0] == "constrict":
                sub = RectDomain(Point(op[1], op[1]), Point(op[2], op[2]),
                                 Point(op[3], op[3]))
                view, ref = view.constrict(sub), ref.constrict(sub)
            elif op[0] == "translate":
                off = Point(op[1], op[2])
                view, ref = view.translate(off), ref.translate(off)
            else:
                view, ref = view.permute(op[1]), ref.permute(op[1])
        dom = view.domain
        if dom.is_empty:
            return True
        coords = [c for c in
                  range(dom.lb[axis], dom.ub[axis], dom.stride[axis])]
        coord = coords[min(rowcol, len(coords) - 1)]
        s_view = view.slice(axis, coord)
        s_ref = ref.slice(axis, coord)
        assert s_view.domain == s_ref.domain
        for p in s_view.domain:
            assert s_view[p] == values[tuple(s_ref.back(p))]
        return True

    assert all(run_spmd(body, ranks=1))
