"""Multi-rectangle Domain algebra vs brute-force point sets."""

import pytest
from hypothesis import given, settings

from repro.arrays import Domain, Point, RectDomain
from repro.errors import DomainError
from tests.arrays.test_rectdomain import brute_points, small_rd


def unit_rd():
    return small_rd(dim=2, lo=-5, hi=6, max_stride=1)


def test_union_of_disjoint_rects():
    d = RectDomain((0, 0), (2, 2)) + RectDomain((5, 5), (7, 7))
    assert isinstance(d, Domain)
    assert d.size == 8
    assert Point(1, 1) in d and Point(6, 6) in d and Point(3, 3) not in d


def test_union_deduplicates_overlap():
    d = RectDomain((0, 0), (4, 4)) + RectDomain((2, 2), (6, 6))
    assert d.size == 16 + 16 - 4


def test_difference_produces_hole():
    d = RectDomain((0, 0), (4, 4)) - RectDomain((1, 1), (3, 3))
    assert d.size == 12
    assert Point(0, 0) in d and Point(2, 2) not in d


def test_paper_ghost_shell_idiom():
    """interior = whole.shrink(1); shell = whole - interior."""
    whole = RectDomain((0, 0, 0), (6, 6, 6))
    shell = Domain([whole]) - Domain([whole.shrink(1)])
    assert shell.size == 6 ** 3 - 4 ** 3
    assert Point(0, 3, 3) in shell and Point(3, 3, 3) not in shell


def test_intersection_distributes_over_pieces():
    d = RectDomain((0, 0), (2, 6)) + RectDomain((4, 0), (6, 6))
    box = RectDomain((1, 1), (5, 3))
    inter = d * box
    expect = (brute_points(RectDomain((0, 0), (2, 6)))
              | brute_points(RectDomain((4, 0), (6, 6)))) \
        & brute_points(box)
    assert inter.point_set() == expect


def test_equality_is_set_semantics():
    a = RectDomain((0, 0), (2, 4)) + RectDomain((0, 4), (2, 8))
    b = Domain([RectDomain((0, 0), (2, 8))])
    assert a == b
    assert a == RectDomain((0, 0), (2, 8))  # Domain vs RectDomain


def test_domain_not_hashable():
    with pytest.raises(TypeError):
        hash(Domain([RectDomain((0,), (1,))]))


def test_bounding_box():
    d = RectDomain((0, 0), (1, 1)) + RectDomain((5, 7), (6, 8))
    assert d.bounding_box() == RectDomain((0, 0), (6, 8))
    with pytest.raises(DomainError):
        Domain([]).bounding_box()


def test_translate():
    d = (RectDomain((0, 0), (2, 2)) - RectDomain((0, 0), (1, 1)))
    t = d.translate(Point(10, 10))
    assert Point(11, 11) in t and Point(10, 10) not in t


def test_mixed_strides_difference_rejected():
    a = RectDomain((0,), (10,), (1,))
    b = RectDomain((0,), (10,), (2,))
    with pytest.raises(DomainError):
        _ = Domain([a]) - Domain([b])


@settings(max_examples=100, deadline=None)
@given(a=unit_rd(), b=unit_rd())
def test_union_matches_brute_force(a, b):
    assert (a + b).point_set() == brute_points(a) | brute_points(b)


@settings(max_examples=100, deadline=None)
@given(a=unit_rd(), b=unit_rd())
def test_difference_matches_brute_force(a, b):
    assert (a - b).point_set() == brute_points(a) - brute_points(b)


@settings(max_examples=60, deadline=None)
@given(a=unit_rd(), b=unit_rd(), c=unit_rd())
def test_de_morgan_flavour(a, b, c):
    """(a ∪ b) ∩ c == (a ∩ c) ∪ (b ∩ c) as point sets."""
    lhs = (a + b) * Domain([c])
    rhs = Domain([a.intersect(c)]) + Domain([b.intersect(c)])
    assert lhs.point_set() == rhs.point_set()


@settings(max_examples=100, deadline=None)
@given(a=unit_rd(), b=unit_rd())
def test_domain_pieces_are_disjoint(a, b):
    d = a + b
    seen = set()
    for r in d.rects:
        pts = brute_points(r)
        assert not (pts & seen), "Domain pieces overlap"
        seen |= pts
