"""NdArray: allocation, indexing, views, one-sided copy (paper §III-E)."""

import numpy as np
import pytest

import repro
from repro.arrays import ARRAY, NdArray, Point, RectDomain, foreach, ndarray
from repro.errors import BadPointer, DomainError
from tests.conftest import run_spmd


def test_allocation_and_shape():
    def body():
        A = ndarray(np.float64, RectDomain((1, 2), (9, 9), (1, 3)))
        assert A.shape == (8, 3)
        assert A.size == 24
        assert A.where() == repro.myrank()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_array_macro_table2():
    """ARRAY(int, ((1,2),(9,9),(1,3))) — Table II shorthand."""
    def body():
        A = ARRAY(np.int64, ((1, 2), (9, 9), (1, 3)))
        assert A.domain == RectDomain((1, 2), (9, 9), (1, 3))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_zero_initialized_and_point_indexing():
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (3, 3)))
        assert A[Point(1, 1)] == 0
        A[1, 1] = 42          # tuple indexing
        A[Point(2, 2)] = 7    # point indexing
        assert A[(1, 1)] == 42 and A[Point(2, 2)] == 7
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_index_outside_domain_raises():
    def body():
        A = ndarray(np.int64, RectDomain((2, 2), (4, 4)))
        with pytest.raises(IndexError):
            A[Point(0, 0)]
        with pytest.raises(IndexError):
            A[Point(4, 2)] = 1
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_int_index_only_for_1d():
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (2, 2)))
        with pytest.raises(IndexError):
            A[1]
        B = ndarray(np.int64, RectDomain((0,), (4,)))
        B[2] = 5
        assert B[2] == 5
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_local_view_matches_foreach_order():
    def body():
        dom = RectDomain((1, 1), (4, 5))
        A = ndarray(np.int64, dom)
        for i, p in enumerate(foreach(dom)):
            A[p] = i
        lv = A.local_view()
        assert lv.shape == (3, 4)
        assert np.array_equal(lv.ravel(), np.arange(12))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_unstrided_flag():
    def body():
        A = ndarray(np.float64, RectDomain((0, 0), (4, 4)))
        assert A.unstrided
        strided = ndarray(np.float64, RectDomain((0,), (8,), (2,)))
        assert not strided.unstrided
        sliced = A.slice(1, 0)
        assert not sliced.unstrided  # stride-4 walk over storage
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


# -- views ----------------------------------------------------------------

def test_constrict_restricts_and_shares_storage():
    """'an array may be restricted to a smaller domain' (§III-E)."""
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (6, 6)))
        inner = A.constrict(RectDomain((2, 2), (4, 4)))
        assert inner.domain == RectDomain((2, 2), (4, 4))
        inner[Point(3, 3)] = 9
        assert A[Point(3, 3)] == 9  # same storage
        inner.local_view()[:] = 5
        assert A[Point(2, 2)] == 5 and A[Point(0, 0)] == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_slice_gives_n_minus_1_view():
    """'sliced to obtain an (N-1)-dimensional view' (§III-E)."""
    def body():
        A = ndarray(np.int64, RectDomain((0, 0, 0), (3, 3, 3)))
        A[Point(1, 2, 0)] = 11
        s = A.slice(2, 0)  # fix z=0
        assert s.ndim == 2
        assert s[Point(1, 2)] == 11
        s[Point(0, 0)] = 5
        assert A[Point(0, 0, 0)] == 5
        with pytest.raises(DomainError):
            ndarray(np.int64, RectDomain((0,), (2,))).slice(0, 0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_translate_view():
    """'translating the domain of an array' (§III-E)."""
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (2, 2)))
        A[Point(0, 0)] = 3
        T = A.translate(Point(10, 10))
        assert T[Point(10, 10)] == 3
        T[Point(11, 11)] = 4
        assert A[Point(1, 1)] == 4
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_permute_and_transpose():
    """'permuting dimensions' (§III-E)."""
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (2, 3)))
        A[Point(0, 2)] = 7
        T = A.transpose()
        assert T.shape == (3, 2)
        assert T[Point(2, 0)] == 7
        assert np.array_equal(T.local_view(), A.local_view().T)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_strided_constrict():
    def body():
        A = ndarray(np.int64, RectDomain((0,), (10,)))
        A.local_view()[:] = np.arange(10)
        evens = A.constrict(RectDomain((0,), (10,), (2,)))
        assert evens.shape == (5,)
        assert np.array_equal(evens.local_view(), [0, 2, 4, 6, 8])
        evens.local_view()[:] = -1
        assert A[1] == 1 and A[2] == -1
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_set_and_to_from_numpy():
    def body():
        A = ndarray(np.float64, RectDomain((0, 0), (3, 3)))
        A.set(2.5)
        assert np.all(A.to_numpy() == 2.5)
        A.from_numpy(np.arange(9.0).reshape(3, 3))
        assert A[Point(2, 2)] == 8.0
        with pytest.raises(DomainError):
            A.from_numpy(np.zeros((2, 2)))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


# -- remote arrays (handles cross ranks) -------------------------------------

def test_remote_element_access():
    def body():
        me = repro.myrank()
        d = repro.Directory()
        A = ndarray(np.int64, RectDomain((0, 0), (4, 4)))
        A.set(me * 10)
        d.publish_and_sync(A)
        other = (me + 1) % repro.ranks()
        R = d.lookup(other)
        assert not R.is_local()
        assert R[Point(1, 1)] == other * 10   # one-sided remote read
        R[Point(0, 0)] = 99                   # one-sided remote write
        repro.barrier()
        assert A[Point(0, 0)] == 99
        with pytest.raises(BadPointer):
            R.local_view()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_copy_intersects_domains():
    """'the library automatically computes the intersection' (§III-E)."""
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (4, 4)))
        B = ndarray(np.int64, RectDomain((2, 2), (6, 6)))
        B.set(7)
        A.copy(B)
        lv = A.local_view()
        assert lv[3, 3] == 7 and lv[2, 2] == 7  # intersection [2:4)x[2:4)
        assert lv[0, 0] == 0 and lv[1, 3] == 0
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_copy_disjoint_domains_is_noop():
    def body():
        A = ndarray(np.int64, RectDomain((0, 0), (2, 2)))
        B = ndarray(np.int64, RectDomain((5, 5), (7, 7)))
        B.set(3)
        A.copy(B)
        assert np.all(A.to_numpy() == 0)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_remote_ghost_copy_single_statement():
    """The paper's ghost idiom: A.constrict(ghost).copy(B) where B is
    remote; pack, transfer and unpack are automatic and one-sided."""
    def body():
        me = repro.myrank()
        d = repro.Directory()
        # rank r owns columns [4r, 4r+4) of a global 4x8 grid + 1 ghost col
        lo, hi = 4 * me, 4 * me + 4
        interior = RectDomain((0, lo), (4, hi))
        mine = ndarray(np.float64, RectDomain((0, lo - 1), (4, hi + 1)))
        mine.constrict(interior).local_view()[:] = me + 1.0
        d.publish_and_sync(mine)
        if me == 0:
            nbr = d.lookup(1)
            ghost = RectDomain((0, hi), (4, hi + 1))
            mine.constrict(ghost).copy(nbr)   # single statement!
            assert np.all(
                mine.constrict(ghost).local_view() == 2.0
            )
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_copy_third_party():
    """Initiator owns neither side; AMs do pack and unpack remotely."""
    def body():
        me = repro.myrank()
        d = repro.Directory()
        A = ndarray(np.int64, RectDomain((0, 0), (3, 3)))
        A.set(me)
        d.publish_and_sync(A)
        if me == 2:
            dst = d.lookup(0)
            src = d.lookup(1)
            dst.copy(src)  # rank 2 moves rank1's grid into rank0's
        repro.barrier()
        assert (A.local_view()[0, 0] == (1 if me == 0 else me))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_copy_between_shifted_views():
    def body():
        A = ndarray(np.float64, RectDomain((0, 0), (4, 4)))
        B = ndarray(np.float64, RectDomain((0, 0), (4, 4)))
        B.from_numpy(np.arange(16.0).reshape(4, 4))
        # copy B's values into A displaced by (1, 1)
        A.translate(Point(-1, -1)).copy(B)
        lv = A.local_view()
        assert lv[1, 1] == B[Point(0, 0)]
        assert lv[3, 3] == B[Point(2, 2)]
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_copy_dtype_checks():
    def body():
        A = ndarray(np.int64, RectDomain((0,), (4,)))
        B = ndarray(np.int32, RectDomain((0,), (4,)))
        with pytest.raises(DomainError):
            A.copy(B)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_copy_signals_event():
    def body():
        A = ndarray(np.int64, RectDomain((0,), (4,)))
        B = ndarray(np.int64, RectDomain((0,), (4,)))
        e = repro.Event()
        A.copy(B, event=e)
        assert e.test()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_ndarray_free_releases_segment():
    def body():
        ctx = repro.current_world().ranks[repro.myrank()]
        before = ctx.segment.bytes_in_use
        A = ndarray(np.float64, RectDomain((0, 0), (8, 8)))
        assert ctx.segment.bytes_in_use > before
        A.free()
        assert ctx.segment.bytes_in_use == before
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_inject_view_multigrid_idiom():
    """A coarse array embedded into fine index space: the multigrid
    restriction/prolongation addressing pattern."""
    def body():
        coarse = ndarray(np.float64, RectDomain((0, 0), (4, 4)))
        coarse.from_numpy(np.arange(16.0).reshape(4, 4))
        fine_view = coarse.inject(2)   # lives on the even fine points
        assert fine_view.domain == RectDomain((0, 0), (7, 7), (2, 2))
        for (i, j) in foreach(coarse.domain):
            assert fine_view[Point(2 * i, 2 * j)] == coarse[Point(i, j)]
        # and it shares storage
        fine_view[Point(2, 2)] = -5.0
        assert coarse[Point(1, 1)] == -5.0
        # project inverts
        back = fine_view.project(2)
        assert back.domain == coarse.domain
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_remote_copy_error_propagates_to_initiator():
    """A failing remote pack (corrupt handle mapping past the segment)
    surfaces as an exception at the *initiating* rank — the AM error
    reply path."""
    def body():
        me = repro.myrank()
        if me == 0:
            seg_size = repro.current_world().ranks[1].segment.size
            dom = RectDomain((0, 0), (8, 8))
            bogus = NdArray(
                rank=1, base_offset=seg_size - 8, dtype=np.int64,
                domain=dom, elem_base=0, elem_strides=(8, 1),
                alloc_elems=64,
            )
            dst = ndarray(np.int64, dom)
            with pytest.raises(repro.PgasError):
                dst.copy(bogus)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))
