"""DistNdArray: the paper's 'future work' distributed arrays."""

import numpy as np
import pytest

import repro
from repro.arrays import DistNdArray, Point, RectDomain, process_grid
from repro.errors import DomainError
from tests.conftest import run_spmd


# -- process grids -------------------------------------------------------

@pytest.mark.parametrize("n,ndim", [
    (1, 3), (2, 2), (4, 2), (6, 3), (8, 3), (12, 2), (24, 3), (64, 3),
])
def test_process_grid_factors_exactly(n, ndim):
    g = process_grid(n, ndim)
    assert len(g) == ndim
    prod = 1
    for d in g:
        prod *= d
    assert prod == n


def test_process_grid_squareness():
    assert sorted(process_grid(64, 3)) == [4, 4, 4]
    assert sorted(process_grid(16, 2)) == [4, 4]
    assert sorted(process_grid(8, 3)) == [2, 2, 2]


# -- partitioning ------------------------------------------------------------

def test_interiors_partition_global_domain():
    def body():
        D = DistNdArray(np.float64, RectDomain((0, 0), (10, 7)))
        n = repro.ranks()
        seen = set()
        total = 0
        for r in range(n):
            dom = D.interior_of(r)
            pts = set(map(tuple, dom))
            assert not (pts & seen)   # disjoint
            seen |= pts
            total += dom.size
        assert total == 70            # covering
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_owner_of_matches_interiors():
    def body():
        D = DistNdArray(np.int64, RectDomain((0, 0), (8, 8)))
        for r in range(repro.ranks()):
            for p in D.interior_of(r):
                assert D.owner_of(p) == r
        with pytest.raises(DomainError):
            D.owner_of(Point(100, 0))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_rank_coords_roundtrip():
    def body():
        D = DistNdArray(np.int64, RectDomain((0, 0, 0), (6, 6, 6)))
        for r in range(repro.ranks()):
            assert D.rank_of(D.coords_of(r)) == r
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=8))


def test_constructor_validation():
    def body():
        with pytest.raises(DomainError):
            DistNdArray(np.int64, RectDomain((0,), (8,), (2,)))
        with pytest.raises(DomainError):
            DistNdArray(np.int64, RectDomain((0, 0), (8, 8)), ghost=-1)
        with pytest.raises(DomainError):
            DistNdArray(np.int64, RectDomain((0, 0), (8, 8)),
                        pgrid=(3, 5))  # wrong rank product
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_global_indexing_routes_to_owner():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.int64, RectDomain((0, 0), (6, 6)))
        D.interior_view()[:] = me
        repro.barrier()
        if me == 0:
            for r in range(repro.ranks()):
                p = D.interior_of(r).min_point()
                assert D[p] == r
                D[p] = 50 + r
        repro.barrier()
        assert D[D.my_interior.min_point()] == 50 + me
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_neighbors_face_and_corner_counts():
    def body():
        D = DistNdArray(np.int64, RectDomain((0, 0, 0), (8, 8, 8)),
                        ghost=1)
        nbrs = list(D.neighbors())
        # on a 2x2x2 grid every rank has the other 7 as neighbours
        assert len(nbrs) == 7
        faces = [o for _r, o in nbrs if sum(map(abs, o)) == 1]
        assert len(faces) == 3
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=8))


def test_ghost_exchange_faces():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1)
        D.interior_view()[:] = float(me)
        D.ghost_exchange(faces_only=True)
        for nbr_rank, offs in D.neighbors():
            if sum(map(abs, offs)) != 1:
                continue
            halo = D._halo_region(offs)
            gv = D.local.constrict(halo).local_view()
            assert np.all(gv == float(nbr_rank))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_ghost_exchange_includes_corners():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1)
        D.interior_view()[:] = float(me)
        D.ghost_exchange(faces_only=False)
        for nbr_rank, offs in D.neighbors():
            halo = D._halo_region(offs)
            gv = D.local.constrict(halo).local_view()
            assert np.all(gv == float(nbr_rank)), (me, nbr_rank, offs)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_ghost_exchange_without_ghosts_rejected():
    def body():
        D = DistNdArray(np.float64, RectDomain((0, 0), (4, 4)))
        with pytest.raises(DomainError):
            D.ghost_exchange()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_wider_ghost_zones():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (12, 12)), ghost=2)
        D.interior_view()[:] = float(me)
        D.ghost_exchange(faces_only=True)
        for nbr_rank, offs in D.neighbors():
            if sum(map(abs, offs)) != 1:
                continue
            halo = D._halo_region(offs)
            assert halo.size == 2 * 6  # two ghost layers per face
            gv = D.local.constrict(halo).local_view()
            assert np.all(gv == float(nbr_rank))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_to_numpy_gathers_global_array():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.int64, RectDomain((0, 0), (6, 6)))
        D.interior_view()[:] = me
        repro.barrier()
        full = D.to_numpy()
        for r in range(repro.ranks()):
            dom = D.interior_of(r)
            sl = tuple(slice(dom.lb[d], dom.ub[d]) for d in range(2))
            assert np.all(full[sl] == r)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_nonzero_domain_origin():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((5, -3), (13, 5)), ghost=1)
        D.interior_view()[:] = me
        D.ghost_exchange(faces_only=True)
        repro.barrier()
        full = D.to_numpy()
        assert full.shape == (8, 8)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


# -- periodic boundaries -------------------------------------------------

def test_periodic_ghost_wraps_around():
    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1,
                        periodic=True)
        D.interior_view()[:] = float(me)
        D.ghost_exchange(faces_only=True)
        # every rank now has ALL four face halos filled (wrap included)
        for offs in (Point(-1, 0), Point(1, 0), Point(0, -1), Point(0, 1)):
            halo = D._halo_region(offs)
            gv = D.local.constrict(halo).local_view()
            # value equals the (possibly wrapped) neighbour's rank
            nc = [
                (c + o) % p
                for c, o, p in zip(D.my_coords, offs, D.pgrid)
            ]
            expect = float(D.rank_of(nc))
            assert np.all(gv == expect), (me, tuple(offs), gv, expect)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_periodic_stencil_matches_np_roll():
    """A periodic 4-point average equals the np.roll reference."""
    def body():
        me = repro.myrank()
        N = 8
        D = DistNdArray(np.float64, RectDomain((0, 0), (N, N)), ghost=1,
                        periodic=True)
        rng = np.random.default_rng(5)
        init = rng.random((N, N))
        dom = D.my_interior
        sl = tuple(slice(dom.lb[d], dom.ub[d]) for d in range(2))
        D.interior_view()[:] = init[sl]
        repro.barrier()
        D.ghost_exchange(faces_only=True)
        a = D.local.local_view()
        out = 0.25 * (a[1:-1, 2:] + a[1:-1, :-2]
                      + a[2:, 1:-1] + a[:-2, 1:-1])
        expect = 0.25 * (np.roll(init, -1, 1) + np.roll(init, 1, 1)
                         + np.roll(init, -1, 0) + np.roll(init, 1, 0))
        assert np.allclose(out, expect[sl], rtol=1e-14)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_mixed_periodic_axes():
    def body():
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1,
                        periodic=(True, False))
        n_wrapping = sum(
            1 for _r, offs in D.neighbors()
            if not all(
                0 <= c < p
                for c, p in zip(D.my_coords + offs, D.pgrid)
            )
        )
        # on a 2x2 grid, the periodic x axis adds wrap neighbours, the
        # non-periodic y axis does not
        assert n_wrapping >= 1
        D.interior_view()[:] = float(repro.myrank())
        D.ghost_exchange(faces_only=True)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_periodic_single_rank_self_wrap():
    """With one rank everything wraps to itself."""
    def body():
        N = 6
        D = DistNdArray(np.float64, RectDomain((0, 0), (N, N)), ghost=1,
                        periodic=True)
        init = np.arange(N * N, dtype=float).reshape(N, N)
        D.interior_view()[:] = init
        D.ghost_exchange(faces_only=True)
        a = D.local.local_view()
        assert np.array_equal(a[0, 1:-1], init[-1, :])   # top ghost row
        assert np.array_equal(a[-1, 1:-1], init[0, :])
        assert np.array_equal(a[1:-1, 0], init[:, -1])
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))


def test_periodic_validation():
    def body():
        with pytest.raises(DomainError):
            DistNdArray(np.float64, RectDomain((0, 0), (8, 8)),
                        ghost=1, periodic=(True,))
        with pytest.raises(DomainError):
            # ghost wider than a periodic block extent
            DistNdArray(np.float64, RectDomain((0, 0), (4, 4)),
                        ghost=3, periodic=True)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))
