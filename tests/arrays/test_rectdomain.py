"""Rectangular domains: geometry, algebra, transformations.

Property tests compare the closed-form operations against brute-force
point-set computations on small domains.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import Point, RECTDOMAIN, RectDomain
from repro.errors import DomainError


def small_rd(dim=2, lo=-6, hi=7, max_stride=3):
    bound = st.integers(lo, hi)
    stride = st.integers(1, max_stride)
    return st.tuples(
        st.tuples(*([bound] * dim)),
        st.tuples(*([bound] * dim)),
        st.tuples(*([stride] * dim)),
    ).map(lambda t: RectDomain(Point(*t[0]), Point(*t[1]), Point(*t[2])))


def brute_points(rd: RectDomain) -> set:
    out = set()
    if rd.dim == 1:
        rng = range(rd.lb[0], rd.ub[0])
        return {(x,) for x in rng if (x - rd.lb[0]) % rd.stride[0] == 0}
    for x in range(rd.lb[0], max(rd.lb[0], rd.ub[0])):
        if (x - rd.lb[0]) % rd.stride[0]:
            continue
        for y in range(rd.lb[1], max(rd.lb[1], rd.ub[1])):
            if (y - rd.lb[1]) % rd.stride[1]:
                continue
            out.add((x, y))
    return out


# -- construction & geometry ---------------------------------------------

def test_paper_example_shape():
    """RECTDOMAIN((1,2,3), (5,6,7), (1,1,2)) from §III-E."""
    rd = RECTDOMAIN((1, 2, 3), (5, 6, 7), (1, 1, 2))
    assert rd.shape == (4, 4, 2)
    assert Point(1, 2, 3) in rd
    assert Point(1, 2, 4) not in rd  # stride 2 in z
    assert Point(1, 2, 5) in rd


def test_exclusive_upper_bound():
    """Paper footnote 1: UPC++ uses exclusive upper bounds."""
    rd = RectDomain((0, 0), (8, 8))
    assert Point(7, 7) in rd
    assert Point(8, 8) not in rd
    assert rd.size == 64


def test_empty_domain():
    rd = RectDomain((3, 3), (3, 5))
    assert rd.is_empty and rd.size == 0
    assert list(rd) == []
    with pytest.raises(DomainError):
        rd.min_point()


def test_validation():
    with pytest.raises(DomainError):
        RectDomain((0,), (5, 5))
    with pytest.raises(DomainError):
        RectDomain((0, 0), (5, 5), (0, 1))


def test_iteration_row_major():
    rd = RectDomain((0, 0), (2, 2))
    assert list(rd) == [Point(0, 0), Point(0, 1), Point(1, 0), Point(1, 1)]


def test_min_max_points():
    rd = RectDomain((1,), (10,), (3,))
    assert rd.min_point() == Point(1)
    assert rd.max_point() == Point(7)
    assert rd.size == 3


def test_equality_and_hash():
    a = RectDomain((0, 0), (4, 4))
    b = RectDomain((0, 0), (4, 4))
    assert a == b and hash(a) == hash(b)
    assert a != RectDomain((0, 0), (4, 5))
    # all empty domains of an arity are equal
    assert RectDomain((5, 5), (5, 5)) == RectDomain((9, 0), (0, 9))


@settings(max_examples=150, deadline=None)
@given(rd=small_rd())
def test_shape_size_iteration_consistent(rd):
    pts = list(rd)
    assert len(pts) == rd.size
    assert set(map(tuple, pts)) == brute_points(rd)
    for p in pts:
        assert p in rd


# -- intersection (paper's rd1 * rd2) ------------------------------------

@settings(max_examples=150, deadline=None)
@given(a=small_rd(), b=small_rd())
def test_intersection_matches_brute_force(a, b):
    inter = a.intersect(b)
    assert set(map(tuple, inter)) == brute_points(a) & brute_points(b)


def test_intersection_operator():
    a = RectDomain((0, 0), (4, 4))
    b = RectDomain((2, 2), (6, 6))
    assert a * b == RectDomain((2, 2), (4, 4))


def test_strided_intersection_congruence():
    a = RectDomain((0,), (30,), (4,))   # 0,4,8,...
    b = RectDomain((2,), (30,), (6,))   # 2,8,14,...
    inter = a.intersect(b)
    assert set(map(tuple, inter)) == {(8,), (20,)}
    assert inter.stride == Point(12)


def test_incompatible_lattices_are_empty():
    a = RectDomain((0,), (20,), (2,))   # evens
    b = RectDomain((1,), (20,), (2,))   # odds
    assert a.intersect(b).is_empty


def test_intersection_arity_mismatch():
    with pytest.raises(DomainError):
        RectDomain((0,), (2,)).intersect(RectDomain((0, 0), (2, 2)))


# -- transformations ----------------------------------------------------------

def test_translate():
    rd = RectDomain((0, 0), (2, 2)).translate(Point(10, 20))
    assert rd == RectDomain((10, 20), (12, 22))


def test_permute():
    rd = RectDomain((0, 1, 2), (4, 5, 6)).permute((2, 1, 0))
    assert rd == RectDomain((2, 1, 0), (6, 5, 4))


def test_slice():
    rd = RectDomain((0, 0, 0), (4, 4, 4))
    s = rd.slice(1, 2)
    assert s == RectDomain((0, 0), (4, 4))
    with pytest.raises(DomainError):
        rd.slice(1, 9)
    with pytest.raises(DomainError):
        rd.slice(5, 0)


def test_shrink_accrete_roundtrip():
    rd = RectDomain((0, 0, 0), (8, 8, 8))
    assert rd.shrink(1).accrete(1) == rd
    assert rd.shrink(2) == RectDomain((2, 2, 2), (6, 6, 6))
    with pytest.raises(DomainError):
        RectDomain((0,), (9,), (2,)).shrink(1)


def test_border_and_halo():
    rd = RectDomain((0, 0), (4, 4))
    assert rd.border(0, -1) == RectDomain((0, 0), (1, 4))
    assert rd.border(0, +1) == RectDomain((3, 0), (4, 4))
    assert rd.halo(0, -1) == RectDomain((-1, 0), (0, 4))
    assert rd.halo(1, +1, width=2) == RectDomain((0, 4), (4, 6))
    with pytest.raises(DomainError):
        rd.border(0, 2)


def test_border_width_clamps_to_domain():
    rd = RectDomain((0,), (3,))
    assert rd.border(0, -1, width=10) == rd


def test_pickle_roundtrip():
    rd = RectDomain((1, 2), (9, 9), (1, 3))
    assert pickle.loads(pickle.dumps(rd)) == rd


def test_inject_scales_lattice():
    d = RectDomain((1,), (4,))          # {1, 2, 3}
    inj = d.inject(3)
    assert set(map(tuple, inj)) == {(3,), (6,), (9,)}
    assert inj.stride == Point(3)


def test_inject_project_roundtrip():
    d = RectDomain((0, 2), (6, 8), (2, 3))
    assert d.inject(4).project(4) == d
    assert d.inject(Point(2, 5)).project(Point(2, 5)) == d


def test_project_requires_divisibility():
    with pytest.raises(DomainError):
        RectDomain((1,), (5,)).project(2)   # lb not divisible
    with pytest.raises(DomainError):
        RectDomain((0,), (5,)).project(2)   # stride 1 not divisible


def test_inject_validation():
    with pytest.raises(DomainError):
        RectDomain((0,), (3,)).inject(0)


def test_inject_empty_domain():
    d = RectDomain((2,), (2,))
    assert d.inject(3).is_empty


@settings(max_examples=80, deadline=None)
@given(rd=small_rd(), k=st.integers(1, 4))
def test_inject_pointwise_property(rd, k):
    inj = rd.inject(k)
    assert set(map(tuple, inj)) == {
        tuple(c * k for c in p) for p in rd
    }
