"""foreach iteration (paper §III-E / Table II)."""

import numpy as np

import repro
from repro.arrays import Point, RectDomain, foreach, foreach_tuples, ndarray
from tests.conftest import run_spmd


def test_foreach_yields_points():
    dom = RectDomain((0, 0), (2, 3))
    pts = list(foreach(dom))
    assert all(isinstance(p, Point) for p in pts)
    assert len(pts) == 6


def test_points_unpack_like_foreach3():
    """for (i, j, k) in foreach(dom) — the paper's foreach3 spelling."""
    dom = RectDomain((1, 1, 1), (3, 3, 3))
    seen = [(i, j, k) for (i, j, k) in foreach(dom)]
    assert len(seen) == 8 and (1, 1, 1) in seen and (2, 2, 2) in seen


def test_foreach_tuples_equivalent():
    dom = RectDomain((0,), (10,), (3,))
    assert [tuple(p) for p in foreach(dom)] == list(foreach_tuples(dom))


def test_foreach_over_multi_rect_domain():
    dom = RectDomain((0, 0), (2, 2)) + RectDomain((4, 4), (6, 6))
    assert len(list(foreach(dom))) == 8


def test_unordered_iteration_contract():
    """Programs must be order-independent: a reduction over a domain
    gives the same result for any iteration order."""
    dom = RectDomain((0, 0), (4, 4))
    fwd = sum(p.dot(p) for p in foreach(dom))
    rev = sum(p.dot(p) for p in reversed(list(foreach(dom))))
    assert fwd == rev


def test_paper_stencil_loop_shape():
    """The §V-B inner loop written with foreach matches vectorization."""
    def body():
        dom = RectDomain((0, 0, 0), (6, 6, 6))
        A = ndarray(np.float64, dom)
        B = ndarray(np.float64, dom)
        rng = np.random.default_rng(1)
        A.from_numpy(rng.random((6, 6, 6)))
        c = -6.0
        a = A.local_view()
        b = B.local_view()
        for (i, j, k) in foreach(dom.shrink(1)):
            b[i, j, k] = (c * a[i, j, k]
                          + a[i, j, k + 1] + a[i, j, k - 1]
                          + a[i, j + 1, k] + a[i, j - 1, k]
                          + a[i + 1, j, k] + a[i - 1, j, k])
        expect = (c * a[1:-1, 1:-1, 1:-1]
                  + a[1:-1, 1:-1, 2:] + a[1:-1, 1:-1, :-2]
                  + a[1:-1, 2:, 1:-1] + a[1:-1, :-2, 1:-1]
                  + a[2:, 1:-1, 1:-1] + a[:-2, 1:-1, 1:-1])
        assert np.allclose(b[1:-1, 1:-1, 1:-1], expect)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=1))
