"""Point arithmetic (paper §III-E points)."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import POINT, Point
from repro.errors import DomainError

coords = st.integers(-1000, 1000)


def pts(dim):
    return st.tuples(*([coords] * dim)).map(lambda t: Point(*t))


def test_construction_forms():
    assert Point(1, 2, 3) == Point((1, 2, 3)) == POINT(1, 2, 3)
    assert Point([4, 5]) == Point(4, 5)


def test_point_is_a_tuple_and_unpacks():
    p = Point(1, 2, 3)
    i, j, k = p
    assert (i, j, k) == (1, 2, 3)
    assert isinstance(p, tuple)
    assert p[0] == 1 and p[-1] == 3


def test_validation():
    with pytest.raises(DomainError):
        Point()
    with pytest.raises(DomainError):
        Point(1.5, 2)


def test_helpers():
    assert Point.all(7, 3) == Point(7, 7, 7)
    assert Point.zero(2) == Point(0, 0)
    assert Point.ones(2) == Point(1, 1)
    assert Point(1, 2, 3).replace(1, 9) == Point(1, 9, 3)
    assert Point(1, 2, 3).drop(0) == Point(2, 3)
    assert Point(1, 2, 3).permute((2, 0, 1)) == Point(3, 1, 2)


def test_drop_last_dim_rejected():
    with pytest.raises(DomainError):
        Point(5).drop(0)


def test_bad_permutation_rejected():
    with pytest.raises(DomainError):
        Point(1, 2).permute((0, 0))


def test_scalar_broadcast():
    assert Point(1, 2) + 1 == Point(2, 3)
    assert Point(4, 6) * 2 == Point(8, 12)
    assert Point(7, 9) // 2 == Point(3, 4)
    assert Point(7, 9) % 2 == Point(1, 1)
    assert 10 - Point(1, 2) == Point(9, 8)


def test_arity_mismatch_rejected():
    with pytest.raises(DomainError):
        Point(1, 2) + Point(1, 2, 3)


def test_componentwise_partial_order():
    assert Point(1, 1) < Point(2, 2)
    assert not Point(1, 3) < Point(2, 2)   # incomparable
    assert not Point(2, 2) < Point(1, 3)
    assert Point(2, 2) <= Point(2, 2)
    assert Point(3, 3) > Point(2, 2)


def test_min_max_dot():
    assert Point(1, 5).min(Point(2, 3)) == Point(1, 3)
    assert Point(1, 5).max(Point(2, 3)) == Point(2, 5)
    assert Point(1, 2, 3).dot(Point(4, 5, 6)) == 32


@settings(max_examples=100, deadline=None)
@given(a=pts(3), b=pts(3), c=pts(3))
def test_addition_group_laws(a, b, c):
    assert a + b == b + a
    assert (a + b) + c == a + (b + c)
    assert a + Point.zero(3) == a
    assert a + (-a) == Point.zero(3)
    assert a - b == a + (-b)


@settings(max_examples=100, deadline=None)
@given(a=pts(2), b=pts(2))
def test_arithmetic_matches_componentwise(a, b):
    assert tuple(a + b) == tuple(x + y for x, y in zip(a, b))
    assert tuple(a * b) == tuple(x * y for x, y in zip(a, b))


def test_pickle_roundtrip():
    p = Point(3, -1, 4)
    assert pickle.loads(pickle.dumps(p)) == p
