"""Shared test fixtures/helpers.

``run_spmd`` wraps :func:`repro.spmd` with a short watchdog timeout so a
regression that deadlocks a collective fails the test quickly instead of
hanging the suite.
"""

from __future__ import annotations

import pytest

import repro


def run_spmd(fn, ranks: int = 4, timeout: float = 30.0, **kwargs):
    """Run an SPMD body with a test-friendly watchdog."""
    return repro.spmd(fn, ranks=ranks, timeout=timeout, **kwargs)


@pytest.fixture
def spmd4():
    """Run the decorated body on 4 ranks, returning per-rank results."""
    def runner(fn, **kwargs):
        return run_spmd(fn, ranks=4, **kwargs)

    return runner


@pytest.fixture(params=[1, 2, 4, 7])
def nranks(request):
    """A spread of world sizes including 1 and a non-power-of-two."""
    return request.param
