"""Shape assertions for every modelled figure/table.

These tests pin the *reproduction claims*: who wins, by roughly what
factor, and where curves bend — with the paper's reported values as the
reference where the text states them.
"""

import pytest

from repro.sim import perfmodel as pm
from repro.sim.machine import VESTA


# -- Table IV / Fig. 4 ---------------------------------------------------

def test_table4_within_tolerance_of_paper():
    s = pm.table4_gups()
    p = pm.PAPER_TABLE4
    for model in ("upc", "upcxx"):
        for ours, paper in zip(s[model], p[model]):
            assert ours == pytest.approx(paper, rel=0.10), (model, paper)


def test_table4_upc_wins_but_gap_closes():
    """Paper: 'UPC ... 10% better at 128 cores ... the performance gap
    decreases' at scale."""
    s = pm.table4_gups(threads=(128, 8192))
    gap_small = s["upc"][0] / s["upcxx"][0]
    gap_large = s["upc"][1] / s["upcxx"][1]
    assert gap_small > 1.05           # UPC ahead at small scale
    assert gap_large < gap_small      # gap shrinks at large scale


def test_fig4_latency_rises_with_cores():
    s = pm.fig4_random_access()
    for model in ("upc", "upcxx"):
        series = s[model]
        assert series[0] < series[-1] / 3   # big rise from 1 core
        # monotone non-decreasing beyond the first point
        assert all(b >= a - 1e-9 for a, b in zip(series[1:], series[2:]))


def test_fig4_upcxx_above_upc():
    s = pm.fig4_random_access()
    assert all(x > u for u, x in zip(s["upc"], s["upcxx"]))


def test_fig4_endpoint_magnitude():
    """Fig. 4's axis tops out around 12-14 usec at 8192 cores."""
    s = pm.fig4_random_access()
    assert 10.0 < s["upcxx"][-1] < 14.0


# -- Fig. 5 ------------------------------------------------------------------

def test_fig5_endpoints_match_paper():
    s = pm.fig5_stencil()
    assert s["upcxx"][0] == pytest.approx(16.0, rel=0.15)
    assert s["upcxx"][-1] == pytest.approx(4000.0, rel=0.25)


def test_fig5_near_linear_weak_scaling():
    s = pm.fig5_stencil()
    for c0, c1, g0, g1 in zip(s["cores"], s["cores"][1:],
                              s["upcxx"], s["upcxx"][1:]):
        step_eff = (g1 / g0) / (c1 / c0)
        assert step_eff > 0.9   # every doubling keeps >=90% efficiency


def test_fig5_titanium_parity():
    """Paper: 'UPC++ performance is nearly equivalent to Titanium'."""
    s = pm.fig5_stencil()
    for t, u in zip(s["titanium"], s["upcxx"]):
        assert abs(t - u) / t < 0.05


# -- Fig. 6 -------------------------------------------------------------------

def test_fig6_endpoints_match_paper():
    s = pm.fig6_sample_sort()
    assert s["upcxx"][0] == pytest.approx(1.0e-3, rel=0.3)
    assert s["upcxx"][-1] == pytest.approx(3.39, rel=0.25)


def test_fig6_upc_and_upcxx_nearly_identical():
    """Paper: 'performance of UPC++ is nearly identical to the UPC
    version'."""
    s = pm.fig6_sample_sort()
    for u, x in zip(s["upc"], s["upcxx"]):
        assert abs(u - x) / u < 0.02


def test_fig6_scaling_efficiency_drops_at_scale():
    """Communication-bound: efficiency well below 1 at 12288 cores but
    'scales reasonably well' (monotone increasing throughput)."""
    s = pm.fig6_sample_sort()
    tput = s["upcxx"]
    assert all(b > a for a, b in zip(tput, tput[1:]))
    eff = (tput[-1] / tput[0]) / (s["cores"][-1] / s["cores"][0])
    assert 0.1 < eff < 0.6


# -- Fig. 7 ------------------------------------------------------------------

def test_fig7_nearly_perfect_strong_scaling():
    s = pm.fig7_embree()
    for c, sp in zip(s["cores"], s["upcxx"]):
        assert sp / c > 0.65          # never catastrophically off
    # and genuinely near-perfect through mid scale
    mid = s["cores"].index(384)
    assert s["upcxx"][mid] / 384 > 0.95


def test_fig7_speedup_monotone():
    s = pm.fig7_embree()
    assert all(b > a for a, b in zip(s["upcxx"], s["upcxx"][1:]))


# -- Fig. 8 -------------------------------------------------------------------

def test_fig8_upcxx_about_10pct_faster_at_32k():
    """The paper's headline: 'the UPC++ version of LULESH is about 10%
    faster than its MPI counterpart' at 32K cores."""
    s = pm.fig8_lulesh()
    ratio = s["upcxx"][-1] / s["mpi"][-1]
    assert ratio == pytest.approx(pm.PAPER_FIG8_UPCXX_SPEEDUP_AT_32K,
                                  abs=0.03)


def test_fig8_gap_grows_with_scale():
    s = pm.fig8_lulesh()
    ratios = [u / m for u, m in zip(s["upcxx"], s["mpi"])]
    assert ratios[0] < ratios[-1]
    assert ratios[0] < 1.08  # close at 64 cores


def test_fig8_weak_scaling_is_near_linear():
    s = pm.fig8_lulesh()
    for model in ("mpi", "upcxx"):
        fom = s[model]
        eff = (fom[-1] / fom[0]) / (s["cores"][-1] / s["cores"][0])
        assert eff > 0.85


def test_fig8_fom_within_paper_axis():
    """Fig. 8's y axis spans 1e4..1e8 FOM z/s."""
    s = pm.fig8_lulesh()
    assert 1e4 < s["mpi"][0] < 1e7
    assert s["upcxx"][-1] < 1e8 * 1.5


# -- sweep plumbing ----------------------------------------------------------

def test_all_series_covers_every_artifact():
    series = pm.all_series()
    assert set(series) == {"fig4", "table4", "fig5", "fig6", "fig7",
                           "fig8"}
    for v in series.values():
        assert "unit" in v


def test_custom_cores_list_respected():
    s = pm.fig5_stencil(cores_list=[24, 48])
    assert s["cores"] == [24, 48] and len(s["upcxx"]) == 2


# -- cross-machine structure ----------------------------------------------

def test_dragonfly_machine_has_flatter_latency_than_torus():
    """The structural contrast between the two testbeds: network latency
    keeps climbing with node count on the BG/Q torus but saturates on
    the Aries dragonfly (its diameter is bounded)."""
    from repro.sim.machine import EDISON

    # Both machines multi-group/multi-dim at these sizes; the dragonfly
    # has saturated (diameter 3) while the torus keeps stretching.
    small, large = 256, 16384  # nodes
    vesta_delta = (VESTA.one_way_latency(large * VESTA.cores_per_node)
                   - VESTA.one_way_latency(small * VESTA.cores_per_node))
    edison_delta = (EDISON.one_way_latency(large * EDISON.cores_per_node)
                    - EDISON.one_way_latency(small * EDISON.cores_per_node))
    assert vesta_delta > 2 * edison_delta
    # and the Aries machine is faster in absolute terms throughout
    assert (pm.gups_time_per_update(EDISON, "upcxx", 48)
            < pm.gups_time_per_update(VESTA, "upcxx", 48))


def test_stencil_comm_fraction_small():
    """Fig. 5's flat weak scaling exists because ghost traffic is a few
    percent of each iteration."""
    t_total = pm.stencil_iteration_time(pm.EDISON if hasattr(pm, "EDISON")
                                        else __import__(
        "repro.sim.machine", fromlist=["EDISON"]).EDISON,
        "upcxx", 3072)
    from repro.sim.machine import EDISON as _E
    flops = pm.STENCIL_BOX ** 3 * pm.STENCIL_FLOPS_PER_POINT
    t_comp = flops / (_E.stencil_gflops_per_core * 1e9)
    assert (t_total - t_comp) / t_total < 0.10


def test_sample_sort_becomes_comm_bound():
    """At scale, redistribution dominates the sort — the paper's
    'communication-bound' characterization."""
    from repro.sim.machine import EDISON

    t_small = pm.sample_sort_time(EDISON, "upcxx", 24)
    t_large = pm.sample_sort_time(EDISON, "upcxx", 12288)
    t_sort = (pm.SORT_KEYS_PER_RANK *
              __import__("math").log2(pm.SORT_KEYS_PER_RANK)
              / EDISON.sort_rate)
    assert t_small < 1.5 * t_sort        # small scale: sort dominates
    assert t_large > 2.5 * t_sort        # large scale: comm dominates


def test_lulesh_message_overhead_scales_with_neighbors():
    from repro.sim.machine import EDISON

    t_mpi = pm.lulesh_step_time(EDISON, "mpi", 4096)
    t_upcxx = pm.lulesh_step_time(EDISON, "upcxx", 4096)
    assert t_mpi > t_upcxx
