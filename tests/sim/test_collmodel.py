"""Closed-form LogGP costs of the tree collectives vs the centralized
baseline: logarithmic growth, monotonicity, and the crossover."""

import pytest

from repro.sim import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    centralized_exchange_time,
    reduce_time,
    tree_speedup,
)
from repro.sim.collmodel import ceil_log2
from repro.sim.loggp import LogGP


NET = LogGP(L=1e-6, o=0.5e-6, g=0.2e-6, G=1e-9)


def test_ceil_log2():
    assert [ceil_log2(p) for p in (1, 2, 3, 4, 5, 8, 9)] == \
        [0, 1, 2, 2, 3, 3, 4]


def test_barrier_grows_logarithmically():
    """Doubling P adds exactly one round — not double the time."""
    t4, t8, t16 = (barrier_time(NET, p) for p in (4, 8, 16))
    assert t8 - t4 == pytest.approx(t16 - t8)
    assert t8 < 2 * t4
    assert barrier_time(NET, 1) == 0.0


def test_centralized_grows_linearly():
    t4 = centralized_exchange_time(NET, 4, 64)
    t8 = centralized_exchange_time(NET, 8, 64)
    t16 = centralized_exchange_time(NET, 16, 64)
    assert (t16 - t8) == pytest.approx(2 * (t8 - t4), rel=1e-6)


def test_tree_beats_centralized_at_scale():
    """The speedup ratio grows with P (O(P) vs O(log P) critical path)
    and exceeds 1 well before paper scales."""
    s = [tree_speedup(NET, p, 64) for p in (4, 16, 64, 256, 1024)]
    assert s == sorted(s)
    assert s[-1] > s[0]
    assert tree_speedup(NET, 256, 64) > 1.0


def test_costs_monotone_in_payload_and_ranks():
    for fn in (bcast_time, reduce_time, allgather_time):
        assert fn(NET, 8, 4096) > fn(NET, 8, 64)
        assert fn(NET, 32, 64) > fn(NET, 8, 64)
    assert alltoall_time(NET, 8, 4096) > alltoall_time(NET, 8, 64)
    assert alltoall_time(NET, 32, 64) > alltoall_time(NET, 8, 64)


def test_allreduce_is_reduce_plus_bcast():
    assert allreduce_time(NET, 8, 256) == pytest.approx(
        reduce_time(NET, 8, 256) + bcast_time(NET, 8, 256))


def test_reduce_gamma_adds_combine_cost():
    assert reduce_time(NET, 8, 1024, gamma=1e-9) > \
        reduce_time(NET, 8, 1024, gamma=0.0)


def test_allgather_total_traffic_is_p_minus_one_blocks():
    """Bruck rounds ship min(2^k, P-2^k) blocks; summed over rounds
    that is exactly P-1 blocks regardless of P."""
    for p in (2, 3, 5, 8, 13, 16):
        blocks = sum(min(1 << k, p - (1 << k))
                     for k in range(ceil_log2(p)))
        assert blocks == p - 1, p


def test_l_eff_override_raises_latency_bound_costs():
    assert barrier_time(NET, 8, L_eff=10e-6) > barrier_time(NET, 8)
    assert bcast_time(NET, 8, 64, L_eff=10e-6) > bcast_time(NET, 8, 64)
