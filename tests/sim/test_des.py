"""Discrete-event engine semantics."""

import pytest

from repro.errors import PgasError
from repro.sim.des import (
    Barrier,
    Compute,
    DesEngine,
    Get,
    Put,
    Recv,
    Send,
    WaitAll,
)
from repro.sim.machine import EDISON


def engine(cores=48, model="upcxx"):
    return DesEngine(EDISON, model, cores)


def test_compute_only():
    e = engine()
    r = e.run([[Compute(1.0)], [Compute(2.0)]])
    assert r["finish_times"] == [1.0, 2.0]
    assert r["makespan"] == 2.0


def test_send_recv_adds_latency():
    e = engine()
    r = e.run([
        [Send(1, 0)],
        [Recv(0, 0)],
    ])
    # receiver finishes after inject + latency + recv overhead
    expect = e._inject_cost(0) + e.latency + e.ov.message
    assert r["finish_times"][1] == pytest.approx(expect)


def test_recv_waits_for_late_sender():
    e = engine()
    r = e.run([
        [Compute(1.0), Send(1, 0)],
        [Recv(0, 0)],
    ])
    assert r["finish_times"][1] > 1.0


def test_unmatched_recv_deadlocks():
    e = engine()
    with pytest.raises(PgasError, match="deadlock"):
        e.run([[Recv(1, 0)], [Compute(0.1)]])


def test_mismatched_barrier_deadlocks():
    e = engine()
    with pytest.raises(PgasError, match="deadlock"):
        e.run([[Barrier()], [Compute(0.1)]])


def test_barrier_synchronizes_clocks():
    e = engine()
    r = e.run([
        [Compute(5.0), Barrier(), Compute(0.0)],
        [Compute(1.0), Barrier(), Compute(0.0)],
    ])
    assert r["finish_times"][0] == r["finish_times"][1]
    assert r["makespan"] >= 5.0


def test_put_is_nonblocking_until_waitall():
    e = engine()
    nbytes = 1 << 20
    with_wait = e.run([[Put(1, nbytes), WaitAll()], []])["finish_times"][0]
    without = e.run([[Put(1, nbytes)], []])["finish_times"][0]
    assert with_wait > without  # fence pays delivery latency


def test_get_is_a_round_trip():
    e = engine()
    t = e.run([[Get(1, 8)], []])["finish_times"][0]
    assert t == pytest.approx(2 * e.ov.message + 2 * e.latency + 8 * e.G)


def test_tags_disambiguate():
    e = engine()
    r = e.run([
        [Send(1, 0, tag=1), Send(1, 0, tag=2)],
        [Recv(0, 0, tag=2), Recv(0, 0, tag=1)],
    ])
    assert r["makespan"] > 0


def test_mpi_model_pays_more_per_message():
    up = DesEngine(EDISON, "upcxx", 48)
    mp = DesEngine(EDISON, "mpi", 48)
    prog = [[Send(1, 1024, tag=0)] * 10, [Recv(0, 1024, tag=0)] * 10]
    t_up = up.run([p[:] for p in prog])["makespan"]
    t_mp = mp.run([p[:] for p in prog])["makespan"]
    assert t_mp > t_up


def test_unknown_op_rejected():
    e = engine()
    with pytest.raises(PgasError, match="unknown op"):
        e.run([[object()]])
