"""Cross-validation: the closed-form figure models against the DES
executing the actual communication patterns, at small scale.

The closed forms make aggregation assumptions (phases overlap, ranks
are symmetric); the DES executes the per-rank op streams.  We require
agreement within a modest factor — the point is to catch structural
errors (wrong message counts, missing round trips), not to reproduce
each other to the microsecond.
"""

import pytest

from repro.sim import perfmodel as pm
from repro.sim.des import DesEngine
from repro.sim.machine import EDISON, VESTA
from repro.sim.patterns import (
    alltoall_pattern,
    dag_pattern,
    gups_pattern,
    halo3d_pattern,
    reduction_pattern,
)


def test_gups_des_matches_closed_form():
    cores, updates = 32, 60
    eng = DesEngine(VESTA, "upcxx", cores)
    progs = gups_pattern(cores, updates, t_local=0.1e-6)
    makespan = eng.run(progs)["makespan"]
    t_per_update_des = makespan / updates
    t_model = pm.gups_time_per_update(VESTA, "upcxx", cores)
    assert t_per_update_des == pytest.approx(t_model, rel=0.5)


def test_gups_model_remote_fraction_effect():
    """1 rank (all local) is much cheaper than any multi-rank run, in
    both the DES and the closed form."""
    one = pm.gups_time_per_update(VESTA, "upcxx", 1)
    many = pm.gups_time_per_update(VESTA, "upcxx", 16)
    assert many > 3 * one


def test_halo_des_matches_stencil_phase_model():
    cores, iters, box = 27, 2, 32
    face_bytes = box * box * 8
    t_comp = box ** 3 * 8 / (EDISON.stencil_gflops_per_core * 1e9)
    eng = DesEngine(EDISON, "upcxx", cores)
    progs = halo3d_pattern(cores, iters, face_bytes, t_comp,
                           one_sided=True)
    makespan = eng.run(progs)["makespan"]
    model = iters * pm.stencil_iteration_time(EDISON, "upcxx", cores, box)
    assert makespan == pytest.approx(model, rel=0.5)


def test_halo_two_sided_slower_than_one_sided():
    """The qualitative LULESH claim, on the DES."""
    cores, iters = 27, 3
    kw = dict(face_bytes=64 * 64 * 8, t_compute=1e-4)
    one = DesEngine(EDISON, "upcxx", cores).run(
        halo3d_pattern(cores, iters, one_sided=True, **kw))["makespan"]
    two = DesEngine(EDISON, "mpi", cores).run(
        halo3d_pattern(cores, iters, one_sided=False, **kw))["makespan"]
    assert two > one


def test_alltoall_des_vs_sort_redistribution():
    cores = 16
    bytes_pp = 1 << 14
    eng = DesEngine(EDISON, "upcxx", cores)
    progs = alltoall_pattern(cores, bytes_pp, t_compute=0.0)
    makespan = eng.run(progs)["makespan"]
    # lower bound: every rank injects (P-1) * bytes at its NIC share
    inject = (cores - 1) * (eng.ov.message + bytes_pp * eng.G)
    assert makespan >= inject * 0.9
    assert makespan < inject * 20


def test_reduction_tree_scales_logarithmically():
    nbytes = 1 << 16

    def makespan(p):
        eng = DesEngine(EDISON, "upcxx", p)
        return eng.run(reduction_pattern(p, nbytes, [1e-3] * p))["makespan"]

    t8, t64 = makespan(8), makespan(64)
    # 8x the ranks should cost ~2x (3 vs 6 rounds), nowhere near 8x
    assert t64 < t8 * 4


def test_dag_pattern_runs_and_respects_depth():
    eng = DesEngine(EDISON, "upcxx", 7)
    progs = dag_pattern()
    makespan = eng.run(progs)["makespan"]
    # the critical path is 3 task levels + 6 message legs
    min_time = 3 * 1e-4
    assert makespan > min_time
