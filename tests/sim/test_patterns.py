"""Structural tests of the DES pattern generators: op counts and
neighbour sets must match each benchmark's communication skeleton."""

import pytest

from repro.sim.des import Barrier, Compute, Get, Put, Recv, Send, WaitAll
from repro.sim.patterns import (
    alltoall_pattern,
    dag_pattern,
    gups_pattern,
    halo3d_pattern,
    reduction_pattern,
)


def _count(program, op_type):
    return sum(1 for op in program if isinstance(op, op_type))


def test_gups_pattern_update_counts():
    progs = gups_pattern(8, updates_per_rank=50, t_local=1e-7)
    assert len(progs) == 8
    for p in progs:
        gets = _count(p, Get)
        computes = _count(p, Compute)
        assert computes == 50            # one xor per update
        assert gets <= 50
        assert _count(p, Barrier) == 1
    # roughly (1 - 1/P) of updates are remote
    total_gets = sum(_count(p, Get) for p in progs)
    assert 0.6 * 400 < total_gets < 400


def test_gups_pattern_deterministic():
    a = gups_pattern(4, 20, 1e-7, seed=9)
    b = gups_pattern(4, 20, 1e-7, seed=9)
    assert a == b
    c = gups_pattern(4, 20, 1e-7, seed=10)
    assert a != c


@pytest.mark.parametrize("nranks,expect_max_nbrs", [(8, 6), (27, 6), (4, 3)])
def test_halo_pattern_neighbor_counts(nranks, expect_max_nbrs):
    progs = halo3d_pattern(nranks, iters=1, face_bytes=100,
                           t_compute=1e-6, one_sided=True)
    for p in progs:
        puts = _count(p, Put)
        assert 1 <= puts <= expect_max_nbrs
        assert _count(p, WaitAll) == 1
        assert _count(p, Barrier) == 1


def test_halo_pattern_interior_rank_has_six_faces():
    progs = halo3d_pattern(27, iters=1, face_bytes=8, t_compute=0.0)
    center = 13  # (1,1,1) of the 3x3x3 grid
    assert _count(progs[center], Put) == 6


def test_halo_two_sided_sends_match_recvs():
    progs = halo3d_pattern(8, iters=2, face_bytes=8, t_compute=0.0,
                           one_sided=False)
    sends = sum(_count(p, Send) for p in progs)
    recvs = sum(_count(p, Recv) for p in progs)
    assert sends == recvs > 0


def test_alltoall_pattern_counts():
    n = 6
    progs = alltoall_pattern(n, bytes_per_pair=64, t_compute=1e-3)
    for r, p in enumerate(progs):
        puts = [op for op in p if isinstance(op, Put)]
        assert len(puts) == n - 1
        assert {op.dst for op in puts} == set(range(n)) - {r}


def test_reduction_pattern_is_a_tree():
    n = 16
    progs = reduction_pattern(n, nbytes=128, t_compute_per_rank=[0.0] * n)
    sends = sum(_count(p, Send) for p in progs)
    assert sends == n - 1            # a tree has n-1 edges
    # rank 0 only receives
    assert _count(progs[0], Send) == 0
    assert _count(progs[0], Recv) > 0


def test_reduction_pattern_non_power_of_two():
    n = 11
    progs = reduction_pattern(n, nbytes=8, t_compute_per_rank=[0.0] * n)
    sends = sum(_count(p, Send) for p in progs)
    assert sends == n - 1


def test_dag_pattern_structure():
    progs = dag_pattern()
    assert len(progs) == 7
    # orchestrator issues 6 task sends and collects 6 completions
    assert _count(progs[0], Send) == 6
    assert _count(progs[0], Recv) == 6
    for r in range(1, 7):
        assert _count(progs[r], Recv) == 1
        assert _count(progs[r], Send) == 1
