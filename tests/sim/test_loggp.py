"""LogGP cost-function algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.loggp import LogGP

P = LogGP(L=1e-6, o=0.5e-6, g=0.2e-6, G=1e-9)


def test_bandwidth_inverse_of_G():
    assert P.bandwidth == pytest.approx(1e9)


def test_small_message_and_round_trip():
    assert P.small_message() == pytest.approx(1.5e-6)
    assert P.round_trip() == pytest.approx(3.0e-6)
    assert P.round_trip(L_eff=2e-6) == pytest.approx(5.0e-6)


def test_bulk_scales_with_bytes():
    t1 = P.bulk(1)
    t2 = P.bulk(1_000_001)
    assert t2 - t1 == pytest.approx(1e-3, rel=1e-6)


def test_pipelined_zero_messages():
    assert P.pipelined(0, 100) == 0.0


def test_pipelined_gap_limited():
    """Tiny messages: steady-state rate is the gap g, not o+L."""
    n = 1000
    t = P.pipelined(n, 0)
    per_msg = (t - P.small_message()) / (n - 1)
    assert per_msg == pytest.approx(max(P.g, P.o), rel=1e-9)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 100), size=st.integers(0, 10_000))
def test_pipelined_never_beats_single_message_rate(n, size):
    """Property: n pipelined messages take at least one message's time
    and at most n sequential bulk sends."""
    t = P.pipelined(n, size)
    assert t >= P.bulk(size) - 1e-18
    assert t <= n * P.bulk(size) + 1e-18


@settings(max_examples=50, deadline=None)
@given(size=st.integers(1, 1 << 20))
def test_bulk_monotone_in_size(size):
    assert P.bulk(size + 1) >= P.bulk(size)
