"""Calibration: live overhead measurement and model refit."""

import pytest

from repro.sim.calibrate import (
    Measurements,
    fitted_overheads,
    measure_software_overheads,
)
from repro.sim.machine import EDISON


@pytest.fixture(scope="module")
def meas():
    # Few iterations: we need valid positive numbers, not tight timing.
    return measure_software_overheads(iters=200, bulk_bytes=1 << 16)


def test_measurements_are_positive(meas):
    assert meas.local_access > 0
    assert meas.upcxx_remote > 0
    assert meas.upc_remote > 0
    assert meas.async_rtt > 0
    assert meas.copy_bw > 0


def test_local_cheaper_than_remote(meas):
    """The Fig. 3 branch exists for a reason."""
    assert meas.local_access < meas.upcxx_remote


def test_async_rtt_dwarfs_element_access(meas):
    """A full task round trip costs far more than a fine-grained get —
    the reason the paper ships *functions* rather than chatty loops."""
    assert meas.async_rtt > 3 * meas.upcxx_remote


def test_ratios(meas):
    assert meas.upc_over_upcxx == pytest.approx(
        meas.upc_remote / meas.upcxx_remote
    )
    assert meas.remote_over_local > 1.0


def test_fitted_overheads_preserve_measured_ratio(meas):
    fit = fitted_overheads(EDISON, meas)
    anchor = EDISON.overheads("upcxx").fine_grained
    assert fit["upcxx"].fine_grained == anchor
    assert fit["upc"].fine_grained / anchor == pytest.approx(
        meas.upc_over_upcxx, rel=1e-9
    )
    assert fit["python_to_model_scale"] > 0


def test_fitted_overheads_from_synthetic_measurements():
    m = Measurements(local_access=1e-7, upcxx_remote=1e-6,
                     upc_remote=0.8e-6, async_rtt=1e-5, copy_bw=1e9)
    fit = fitted_overheads(EDISON, m)
    assert fit["upc"].fine_grained < fit["upcxx"].fine_grained
