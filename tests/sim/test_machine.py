"""Machine preset sanity."""

import pytest

from repro.sim.machine import EDISON, MACHINES, VESTA


def test_presets_registered():
    assert MACHINES["edison"] is EDISON
    assert MACHINES["vesta"] is VESTA


def test_nodes_for():
    assert EDISON.nodes_for(1) == 1
    assert EDISON.nodes_for(24) == 1
    assert EDISON.nodes_for(25) == 2
    assert VESTA.nodes_for(8192) == 512


def test_latency_grows_across_nodes():
    for m in (EDISON, VESTA):
        intra = m.one_way_latency(m.cores_per_node)
        inter = m.one_way_latency(m.cores_per_node * 64)
        assert intra < inter


def test_vesta_latency_keeps_growing_with_torus():
    l1 = VESTA.one_way_latency(VESTA.cores_per_node * 8)
    l2 = VESTA.one_way_latency(VESTA.cores_per_node * 512)
    assert l2 > l1


def test_injection_share_splits_nic():
    full = EDISON.injection_bw_per_core(24)
    assert full == pytest.approx(EDISON.loggp.bandwidth / 24)


def test_effective_bw_memory_bound_inside_node():
    assert EDISON.effective_bw_per_core(4) == EDISON.mem_bw_per_core
    assert EDISON.effective_bw_per_core(48) < EDISON.mem_bw_per_core


def test_alltoall_taper_reduces_bandwidth():
    one_node = EDISON.alltoall_bw_per_core(24)
    many = EDISON.alltoall_bw_per_core(12288)
    assert many < one_node / 10


def test_model_overhead_ordering():
    """The relationships the paper reports: compiled UPC access is the
    cheapest; MPI messages cost more than one-sided ones."""
    for m in (EDISON, VESTA):
        assert m.overheads("upc").fine_grained \
            < m.overheads("upcxx").fine_grained
        assert m.overheads("mpi").message > m.overheads("upcxx").message
        # Titanium ~ UPC++ (paper: nearly equivalent)
        t, u = m.overheads("titanium"), m.overheads("upcxx")
        assert abs(t.message - u.message) / u.message < 0.1


def test_unknown_model_rejected():
    with pytest.raises(KeyError, match="chapel"):
        EDISON.overheads("chapel")
