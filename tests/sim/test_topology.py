"""Topology hop models validated against explicit networkx graphs."""

import networkx as nx
import pytest

from repro.sim.topology import Dragonfly, Torus5D, balanced_factors


def test_balanced_factors_product_and_order():
    for n in (1, 2, 8, 24, 512, 1000, 12288):
        dims = balanced_factors(n, 5)
        prod = 1
        for d in dims:
            prod *= d
        assert prod == n
        assert list(dims) == sorted(dims, reverse=True)


def test_balanced_factors_balance():
    assert balanced_factors(32, 5) == (2, 2, 2, 2, 2)
    assert balanced_factors(64, 3) == (4, 4, 4)


def test_balanced_factors_validation():
    with pytest.raises(ValueError):
        balanced_factors(0, 5)


@pytest.mark.parametrize("nodes", [2, 4, 8, 16, 32, 48])
def test_torus_avg_hops_matches_graph(nodes):
    """Closed-form mean hop count == networkx average shortest path."""
    t = Torus5D(nodes)
    g = t.as_networkx()
    expect = nx.average_shortest_path_length(g)
    assert t.avg_hops() == pytest.approx(expect, rel=1e-9)


@pytest.mark.parametrize("nodes", [4, 16, 64])
def test_torus_diameter_matches_graph(nodes):
    t = Torus5D(nodes)
    g = t.as_networkx()
    assert t.diameter() == nx.diameter(g)


def test_torus_single_node():
    assert Torus5D(1).avg_hops() == 0.0


def test_torus_hops_grow_with_size():
    hops = [Torus5D(n).avg_hops() for n in (8, 64, 512, 4096)]
    assert hops == sorted(hops)
    assert hops[-1] > hops[0]


def test_torus_bisection_links():
    t = Torus5D(16)  # dims (2,2,2,2,1)
    assert t.bisection_links() == 2 * 8


@pytest.mark.parametrize("nodes", [4, 64, 256])
def test_dragonfly_avg_hops_close_to_graph(nodes):
    """The 0/1/3-hop model vs the explicit gateway-routed graph.

    The explicit graph routes some inter-group pairs in 2 hops (via the
    gateway router) where the model charges 3, so the model is an upper
    bound within one hop."""
    d = Dragonfly(nodes)
    g = d.as_networkx()
    actual = nx.average_shortest_path_length(g)
    assert actual <= d.avg_hops() + 1e-9
    assert d.avg_hops() - actual < 1.0


def test_dragonfly_flat_latency_growth():
    """Dragonfly diameter saturates: hop growth is bounded by 3."""
    assert Dragonfly(2).diameter() == 1
    for nodes in (256, 4096, 100_000):
        assert Dragonfly(nodes).diameter() == 3
        assert Dragonfly(nodes).avg_hops() < 3.0


def test_dragonfly_taper_monotone():
    tapers = [Dragonfly(n).global_taper() for n in (32, 256, 2048, 16384)]
    assert tapers == sorted(tapers)
    assert Dragonfly(4).global_taper() == 1.0  # single group


def test_torus_vs_dragonfly_scaling_contrast():
    """The structural point behind Fig. 4 vs Fig. 5: torus latency keeps
    climbing with node count, dragonfly saturates."""
    big, small = 16384, 256  # both multi-group dragonfly configurations
    torus_growth = Torus5D(big).avg_hops() / Torus5D(small).avg_hops()
    df_growth = Dragonfly(big).avg_hops() / Dragonfly(small).avg_hops()
    assert torus_growth > 1.5
    assert df_growth < 1.5
