"""Cross-module integration scenarios exercising the whole stack."""

import numpy as np
import pytest

import repro
from repro.arrays import DistNdArray, Point, RectDomain, ndarray
from tests.conftest import run_spmd


def test_distributed_hash_table():
    """The paper's motivating use case for remote allocation: building
    an irregular distributed structure (a chained hash table whose
    buckets live on their hash's owner, inserted from any rank)."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        nbuckets = 16
        heads = repro.SharedArray(np.int64, size=nbuckets)  # offsets
        heads.fill_local(-1)
        lock = repro.GlobalLock()
        repro.barrier()

        def insert(key: int, value: int):
            b = key % nbuckets
            owner = heads.where(b)
            # node = [key, value, next_offset] on the bucket's owner —
            # remote allocation, the feature UPC/MPI lack (§III-C).
            node = repro.allocate(owner, 3, np.int64)
            with lock:
                node.put(np.array([key, value, int(heads[b])]))
                heads[b] = node.offset

        def find(key: int):
            b = key % nbuckets
            owner = heads.where(b)
            off = int(heads[b])
            while off != -1:
                node = repro.GlobalPtr(owner, off, np.int64)
                k, v, nxt = node.get(3)
                if k == key:
                    return int(v)
                off = int(nxt)
            return None

        for i in range(8):
            insert(me * 100 + i, me * 1000 + i)
        repro.barrier()
        # every rank can find every key, wherever it was inserted from
        for r in range(n):
            for i in range(8):
                assert find(r * 100 + i) == r * 1000 + i
        assert find(999999) is None
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4, timeout=60))


def test_master_worker_with_asyncs_and_events():
    """Dynamic tasking over SPMD: a master farms squares out to workers
    with events gating a second wave (X10/Phalanx style)."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        if me == 0:
            wave1 = repro.Event()
            results = []
            with repro.finish():
                for i in range(2 * n):
                    f = repro.async_(1 + i % (n - 1), signal=wave1)(
                        lambda x: x * x, i
                    )
                    f.add_callback(lambda fut: results.append(fut.get()))
            assert sorted(results) == [i * i for i in range(2 * n)]
            assert wave1.test()
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_halo_pipeline_mixing_arrays_and_asyncs():
    """Ghost exchange via the array library, then an async reduction
    notifying rank 0 — the paper's vision of composed idioms."""
    def body():
        me = repro.myrank()
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1)
        D.interior_view()[:] = me + 1.0
        D.ghost_exchange(faces_only=True)
        local_sum = float(D.interior_view().sum())
        total = repro.collectives.allreduce(local_sum)
        n = repro.ranks()
        per = 64 / n
        assert total == pytest.approx(sum((r + 1) * per for r in range(n)))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_spmd_plus_mpi_interop():
    """Paper objective #3: UPC++ and MPI in the same program, one-to-one
    rank mapping — PGAS puts next to two-sided messaging."""
    from repro.compat import mpi

    def body():
        me, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=n)
        repro.barrier()
        sa[me] = me * 2              # PGAS one-sided write
        repro.barrier()
        nxt, prv = (me + 1) % n, (me - 1) % n
        got = mpi.sendrecv(int(sa[me]), dest=nxt, source=prv)  # MPI
        assert got == prv * 2
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=4))


def test_matrix_block_rotate_with_array_copies():
    """One-sided ndarray copies moving blocks around a ring."""
    def body():
        me, n = repro.myrank(), repro.ranks()
        dom = RectDomain((0, 0), (4, 4))
        mine = ndarray(np.float64, dom)
        mine.set(float(me))
        d = repro.Directory()
        d.publish_and_sync(mine)
        nxt = d.lookup((me + 1) % n)
        staging = ndarray(np.float64, dom)
        staging.copy(nxt)            # pull neighbour's block
        repro.barrier()
        mine.copy(staging)           # install it as ours
        repro.barrier()
        assert np.all(mine.local_view() == float((me + 1) % n))
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=3))


def test_full_stack_stress_many_small_worlds():
    """Launch/teardown robustness: many short-lived worlds in a row."""
    for k in range(6):
        res = run_spmd(
            lambda: repro.collectives.allreduce(repro.myrank()),
            ranks=3,
        )
        assert res == [3, 3, 3]


def test_soak_many_rounds_of_everything():
    """A longer soak: repeated epochs of collectives, shared access,
    asyncs, locks and ghost exchange in one world."""
    from repro.arrays import DistNdArray, RectDomain

    def body():
        me, n = repro.myrank(), repro.ranks()
        sa = repro.SharedArray(np.int64, size=64, block=8)
        D = DistNdArray(np.float64, RectDomain((0, 0), (8, 8)), ghost=1)
        lk = repro.GlobalLock()
        total_checks = 0
        for epoch in range(12):
            # PGAS writes to my elements
            for i in sa.local_indices():
                sa[int(i)] = epoch * 1000 + int(i)
            repro.barrier()
            # reads of everyone's
            probe = (epoch * 7) % 64
            assert sa[probe] == epoch * 1000 + probe
            # ghost exchange epoch
            D.interior_view()[:] = float(me + epoch)
            D.ghost_exchange(faces_only=True)
            # an async wave
            with repro.finish():
                repro.async_((me + epoch) % n)(int, epoch)
            # serialized critical section
            with lk:
                total_checks += 1
            repro.barrier()
        agg = repro.collectives.allreduce(total_checks)
        assert agg == 12 * n
        return True

    assert all(run_spmd(body, ranks=4, timeout=90))
