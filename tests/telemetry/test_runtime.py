"""Telemetry wiring through the world, runtime constructs, and the
failure-time flight dump."""

import numpy as np
import pytest

import repro
from repro.core.world import current
from repro.errors import CommTimeout
from repro.gasnet import ChaosConduit, ReliableConduit
from repro.gasnet.am import am_handler
from repro.telemetry import TelemetryConduit, TelemetryConfig, resolve_config
from tests.conftest import run_spmd


# ------------------------------------------------------------ config knob

def test_resolve_config_forms():
    assert resolve_config(None).mode == "off"
    assert resolve_config(False).mode == "off"
    assert resolve_config(True).mode == "full"
    assert resolve_config("flight").mode == "flight"
    assert resolve_config({"mode": "full", "flight_capacity": 16}) \
        .flight_capacity == 16
    cfg = TelemetryConfig(mode="flight")
    assert resolve_config(cfg) is cfg
    with pytest.raises(ValueError):
        resolve_config("loud")
    with pytest.raises(ValueError):
        resolve_config(3.14)


def test_off_mode_installs_no_wrapper():
    """The zero-overhead guarantee is structural: with telemetry off the
    conduit stack is byte-identical to a pre-telemetry world."""
    def body():
        world = repro.current_world()
        assert not isinstance(world.conduit, TelemetryConduit)
        assert not world.telemetry.enabled
        ctx = current()
        assert not ctx.telemetry.active and not ctx.telemetry.full
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_full_mode_wraps_outside_reliability():
    """TelemetryConduit must be outermost so recorded latencies include
    the reliability layer's retries and backoff."""
    def body():
        world = repro.current_world()
        assert isinstance(world.conduit, TelemetryConduit)
        assert isinstance(world.conduit._inner, ReliableConduit)
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2, telemetry="full",
                        reliability={"seed": 0}))


# ------------------------------------------------- conduit-op histograms

def test_rma_histograms_populated_and_agree_with_stats():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=4, block=1)
        repro.barrier()
        if me == 0:
            sa[1] = 7            # remote put
            _ = sa[1]            # remote get
            sa.atomic(1, "add", 1)
        repro.barrier()
        out = None
        if me == 0:
            tel = current().telemetry
            hists = tel.histograms()
            stats = current().stats.snapshot()
            out = {
                "put": (hists["rma_put"].count, stats["puts"]),
                "get": (hists["rma_get"].count, stats["gets"]),
                "atomic": (hists["rma_atomic"].count, stats["atomics"]),
            }
            assert hists["rma_put"].max_value > 0  # timed in ns
        repro.barrier()
        return out

    out = run_spmd(body, ranks=2, telemetry="full")[0]
    for kind, (hist_count, stat_count) in out.items():
        assert hist_count == stat_count, kind
        assert hist_count >= 1, kind


def test_indexed_ops_and_am_rtt_histograms():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.uint64, size=8, block=4)
        repro.barrier()
        if me == 0:
            idx = np.array([4, 5, 6], dtype=np.int64)  # rank 1's block
            sa.atomic_batch(idx, "xor", np.ones(3, dtype=np.uint64))
            fut = current().send_am(1, "noop_rtt", args=(),
                                    expect_reply=True)
            fut.get()
        repro.barrier()
        out = None
        if me == 0:
            hists = current().telemetry.histograms()
            out = ("rma_atomic_batch" in hists, "am_rtt" in hists)
        repro.barrier()
        return out

    @am_handler("noop_rtt")
    def _noop(ctx, am):
        ctx.reply(am, args=("ok",))

    has_batch, has_rtt = run_spmd(body, ranks=2, telemetry="full")[0]
    assert has_batch and has_rtt


# -------------------------------------------- runtime construct latencies

def test_lock_copy_finish_and_task_instrumentation():
    def body():
        me = repro.myrank()
        lk = repro.GlobalLock(owner=0)
        repro.barrier()
        with lk:
            pass
        if me == 0:
            src = repro.allocate(0, 16, np.float64)
            dst = repro.allocate(1, 16, np.float64)
            src.put(np.arange(16.0))
            repro.async_copy(src, dst, 16).wait()
        with repro.finish():
            repro.async_((me + 1) % repro.ranks())(abs, -1)
        repro.barrier()
        tel = current().telemetry
        hists = tel.histograms()
        names = set(hists)
        span_names = {s.name for s in tel.spans()}
        flight_kinds = {ev.kind for ev in tel.flight.snapshot()}
        repro.barrier()
        return names, span_names, flight_kinds

    results = run_spmd(body, ranks=2, telemetry="full")
    names0, spans0, flight0 = results[0]
    assert "lock_wait" in names0
    assert "copy_wait" in names0
    assert "finish_block" in names0
    # The async target ran a task: queue-wait + exec histograms and a
    # task span on whichever rank executed it.
    all_names = names0 | results[1][0]
    assert "task_queue_wait" in all_names
    assert "task_exec" in all_names
    all_spans = spans0 | results[1][1]
    assert "finish" in all_spans
    assert any(s.startswith("task:") for s in all_spans)
    # Task lifecycle lands in the flight ring too.
    all_flight = flight0 | results[1][2]
    assert {"task_spawn", "task_run", "task_done"} <= all_flight


def test_workqueue_telemetry():
    def body():
        me = repro.myrank()
        wq = repro.DistWorkQueue()
        if me == 0:
            wq.add_local(range(40))  # all work on rank 0: forces steals
        repro.barrier()
        done = 0
        while wq.get(max_steal_rounds=200) is not None:
            wq.task_done()
            done += 1
        repro.barrier()
        hists = set(current().telemetry.histograms())
        stole = wq.steals_successful
        repro.barrier()
        return done, hists, stole

    results = run_spmd(body, ranks=2, telemetry="full")
    assert sum(r[0] for r in results) == 40
    all_hists = results[0][1] | results[1][1]
    assert "wq_depth" in all_hists
    # The idle rank measured its steal round trips.
    if any(r[2] for r in results):
        assert "wq_steal_rtt" in all_hists


# ------------------------------------------------------ flight recorder

def test_dump_on_demand():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 0:
            sa[1] = 5
        repro.barrier()
        text = repro.current_world().dump_flight_recorder(header="manual")
        assert "FLIGHT RECORDER DUMP" in text
        assert "trigger: manual" in text
        if me == 0:
            assert "rma_put 0->1" in text
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2, telemetry="flight"))


def test_dump_inactive_when_off():
    def body():
        text = repro.current_world().dump_flight_recorder()
        assert "inactive" in text
        repro.barrier()
        return True

    assert all(run_spmd(body, ranks=2))


def test_comm_timeout_dumps_flight_recorder(capsys):
    """A forced blackout: the CommTimeout that propagates out of spmd
    must carry a merged flight dump naming the stuck op on stderr."""
    @am_handler("blackhole_probe")
    def _probe(ctx, am):  # pragma: no cover - never delivered
        ctx.reply(am, args=("ok",))

    def body():
        if repro.myrank() == 0:
            fut = current().send_am(1, "blackhole_probe", args=(),
                                    expect_reply=True)
            fut.get(timeout=0.5)
        return True

    conduit = ChaosConduit(seed=0, am_drop_rate=1.0)
    with pytest.raises(CommTimeout):
        repro.spmd(body, ranks=2, conduit=conduit, telemetry="flight",
                   timeout=15.0)
    err = capsys.readouterr().err
    assert "FLIGHT RECORDER DUMP" in err
    assert "trigger: CommTimeout" in err
    # The stuck op: the timed-out wait and the AM that never arrived.
    assert "op_timeout" in err
    assert "blackhole_probe" in err
    assert "rank 0:" in err and "rank 1:" in err


def test_no_dump_when_telemetry_off(capsys):
    @am_handler("blackhole_probe2")
    def _probe(ctx, am):  # pragma: no cover - never delivered
        ctx.reply(am, args=("ok",))

    def body():
        if repro.myrank() == 0:
            fut = current().send_am(1, "blackhole_probe2", args=(),
                                    expect_reply=True)
            fut.get(timeout=0.5)
        return True

    conduit = ChaosConduit(seed=0, am_drop_rate=1.0)
    with pytest.raises(CommTimeout):
        repro.spmd(body, ranks=2, conduit=conduit, timeout=15.0)
    assert "FLIGHT RECORDER DUMP" not in capsys.readouterr().err


def test_flight_ring_stays_bounded_in_world():
    def body():
        me = repro.myrank()
        sa = repro.SharedArray(np.int64, size=2, block=1)
        repro.barrier()
        if me == 0:
            for i in range(50):
                sa[1] = i
        repro.barrier()
        tel = current().telemetry
        assert len(tel.flight) <= 8
        repro.barrier()
        return True

    assert all(run_spmd(
        body, ranks=2,
        telemetry={"mode": "flight", "flight_capacity": 8},
    ))


def test_collective_latency_histograms_recorded():
    """Full mode times every collective kind into a ``coll_<kind>``
    histogram (completion-callback on the collective's future) and the
    flight recorder logs initiations."""
    def body():
        me = repro.myrank()
        repro.barrier()
        repro.collectives.allreduce(me)
        repro.collectives.allgather(me)
        repro.collectives.bcast(1 if me == 0 else None, root=0)
        repro.barrier()
        out = None
        if me == 0:
            hists = current().telemetry.histograms()
            stats = current().stats.snapshot()
            out = {
                "kinds": sorted(k for k in hists if k.startswith("coll_")),
                "barriers": hists["coll_barrier"].count,
                "coll_msgs": stats["coll_msgs"],
                "timed": hists["coll_allreduce"].max_value > 0,
                "flight": sum(
                    1 for e in current().telemetry.flight.snapshot()
                    if e.kind == "coll"),
            }
        repro.barrier()
        return out

    out = run_spmd(body, ranks=2, telemetry="full")[0]
    assert {"coll_allgather", "coll_allreduce", "coll_barrier",
            "coll_bcast"} <= set(out["kinds"])
    assert out["barriers"] >= 2
    assert out["timed"]
    assert out["coll_msgs"] > 0
    assert out["flight"] >= 4
