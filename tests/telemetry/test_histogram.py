"""LogHistogram unit tests (no SPMD world needed)."""

import threading

from repro.telemetry import LogHistogram
from repro.telemetry.histogram import N_BUCKETS


def test_bucket_placement():
    h = LogHistogram("t")
    h.record(0)       # bucket 0: exact zero
    h.record(1)       # bucket 1: [1, 1]
    h.record(2)       # bucket 2: [2, 3]
    h.record(3)       # bucket 2
    h.record(1024)    # bucket 11: [1024, 2047]
    assert h.buckets[0] == 1
    assert h.buckets[1] == 1
    assert h.buckets[2] == 2
    assert h.buckets[11] == 1
    assert h.count == 5
    assert h.total == 0 + 1 + 2 + 3 + 1024


def test_huge_values_clamp_to_last_bucket():
    h = LogHistogram("t")
    h.record(1 << 200)
    assert h.buckets[N_BUCKETS - 1] == 1
    assert h.max_value == 1 << 200


def test_negative_values_clamp_to_zero():
    h = LogHistogram("t")
    h.record(-5)
    assert h.buckets[0] == 1
    assert h.min_value == 0


def test_exact_stats():
    h = LogHistogram("t")
    for v in (10, 20, 30):
        h.record(v)
    assert h.mean == 20.0
    assert h.min_value == 10
    assert h.max_value == 30


def test_empty_histogram():
    h = LogHistogram("t")
    assert h.count == 0
    assert h.mean == 0.0
    assert h.percentile(50) == 0.0
    snap = h.snapshot()
    assert snap["count"] == 0
    assert snap["buckets"] == {}


def test_percentiles_monotone_and_bounded():
    h = LogHistogram("t")
    for v in range(1, 1001):
        h.record(v)
    p50, p90, p99 = h.p50, h.p90, h.p99
    assert 1 <= p50 <= p90 <= p99 <= 1000
    # Interpolation keeps the median in the right order of magnitude
    # (bucketed accuracy is ~half a bucket).
    assert 250 <= p50 <= 1000


def test_percentile_exact_for_single_value():
    h = LogHistogram("t")
    for _ in range(10):
        h.record(100)
    # min == max == 100 clamps interpolation to the exact value.
    assert h.p50 == 100
    assert h.p99 == 100


def test_record_seconds_stores_nanoseconds():
    h = LogHistogram("lat")
    h.record_seconds(1e-6)  # 1 us = 1000 ns
    assert h.count == 1
    assert h.total == 1000
    assert h.unit == "ns"


def test_merge_folds_counts_and_extrema():
    a, b = LogHistogram("t"), LogHistogram("t")
    a.record(1)
    a.record(100)
    b.record(50)
    b.record(10_000)
    a.merge(b)
    assert a.count == 4
    assert a.total == 1 + 100 + 50 + 10_000
    assert a.min_value == 1
    assert a.max_value == 10_000


def test_snapshot_shape():
    h = LogHistogram("t", unit="items")
    h.record(5)
    snap = h.snapshot()
    assert snap["unit"] == "items"
    assert snap["count"] == 1
    assert snap["sum"] == 5
    assert snap["min"] == snap["max"] == 5
    assert snap["buckets"] == {"3": 1}  # 5.bit_length() == 3
    assert snap["p50"] == 5.0
    # JSON-ready: keys are strings, values plain numbers.
    import json

    json.dumps(snap)


def test_concurrent_records_lose_nothing():
    h = LogHistogram("t")
    n, per = 8, 1000

    def worker():
        for _ in range(per):
            h.record(7)

    threads = [threading.Thread(target=worker) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == n * per
    assert h.total == 7 * n * per
