"""Flight recorder ring + merged dump unit tests."""

from repro.telemetry import FlightRecorder, merge_dump


def test_ring_is_bounded_and_counts_evictions():
    rec = FlightRecorder(rank=0, capacity=4)
    for i in range(10):
        rec.record("ev", detail=str(i))
    assert len(rec) == 4
    assert rec.dropped == 6
    # The ring keeps the *newest* events.
    assert [ev.detail for ev in rec.snapshot()] == ["6", "7", "8", "9"]


def test_clear_resets_ring_and_dropped():
    rec = FlightRecorder(rank=0, capacity=2)
    for _ in range(5):
        rec.record("ev")
    rec.clear()
    assert len(rec) == 0
    assert rec.dropped == 0


def test_merge_dump_orders_across_ranks():
    a, b = FlightRecorder(0, capacity=8), FlightRecorder(1, capacity=8)
    a.record("first", src=0, dst=1, nbytes=8)
    b.record("second", src=1, dst=0)
    a.record("third")
    text = merge_dump([a, b], header="CommTimeout: stuck op")
    assert "FLIGHT RECORDER DUMP" in text
    assert "trigger: CommTimeout: stuck op" in text
    assert "rank 0: 2 events" in text
    assert "rank 1: 1 events" in text
    # Time-ordered: first < second < third in the merged body.
    body = text[text.index("-" * 72):]
    assert body.index("first") < body.index("second") < body.index("third")
    assert "0->1 8B" in text


def test_merge_dump_notes_evictions_and_limit():
    rec = FlightRecorder(0, capacity=3)
    for i in range(6):
        rec.record("ev", detail=f"e{i}")
    text = merge_dump([rec], limit_per_rank=2)
    assert "(3 older events evicted)" in text
    assert "e4" in text and "e5" in text
    assert "e3" not in text  # cut by limit_per_rank


def test_merge_dump_empty():
    text = merge_dump([FlightRecorder(0)])
    assert "(no events recorded)" in text
